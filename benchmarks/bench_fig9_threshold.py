"""Fig. 9 bench — score trade-off across the post-processing threshold."""

from repro.experiments import active_scale, format_fig9, run_fig9
from repro.locking import DMUX_SCHEME


def test_fig9_threshold_sweep(bench_once, runner):
    scale = active_scale()
    rows = bench_once(
        run_fig9, scale=scale,
        thresholds=(0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0),
        runner=runner,
    )
    print()
    print(format_fig9(rows))

    for scheme_rows in (
        [r for r in rows if r.scheme == DMUX_SCHEME],
        [r for r in rows if r.scheme != DMUX_SCHEME],
    ):
        by_th = sorted(scheme_rows, key=lambda r: r.threshold)
        precisions = [r.precision for r in by_th]
        decisions = [r.decision_rate for r in by_th]
        # Shape: precision weakly increases with th; decided ratio falls.
        assert all(b >= a - 1e-9 for a, b in zip(precisions, precisions[1:]))
        assert all(b <= a + 1e-9 for a, b in zip(decisions, decisions[1:]))
        # th = 1 forces full abstention -> PC = 100%.
        assert by_th[-1].precision == 1.0
