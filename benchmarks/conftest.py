"""Benchmark-suite configuration.

Each bench regenerates one figure of the paper at CI scale (set
``REPRO_EXPERIMENT_SCALE=paper`` for the full-size protocol) and prints the
paper-style table to stdout; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.

All figure benches execute through one session-scoped
:class:`~repro.experiments.ExperimentRunner`, exactly like ``repro
figures``: ``REPRO_JOBS=N`` pools the attack cells over N worker
processes, and when several figure benches run in one pytest session the
later ones reuse the locked netlists and trained attacks of the earlier
ones (Fig. 8 / Fig. 9 re-train nothing after Fig. 7).

``REPRO_STORE=<dir>`` additionally backs the runner with the persistent
content-addressed artifact store, so the bench suite, ``repro figures``
and the CLI share one artifact pool across *sessions* — a second bench
run re-locks and re-trains nothing (see ``bench_store_resume.py``; the
runner reports the hit/miss/bytes counters at session end).
"""

import pytest

from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    """The shared pooled/cache-warm experiment runner.

    Honours ``REPRO_JOBS`` (worker pool) and ``REPRO_STORE`` (persistent
    artifact store) exactly like ``repro figures``.
    """
    with ExperimentRunner() as shared:
        yield shared
        if shared.store is not None:
            print(
                f"\n[conftest] runner: {shared.stats.summary()}"
                f"\n[conftest] store: {shared.store.stats.summary()} "
                f"@ {shared.store.root}"
            )


@pytest.fixture
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure regeneration takes seconds to minutes; statistical repetition
    would multiply that for no insight, so every bench uses one round.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
