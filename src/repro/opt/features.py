"""Design feature vectors for the constant-propagation attacks.

SWEEP extracts per-key-value design features (area, power, gate counts, …)
from synthesis reports; SCOPE does the same without training.  We emulate
the report columns with topology-derived proxies — what matters to both
attacks is the *difference* between the two hard-coded key values, and any
asymmetric logic pruning moves every one of these features.
"""

from __future__ import annotations

import numpy as np

from repro.netlist import Circuit, GateType, area_estimate, switching_estimate

__all__ = ["FEATURE_NAMES", "design_features", "feature_delta"]

_GATE_ORDER = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
)

#: Order of entries in :func:`design_features` vectors.
FEATURE_NAMES: tuple[str, ...] = (
    "num_gates",
    "num_nets",
    "depth",
    "area",
    "switching_power",
) + tuple(f"count_{g.value}" for g in _GATE_ORDER)


def design_features(circuit: Circuit) -> np.ndarray:
    """Extract the feature vector of *circuit* (see :data:`FEATURE_NAMES`)."""
    stats = circuit.stats()
    counts = [float(stats.gate_counts.get(g.value, 0)) for g in _GATE_ORDER]
    return np.array(
        [
            float(stats.num_gates),
            float(stats.num_nets),
            float(stats.depth),
            area_estimate(circuit),
            switching_estimate(circuit),
            *counts,
        ],
        dtype=float,
    )


def feature_delta(circuit_k0: Circuit, circuit_k1: Circuit) -> np.ndarray:
    """Feature difference between the two hard-coded key-value circuits."""
    return design_features(circuit_k0) - design_features(circuit_k1)
