"""Enclosing-subgraph extraction and DRNL labelling (paper Sec. III-A/B).

For a target pair ``(f, g)`` the h-hop enclosing subgraph is induced on
``{ j | d(j, f) <= h or d(j, g) <= h }``.  Each node then receives a double
radius node label (DRNL, Eq. 3) describing its position relative to the
target pair; following SEAL, the distance to one target is computed with
the *other* target removed so labels do not collapse through it, and any
direct ``f–g`` edge is removed first.

This is the attack's hot path: four BFS traversals per sampled link, for
up to 100 000 training links plus every target candidate.  The pipeline
therefore runs on the CSR arrays of :class:`~repro.linkpred.graph
.AttackGraph`, vectorized *across pairs*:

* pairs are processed in memory-bounded chunks;
* the (up to) four BFS queries of every pair in a chunk are deduplicated —
  both candidate links of a key MUX share the same ``load`` node, so its
  membership BFS runs once — and all surviving sources expand together as
  one multi-source frontier (one fancy-indexed gather per level);
* membership, DRNL labels, induced edges, and per-node features of the
  whole chunk are then assembled with a handful of array ops and split
  back into per-pair :class:`EnclosingSubgraph` records.

:func:`extract_enclosing_subgraph` is the batch pipeline run on a single
pair, so both entry points produce identical subgraphs by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.linkpred.graph import AttackGraph

__all__ = [
    "EnclosingSubgraph",
    "extract_enclosing_subgraph",
    "extract_enclosing_subgraphs",
    "drnl_label",
    "drnl_label_array",
]

#: Soft bound on (pairs per chunk) x (graph nodes).  The BFS universe is
#: randomly accessed, so the sweet spot keeps it cache-resident (a few
#: megabytes) rather than maximally batched; it also bounds memory for
#: paper-scale ITC-99 graphs.
_CHUNK_CELLS = 400_000


def drnl_label(df: int | None, dg: int | None) -> int:
    """Double radius node label (paper Eq. 3).

    Args:
        df: distance to target ``f`` (``None`` when unreachable).
        dg: distance to target ``g``.

    Returns:
        ``1`` for the targets themselves, ``0`` for nodes that reach only
        one target, and ``1 + min + (d/2)[(d/2) + (d%2) - 1]`` otherwise.
    """
    if df == 0 and dg == 0:
        raise ValueError("a node cannot be both targets at once")
    if df == 0 or dg == 0:
        return 1
    if df is None or dg is None:
        return 0
    d = df + dg
    half, rem = divmod(d, 2)
    return 1 + min(df, dg) + half * (half + rem - 1)


def drnl_label_array(dist_f: np.ndarray, dist_g: np.ndarray) -> np.ndarray:
    """Vectorized :func:`drnl_label` over distance arrays (``-1`` = unreachable)."""
    df = dist_f.astype(np.int64)
    dg = dist_g.astype(np.int64)
    d = df + dg
    half = d // 2
    rem = d % 2
    labels = 1 + np.minimum(df, dg) + half * (half + rem - 1)
    labels[(df < 0) | (dg < 0)] = 0
    labels[(df == 0) | (dg == 0)] = 1
    return labels


@dataclass(frozen=True)
class EnclosingSubgraph:
    """An extracted h-hop enclosing subgraph.

    Attributes:
        nodes: original node indices (position 0 is ``f``, position 1 is
            ``g``, the rest ascend).
        edges: local-index undirected edge array ``(E, 2)``.
        labels: DRNL label per local node.
        gate_type_ids: feature row (0–7) per local node.
        degrees: observed full-graph degree per local node (the locked load
            gate is missing one pin, which this feature exposes).
    """

    nodes: np.ndarray
    edges: np.ndarray
    labels: np.ndarray
    gate_type_ids: np.ndarray
    degrees: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of *nodes*.

    Returns ``(counts, neighbors)`` where ``counts[i]`` is the degree of
    ``nodes[i]`` and ``neighbors`` lays the rows out back to back — one
    vectorized gather, no Python loop over rows.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return counts, np.empty(0, dtype=indices.dtype)
    row_offsets = np.cumsum(counts, dtype=np.int32) - counts
    positions = np.arange(total, dtype=np.int32) + np.repeat(
        starts - row_offsets, counts
    )
    return counts, indices[positions]


class _Workspace:
    """Reusable buffers for chunked extraction.

    Allocation is expensive relative to the per-chunk work (the BFS
    universe is tens of megabytes), so the distance matrix, dedupe stamps
    and the flattened edge-key table are created once per batch and shared
    by every chunk.
    """

    def __init__(self, graph: AttackGraph, max_pairs: int) -> None:
        n = graph.n_nodes
        self.capacity = 4 * max_pairs * n  # at most four BFS rows per pair
        self.dist_buf = np.empty(self.capacity, dtype=np.int8)
        # Monotonic last-writer-wins stamps: the counter starts at 1 and
        # only grows, so stale values (or the initial zeros) can never
        # collide with a live position and the buffer is only re-zeroed on
        # (rare) counter wrap-around.
        self.stamp = np.zeros(self.capacity, dtype=np.int32)
        self.stamp_counter = 1
        self.local = np.full(max_pairs * n, -1, dtype=np.int32)
        # Flattened undirected edges u*n + v, strictly increasing by CSR
        # construction; membership tests are one binary search.
        self.edge_keys = (
            np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr)) * n
            + graph.indices
        )
        self.degrees = np.diff(graph.indptr)

    def stamp_range(self, count: int) -> np.ndarray:
        """Fresh, never-before-issued stamp values for *count* candidates."""
        if self.stamp_counter + count >= 2**31:
            self.stamp[:] = 0
            self.stamp_counter = 1
        positions = np.arange(
            self.stamp_counter, self.stamp_counter + count, dtype=np.int32
        )
        self.stamp_counter += count
        return positions


def _multi_source_bfs(
    graph: AttackGraph,
    starts: np.ndarray,
    blocked: np.ndarray,
    excluded: np.ndarray,
    n_long: int,
    h: int,
    workspace: _Workspace | None = None,
) -> np.ndarray:
    """Bounded BFS from many sources at once over the CSR arrays.

    The first *n_long* sources explore up to ``2 * h`` hops (DRNL
    labelling), the rest up to ``h`` (membership).  Source ``s`` never
    enters ``blocked[s]`` (``-1`` = none) and skips ``excluded[s]`` among
    the start's direct neighbors.  Skipping the excluded node at the first
    hop is exactly SEAL's forbidden target edge: the edge touches the
    start, so it can only ever be traversed out of the start itself —
    later traversals back into the start are already dropped as visited.
    All frontiers advance together: each level is one neighbor gather plus
    a few mask/index ops, regardless of how many sources are active.

    Returns:
        ``(n_sources, n_nodes)`` int8 distance matrix, negative where a
        node is beyond the hop budget (or blocked).
    """
    n = graph.n_nodes
    n_sources = len(starts)
    if workspace is None:
        workspace = _Workspace(graph, max(n_sources // 2 + 1, 1))
    # The distance matrix doubles as the visited set (-1 = unvisited,
    # -2 = blocked); the narrow dtype keeps the randomly-accessed
    # per-source universe cache-resident.
    flat_dist = workspace.dist_buf[: n_sources * n]
    flat_dist.fill(-1)
    dist = flat_dist.reshape(n_sources, n)
    stamp = workspace.stamp

    rows = np.arange(n_sources, dtype=np.int32)
    has_block = blocked >= 0
    flat_dist[rows[has_block] * n + blocked[has_block]] = -2
    flat_dist[rows * n + starts] = 0

    frontier_src = rows
    frontier_node = starts.astype(np.int32)
    for level in range(1, 2 * h + 1):
        if level == h + 1:
            # Membership sources are exhausted; frontiers discovered later
            # can only descend from labelling sources, so this is the only
            # level that needs the budget filter.
            active = frontier_src < n_long
            frontier_src = frontier_src[active]
            frontier_node = frontier_node[active]
        if not frontier_node.size:
            break
        counts, nbrs = _gather_rows(graph.indptr, graph.indices, frontier_node)
        if not nbrs.size:
            break
        src = np.repeat(frontier_src, counts)
        flat = src * n + nbrs
        ok = flat_dist[flat] == -1
        if level == 1:
            ok &= nbrs != excluded[src]
        if level == 2 * h:
            # The final level is never expanded: write the distances and
            # skip the frontier bookkeeping (it is also the widest level).
            flat_dist[flat[ok]] = level
            break
        src, nbrs, flat = src[ok], nbrs[ok], flat[ok]
        if not flat.size:
            break
        flat_dist[flat] = level
        # Dedupe in O(frontier): scatter each candidate's (globally unique)
        # position, keep the copy whose position survived the scatter.
        positions = workspace.stamp_range(len(flat))
        stamp[flat] = positions
        first = stamp[flat] == positions
        frontier_src = src[first]
        frontier_node = nbrs[first]
    return dist


def _extract_chunk(
    graph: AttackGraph,
    f: np.ndarray,
    g: np.ndarray,
    h: int,
    workspace: _Workspace,
) -> list[EnclosingSubgraph]:
    """Run the full vectorized pipeline on one chunk of target pairs."""
    n = graph.n_nodes
    n_pairs = len(f)
    pair_ids = np.arange(n_pairs, dtype=np.int64)

    # The direct f–g edge is excluded from every traversal, which only
    # matters when it is actually observed; normalizing absent edges to
    # (-1, -1) lets pairs that share an endpoint share a BFS below.
    pair_keys = f * n + g
    pos = np.searchsorted(workspace.edge_keys, pair_keys)
    observed = np.zeros(n_pairs, dtype=bool)
    in_range = pos < len(workspace.edge_keys)
    observed[in_range] = workspace.edge_keys[pos[in_range]] == pair_keys[in_range]

    # BFS source table.  Labelling sources (budget 2h) come first: rows
    # 2p / 2p+1 run from f[p] / g[p] with the other target blocked (the
    # blocked partner also subsumes the forbidden target edge for them).
    # Membership sources (budget h) follow; pairs without an observed
    # target edge share one row per distinct endpoint — both candidates of
    # a key MUX share the load node, so its membership BFS runs once.
    # Observed pairs get private membership rows whose first hop skips the
    # partner (SEAL's forbidden edge).
    label_starts = np.empty(2 * n_pairs, dtype=np.int32)
    label_starts[0::2] = f
    label_starts[1::2] = g
    label_blocked = np.empty(2 * n_pairs, dtype=np.int32)
    label_blocked[0::2] = g
    label_blocked[1::2] = f

    unobs = ~observed
    shared_nodes = np.unique(np.concatenate((f[unobs], g[unobs]))).astype(
        np.int32
    )
    obs_idx = np.flatnonzero(observed)
    n_label = 2 * n_pairs
    n_shared = len(shared_nodes)
    n_private = 2 * len(obs_idx)
    base_private = n_label + n_shared
    member_row_f = np.empty(n_pairs, dtype=np.int64)
    member_row_g = np.empty(n_pairs, dtype=np.int64)
    member_row_f[unobs] = n_label + np.searchsorted(shared_nodes, f[unobs])
    member_row_g[unobs] = n_label + np.searchsorted(shared_nodes, g[unobs])
    member_row_f[obs_idx] = base_private + 2 * np.arange(len(obs_idx))
    member_row_g[obs_idx] = base_private + 2 * np.arange(len(obs_idx)) + 1
    private_starts = np.empty(n_private, dtype=np.int32)
    private_starts[0::2] = f[obs_idx]
    private_starts[1::2] = g[obs_idx]
    private_excluded = np.empty(n_private, dtype=np.int32)
    private_excluded[0::2] = g[obs_idx]
    private_excluded[1::2] = f[obs_idx]

    no_block = np.full(n_shared + n_private, -1, dtype=np.int32)
    excluded = np.full(n_label + n_shared + n_private, -1, dtype=np.int32)
    excluded[base_private:] = private_excluded
    dist = _multi_source_bfs(
        graph,
        starts=np.concatenate((label_starts, shared_nodes, private_starts)),
        blocked=np.concatenate((label_blocked, no_block)),
        excluded=excluded,
        n_long=n_label,
        h=h,
        workspace=workspace,
    )

    # Membership: nodes within h hops of either target.  flatnonzero walks
    # the mask row-major, which yields each pair's members in ascending
    # node order — f and g are spliced in front afterwards.
    member_mask = (dist[member_row_f] >= 0) | (dist[member_row_g] >= 0)
    member_mask[pair_ids, f] = False
    member_mask[pair_ids, g] = False
    other_flat = np.flatnonzero(member_mask.reshape(-1)).astype(np.int32)
    other_pair = other_flat // n
    other_node = other_flat % n
    other_counts = np.bincount(other_pair, minlength=n_pairs)
    sizes = other_counts + 2
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    total = int(sizes.sum())

    members = np.empty(total, dtype=np.int32)
    members[starts] = f
    members[starts + 1] = g
    offsets = (np.cumsum(other_counts) - other_counts).astype(np.int32)
    within = np.arange(len(other_node), dtype=np.int32) - np.repeat(
        offsets, other_counts
    )
    members[np.repeat(starts + 2, other_counts) + within] = other_node
    member_pair = np.repeat(
        np.arange(n_pairs, dtype=np.int32), sizes
    )

    labels = drnl_label_array(
        dist[2 * member_pair, members],
        dist[2 * member_pair + 1, members],
    )

    # Induced edges: map members to local indices through a per-pair lookup
    # table, gather every member's CSR row once, keep in-subgraph
    # endpoints, emit each undirected edge once (local u < v), and drop the
    # target link itself.
    local = workspace.local
    member_flat = member_pair * n + members
    local_ids = np.arange(total, dtype=np.int32) - np.repeat(
        starts.astype(np.int32), sizes
    )
    local[member_flat] = local_ids
    nbr_counts, nbrs = _gather_rows(graph.indptr, graph.indices, members)
    edge_pair = np.repeat(member_pair, nbr_counts)
    local_u = np.repeat(local_ids, nbr_counts)
    local_v = local[edge_pair * n + nbrs]
    # Keep in-subgraph endpoints once each (local u < v) and drop the
    # target link itself — by construction it is exactly local (0, 1).
    keep = (local_v >= 0) & (local_u < local_v)
    keep &= (local_u != 0) | (local_v != 1)
    edge_rows = np.column_stack((local_u[keep], local_v[keep]))
    edge_counts = np.bincount(edge_pair[keep], minlength=n_pairs)
    local[member_flat] = -1  # reset only the touched cells for the next chunk

    gate_ids = graph.gate_feature_ids[members]
    degrees = workspace.degrees[members]
    node_bounds = np.concatenate(([0], np.cumsum(sizes)))
    edge_bounds = np.concatenate(([0], np.cumsum(edge_counts)))
    return [
        EnclosingSubgraph(
            nodes=members[node_bounds[p] : node_bounds[p + 1]],
            edges=edge_rows[edge_bounds[p] : edge_bounds[p + 1]],
            labels=labels[node_bounds[p] : node_bounds[p + 1]],
            gate_type_ids=gate_ids[node_bounds[p] : node_bounds[p + 1]],
            degrees=degrees[node_bounds[p] : node_bounds[p + 1]],
        )
        for p in range(n_pairs)
    ]


def extract_enclosing_subgraphs(
    graph: AttackGraph,
    pairs: Sequence[tuple[int, int]],
    h: int,
) -> list[EnclosingSubgraph]:
    """Extract the h-hop enclosing subgraphs of many target pairs.

    The (possibly observed) direct edge ``f–g`` of each pair is never part
    of its subgraph — the GNN must judge the link from the surroundings
    alone.  Pairs are processed in memory-bounded chunks; within a chunk
    all BFS traversals are deduplicated and expanded together, so pairs
    sharing an endpoint (the two candidates of a key MUX share the same
    ``load``) never recompute a distance map.

    Returns:
        One :class:`EnclosingSubgraph` per pair, in input order — each
        identical to what :func:`extract_enclosing_subgraph` yields for
        that pair alone.
    """
    pairs = list(pairs)
    if h < 1:
        raise ValueError("h must be >= 1")
    for u, v in pairs:
        if u == v:
            raise ValueError("target nodes must differ")
    if not pairs:
        return []
    chunk_size = max(4, _CHUNK_CELLS // max(graph.n_nodes, 1))
    workspace = _Workspace(graph, min(chunk_size, len(pairs)))
    out: list[EnclosingSubgraph] = []
    for start in range(0, len(pairs), chunk_size):
        chunk = np.array(pairs[start : start + chunk_size], dtype=np.int64)
        out.extend(
            _extract_chunk(graph, chunk[:, 0], chunk[:, 1], h, workspace)
        )
    return out


def extract_enclosing_subgraph(
    graph: AttackGraph, f: int, g: int, h: int
) -> EnclosingSubgraph:
    """Extract the h-hop enclosing subgraph around target pair ``(f, g)``.

    Single-pair entry point of :func:`extract_enclosing_subgraphs`; both
    produce identical subgraphs by construction.
    """
    return extract_enclosing_subgraphs(graph, [(f, g)], h)[0]
