"""Assembling GNN-ready datasets from sampled links (paper Sec. III-B/C).

Each sampled link becomes an enclosing subgraph with a node-information
matrix ``X = [gate-type one-hot (8) | DRNL one-hot]``.  The DRNL one-hot
width is fixed by the largest label seen in the *training* material; larger
labels encountered at attack time clamp to the "far" bucket.

Subgraphs are extracted through the batched CSR pipeline
(:func:`repro.linkpred.subgraph.extract_enclosing_subgraphs`) and
featurized array-at-a-time: the label / gate-type / degree vectors of the
whole split are concatenated, one-hot encoded with a single scatter each,
and split back into per-example views.  Pass ``n_workers > 1`` to stream
extraction through a ``multiprocessing`` pool (deterministic: workers
process contiguous chunks and results are reassembled in order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.gnn import GraphExample
from repro.linkpred.graph import AttackGraph, MuxTarget
from repro.linkpred.sampling import LinkSample
from repro.linkpred.subgraph import (
    EnclosingSubgraph,
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
)
from repro.netlist import NUM_GATE_FEATURES

__all__ = [
    "LinkDataset",
    "TargetExample",
    "build_link_dataset",
    "build_target_examples",
    "iter_target_examples",
]


_MAX_DEGREE_FEATURE = 8

# Worker-process state: the graph is shipped once per worker through the
# pool initializer instead of once per task.
_WORKER_GRAPH: AttackGraph | None = None
_WORKER_H: int = 0


def _init_worker(graph: AttackGraph, h: int) -> None:
    global _WORKER_GRAPH, _WORKER_H
    _WORKER_GRAPH = graph
    _WORKER_H = h


def _extract_chunk(pairs: list[tuple[int, int]]) -> list[EnclosingSubgraph]:
    assert _WORKER_GRAPH is not None
    return extract_enclosing_subgraphs(_WORKER_GRAPH, pairs, _WORKER_H)


def _extract_pairs(
    graph: AttackGraph,
    pairs: list[tuple[int, int]],
    h: int,
    n_workers: int = 0,
) -> list[EnclosingSubgraph]:
    """Extract subgraphs for *pairs*, optionally across a worker pool.

    Results are always in input order; ``n_workers <= 1`` runs in-process.
    Chunks are contiguous so endpoint-sharing pairs (both candidates of a
    MUX arrive back to back) still hit the per-chunk BFS cache.
    """
    if n_workers and n_workers > 1 and len(pairs) > 1:
        import multiprocessing

        workers = min(n_workers, len(pairs))
        chunk_size = max(1, -(-len(pairs) // (workers * 4)))
        if chunk_size % 2:  # keep (d0, load)/(d1, load) pairs together
            chunk_size += 1
        chunks = [
            pairs[start : start + chunk_size]
            for start in range(0, len(pairs), chunk_size)
        ]
        with multiprocessing.get_context().Pool(
            workers, initializer=_init_worker, initargs=(graph, h)
        ) as pool:
            results = pool.map(_extract_chunk, chunks)
        return [sub for chunk in results for sub in chunk]
    return extract_enclosing_subgraphs(graph, pairs, h)


def _features(
    subgraph: EnclosingSubgraph,
    max_label: int,
    use_drnl: bool = True,
    use_gate_types: bool = True,
    use_degree: bool = True,
) -> np.ndarray:
    """Node-information matrix for a single subgraph."""
    return _features_batch(
        [subgraph], max_label, use_drnl, use_gate_types, use_degree
    )[0]


def _features_batch(
    subgraphs: Sequence[EnclosingSubgraph],
    max_label: int,
    use_drnl: bool = True,
    use_gate_types: bool = True,
    use_degree: bool = True,
) -> list[np.ndarray]:
    """Node-information matrices for many subgraphs in one pass.

    The whole split's matrix is allocated once and every one-hot block is
    scattered straight into its column range (one fancy-indexed assignment
    per block, no per-example loops, no ``hstack`` copy); the result is
    split back into per-subgraph views.
    """
    sizes = np.array([s.n_nodes for s in subgraphs], dtype=np.int64)
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    total = int(bounds[-1])
    width = (
        (NUM_GATE_FEATURES if use_gate_types else 0)
        + (max_label + 1 if use_drnl else 0)
        + (_MAX_DEGREE_FEATURE if use_degree else 0)
    )
    if width == 0:
        stacked = np.ones((total, 1))
    else:
        stacked = np.zeros((total, width))
        rows = np.arange(total)
        col = 0
        if use_gate_types:
            ids = np.concatenate([s.gate_type_ids for s in subgraphs])
            stacked[rows, ids] = 1.0
            col += NUM_GATE_FEATURES
        if use_drnl:
            labels = np.concatenate([s.labels for s in subgraphs])
            stacked[rows, col + np.minimum(labels, max_label)] = 1.0
            col += max_label + 1
        if use_degree:
            degrees = np.concatenate([s.degrees for s in subgraphs])
            stacked[rows, col + np.minimum(degrees, _MAX_DEGREE_FEATURE - 1)] = 1.0
    return [
        stacked[bounds[i] : bounds[i + 1]] for i in range(len(subgraphs))
    ]


@dataclass
class LinkDataset:
    """Train/validation subgraph examples plus the feature configuration."""

    train: list[GraphExample]
    validation: list[GraphExample]
    max_label: int
    feature_width: int
    h: int
    use_drnl: bool = True
    use_gate_types: bool = True
    use_degree: bool = True
    subgraph_sizes: list[int] = field(default_factory=list)


def build_link_dataset(
    graph: AttackGraph,
    sample: LinkSample,
    h: int = 3,
    use_drnl: bool = True,
    use_gate_types: bool = True,
    use_degree: bool = True,
    n_workers: int = 0,
) -> LinkDataset:
    """Extract and featurize enclosing subgraphs for every sampled link.

    Args:
        graph: the attack graph.
        sample: sampled train/validation links.
        h: enclosing-subgraph hop count.
        use_drnl / use_gate_types / use_degree: feature ablation switches.
        n_workers: extraction worker processes (``<= 1`` = in-process).
    """
    links = [(u, v, label, True) for u, v, label in sample.train]
    links += [(u, v, label, False) for u, v, label in sample.validation]
    if not links:
        raise TrainingError("no links to build a dataset from")

    subgraphs = _extract_pairs(
        graph, [(u, v) for u, v, _, _ in links], h, n_workers
    )
    max_label = max(
        1, max(int(s.labels.max(initial=0)) for s in subgraphs)
    )
    features = _features_batch(
        subgraphs, max_label, use_drnl, use_gate_types, use_degree
    )

    train: list[GraphExample] = []
    validation: list[GraphExample] = []
    sizes: list[int] = []
    for sub, feats, (_, _, label, is_train) in zip(subgraphs, features, links):
        example = GraphExample(
            n_nodes=sub.n_nodes,
            edges=sub.edges,
            features=feats,
            label=label,
        )
        (train if is_train else validation).append(example)
        if is_train:
            sizes.append(sub.n_nodes)
    width = train[0].features.shape[1] if train else validation[0].features.shape[1]
    return LinkDataset(
        train=train,
        validation=validation,
        max_label=max_label,
        feature_width=width,
        h=h,
        use_drnl=use_drnl,
        use_gate_types=use_gate_types,
        use_degree=use_degree,
        subgraph_sizes=sizes,
    )


@dataclass(frozen=True)
class TargetExample:
    """A candidate link of one key MUX, ready for scoring.

    Attributes:
        target: the owning MUX record.
        select_value: key value that would pass this candidate (0 for d0).
        example: the unlabeled subgraph.
    """

    target: MuxTarget
    select_value: int
    example: GraphExample


def iter_target_examples(
    graph: AttackGraph,
    dataset: LinkDataset,
    chunk_size: int | None = None,
    n_workers: int = 0,
) -> Iterator[list[TargetExample]]:
    """Yield both candidate links of every key MUX, extracted lazily.

    Produces exactly the :class:`TargetExample` sequence of
    :func:`build_target_examples`, but in contiguous chunks of
    ``chunk_size`` candidates: each chunk's enclosing subgraphs are
    extracted and featurized only when the chunk is requested, so a
    downstream scorer (:func:`repro.linkpred.trainer.score_stream`) can
    overlap its GNN forwards with extraction on large designs.

    ``chunk_size`` is rounded up to even so the (d0, d1) candidates of a
    MUX stay in one chunk — they share the ``load`` endpoint, and the
    per-chunk BFS cache dedupes that distance map between them.
    ``None`` extracts everything in one chunk.

    With ``n_workers > 1`` each chunk spins up (and tears down) its own
    multiprocessing pool, so worker extraction only pays off with large
    chunks — pass ``chunk_size=None`` (or thousands) for that combination.
    Pools must be forked from the main thread: do not drive a
    worker-backed iterator from :func:`repro.linkpred.score_stream`'s
    producer thread (``run_muxlink`` streams only when ``n_workers <= 1``).
    """
    records = [
        (target, select_value, driver, load)
        for target in graph.targets
        for driver, load, select_value in target.candidates()
    ]
    if chunk_size is None:
        chunk_size = max(len(records), 1)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    chunk_size += chunk_size % 2
    for start in range(0, len(records), chunk_size):
        chunk = records[start : start + chunk_size]
        subgraphs = _extract_pairs(
            graph,
            [(driver, load) for _, _, driver, load in chunk],
            dataset.h,
            n_workers,
        )
        features = _features_batch(
            subgraphs,
            dataset.max_label,
            dataset.use_drnl,
            dataset.use_gate_types,
            dataset.use_degree,
        )
        yield [
            TargetExample(
                target=target,
                select_value=select_value,
                example=GraphExample(
                    n_nodes=sub.n_nodes,
                    edges=sub.edges,
                    features=feats,
                    label=-1,
                ),
            )
            for (target, select_value, _, _), sub, feats in zip(
                chunk, subgraphs, features
            )
        ]


def build_target_examples(
    graph: AttackGraph, dataset: LinkDataset, n_workers: int = 0
) -> list[TargetExample]:
    """Featurize both candidate links of every key MUX.

    Must use the *training* feature configuration (same ``max_label`` and
    blocks) so the model sees consistent input widths.  Both candidates of
    a MUX share the ``load`` endpoint, so batching them through the CSR
    pipeline reuses that BFS between them.  One-chunk convenience wrapper
    over :func:`iter_target_examples`.
    """
    return [
        example
        for chunk in iter_target_examples(graph, dataset, n_workers=n_workers)
        for example in chunk
    ]
