"""Tests for the ISCAS/ITC stand-in benchmark suite."""

import pytest

from repro.benchgen import (
    ISCAS85_SUITE,
    ITC99_SUITE,
    benchmark_names,
    benchmark_spec,
    load_benchmark,
    load_c17,
)


def test_suite_contents_match_paper():
    assert benchmark_names("ISCAS-85") == (
        "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
    )
    assert benchmark_names("ITC-99") == ("b14", "b15", "b20", "b21", "b22", "b17")
    assert len(benchmark_names()) == 13


def test_spec_lookup():
    spec = benchmark_spec("c1355")
    assert spec.n_inputs == 41
    assert spec.n_gates == 546
    with pytest.raises(KeyError):
        benchmark_spec("c9999")


@pytest.mark.parametrize("name", ["c1355", "c1908"])
def test_standin_full_scale_sizes(name):
    spec = benchmark_spec(name)
    c = load_benchmark(name)
    assert len(c.inputs) == spec.n_inputs
    assert len(c) == spec.n_gates


def test_scale_shrinks():
    full = load_benchmark("c1355")
    small = load_benchmark("c1355", scale=0.25)
    assert len(small) < len(full)
    assert len(small) == max(16, int(546 * 0.25))
    small.validate()


def test_scale_validation():
    with pytest.raises(ValueError):
        load_benchmark("c1355", scale=0.0)
    with pytest.raises(ValueError):
        load_benchmark("c1355", scale=1.5)


def test_standins_are_deterministic():
    a = load_benchmark("c1908", scale=0.2)
    b = load_benchmark("c1908", scale=0.2)
    assert a.gates == b.gates


def test_iscas_ordering_is_by_size():
    sizes = [s.n_gates for s in ISCAS85_SUITE]
    assert sizes == sorted(sizes)


def test_itc_suite_sizes_are_large():
    assert all(s.n_gates > 8000 for s in ITC99_SUITE)


def test_real_c17():
    c = load_c17()
    assert len(c) == 6
    assert c.inputs == ("G1", "G2", "G3", "G6", "G7")
    assert c.outputs == ("G22", "G23")
    assert load_benchmark("c17").gates == c.gates
