"""Codec tests: exact round trips, atomicity, version/kind gating."""

import json
import os

import numpy as np
import pytest

from repro.store import codec
from repro.store.codec import CodecError


def _roundtrip(tmp_path, payload, kind="test"):
    path = tmp_path / "artifact.npz"
    codec.dump(payload, path, kind=kind)
    return codec.load(path, kind=kind)


def test_scalar_tree_roundtrip(tmp_path):
    payload = {
        "s": "text",
        "i": 42,
        "f": 1.25,
        "b": False,
        "none": None,
        "nested": {"list": [1, "two", None], "deep": {"x": [[1], [2]]}},
    }
    assert _roundtrip(tmp_path, payload) == payload


def test_tuples_survive_as_tuples(tmp_path):
    back = _roundtrip(tmp_path, {"t": (1, (2.5, "x"), None), "l": [1, 2]})
    assert back["t"] == (1, (2.5, "x"), None)
    assert isinstance(back["t"], tuple)
    assert isinstance(back["t"][1], tuple)
    assert isinstance(back["l"], list)


def test_bigint_inf_nan_roundtrip(tmp_path):
    """PCG64 state words are 128-bit ints; histories carry inf/nan."""
    payload = {
        "state": 2**127 + 12345,
        "inc": 2**99 + 1,
        "best": float("inf"),
        "neg": float("-inf"),
        "nan": float("nan"),
    }
    back = _roundtrip(tmp_path, payload)
    assert back["state"] == payload["state"]
    assert back["inc"] == payload["inc"]
    assert back["best"] == float("inf") and back["neg"] == float("-inf")
    assert back["nan"] != back["nan"]


def test_float_roundtrip_is_bit_exact(tmp_path):
    value = 0.1 + 0.2  # not representable prettily
    assert _roundtrip(tmp_path, {"v": value})["v"] == value


@pytest.mark.parametrize(
    "array",
    [
        np.arange(12, dtype=np.float32).reshape(3, 4),
        np.linspace(-1, 1, 7, dtype=np.float64),
        np.array([], dtype=np.int32),
        np.empty((0, 5), dtype=np.float32),
        np.array(3.5, dtype=np.float64),  # 0-d
        np.arange(4, dtype=np.uint64) << np.uint64(60),
    ],
)
def test_array_roundtrip_preserves_dtype_and_bits(tmp_path, array):
    back = _roundtrip(tmp_path, {"a": array})["a"]
    assert isinstance(back, np.ndarray)
    assert back.dtype == array.dtype
    assert back.shape == array.shape
    np.testing.assert_array_equal(back, array)


def test_numpy_scalar_roundtrip(tmp_path):
    back = _roundtrip(tmp_path, {"x": np.float32(1.5), "n": np.int64(-7)})
    assert back["x"] == np.float32(1.5) and back["x"].dtype == np.float32
    assert back["n"] == -7


def test_array_list_roundtrip(tmp_path):
    state = [np.random.default_rng(0).standard_normal((4, 3)), np.zeros(2)]
    back = _roundtrip(tmp_path, {"state": state})["state"]
    assert len(back) == 2
    np.testing.assert_array_equal(back[0], state[0])


def test_dump_is_atomic_and_leaves_no_tmp(tmp_path):
    path = tmp_path / "a.npz"
    codec.dump({"x": 1}, path, kind="test")
    assert [p.name for p in tmp_path.iterdir()] == ["a.npz"]


def test_failed_dump_leaves_no_partial_file(tmp_path):
    path = tmp_path / "a.npz"

    class Unserializable:
        pass

    with pytest.raises(CodecError):
        codec.dump({"x": Unserializable()}, path, kind="test")
    assert list(tmp_path.iterdir()) == []


def test_non_string_keys_rejected(tmp_path):
    with pytest.raises(CodecError):
        codec.dump({1: "x"}, tmp_path / "a.npz", kind="test")


def test_load_missing_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        codec.load(tmp_path / "missing.npz", kind="test")


def test_load_garbage_raises_codec_error(tmp_path):
    path = tmp_path / "a.npz"
    path.write_bytes(b"this is not a zip archive")
    with pytest.raises(CodecError):
        codec.load(path, kind="test")


def test_load_truncated_raises_codec_error(tmp_path):
    path = tmp_path / "a.npz"
    codec.dump({"a": np.arange(1000)}, path, kind="test")
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(CodecError):
        codec.load(path, kind="test")


def test_wrong_kind_rejected(tmp_path):
    path = tmp_path / "a.npz"
    codec.dump({"x": 1}, path, kind="lock")
    with pytest.raises(CodecError, match="kind"):
        codec.load(path, kind="attack")


def test_foreign_npz_rejected(tmp_path):
    """A plain npz that never went through dump() is not an artifact."""
    path = tmp_path / "a.npz"
    np.savez(path, data=np.arange(3))
    with pytest.raises(CodecError, match="not a repro.store artifact"):
        codec.load(path, kind="test")


def test_codec_version_gates_decoding(tmp_path, monkeypatch):
    path = tmp_path / "a.npz"
    codec.dump({"x": 1}, path, kind="test")
    monkeypatch.setattr(codec, "CODEC_VERSION", codec.CODEC_VERSION + 1)
    with pytest.raises(CodecError, match="codec version"):
        codec.load(path, kind="test")


def test_reserved_tuple_key_rejected(tmp_path):
    with pytest.raises(CodecError, match="reserved"):
        codec.dump({"__tuple__": [1, 2]}, tmp_path / "a.npz", kind="test")
    with pytest.raises(CodecError, match="reserved"):
        codec.dump({"__array__": 0}, tmp_path / "a.npz", kind="test")


def test_object_dtype_arrays_rejected_at_write(tmp_path):
    """savez would pickle them and allow_pickle=False load could never
    read them back — a cache entry that can never hit."""
    ragged = np.array([[1, 2], [3]], dtype=object)
    with pytest.raises(CodecError, match="object-dtype"):
        codec.dump({"a": ragged}, tmp_path / "a.npz", kind="test")
    assert list(tmp_path.iterdir()) == []  # nothing half-written
