"""Experiment runners regenerating every figure of the paper.

Figure grids are declarative :class:`~repro.experiments.runner.Cell`
lists executed by the pooled, cache-aware
:class:`~repro.experiments.runner.ExperimentRunner` (``REPRO_JOBS`` /
``repro figures --jobs N``); share one runner across figures to reuse
locked netlists and trained attacks.
"""

from repro.experiments.common import (
    CI_SCALE,
    PAPER_SCALE,
    SCALES,
    SMOKE_SCALE,
    AttackRecord,
    ExperimentScale,
    active_scale,
    attack_benchmark,
    format_records,
    lock_with,
    scale_by_name,
)
from repro.experiments.fig2 import Fig2Row, format_fig2, run_fig2
from repro.experiments.fig7 import fig7_cells, format_fig7, run_fig7, summarize_fig7
from repro.experiments.fig8 import Fig8Row, fig8_cells, format_fig8, run_fig8
from repro.experiments.fig9 import Fig9Row, fig9_cells, format_fig9, run_fig9
from repro.experiments.fig10 import (
    Fig10Row,
    fig10_cells,
    format_fig10,
    run_fig10,
)
from repro.experiments.runner import (
    AttackJob,
    Cell,
    ExperimentRunner,
    RunnerStats,
    cell_seed_sequence,
    derive_cell_seeds,
    execute_attack_job,
    make_cell,
    record_fingerprint,
    resolve_jobs,
)

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "CI_SCALE",
    "PAPER_SCALE",
    "SCALES",
    "active_scale",
    "scale_by_name",
    "AttackRecord",
    "attack_benchmark",
    "lock_with",
    "format_records",
    "AttackJob",
    "Cell",
    "ExperimentRunner",
    "RunnerStats",
    "cell_seed_sequence",
    "derive_cell_seeds",
    "execute_attack_job",
    "make_cell",
    "record_fingerprint",
    "resolve_jobs",
    "run_fig2",
    "format_fig2",
    "Fig2Row",
    "fig7_cells",
    "run_fig7",
    "format_fig7",
    "summarize_fig7",
    "fig8_cells",
    "run_fig8",
    "format_fig8",
    "Fig8Row",
    "fig9_cells",
    "run_fig9",
    "format_fig9",
    "Fig9Row",
    "fig10_cells",
    "run_fig10",
    "format_fig10",
    "Fig10Row",
]
