"""DGCNN — deep graph convolutional neural network (Zhang et al., AAAI'18).

The exact architecture of the paper (Sec. IV "GNN Topology"):

* four graph-convolution layers with {32, 32, 32, 1} output channels and
  ``tanh`` activations (Eq. 4), run through the fused
  :func:`repro.nn.graph_conv` kernel,
* concatenation ``H^{1:L}`` of all layer outputs per node,
* SortPooling to the top-``k`` nodes ordered by the last (1-channel) layer
  — vectorized as a single lexsort over ``(graph_id, -score)`` plus one
  top-k scatter, instead of a per-graph argsort loop,
* two 1-D convolution layers with {16, 32} output channels — the first has
  kernel/stride equal to the per-node feature width, the second kernel 5 —
  with a max-pool of size 2 in between, ReLU activations,
* a 128-unit dense layer, dropout 0.5, and a 2-way softmax output.

Inference (``predict_proba``) runs under :func:`repro.nn.no_grad`, so
evaluation and scoring record no tape and keep no intermediates alive.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.batching import GraphBatch
from repro.nn import (
    Conv1d,
    Dropout,
    GraphConv,
    Linear,
    Module,
    Tensor,
    Workspace,
    max_pool1d,
    no_grad,
    softmax,
    softmax_cross_entropy,
    sortpool_conv,
)

__all__ = ["DGCNN", "choose_sortpool_k"]

#: Smallest usable SortPooling k: after the width-2 max-pool the second
#: convolution (kernel 5) still needs at least one output position.
MIN_SORTPOOL_K = 10


def choose_sortpool_k(
    subgraph_sizes: list[int], percentile: float = 0.6
) -> int:
    """Pick k so that ``percentile`` of subgraphs have at most k nodes.

    Mirrors the paper: "we set k such that 60% of subgraphs have nodes less
    than or equal to k", clamped to :data:`MIN_SORTPOOL_K`.
    """
    if not subgraph_sizes:
        raise ValueError("need at least one subgraph size")
    if not 0.0 < percentile <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {percentile}")
    k = int(np.quantile(np.asarray(subgraph_sizes), percentile))
    return max(MIN_SORTPOOL_K, k)


class DGCNN(Module):
    """Graph classifier for link prediction.

    Args:
        in_features: width of the node-information matrix.
        k: SortPooling size (use :func:`choose_sortpool_k`).
        gc_channels: per-layer graph-convolution output widths.
        conv_channels: the two 1-D convolution widths.
        dense_units: hidden dense-layer width.
        dropout: dropout rate before the output layer.
        seed: parameter-initialization / dropout seed.
    """

    def __init__(
        self,
        in_features: int,
        k: int,
        gc_channels: tuple[int, ...] = (32, 32, 32, 1),
        conv_channels: tuple[int, int] = (16, 32),
        dense_units: int = 128,
        dropout: float = 0.5,
        seed: int = 0,
    ):
        if k < MIN_SORTPOOL_K:
            raise ValueError(f"k must be >= {MIN_SORTPOOL_K}, got {k}")
        rng = np.random.default_rng(seed)
        self.k = k
        self.gc_layers = [
            GraphConv(cin, cout, rng)
            for cin, cout in zip((in_features,) + gc_channels[:-1], gc_channels)
        ]
        self.gc_channels = tuple(gc_channels)
        self.node_width = int(sum(gc_channels))
        # Forward workspace: the H^{1:L} concat buffer and the graph-conv
        # scratch slots are recycled across steps (see ``forward``).
        self._workspace = Workspace()
        self.conv1 = Conv1d(
            1, conv_channels[0], kernel_size=self.node_width,
            rng=rng, stride=self.node_width,
        )
        self.conv2 = Conv1d(
            conv_channels[0], conv_channels[1], kernel_size=5, rng=rng
        )
        conv2_len = (k // 2) - 4
        self.flat_width = conv_channels[1] * conv2_len
        self.fc1 = Linear(self.flat_width, dense_units, rng)
        self.dropout = Dropout(dropout, np.random.default_rng(seed + 1))
        self.fc2 = Linear(dense_units, 2, rng)
        self.training = True

    # ------------------------------------------------------------ plumbing
    def _sortpool_indices(self, last_layer: np.ndarray, batch: GraphBatch) -> np.ndarray:
        """Per-graph top-k node rows ordered by the 1-channel layer value.

        Fully vectorized: one stable lexsort over ``(graph_id, -score)``
        groups every graph's nodes contiguously in descending-score order
        (ties broken by original row, matching a per-graph stable argsort),
        then a single masked scatter writes the top-k rows of every graph.

        Returns absolute row indices into the stacked node matrix, ``-1``
        where a graph has fewer than k nodes (zero padding).
        """
        scores = last_layer[:, -1]
        graph_ids = batch.graph_ids
        if scores.dtype == np.float32 and graph_ids.size:
            # One stable radix-friendly uint64 sort instead of lexsort's
            # two key passes.  The monotone bit trick maps float32 to
            # uint32 preserving exact comparison order (adding +0.0 first
            # collapses -0.0 onto +0.0, matching float equality); bitwise
            # inversion reverses it for the descending-score key.  The
            # resulting order is identical to
            # ``np.lexsort((-scores, graph_ids))``, ties and all.
            bits = (scores + np.float32(0.0)).view(np.uint32)
            negative = (bits >> np.uint32(31)).astype(bool)
            ascending = np.where(negative, ~bits, bits | np.uint32(0x80000000))
            descending = ~ascending
            combined = (graph_ids.astype(np.uint64) << np.uint64(32)) | descending
            order = np.argsort(combined, kind="stable")
        else:
            # lexsort is stable and sorts by the last key first: primary
            # graph_id, secondary descending score, ties by original index.
            order = np.lexsort((-scores, graph_ids))
        # Sorted position j holds graph graph_ids[j] (grouping and group
        # sizes are unchanged by the sort), at within-graph rank
        # segment_positions[j].
        within = batch.segment_positions
        take = within < self.k
        indices = np.full(batch.n_graphs * self.k, -1, dtype=np.int64)
        indices[graph_ids[take] * self.k + within[take]] = order[take]
        return indices

    def forward(self, batch: GraphBatch) -> Tensor:
        """Compute ``(n_graphs, 2)`` classification logits.

        Zero-alloc steady state: the graph convolutions run against the
        batch's cached block-sparse operator and write into recycled
        per-layer :meth:`~repro.nn.tensor.Workspace.resident` slots, and
        the ``H^{1:L}`` concatenation never materializes — SortPooling's
        row gather commutes with the column concat, so
        :func:`~repro.nn.sortpool_conv` feeds each layer's gathered block
        straight into its column slice of the first convolution's kernel.
        Consequence of the buffer reuse: a forward's tape must be consumed
        (``backward`` or discarded) before the same model's next forward —
        the pattern of every training/eval loop here.
        """
        operator = batch.operator
        workspace = self._workspace
        h = Tensor(batch.features)
        dtype = h.data.dtype
        n_nodes = batch.n_nodes
        layer_outputs: list[Tensor] = []
        for i, (layer, width) in enumerate(zip(self.gc_layers, self.gc_channels)):
            h = layer(
                operator, h,
                out=workspace.resident(f"dgcnn.gc{i}", (n_nodes, width), dtype),
                workspace=workspace,
                # Layer 1 only: the batcher's detected one-hot feature
                # structure turns H @ W into a few row gathers of W.
                feature_cols=getattr(batch, "feature_onehot", None)
                if i == 0 else None,
            )
            layer_outputs.append(h)

        indices = self._sortpool_indices(layer_outputs[-1].data, batch)
        # SortPooling gather fused with the node-wide first convolution:
        # the pooled H^{1:L} matrix never materializes (see sortpool_conv).
        z = sortpool_conv(
            layer_outputs, indices,
            self.conv1.weight, self.conv1.bias, self.k,
            workspace=workspace,
        ).relu()  # (B, c1, k)
        z = max_pool1d(z, 2, 2)  # (B, c1, k//2)
        z = self.conv2(z).relu()  # (B, c2, k//2 - 4)
        z = z.reshape(batch.n_graphs, self.flat_width)
        z = self.fc1(z).relu()
        z = self.dropout(z)
        return self.fc2(z)

    __call__ = forward

    def loss(self, batch: GraphBatch) -> Tensor:
        """Mean cross-entropy against the batch labels."""
        if (batch.labels < 0).any():
            raise ValueError("batch contains unlabeled graphs")
        return softmax_cross_entropy(self.forward(batch), batch.labels)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        """Per-graph likelihood of class 1 ("link exists").

        Runs in eval mode under ``no_grad``: no tape is recorded.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probs = softmax(self.forward(batch)).data
        finally:
            if was_training:
                self.train()
        return probs[:, 1]
