"""SAAM must break naive MUX locking and fail on D-MUX / symmetric."""

import pytest

from repro.attacks import saam_attack
from repro.benchgen import random_netlist
from repro.core.metrics import score_key
from repro.errors import AttackError
from repro.locking import lock_dmux, lock_naive_mux, lock_symmetric


def base(seed=0):
    return random_netlist("base", 10, 5, 120, seed=seed)


def test_saam_breaks_naive_mux():
    locked = lock_naive_mux(base(seed=1), key_size=12, seed=2)
    report = saam_attack(locked.circuit)
    metrics = score_key(report.predicted_key, locked.key)
    # Every decided bit must be correct (reduction is a proof).
    assert metrics.n_wrong == 0
    # Naive locking prefers single-output true wires, so most bits fall.
    assert metrics.n_correct >= metrics.n_total // 2


def test_saam_decisions_are_proofs():
    """A decided bit implies asymmetric reduction."""
    locked = lock_naive_mux(base(seed=2), key_size=8, seed=3)
    report = saam_attack(locked.circuit)
    for bit, ch in enumerate(report.predicted_key):
        r0 = report.reductions[(bit, 0)]
        r1 = report.reductions[(bit, 1)]
        if ch == "0":
            assert r1 > 0 and r0 == 0
        elif ch == "1":
            assert r0 > 0 and r1 == 0


def test_saam_defeated_by_dmux():
    locked = lock_dmux(base(seed=3), key_size=12, seed=4)
    report = saam_attack(locked.circuit)
    # No reduction for any single hard-coded bit => all X.
    assert set(report.predicted_key) == {"x"}


def test_saam_defeated_by_symmetric():
    locked = lock_symmetric(base(seed=4), key_size=12, seed=5)
    report = saam_attack(locked.circuit)
    assert set(report.predicted_key) == {"x"}


def test_saam_rejects_unlocked_netlist():
    with pytest.raises(AttackError):
        saam_attack(base())
