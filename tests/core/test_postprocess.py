"""Tests for Algorithm-1 post-processing."""

import pytest

from repro.core.postprocess import (
    ScoredMux,
    decisions_to_key,
    postprocess_likelihoods,
)
from repro.errors import AttackError


def mux(name, key, load, drivers, likes):
    return ScoredMux(name, key, load, drivers, likes)


# -------------------------------------------------------------- single MUX
def test_single_mux_decides_above_threshold():
    decided = postprocess_likelihoods([mux("m", 0, 5, (1, 2), (0.9, 0.3))], 0.01)
    assert decided == {0: "0"}
    decided = postprocess_likelihoods([mux("m", 0, 5, (1, 2), (0.2, 0.7))], 0.01)
    assert decided == {0: "1"}


def test_single_mux_abstains_below_threshold():
    decided = postprocess_likelihoods([mux("m", 3, 5, (1, 2), (0.50, 0.505))], 0.01)
    assert decided == {3: "x"}


def test_threshold_zero_always_decides_unless_tied():
    decided = postprocess_likelihoods([mux("m", 0, 5, (1, 2), (0.5, 0.500001))], 0.0)
    assert decided == {0: "1"}


# ------------------------------------------------------- S1/S5 pair (Alg 1)
def s1_pair(li, lj):
    """Same driver pair, same pin order, individual keys."""
    mi = mux("mi", 0, 20, (10, 11), li)
    mj = mux("mj", 1, 21, (10, 11), lj)
    return [mi, mj]


def test_pair_winner_decides_both_complementarily():
    # Paper's worked example: delta1 = |1-0.8| = 0.2, delta2 = |0.9-0.4| = 0.5
    # => MUX_j wins, lgj1 > lgj2 => kj follows its best link, ki complement.
    decided = postprocess_likelihoods(s1_pair((1.0, 0.8), (0.4, 0.9)), 0.01)
    assert decided == {1: "1", 0: "0"}


def test_pair_below_threshold_gives_double_x():
    decided = postprocess_likelihoods(s1_pair((0.5, 0.501), (0.5, 0.502)), 0.01)
    assert decided == {0: "x", 1: "x"}


def test_pair_exact_tie_gives_x():
    # Algorithm 1 lines 16-17: equal deltas -> no decision.
    decided = postprocess_likelihoods(s1_pair((0.9, 0.1), (0.1, 0.9)), 0.01)
    assert decided == {0: "x", 1: "x"}


def test_pair_with_swapped_partner_pins():
    """Partner wired in reverse pin order still gets the complement net."""
    mi = mux("mi", 0, 20, (10, 11), (0.95, 0.2))  # winner: passes 10, bit 0
    mj = mux("mj", 1, 21, (11, 10), (0.5, 0.52))  # partner reversed pins
    decided = postprocess_likelihoods([mi, mj], 0.01)
    # Partner must pass net 11 = its d0 => bit 0.
    assert decided == {0: "0", 1: "0"}


# --------------------------------------------------------------- S4 pair
def test_shared_key_widest_gap_wins():
    m1 = mux("a", 5, 20, (10, 11), (0.55, 0.5))  # weak, says 0
    m2 = mux("b", 5, 21, (11, 10), (0.1, 0.9))  # strong, says 1
    decided = postprocess_likelihoods([m1, m2], 0.01)
    assert decided == {5: "1"}


def test_shared_key_below_threshold():
    m1 = mux("a", 5, 20, (10, 11), (0.5, 0.5))
    m2 = mux("b", 5, 21, (11, 10), (0.5, 0.5))
    decided = postprocess_likelihoods([m1, m2], 0.01)
    assert decided == {5: "x"}


# ------------------------------------------------------------------ misc
def test_mixed_localities():
    scored = [
        mux("s2", 0, 30, (1, 2), (0.9, 0.1)),  # single
        *s1_pair((1.0, 0.0), (0.2, 0.8)),  # keys 0/1? no — redefine below
    ]
    # Rebuild with distinct keys to avoid collision with the single MUX.
    scored = [
        mux("s2", 0, 30, (1, 2), (0.9, 0.1)),
        mux("mi", 1, 20, (10, 11), (1.0, 0.0)),
        mux("mj", 2, 21, (10, 11), (0.2, 0.8)),
        mux("s4a", 3, 40, (5, 6), (0.8, 0.2)),
        mux("s4b", 3, 41, (6, 5), (0.6, 0.3)),
    ]
    decided = postprocess_likelihoods(scored, 0.01)
    assert decided[0] == "0"
    assert decided[1] == "0" and decided[2] == "1"
    assert decided[3] == "0"


def test_decisions_to_key():
    assert decisions_to_key({0: "1", 2: "0"}, 4) == "1x0x"
    assert decisions_to_key({}, 3) == "xxx"


def test_negative_threshold_rejected():
    with pytest.raises(AttackError):
        postprocess_likelihoods([], -0.1)


def test_select_passing_validates_driver():
    m = mux("m", 0, 5, (1, 2), (0.5, 0.5))
    assert m.select_passing(1) == 0
    assert m.select_passing(2) == 1
    with pytest.raises(AttackError):
        m.select_passing(9)


def test_scoredmux_properties():
    m = mux("m", 0, 5, (1, 2), (0.3, 0.8))
    assert m.delta == pytest.approx(0.5)
    assert m.best_select() == 1
    assert m.best_driver() == 2
