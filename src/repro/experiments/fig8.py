"""Fig. 8 — Hamming distance of the designs recovered by MuxLink.

The paper recovers each D-MUX-locked ISCAS-85 design with the predicted
key (averaging over undecided bits) and reports a mean HD of 3.39 % —
i.e. near-complete functional recovery.  Reproduced shape: HD ≪ 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import hamming_with_x
from repro.experiments.common import ExperimentScale, active_scale
from repro.experiments.runner import Cell, ExperimentRunner, make_cell
from repro.locking import DMUX_SCHEME

__all__ = ["Fig8Row", "fig8_cells", "run_fig8", "format_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    benchmark: str
    key_size: int
    accuracy: float
    n_x: int
    hamming_distance: float


def fig8_cells(scale: ExperimentScale, seed: int = 0) -> list[Cell]:
    """D-MUX at the largest preset key per ISCAS-85 benchmark.

    These cells carry the same identity as their Fig. 7 counterparts, so
    a shared runner re-locks and re-trains nothing for this figure.
    """
    return [
        make_cell(scale, name, circuit_scale, DMUX_SCHEME, max(key_sizes), seed)
        for name, circuit_scale, key_sizes in scale.benchmarks()
        if name in scale.iscas  # the paper's Fig. 8 covers the ISCAS-85 set
    ]


def run_fig8(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> list[Fig8Row]:
    """Attack each D-MUX benchmark and measure recovered-design HD."""
    scale = scale or active_scale()
    if runner is None:
        with ExperimentRunner(jobs=jobs) as owned:
            return run_fig8(scale, seed, runner=owned)
    records = runner.run(fig8_cells(scale, seed))
    rows: list[Fig8Row] = []
    for record in records:
        hd = hamming_with_x(
            record.extras["base"],
            record.extras["locked"].circuit,
            record.predicted_key,
            n_patterns=scale.hd_patterns,
            seed=seed,
            max_assignments=16,
        )
        rows.append(
            Fig8Row(
                benchmark=record.benchmark,
                key_size=record.key_size,
                accuracy=record.metrics.accuracy,
                n_x=record.metrics.n_x,
                hamming_distance=hd,
            )
        )
    return rows


def format_fig8(rows: list[Fig8Row]) -> str:
    lines = [
        "Fig. 8 — HD between original and MuxLink-recovered designs "
        "(paper avg: 3.39%)",
        f"{'benchmark':<10}{'K':>5}{'AC':>8}{'X':>5}{'HD%':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r.benchmark:<10}{r.key_size:>5}{r.accuracy:>8.3f}"
            f"{r.n_x:>5}{100 * r.hamming_distance:>8.2f}"
        )
    if rows:
        avg = sum(r.hamming_distance for r in rows) / len(rows)
        lines.append(f"{'average':<10}{'':>5}{'':>8}{'':>5}{100 * avg:>8.2f}")
    return "\n".join(lines)
