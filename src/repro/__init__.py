"""MuxLink reproduction — GNN link-prediction attack on MUX-based locking.

Reproduces Alrahis et al., "MuxLink: Circumventing Learning-Resilient
MUX-Locking Using Graph Neural Network-based Link Prediction" (DATE 2022).

Quickstart::

    from repro import load_benchmark, lock_dmux, run_muxlink, score_key

    base = load_benchmark("c1355", scale=0.3)
    locked = lock_dmux(base, key_size=32, seed=1)
    result = run_muxlink(locked.circuit)
    print(score_key(result.predicted_key, locked.key).kpa)

.. note:: **Import side effect — BLAS thread pin.**  ``import repro``
   caps the process-wide OpenBLAS pool to **one thread**.  The pool
   size changes floating-point summation order, and every repro
   backend is held to a bit-identity contract, so the pin is the
   prerequisite for reproducible numbers (measured zero cost on these
   workloads).  If you embed repro in a larger application whose other
   BLAS workloads need parallelism, set ``REPRO_BLAS_THREADS=N``
   before importing (``0`` leaves BLAS untouched).  See README
   "BLAS threads and determinism".
"""

from repro.benchgen import (
    benchmark_names,
    load_benchmark,
    load_c17,
    random_netlist,
)
from repro.core import (
    KeyMetrics,
    MuxLinkConfig,
    MuxLinkResult,
    aggregate_metrics,
    hamming_with_x,
    recover_design,
    rescore_key,
    run_muxlink,
    score_key,
)
from repro.linkpred import TrainConfig, Trainer
from repro.locking import (
    LockedCircuit,
    apply_key,
    lock_dmux,
    lock_naive_mux,
    lock_symmetric,
    lock_xor,
)
from repro.netlist import Circuit, Gate, GateType, load_bench, parse_bench, write_bench
from repro.sim import hamming_distance
from repro.store import ArtifactStore, resolve_store

# OpenBLAS splits reductions across its thread pool, so the *thread
# count* changes floating-point summation order — the same attack on a
# 4-core and a 24-core host (or a capped bus worker vs an uncapped
# coordinator) would differ in the last ulp and break the bit-identity
# contract every backend is held to.  Pin the pool to one thread at
# import: measured zero cost on these workloads (BENCH_training.json
# ``bench_bus``), and REPRO_BLAS_THREADS overrides for users who want
# BLAS parallelism more than reproducibility.
from repro.bus.protocol import BLAS_THREADS_ENV as _BLAS_THREADS_ENV
from repro.bus.threads import limit_blas_threads as _limit_blas_threads

import os as _os

_raw = _os.environ.get(_BLAS_THREADS_ENV, "").strip()
_limit_blas_threads(int(_raw) if _raw else 1)
del _raw

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "parse_bench",
    "load_bench",
    "write_bench",
    "load_benchmark",
    "load_c17",
    "random_netlist",
    "benchmark_names",
    "LockedCircuit",
    "lock_dmux",
    "lock_symmetric",
    "lock_naive_mux",
    "lock_xor",
    "apply_key",
    "MuxLinkConfig",
    "MuxLinkResult",
    "TrainConfig",
    "Trainer",
    "run_muxlink",
    "rescore_key",
    "KeyMetrics",
    "score_key",
    "aggregate_metrics",
    "recover_design",
    "hamming_with_x",
    "hamming_distance",
    "ArtifactStore",
    "resolve_store",
    "__version__",
]
