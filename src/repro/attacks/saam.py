"""SAAM — structural analysis attack on MUX-based locking.

For each key bit, hard-code both values and re-synthesize.  If one value
leaves part of the design dangling (circuit reduction), that value is wrong:
the locking MUX disconnected a true logic cone.  Naive MUX locking falls to
this immediately; D-MUX and symmetric locking are immune by construction
(paper Sec. I-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError
from repro.locking.keys import key_input_index, key_inputs_of
from repro.netlist import Circuit
from repro.opt import propagate_constants, remove_dead_logic

__all__ = ["saam_attack", "SaamReport"]


@dataclass(frozen=True)
class SaamReport:
    """Outcome of a SAAM run.

    Attributes:
        predicted_key: per-bit guesses, ``x`` where no reduction was seen.
        reductions: ``(bit, value) → number of gates removed`` when that
            value is hard-coded.
    """

    predicted_key: str
    reductions: dict[tuple[int, int], int]


def saam_attack(circuit: Circuit) -> SaamReport:
    """Run SAAM on a locked netlist.

    Args:
        circuit: the locked design (key inputs follow the ``keyinput<i>``
            convention).

    Returns:
        A :class:`SaamReport`; a key bit is decided only when exactly one
        of its two values causes circuit reduction.
    """
    key_nets = key_inputs_of(circuit)
    if not key_nets:
        raise AttackError("no key inputs found; is this netlist locked?")
    n_bits = max(key_input_index(k) for k in key_nets) + 1

    reductions: dict[tuple[int, int], int] = {}
    guesses: dict[int, str] = {}
    for key_net in key_nets:
        bit = key_input_index(key_net)
        removed_by_value: dict[int, int] = {}
        for value in (0, 1):
            simplified = propagate_constants(circuit, {key_net: value})
            _, removed = remove_dead_logic(simplified)
            removed_by_value[value] = removed
            reductions[(bit, value)] = removed
        if removed_by_value[0] > 0 and removed_by_value[1] == 0:
            guesses[bit] = "1"  # value 0 provably wrong
        elif removed_by_value[1] > 0 and removed_by_value[0] == 0:
            guesses[bit] = "0"
        else:
            guesses[bit] = "x"

    predicted = "".join(guesses.get(i, "x") for i in range(n_bits))
    return SaamReport(predicted_key=predicted, reductions=reductions)
