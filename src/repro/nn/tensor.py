"""Reverse-mode automatic differentiation over numpy arrays.

The offline environment has no PyTorch, so this module provides the tensor
runtime the DGCNN is built on: a :class:`Tensor` records the operations that
produced it and :meth:`Tensor.backward` walks the tape in reverse
topological order, accumulating gradients.

Only the operations the DGCNN needs are implemented, each with an exact
(non-approximated) gradient.

Dtype policy
------------
The runtime computes in **float32** by default — half the memory traffic of
float64 and measurably faster on every dense kernel the DGCNN runs.  The
escape hatch back to float64 (for gradient checks, which need the extra
precision against central differences) is threefold:

* the ``REPRO_DTYPE`` environment variable (``float32`` / ``float64``),
  read once at import,
* :func:`set_default_dtype` to switch the process at runtime,
* :func:`dtype_scope` to switch temporarily (used by the test fixtures).

Every :class:`Tensor` is created in the active default dtype, so leaves
(parameters, batch features) fix the precision of the whole tape.

Inference can additionally run under :func:`no_grad`, which stops the tape
from being recorded at all — evaluation and scoring allocate no backward
closures and keep no intermediate arrays alive.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp

__all__ = [
    "Tensor",
    "Workspace",
    "spmm",
    "concat",
    "relu",
    "tanh",
    "sigmoid",
    "default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "no_grad",
    "is_grad_enabled",
]

_DTYPES = {"float32": np.float32, "float64": np.float64}

_env_dtype = os.environ.get("REPRO_DTYPE", "float32").lower()
if _env_dtype not in _DTYPES:
    raise ValueError(
        f"unsupported REPRO_DTYPE {_env_dtype!r}; choose float32 or float64"
    )
_default_dtype: np.dtype = np.dtype(_DTYPES[_env_dtype])

_grad_enabled: bool = True


def default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float32 unless overridden)."""
    return _default_dtype


def set_default_dtype(dtype) -> None:
    """Switch the runtime dtype (``np.float32`` / ``np.float64``)."""
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported runtime dtype {dtype!r}")
    _default_dtype = resolved


@contextmanager
def dtype_scope(dtype) -> Iterator[None]:
    """Temporarily switch the runtime dtype (restores on exit)."""
    previous = _default_dtype
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def is_grad_enabled() -> bool:
    return _grad_enabled


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable tape recording: ops return plain value tensors."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


class Workspace:
    """A small pool of reusable scratch arrays keyed by ``(shape, dtype)``.

    Layers use this to recycle their largest forward buffers (e.g. the
    im2col matrix of :func:`repro.nn.functional.conv1d`) across training
    steps instead of reallocating them every batch.  A buffer acquired
    while the tape is recording is handed back by the op's backward
    closure; when recording is off it is returned as soon as the forward
    value is computed.

    Buffers whose leading dimension varies batch to batch (anything sized
    by the stacked node count) go through :meth:`resident` instead: one
    named slot per trailing shape that grows monotonically and is
    recycled every step, so a shuffling training loop — where the exact
    node count never repeats — still allocates nothing in steady state.
    """

    __slots__ = ("_pool", "_resident")

    def __init__(self) -> None:
        self._pool: dict[tuple[tuple[int, ...], np.dtype], list[np.ndarray]] = {}
        self._resident: dict[tuple, np.ndarray] = {}

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialised array of the requested shape (pooled if possible)."""
        key = (tuple(shape), np.dtype(dtype))
        bucket = self._pool.get(key)
        if bucket:
            return bucket.pop()
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        """Return *array* to the pool for a later :meth:`acquire`."""
        key = (array.shape, array.dtype)
        self._pool.setdefault(key, []).append(array)

    def resident(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A persistent named scratch slot, grown monotonically.

        Returns a C-contiguous uninitialised view of the requested shape
        over a slot keyed by ``(tag, shape[1:], dtype)``.  The same slot is
        handed out on every call, so the caller must be done with the
        previous lease before asking again — the pattern of a sequential
        train loop, where step ``t``'s tape is consumed before step
        ``t+1``'s forward begins.
        """
        key = (tag, tuple(shape[1:]), np.dtype(dtype))
        slot = self._resident.get(key)
        if slot is None or slot.shape[0] < shape[0]:
            # Grow geometrically: shuffled batches wiggle in node count,
            # and doubling keeps reallocation from recurring every epoch.
            rows = shape[0] if slot is None else max(shape[0], 2 * slot.shape[0])
            slot = np.empty((rows,) + tuple(shape[1:]), dtype=dtype)
            self._resident[key] = slot
        return slot[: shape[0]]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autograd tape.

    Args:
        data: array-like payload (stored in the runtime default dtype
            unless an explicit ``dtype`` is given).
        requires_grad: participate in gradient computation.
        dtype: override the runtime default dtype for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data = np.asarray(data, dtype=dtype or _default_dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------- plumbing
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(
            data,
            requires_grad=_grad_enabled
            and any(p.requires_grad for p in parents),
        )
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            # First contribution: materialize a private copy (one pass)
            # instead of zeros + add (two passes).
            if np.shape(grad) == self.data.shape:
                self.grad = np.array(grad, dtype=self.data.dtype)
                return
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Like :meth:`_accumulate`, but *grad* ownership transfers to the
        tensor: a backward closure that freshly allocated *grad* hands it
        over without the defensive copy.  The caller must not reuse it."""
        if not self.requires_grad:
            return
        if (
            self.grad is None
            and grad.shape == self.data.shape
            and grad.dtype == self.data.dtype
        ):
            self.grad = grad
        else:
            self._accumulate(grad)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self)=1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        # Reverse topological order over the tape.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen or not node.requires_grad:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))

        # Seed, then walk consumers-before-producers; every closure
        # accumulates into its parents' ``.grad`` via ``_accumulate``, so by
        # the time a node is visited its gradient is complete.
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def item(self) -> float:
        return float(self.data)

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make(data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            # Both products are freshly allocated, so ownership transfers
            # (no defensive copy); skip the GEMM entirely for constants.
            if self.requires_grad:
                self._accumulate_owned(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate_owned(self.data.T @ grad)

        return self._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------ reshaping
    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)
        old_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(old_shape))

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def gather_rows(
        self,
        indices: np.ndarray,
        unique: bool = False,
        out: np.ndarray | None = None,
    ) -> "Tensor":
        """Select rows; an index of ``-1`` yields a zero row (padding).

        Gradient scatters back additively into the selected rows.  Pass
        ``unique=True`` when the caller guarantees no index repeats (e.g.
        SortPooling, where every node row is taken at most once): the
        scatter then becomes a direct assignment instead of ``np.add.at``.
        An optional *out* destination (possibly a strided column slice of
        a shared buffer) receives the gather in place and becomes the
        result tensor's data.
        """
        indices = np.asarray(indices, dtype=np.int64)
        valid = indices >= 0
        if out is None:
            padded = np.zeros(
                (indices.shape[0],) + self.shape[1:], dtype=self.data.dtype
            )
        else:
            padded = out
            if not valid.all():
                padded[~valid] = 0.0
        padded[valid] = self.data[indices[valid]]

        def backward(grad: np.ndarray) -> None:
            out = np.zeros_like(self.data)
            if unique:
                out[indices[valid]] = grad[valid]
            else:
                np.add.at(out, indices[valid], grad[valid])
            self._accumulate_owned(out)

        return self._make(padded, (self,), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ---------------------------------------------------------- activations
    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * (1.0 - data**2))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * (self.data > 0))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)


def spmm(matrix: sp.spmatrix, tensor: Tensor) -> Tensor:
    """Sparse @ dense with gradient through the dense side.

    The sparse *matrix* is a constant (the normalized adjacency); only the
    node-feature tensor receives a gradient: ``d(A @ H)/dH = A.T @ grad``.
    """
    matrix = matrix.tocsr()
    data = matrix @ tensor.data

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate_owned(matrix.T @ grad)

    return Tensor._make(data, (tensor,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along *axis*; gradient splits back to the inputs."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def relu(t: Tensor) -> Tensor:
    return t.relu()


def tanh(t: Tensor) -> Tensor:
    return t.tanh()


def sigmoid(t: Tensor) -> Tensor:
    return t.sigmoid()
