"""Netlist substrate: gates, circuits, BENCH I/O and structural analysis."""

from repro.netlist.analysis import (
    area_estimate,
    fanout_profile,
    gate_level_map,
    lockable_nets,
    multi_output_nets,
    single_output_nets,
    switching_estimate,
)
from repro.netlist.bench import dump_bench, load_bench, parse_bench, write_bench
from repro.netlist.circuit import Circuit, CircuitStats, Gate
from repro.netlist.gates import (
    FEATURE_GATE_ORDER,
    NUM_GATE_FEATURES,
    GateType,
    evaluate_gate,
    gate_feature_index,
)

__all__ = [
    "Circuit",
    "CircuitStats",
    "Gate",
    "GateType",
    "FEATURE_GATE_ORDER",
    "NUM_GATE_FEATURES",
    "evaluate_gate",
    "gate_feature_index",
    "parse_bench",
    "load_bench",
    "write_bench",
    "dump_bench",
    "multi_output_nets",
    "single_output_nets",
    "lockable_nets",
    "gate_level_map",
    "area_estimate",
    "switching_estimate",
    "fanout_profile",
]
