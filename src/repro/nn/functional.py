"""Neural-net operations beyond basic tensor arithmetic.

These are the pieces the DGCNN head needs: 1-D convolution, max-pooling,
dropout and the softmax cross-entropy loss.  Each is an autograd node with
an exact gradient.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "conv1d",
    "max_pool1d",
    "dropout",
    "log_softmax",
    "softmax_cross_entropy",
    "softmax",
]


def conv1d(x: Tensor, weight: Tensor, bias: Tensor, stride: int = 1) -> Tensor:
    """1-D convolution.

    Args:
        x: input of shape ``(batch, c_in, length)``.
        weight: kernel of shape ``(c_out, c_in, k)``.
        bias: per-channel bias of shape ``(c_out,)``.
        stride: kernel stride.

    Returns:
        Tensor of shape ``(batch, c_out, (length - k) // stride + 1)``.
    """
    batch, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    t_out = (length - k) // stride + 1
    if t_out < 1:
        raise ValueError(
            f"kernel {k} with stride {stride} does not fit length {length}"
        )

    # im2col: (batch, c_in * k, t_out)
    cols = np.empty((batch, c_in * k, t_out), dtype=np.float64)
    for tap in range(k):
        segment = x.data[:, :, tap : tap + stride * t_out : stride]
        cols[:, tap * c_in : (tap + 1) * c_in, :] = segment
    w2 = weight.data.transpose(0, 2, 1).reshape(c_out, k * c_in)
    out = np.einsum("of,bft->bot", w2, cols) + bias.data[None, :, None]

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, c_out, t_out)
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw2 = np.einsum("bot,bft->of", grad, cols)
            weight._accumulate(
                gw2.reshape(c_out, k, c_in).transpose(0, 2, 1)
            )
        if x.requires_grad:
            gcols = np.einsum("of,bot->bft", w2, grad)
            gx = np.zeros_like(x.data)
            for tap in range(k):
                seg = gcols[:, tap * c_in : (tap + 1) * c_in, :]
                gx[:, :, tap : tap + stride * t_out : stride] += seg
            x._accumulate(gx)

    return Tensor._make(out, (x, weight, bias), backward)


def max_pool1d(x: Tensor, size: int, stride: int | None = None) -> Tensor:
    """Max pooling over the last axis of a ``(batch, c, length)`` tensor."""
    stride = stride or size
    batch, channels, length = x.shape
    t_out = (length - size) // stride + 1
    if t_out < 1:
        raise ValueError(f"pool size {size} does not fit length {length}")

    windows = np.empty((batch, channels, t_out, size), dtype=np.float64)
    for tap in range(size):
        windows[:, :, :, tap] = x.data[:, :, tap : tap + stride * t_out : stride]
    arg = windows.argmax(axis=3)
    out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        b_idx, c_idx, t_idx = np.meshgrid(
            np.arange(batch), np.arange(channels), np.arange(t_out),
            indexing="ij",
        )
        source = t_idx * stride + arg
        np.add.at(gx, (b_idx, c_idx, source), grad)
        x._accumulate(gx)

    return Tensor._make(out, (x,), backward)


def dropout(
    x: Tensor, rate: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def _log_softmax_data(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Numerically stable log-softmax over the last axis."""
    data = _log_softmax_data(x.data)
    probs = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - probs * grad.sum(axis=-1, keepdims=True))

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Softmax over the last axis (via exp of log-softmax for stability)."""
    return log_softmax(x).exp()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(batch, classes)`` logits and int labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected (batch, classes) logits and (batch,) labels, got "
            f"{logits.shape} and {labels.shape}"
        )
    log_probs = _log_softmax_data(logits.data)
    batch = logits.shape[0]
    loss = -log_probs[np.arange(batch), labels].mean()
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(batch), labels] -= 1.0
        logits._accumulate(grad * g / batch)

    return Tensor._make(np.asarray(loss), (logits,), backward)
