"""Seeded random netlist generators.

The original ISCAS-85 / ITC-99 BENCH files are not redistributable in this
offline environment, so the suite in :mod:`repro.benchgen.suites` is built on
the deterministic generator below.  The generator produces random-logic DAGs
with controllable size and fan-out statistics — the same family of circuits
as the *random netlist test* (RNT) that the D-MUX paper itself uses to judge
learning resilience, which is why it exercises the identical attack surface.

Three properties matter for faithfulness to the reproduced experiments:

* **no dangling nets** — every generated net is either loaded or a primary
  output, so the no-circuit-reduction guarantee of D-MUX (and the SAAM
  reduction signal) is meaningful;
* **realistic fan-out** — a tunable fraction of nets drive several loads,
  giving the locking strategies S1–S3 their required multi-output nodes;
* **local structure** — fan-ins are biased towards recently created nets so
  that h-hop neighbourhoods look like logic cones, not random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist import Circuit, Gate, GateType

__all__ = ["GeneratorConfig", "random_circuit", "and_netlist", "random_netlist"]

#: Default gate mix for random logic (loosely follows ISCAS-85 profiles:
#: NAND/NOR-heavy with a sprinkle of XOR and inverters).
_DEFAULT_GATE_WEIGHTS: dict[GateType, float] = {
    GateType.NAND: 0.28,
    GateType.NOR: 0.14,
    GateType.AND: 0.16,
    GateType.OR: 0.12,
    GateType.XOR: 0.07,
    GateType.XNOR: 0.05,
    GateType.NOT: 0.13,
    GateType.BUF: 0.05,
}


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the random-circuit generator.

    Attributes:
        n_inputs: number of primary inputs.
        n_outputs: number of primary outputs requested (the generator may add
            a few more to absorb otherwise-dangling nets).
        n_gates: number of gates.
        gate_weights: sampling distribution over gate types.
        locality_window: fan-ins are drawn from the most recent
            ``locality_window`` nets with probability ``locality_bias``.
        locality_bias: see above; the remainder is drawn uniformly.
        reuse_bias: probability of steering a fan-in pick towards a net that
            is not yet loaded (keeps the dangling set small).
        reconvergence_bias: probability that a secondary fan-in is drawn
            from the *loads* of the first fan-in, creating the reconvergent
            (triangle-closing) structure real logic cones exhibit.  This is
            the property link prediction feeds on: removing a true wire
            leaves its endpoints connected through short alternative paths.
    """

    n_inputs: int
    n_outputs: int
    n_gates: int
    gate_weights: dict[GateType, float] = field(
        default_factory=lambda: dict(_DEFAULT_GATE_WEIGHTS)
    )
    locality_window: int = 12
    locality_bias: float = 0.95
    reuse_bias: float = 0.35
    reconvergence_bias: float = 0.6

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_gates < 1 or self.n_outputs < 1:
            raise ValueError("n_inputs, n_outputs, n_gates must be positive")


def random_circuit(name: str, config: GeneratorConfig, seed: int) -> Circuit:
    """Generate a deterministic random netlist.

    The same ``(config, seed)`` pair always yields the identical circuit,
    which is what makes the stand-in benchmark suite reproducible.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(name, inputs=[f"I{i}" for i in range(config.n_inputs)])

    gate_types = list(config.gate_weights.keys())
    weights = np.array([config.gate_weights[g] for g in gate_types], dtype=float)
    weights /= weights.sum()

    nets: list[str] = list(circuit.inputs)
    # Insertion-ordered stand-in for a set: plain set iteration depends on
    # the per-process hash seed and would break cross-process determinism.
    unloaded: dict[str, None] = dict.fromkeys(nets)

    def pick_input(exclude: set[str]) -> str:
        # Prefer an unloaded net to keep the dangling set small.
        if unloaded and rng.random() < config.reuse_bias:
            pool = [n for n in unloaded if n not in exclude]
            if pool:
                return pool[int(rng.integers(len(pool)))]
        if rng.random() < config.locality_bias and len(nets) > config.locality_window:
            window = nets[-config.locality_window :]
        else:
            window = nets
        pool = [n for n in window if n not in exclude]
        if not pool:
            pool = [n for n in nets if n not in exclude] or nets
        return pool[int(rng.integers(len(pool)))]

    # Structural signatures already used: duplicate (type, inputs) gates
    # compute identical functions, which would make locking decoys
    # functionally interchangeable with true wires.
    signatures: set[tuple] = set()

    for idx in range(config.n_gates):
        for _attempt in range(6):
            gate_type = gate_types[int(rng.choice(len(gate_types), p=weights))]
            if gate_type in (GateType.NOT, GateType.BUF):
                arity = 1
            else:
                arity = 2 if rng.random() < 0.85 else 3
            chosen: list[str] = [pick_input(exclude=set())]
            for _ in range(arity - 1):
                net = None
                if rng.random() < config.reconvergence_bias:
                    # Triangle closure: feed this gate from a load of its
                    # first input, so the new wires have short alternative
                    # paths.
                    loads = [
                        g
                        for g in circuit.fanout(chosen[0])
                        if g not in chosen
                    ]
                    if loads:
                        net = loads[int(rng.integers(len(loads)))]
                if net is None:
                    net = pick_input(exclude=set(chosen))
                chosen.append(net)
            signature = (gate_type, tuple(sorted(chosen)))
            if signature not in signatures:
                break
        signatures.add(signature)
        gate_name = f"N{idx}"
        circuit.add_gate(Gate(gate_name, gate_type, tuple(chosen)))
        for net in chosen:
            unloaded.pop(net, None)
        nets.append(gate_name)
        unloaded[gate_name] = None

    _absorb_unused_inputs(circuit, rng)

    # Primary outputs: absorb every dangling gate net, then top up with
    # random distinct gate nets until the requested count is reached.
    dangling = [
        n
        for n in circuit.gate_names
        if circuit.fanout_size(n) == 0
    ]
    outputs = list(dangling)
    remaining = [n for n in circuit.gate_names if n not in set(outputs)]
    rng.shuffle(remaining)
    for net in remaining:
        if len(outputs) >= config.n_outputs:
            break
        outputs.append(net)
    for po in outputs:
        circuit.add_output(po)
    circuit.validate()
    return circuit


def _absorb_unused_inputs(circuit: Circuit, rng: np.random.Generator) -> None:
    """Guarantee every primary input drives at least one gate.

    Unused inputs are wired in by stealing one load from a net that has
    several (so the donor never becomes dangling).  When no such donor
    exists the input is absorbed by a fresh 2-input gate, which the caller
    then exposes as a primary output.
    """
    for pi in circuit.inputs:
        if circuit.fanout_size(pi) > 0:
            continue
        donors = [
            (gate.name, net)
            for gate in circuit.gates
            for net in gate.inputs
            if net != pi and circuit.fanout_size(net) >= 2
            and gate.gate_type is not GateType.MUX
        ]
        if donors:
            gate_name, net = donors[int(rng.integers(len(donors)))]
            circuit.rewire_input(gate_name, net, pi)
        else:
            other = circuit.nets[int(rng.integers(len(circuit.nets)))]
            circuit.add_gate(
                Gate(circuit.fresh_name(f"ABS_{pi}"), GateType.OR, (pi, other))
            )


def random_netlist(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_gates: int,
    seed: int = 0,
) -> Circuit:
    """RNT-style circuit: randomly selected, well-distributed gate types."""
    config = GeneratorConfig(n_inputs=n_inputs, n_outputs=n_outputs, n_gates=n_gates)
    return random_circuit(name, config, seed)


def and_netlist(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_gates: int,
    seed: int = 0,
) -> Circuit:
    """ANT-style circuit: synthesized from a single gate type (AND).

    Used by the *AND netlist test* of the D-MUX paper — a locking scheme that
    leaks key information on such single-type netlists is conclusively
    vulnerable.
    """
    config = GeneratorConfig(
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_gates=n_gates,
        gate_weights={GateType.AND: 1.0},
    )
    return random_circuit(name, config, seed)
