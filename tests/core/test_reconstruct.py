"""Tests for design recovery and HD-with-X evaluation."""

import pytest

from repro.benchgen import random_netlist
from repro.core import hamming_with_x, recover_design
from repro.locking import lock_dmux
from repro.sim import hamming_distance


def setup(seed=0, key_size=8):
    base = random_netlist("base", 10, 5, 100, seed=seed)
    locked = lock_dmux(base, key_size=key_size, seed=seed)
    return base, locked


def test_correct_key_gives_zero_hd():
    base, locked = setup()
    assert hamming_with_x(base, locked.circuit, locked.key, n_patterns=2048) == 0.0


def test_recover_design_matches_apply_key():
    base, locked = setup(seed=1)
    recovered = recover_design(locked.circuit, locked.key)
    assert hamming_distance(base, recovered, n_patterns=1024) == 0.0


def test_wrong_key_gives_positive_hd():
    base, locked = setup(seed=2)
    wrong = "".join("1" if c == "0" else "0" for c in locked.key)
    assert hamming_with_x(base, locked.circuit, wrong, n_patterns=2048) > 0.0


def test_x_bits_average_over_assignments():
    base, locked = setup(seed=3, key_size=6)
    # Replace one correct bit with x: HD averages the correct (0) and the
    # wrong (> 0) assignment, so it must lie strictly between.
    key_with_x = "x" + locked.key[1:]
    hd_x = hamming_with_x(base, locked.circuit, key_with_x, n_patterns=2048)
    wrong0 = (
        ("1" if locked.key[0] == "0" else "0") + locked.key[1:]
    )
    hd_wrong = hamming_with_x(base, locked.circuit, wrong0, n_patterns=2048)
    assert hd_x == pytest.approx(hd_wrong / 2, rel=1e-6)


def test_many_x_bits_sampled_not_enumerated():
    base, locked = setup(seed=4, key_size=10)
    all_x = "x" * 10
    hd = hamming_with_x(
        base, locked.circuit, all_x, n_patterns=512, max_assignments=8
    )
    assert 0.0 <= hd <= 1.0


def test_x_enumeration_is_exhaustive_when_small():
    base, locked = setup(seed=5, key_size=4)
    # 2 x bits -> 4 assignments, one of which is the correct key.
    key = locked.key[:2] + "xx"
    hd = hamming_with_x(base, locked.circuit, key, n_patterns=1024)
    # Average includes the perfect assignment, so HD < max single-wrong HD.
    assert hd >= 0.0
