"""Quickstart: lock a benchmark with D-MUX, break it with MuxLink.

Runs in about a minute on a laptop::

    python examples/quickstart.py
"""

from repro import (
    MuxLinkConfig,
    TrainConfig,
    hamming_with_x,
    load_benchmark,
    lock_dmux,
    run_muxlink,
    score_key,
    write_bench,
)


def main() -> None:
    # 1. A design to protect (stand-in for the ISCAS-85 c1355 benchmark).
    base = load_benchmark("c1355", scale=0.3)
    print(f"original design: {base!r}")

    # 2. The defender locks it with learning-resilient D-MUX.
    locked = lock_dmux(base, key_size=16, seed=7)
    print(f"locked with {locked.scheme}: key = {locked.key}")
    print(f"localities: {[loc.strategy.value for loc in locked.localities]}")

    # 3. The attacker in the fab sees only the locked netlist ...
    bench_text = write_bench(locked.circuit)
    print(f"locked BENCH netlist: {len(bench_text.splitlines())} lines")

    # 4. ... and runs MuxLink on it (oracle-less!).  Enclosing subgraphs
    # are extracted through the batched CSR pipeline; set ``n_workers=4``
    # to stream extraction through a multiprocessing pool on big designs
    # (the dataset is bit-identical for any worker count).
    #
    # Training runs on the cached-batch engine (repro.linkpred.Trainer):
    # every normalized operator and feature block is built once per split,
    # epochs then reshuffle and stitch batches from the cache.  The numeric
    # runtime is float32 by default — export REPRO_DTYPE=float64 (or call
    # repro.nn.set_default_dtype) for the well-conditioned float64 mode
    # used by gradient checks.  The TrainConfig below opts into early
    # stopping; ``checkpoint_path=...`` / ``resume=True`` would persist
    # the full training state (weights + Adam moments + RNG streams) and
    # continue an interrupted run bit-identically.
    config = MuxLinkConfig(
        h=3,
        threshold=0.01,
        train=TrainConfig(
            epochs=25,
            learning_rate=1e-3,
            seed=0,
            patience=10,       # stop early if validation stalls
            log_every=5,       # progress line every 5 epochs
        ),
        n_workers=0,
    )
    result = run_muxlink(locked.circuit, config)
    best = result.history.best_epoch
    print(f"trained {result.history.epochs_run} epochs (best: {best})")
    print(f"predicted key: {result.predicted_key}")
    print(f"actual key:    {locked.key}")

    # 5. Score the attack with the paper's metrics.
    metrics = score_key(result.predicted_key, locked.key)
    print(
        f"AC={metrics.accuracy:.1%}  PC={metrics.precision:.1%}  "
        f"KPA={metrics.kpa:.1%}  undecided={metrics.n_x}"
    )

    # 6. How close is the recovered design functionally?
    hd = hamming_with_x(
        base, locked.circuit, result.predicted_key, n_patterns=10_000
    )
    print(f"Hamming distance of recovered design: {hd:.2%} (attacker wants 0%)")


if __name__ == "__main__":
    main()
