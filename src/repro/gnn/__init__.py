"""DGCNN graph classifier and graph batching."""

from repro.gnn.batching import (
    BatchAssembler,
    BatchCache,
    GraphBatch,
    GraphExample,
    build_batch,
    normalized_adjacency,
)
from repro.gnn.dgcnn import DGCNN, MIN_SORTPOOL_K, choose_sortpool_k

__all__ = [
    "GraphExample",
    "GraphBatch",
    "BatchCache",
    "BatchAssembler",
    "build_batch",
    "normalized_adjacency",
    "DGCNN",
    "choose_sortpool_k",
    "MIN_SORTPOOL_K",
]
