"""Block-sparse spmm engine for the DGCNN's normalized graph operators.

The training/inference hot path multiplies one block-diagonal
``D^-1 (A + I)`` operator per batch against dense node matrices, four
layers forward and four transposed products backward, every step.  This
module owns that product.  It provides

* :class:`SparseOp` — the operator wrapper the batcher hands to the
  network.  It caches every derived form (CSR arrays, the batched-ELL
  layout, the transposed ELL layout) so format conversion happens **once
  per batch**, never once per layer per step, and its
  :meth:`~SparseOp.matmul` / :meth:`~SparseOp.matmul_t` kernels accept
  preallocated outputs so steady-state training allocates nothing.
* :class:`BlockEll` — a batched-ELL layout: the many small,
  similar-degree per-example blocks of a batch operator are packed into
  two padded row-major ``(n_rows, width)`` arrays (column indices and
  values, padded with index 0 / value 0).  The regular layout is what a
  JIT row-parallel kernel wants; it is also how the per-example blocks of
  a :class:`~repro.gnn.BatchAssembler` stitch into a shuffled batch by
  pure array copies.
* a **kernel registry** selected by ``REPRO_SPMM`` (or
  :func:`set_spmm_backend` / :func:`spmm_scope`):

  - ``scipy`` (default) — scipy's C CSR kernel, invoked directly through
    ``scipy.sparse._sparsetools`` with a preallocated output, skipping the
    ``__matmul__`` dispatch/validation layer.  The transposed product runs
    the CSC kernel **on the same CSR arrays** (CSR of ``A`` is CSC of
    ``A^T``), so no transpose is ever materialized.
  - ``ell`` — the batched-ELL layout with a vectorized numpy core.  Pure
    numpy, no private-API use; slower than the C kernel at the paper's
    feature widths, it exists as the portable reference and as the layout
    the JIT path consumes.
  - ``numba`` — the batched-ELL layout compiled with numba (row-parallel
    ``prange``).  Falls back to ``ell`` with a warning when numba is not
    installed.

Every kernel accumulates each output row in the operator's storage order,
so all backends produce **bit-identical** results in float64 (and, on
every platform tested, in float32 as well); the parity suite in
``tests/nn/test_sparse.py`` enforces this.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator

import numpy as np
import scipy.sparse as sp

try:  # scipy's C kernels; private but stable since 2008.  Guarded anyway.
    from scipy.sparse import _sparsetools

    _HAVE_SPARSETOOLS = True
except ImportError:  # pragma: no cover - scipy always ships it today
    _sparsetools = None
    _HAVE_SPARSETOOLS = False

__all__ = [
    "BlockEll",
    "SparseOp",
    "as_sparse_op",
    "csr_from_parts",
    "spmm_backend",
    "set_spmm_backend",
    "spmm_scope",
    "numba_available",
]

_BACKENDS = ("scipy", "ell", "numba")


def numba_available() -> bool:
    """Whether the numba JIT backend can actually run."""
    try:
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


def _resolve_backend(name: str) -> str:
    name = name.lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unsupported spmm backend {name!r}; choose from {_BACKENDS}"
        )
    if name == "numba" and not numba_available():
        warnings.warn(
            "REPRO_SPMM=numba requested but numba is not installed; "
            "falling back to the numpy batched-ELL backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return "ell"
    return name


_active_backend: str = _resolve_backend(os.environ.get("REPRO_SPMM", "scipy"))


def spmm_backend() -> str:
    """The active spmm kernel family (``scipy`` / ``ell`` / ``numba``)."""
    return _active_backend


def set_spmm_backend(name: str) -> None:
    """Switch the spmm kernel family at runtime (see module docstring)."""
    global _active_backend
    _active_backend = _resolve_backend(name)


@contextmanager
def spmm_scope(name: str) -> Iterator[None]:
    """Temporarily switch the spmm backend (restores on exit)."""
    previous = _active_backend
    set_spmm_backend(name)
    try:
        yield
    finally:
        set_spmm_backend(previous)


def csr_from_parts(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """A ``csr_matrix`` over *data*/*indices*/*indptr* without validation.

    ``csr_matrix.__init__`` runs ``check_format`` plus index-dtype scans —
    ~50x the cost of the construction itself — on arrays the batcher just
    built and knows are canonical.  Callers must guarantee CSR invariants
    (monotone indptr, in-range indices, matching lengths).
    """
    matrix = sp.csr_matrix.__new__(sp.csr_matrix)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    matrix._shape = shape
    return matrix


# ---------------------------------------------------------------- ELL layout
class BlockEll:
    """Padded row-major ELL storage of a sparse operator.

    ``indices``/``values`` are ``(n_rows, width)`` with ``width`` the
    maximum row population; row entries keep CSR order and the tail is
    padded with index 0 / value 0 (a zero-valued tap against any valid
    row contributes exactly ``+0.0``, so padding never changes results).
    """

    __slots__ = ("indices", "values", "shape")

    def __init__(
        self, indices: np.ndarray, values: np.ndarray, shape: tuple[int, int]
    ):
        self.indices = indices
        self.values = values
        self.shape = shape

    @property
    def width(self) -> int:
        return self.indices.shape[1]

    @classmethod
    def from_csr(cls, matrix: sp.csr_matrix) -> "BlockEll":
        """Pack a CSR matrix into ELL form (one vectorized scatter)."""
        indptr = matrix.indptr
        counts = np.diff(indptr)
        n_rows = matrix.shape[0]
        width = int(counts.max()) if counts.size else 0
        if width == 0 or matrix.nnz == 0:
            empty = np.zeros((n_rows, 0))
            return cls(
                empty.astype(np.int64),
                empty.astype(matrix.data.dtype),
                matrix.shape,
            )
        taps = np.arange(width)
        pos = np.minimum(indptr[:-1, None] + taps[None, :], matrix.nnz - 1)
        mask = taps[None, :] < counts[:, None]
        indices = np.where(mask, matrix.indices[pos], 0).astype(np.int64)
        values = np.where(mask, matrix.data[pos], 0).astype(
            matrix.data.dtype, copy=False
        )
        return cls(indices, values, matrix.shape)

    def matmul(self, dense: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``A @ dense`` through the active ELL kernel (numpy or numba)."""
        if out is None:
            out = np.empty((self.shape[0], dense.shape[1]), dtype=dense.dtype)
        if self.width == 0:
            out[...] = 0.0
            return out
        if _active_backend == "numba":
            _numba_ell_matmul()(self.indices, self.values, dense, out)
            return out
        # Tap-by-tap accumulation reproduces the CSR kernel's per-row
        # left-to-right summation order exactly — bit-identical results in
        # every dtype.  (einsum would be marginally faster but reorders the
        # reduction for narrow operands, losing bitwise parity.)
        values = self.values
        if values.dtype != dense.dtype:
            values = values.astype(dense.dtype)
        np.multiply(dense[self.indices[:, 0]], values[:, 0, None], out=out)
        for tap in range(1, self.width):
            out += values[:, tap, None] * dense[self.indices[:, tap]]
        return out


_NUMBA_KERNEL = None


def _numba_ell_matmul():
    """Compile (once) and return the row-parallel numba ELL kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        import numba

        @numba.njit(parallel=True, fastmath=False, cache=False)
        def ell_matmul(indices, values, dense, out):  # pragma: no cover - JIT
            n_rows, width = indices.shape
            n_cols = dense.shape[1]
            for i in numba.prange(n_rows):
                for c in range(n_cols):
                    out[i, c] = 0.0
                for j in range(width):
                    v = values[i, j]
                    k = indices[i, j]
                    for c in range(n_cols):
                        out[i, c] += v * dense[k, c]

        _NUMBA_KERNEL = ell_matmul
    return _NUMBA_KERNEL


# ------------------------------------------------------------- the operator
class SparseOp:
    """A sparse operator with cached layouts and zero-overhead kernels.

    Wraps one ``D^-1 (A + I)`` (or any CSR) matrix.  All derived forms —
    the scipy matrix, the batched-ELL layout, the transposed-ELL layout —
    are built at most once and cached, so the four graph-convolution
    layers of a forward/backward pass share one conversion instead of
    re-deriving formats per call.
    """

    __slots__ = (
        "shape", "data", "indices", "indptr", "_csr", "_ell", "_ell_t",
    )

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
        csr: sp.csr_matrix | None = None,
    ):
        self.shape = shape
        self.data = data
        self.indices = indices
        self.indptr = indptr
        self._csr = csr
        self._ell: BlockEll | None = None
        self._ell_t: BlockEll | None = None

    @classmethod
    def from_csr(cls, matrix: sp.spmatrix) -> "SparseOp":
        matrix = matrix.tocsr()
        return cls(
            matrix.data, matrix.indices, matrix.indptr, matrix.shape, matrix
        )

    @classmethod
    def from_parts(
        cls,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
    ) -> "SparseOp":
        return cls(data, indices, indptr, shape)

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def csr(self) -> sp.csr_matrix:
        """The scipy view of this operator (built lazily, cached)."""
        if self._csr is None:
            self._csr = csr_from_parts(
                self.data, self.indices, self.indptr, self.shape
            )
        return self._csr

    @property
    def ell(self) -> BlockEll:
        """The batched-ELL layout (built lazily, cached)."""
        if self._ell is None:
            self._ell = BlockEll.from_csr(self.csr)
        return self._ell

    @property
    def ell_t(self) -> BlockEll:
        """ELL layout of the transposed operator (built lazily, cached)."""
        if self._ell_t is None:
            self._ell_t = BlockEll.from_csr(self.csr.T.tocsr())
        return self._ell_t

    def prepare(self, backend: str | None = None) -> "SparseOp":
        """Prebuild the layouts *backend* needs (default: the active one).

        Batch caches call this once per split so no forward pass ever pays
        a conversion.  Returns ``self`` for chaining.
        """
        backend = backend or _active_backend
        if backend in ("ell", "numba"):
            self.ell
            self.ell_t
        return self

    # ------------------------------------------------------------- kernels
    def _fast_path(self, dense: np.ndarray, out: np.ndarray | None) -> bool:
        return (
            _HAVE_SPARSETOOLS
            and dense.flags.c_contiguous
            and dense.dtype == self.data.dtype
            and (out is None or out.flags.c_contiguous)
        )

    def matmul(self, dense: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``A @ dense`` into *out* (allocated when ``None``).

        Bit-identical to ``self.csr @ dense`` under every backend.
        """
        if _active_backend != "scipy":
            return self.ell.matmul(dense, out=out)
        if not self._fast_path(dense, out):
            result = self.csr @ dense
            if out is None:
                return result
            out[...] = result
            return out
        n_rows, n_cols = self.shape
        n_vecs = dense.shape[1]
        if out is None:
            out = np.zeros((n_rows, n_vecs), dtype=dense.dtype)
        else:
            out.fill(0.0)
        # The same C kernel scipy's __matmul__ dispatches to, minus the
        # dispatch: Y += A @ X over a caller-owned Y.
        _sparsetools.csr_matvecs(
            n_rows, n_cols, n_vecs,
            self.indptr, self.indices, self.data,
            dense.reshape(-1), out.reshape(-1),
        )
        return out

    def matmul_t(self, dense: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``A.T @ dense`` into *out* — no transpose is ever materialized.

        The CSR arrays of ``A`` *are* the CSC arrays of ``A^T``, so the
        scipy backend runs the CSC kernel on the original arrays;
        bit-identical to ``self.csr.T @ dense``.
        """
        if _active_backend != "scipy":
            return self.ell_t.matmul(dense, out=out)
        if not self._fast_path(dense, out):
            result = self.csr.T @ dense
            if out is None:
                return result
            out[...] = result
            return out
        n_rows, n_cols = self.shape[1], self.shape[0]
        n_vecs = dense.shape[1]
        if out is None:
            out = np.zeros((n_rows, n_vecs), dtype=dense.dtype)
        else:
            out.fill(0.0)
        _sparsetools.csc_matvecs(
            n_rows, n_cols, n_vecs,
            self.indptr, self.indices, self.data,
            dense.reshape(-1), out.reshape(-1),
        )
        return out


def as_sparse_op(operator) -> SparseOp:
    """Coerce a scipy matrix (or pass through a :class:`SparseOp`)."""
    if isinstance(operator, SparseOp):
        return operator
    return SparseOp.from_csr(operator)
