"""Bit-parallel logic simulation and Hamming-distance evaluation."""

from repro.sim.hamming import hamming_distance, probably_equivalent
from repro.sim.simulator import (
    pack_patterns,
    random_patterns,
    simulate,
    simulate_outputs,
)

__all__ = [
    "pack_patterns",
    "random_patterns",
    "simulate",
    "simulate_outputs",
    "hamming_distance",
    "probably_equivalent",
]
