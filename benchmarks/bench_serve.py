"""Attack-as-a-service bench: pipelined serving vs per-job dispatch.

Three measurements on one 32-job small-job grid — a **lock-seed sweep**
(one smoke cell relocked under 32 seeds, the error-bar workload the
runner fans out) in the regime where PR 7 measured the per-job
SocketBus at 0.53x: sub-second jobs where dispatch overhead is a
visible wall-clock fraction.  Uniform job durations make the
comparison sharp: with identical circuits on every worker, scheduling
luck cancels and the measured gap is exactly the per-job dispatch cost
that pipelining removes (the worker's done -> lease -> reply gap,
and the coordinator's done-processing blocking the next lease):

* **serial** — ``execute_job`` in-process, the reproducible baseline;
* **socket** — :class:`~repro.bus.SocketBus` + ``WORKERS`` worker
  processes, one lease round-trip per job (the PR 7 path);
* **serve**  — an :class:`~repro.serve.AttackServer` with the same
  worker fleet connected as persistent **pipelined** connections
  (``--serve-addr``, depth 2): the next job is already buffered in each
  worker's socket when the current one finishes.

All three must be **bit-identical** (asserted, timing aside).  The bench
then measures the *warm* path — p50/p95 latency and requests/s of
repeated result fetches against the live server — and one **cold
process**: a fresh ``repro attack --serve`` CLI invocation against the
warm server, which pays interpreter + import startup for every request.
The serving layer's pitch is exactly that ratio, and the
``REPRO_BENCH_SERVE_MIN_WARM_ADVANTAGE`` gate (default 10) enforces it.

``REPRO_BENCH_SERVE_REQUIRE_WIN=0`` disarms the serve-beats-socket
assertion on hosts too small for a 4-worker fleet.

Run standalone::

    python benchmarks/bench_serve.py

or under pytest::

    pytest benchmarks/bench_serve.py -s
"""

from __future__ import annotations

import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from perf_record import update_record
from repro.benchgen import load_benchmark
from repro.bus import SocketBus
from repro.client import ServeClient
from repro.core import MuxLinkConfig
from repro.linkpred import TrainConfig
from repro.experiments import SMOKE_SCALE, fig7_cells
from repro.experiments.common import lock_with
from repro.experiments.runner import execute_job
from repro.netlist import dump_bench
from repro.serve import AttackServer
from repro.store import ArtifactStore

WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "4"))
PIPELINE = int(os.environ.get("REPRO_BENCH_SERVE_PIPELINE", "2"))
WARM_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_WARM_REQUESTS", "50"))
#: Warm serving must beat a cold-process CLI request by at least this
#: factor (p50 basis).  0 disarms.
MIN_WARM_ADVANTAGE = float(
    os.environ.get("REPRO_BENCH_SERVE_MIN_WARM_ADVANTAGE", "10")
)
#: Require the pipelined serve path to beat the per-job socket bus on
#: the small-job grid (1 disarms with "0").
REQUIRE_WIN = os.environ.get("REPRO_BENCH_SERVE_REQUIRE_WIN", "1") != "0"

#: Lock-seed sweep width: one smoke cell relocked under this many
#: seeds — smoke-sized work items where per-job dispatch overhead is a
#: visible fraction of the wall clock, uniform enough that the dispatch
#: gap clears the per-job training-time noise, and enough of them that
#: it accumulates past run-to-run jitter.
SWEEP_SEEDS = int(os.environ.get("REPRO_BENCH_SERVE_SWEEP_SEEDS", "32"))

_SRC_ROOT = str(pathlib.Path(__file__).resolve().parents[1] / "src")
_ENV = {"PATH": "/usr/bin:/bin", "PYTHONPATH": _SRC_ROOT, "PYTHONHASHSEED": "0"}


def _start_workers(args: list[str]) -> list[subprocess.Popen]:
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "worker",
                "--poll", "0.05", "--idle-timeout", "600", *args,
            ],
            env=_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        for _ in range(WORKERS)
    ]
    for worker in workers:  # readiness: first log line = imports done
        worker.stdout.readline()
    return workers


def _stop_workers(workers: list[subprocess.Popen]) -> None:
    for worker in workers:
        worker.terminate()
    for worker in workers:
        worker.wait(timeout=60)


def _fingerprint(payload: dict):
    import numpy as np

    def canon(value):
        if isinstance(value, dict):
            return tuple(sorted((k, canon(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(canon(v) for v in value)
        if isinstance(value, np.ndarray):
            return (str(value.dtype), value.shape, value.tobytes())
        return value

    return canon({k: v for k, v in payload.items() if k != "runtime_seconds"})


def _grid_jobs():
    cell = fig7_cells(SMOKE_SCALE, seed=0)[0]
    base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
    jobs = []
    for seed in range(SWEEP_SEEDS):
        locked = lock_with(cell.scheme, base, key_size=cell.key_size, seed=seed)
        jobs.append(ServeClient.job_for(locked.circuit, cell.config))
    return jobs


def test_serve_pipeline_beats_per_job_socket_and_warm_is_instant():
    cores = os.cpu_count()
    jobs = _grid_jobs()
    assert len(jobs) == SWEEP_SEEDS

    start = time.perf_counter()
    reference = {job.store_key: _fingerprint(execute_job(job)) for job in jobs}
    serial_s = time.perf_counter() - start
    print(
        f"\n[bench_serve] {len(jobs)} jobs, {WORKERS} workers "
        f"(pipeline {PIPELINE}), {cores} cores: serial {serial_s:.1f}s "
        f"({serial_s / len(jobs):.2f}s/job)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)

        # --- socket: one lease round-trip per job --------------------------
        # The coordinator persists every artifact, exactly as the serve
        # loop does — both timed sections end with all results durable
        # in a store (fingerprinting stays outside the clock for both).
        socket_store = ArtifactStore(tmp / "store-socket")
        bus = SocketBus(poll=0.05, timeout=600)
        workers = _start_workers(["--bus-addr", bus.address])
        try:
            start = time.perf_counter()
            socket_results = []
            for job, payload, persisted in bus.run(list(jobs)):
                if not persisted:
                    socket_store.put(job.artifact_kind, job.store_key, payload)
                socket_results.append((job, payload))
            socket_s = time.perf_counter() - start
        finally:
            _stop_workers(workers)
            bus.close()
        socket_fp = {
            job.store_key: _fingerprint(payload)
            for job, payload in socket_results
        }
        assert socket_fp == reference, "socket results diverged from serial"

        # --- serve: persistent pipelined connections -----------------------
        server = AttackServer(
            "127.0.0.1:0", tmp / "store", poll=0.05, log=lambda *a: None
        )
        loop = threading.Thread(target=server.serve_forever, daemon=True)
        loop.start()
        workers = _start_workers(
            ["--serve-addr", server.address, "--pipeline", str(PIPELINE)]
        )
        client = ServeClient(server.address)
        try:
            # Timed to the same endpoint as the socket path: every
            # artifact persisted in the coordinator's store.  Artifact
            # download is a separate serving concern, measured by the
            # warm-latency loop below.
            start = time.perf_counter()
            for job in jobs:
                client.submit_job(job, wait=False)
            deadline = start + 600
            while time.perf_counter() < deadline:
                progress = client.stats()
                if progress["completed"] + progress["failed"] >= len(jobs):
                    break
                time.sleep(0.02)
            serve_s = time.perf_counter() - start
            serve_fp = {
                job.store_key: _fingerprint(
                    server.store.get("attacks", job.store_key)
                )
                for job in jobs
            }
            assert serve_fp == reference, "served results diverged from serial"
            assert server.stats.requeues == 0 and server.stats.failed == 0

            # --- warm serving: repeated fetches against the live server ----
            warm_key = jobs[0].store_key
            latencies = []
            for _ in range(WARM_REQUESTS):
                start = time.perf_counter()
                client.result(warm_key, timeout=60)
                latencies.append(time.perf_counter() - start)
            warm_p50 = statistics.median(latencies)
            warm_p95 = statistics.quantiles(latencies, n=20)[-1]
            warm_rps = WARM_REQUESTS / sum(latencies)

            # --- cold process: a fresh CLI interpreter per request ---------
            # CLI-default config (only --epochs overridden) so the CLI
            # process computes the same content key client-side.
            cli_config = MuxLinkConfig(
                h=3, threshold=0.01,
                train=TrainConfig(epochs=2, learning_rate=1e-3, seed=0),
                seed=0,
            )
            base = load_benchmark("c1355", scale=0.1)
            locked = lock_with("D-MUX", base, key_size=6, seed=0)
            bench_path = tmp / "locked.bench"
            dump_bench(locked.circuit, bench_path, key=locked.key)
            client.attack(locked.circuit, cli_config)  # train it once

            start = time.perf_counter()
            served_cli = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "attack",
                    str(bench_path), "--epochs", "2",
                    "--serve", server.address,
                ],
                capture_output=True, text=True, env=_ENV, timeout=600,
            )
            cold_process_s = time.perf_counter() - start
            assert served_cli.returncode == 0, served_cli.stderr
        finally:
            client.shutdown()
            _stop_workers(workers)
            loop.join(timeout=30)
            server.close()

        # CLI parity: the served prediction equals a local in-process run.
        local_cli = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "attack",
                str(bench_path), "--epochs", "2",
                "--store", str(tmp / "store-local"),
            ],
            capture_output=True, text=True, env=_ENV, timeout=600,
        )
        assert local_cli.returncode == 0, local_cli.stderr
        served_key = [l for l in served_cli.stdout.splitlines()
                      if l.startswith("predicted key:")]
        local_key = [l for l in local_cli.stdout.splitlines()
                     if l.startswith("predicted key:")]
        assert served_key and served_key == local_key, (
            f"CLI predictions diverged: {served_key} vs {local_key}"
        )

    socket_speedup = serial_s / socket_s
    serve_speedup = serial_s / serve_s
    warm_advantage = cold_process_s / warm_p50
    print(
        f"  socket: {socket_s:.1f}s ({socket_speedup:.2f}x)   "
        f"serve: {serve_s:.1f}s ({serve_speedup:.2f}x)"
    )
    print(
        f"  warm: p50 {warm_p50 * 1000:.1f}ms  p95 {warm_p95 * 1000:.1f}ms  "
        f"{warm_rps:.0f} req/s   cold process: {cold_process_s:.1f}s "
        f"({warm_advantage:.0f}x slower than warm p50)"
    )

    update_record(
        "bench_serve",
        {
            "jobs": len(jobs),
            "workers": WORKERS,
            "pipeline": PIPELINE,
            "cores": cores,
            "serial_s": round(serial_s, 2),
            "serial_s_per_job": round(serial_s / len(jobs), 3),
            "socket": {
                "seconds": round(socket_s, 2),
                "speedup": round(socket_speedup, 2),
            },
            "serve": {
                "seconds": round(serve_s, 2),
                "speedup": round(serve_speedup, 2),
            },
            "warm": {
                "requests": WARM_REQUESTS,
                "p50_ms": round(warm_p50 * 1000, 2),
                "p95_ms": round(warm_p95 * 1000, 2),
                "requests_per_s": round(warm_rps, 1),
            },
            "cold_process_s": round(cold_process_s, 2),
            "warm_advantage_x": round(warm_advantage, 1),
            "bit_identical": True,
            "min_warm_advantage_gate": MIN_WARM_ADVANTAGE,
        },
    )
    if MIN_WARM_ADVANTAGE:
        assert warm_advantage >= MIN_WARM_ADVANTAGE, (
            f"warm serving only {warm_advantage:.1f}x faster than a cold "
            f"`repro attack` process; needs >= {MIN_WARM_ADVANTAGE}x"
        )
    if REQUIRE_WIN:
        assert serve_s < socket_s, (
            f"pipelined serve ({serve_s:.1f}s) did not beat the per-job "
            f"socket bus ({socket_s:.1f}s) on the small-job grid"
        )


if __name__ == "__main__":
    test_serve_pipeline_beats_per_job_socket_and_warm_is_instant()
    print("bench_serve: OK")
