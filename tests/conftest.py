"""Suite-wide fixtures.

``REPRO_STORE`` points every :class:`~repro.experiments.ExperimentRunner`
at a persistent artifact store.  The suite's cache-behaviour tests assert
exact cold-run counters (locks/attacks *computed*), so an ambient store
from the developer's shell must not leak in — tests that want one set it
explicitly (or pass ``store=``).

``REPRO_FAULT_PLAN`` arms the fault-injection layer; an ambient plan (a
developer mid-drill) would fire faults into unrelated tests, and a test
that activates a plan in-process must never leak it into the next test —
both are scrubbed around every test.
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _no_ambient_artifact_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    faults.deactivate()
    yield
    faults.deactivate()
