"""Constant propagation — the re-synthesis core of SWEEP and SCOPE.

Both constant-propagation attacks hard-code one key input at a time and
observe how strongly the design simplifies under each value.  This module
implements that simplification: given ``net → 0/1`` assignments, it rebuilds
the circuit with all implied constants folded away.

Folding rules (per gate type):

* ``AND/NAND`` — a controlling 0 collapses the gate; 1-inputs are dropped.
* ``OR/NOR`` — dual, with controlling 1.
* ``XOR/XNOR`` — constant inputs fold into the gate's output parity.
* ``NOT/BUF`` — evaluate or alias.
* ``MUX`` — constant select picks a branch; constant data inputs reduce to
  AND/OR/NOT networks of the select.

Constant primary outputs are driven by a shared ``XOR(x, x)`` /
``XNOR(x, x)`` pair so the result remains a pure BENCH netlist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist import Circuit, Gate, GateType

__all__ = ["propagate_constants", "NetRef"]


@dataclass(frozen=True)
class NetRef:
    """Resolved value of a net: a constant or an alias to a rebuilt net."""

    const: int | None = None  # 0 / 1 when constant
    net: str | None = None  # name in the rebuilt circuit otherwise

    @property
    def is_const(self) -> bool:
        return self.const is not None


class _Builder:
    """Incrementally constructs the simplified circuit."""

    def __init__(self, name: str):
        self.circuit = Circuit(name)
        self._const_nets: dict[int, str] = {}

    def add_input(self, name: str) -> None:
        self.circuit.add_input(name)

    def emit(self, name: str, gate_type: GateType, inputs: tuple[str, ...]) -> str:
        self.circuit.add_gate(Gate(name, gate_type, inputs))
        return name

    def fresh(self, prefix: str) -> str:
        return self.circuit.fresh_name(prefix)

    def const_net(self, value: int) -> str:
        """Net holding constant *value*, created on first use.

        When every primary input was assigned away, a fresh anchor input is
        added — ``XOR(x, x)`` is constant regardless of the anchor's value,
        so the rebuilt circuit's function is unchanged.
        """
        if value not in self._const_nets:
            if not self.circuit.inputs:
                self.add_input(self.circuit.fresh_name("CP_ANCHOR"))
            anchor = self.circuit.inputs[0]
            gate_type = GateType.XNOR if value else GateType.XOR
            name = self.fresh(f"CONST{value}")
            self.emit(name, gate_type, (anchor, anchor))
            self._const_nets[value] = name
        return self._const_nets[value]


def _resolve(ref: NetRef, builder: _Builder) -> str:
    """Materialize *ref* as a concrete net name in the rebuilt circuit."""
    if ref.is_const:
        return builder.const_net(ref.const)  # type: ignore[arg-type]
    assert ref.net is not None
    return ref.net


def _fold_and_or(
    gate: Gate, refs: list[NetRef], builder: _Builder
) -> NetRef:
    is_and = gate.gate_type in (GateType.AND, GateType.NAND)
    inverted = gate.gate_type in (GateType.NAND, GateType.NOR)
    controlling = 0 if is_and else 1
    live: list[str] = []
    for ref in refs:
        if ref.is_const:
            if ref.const == controlling:
                return NetRef(const=controlling ^ 1 if inverted else controlling)
            continue  # identity value: drop
        live.append(ref.net)  # type: ignore[arg-type]
    if not live:
        value = 1 - controlling
        return NetRef(const=value ^ 1 if inverted else value)
    if len(live) == 1:
        if inverted:
            return NetRef(net=builder.emit(gate.name, GateType.NOT, (live[0],)))
        return NetRef(net=live[0])  # pure alias, no gate emitted
    return NetRef(net=builder.emit(gate.name, gate.gate_type, tuple(live)))


def _fold_xor(gate: Gate, refs: list[NetRef], builder: _Builder) -> NetRef:
    parity = 1 if gate.gate_type is GateType.XNOR else 0
    live: list[str] = []
    for ref in refs:
        if ref.is_const:
            parity ^= ref.const  # type: ignore[operator]
        else:
            live.append(ref.net)  # type: ignore[arg-type]
    if not live:
        return NetRef(const=parity)
    if len(live) == 1:
        if parity:
            return NetRef(net=builder.emit(gate.name, GateType.NOT, (live[0],)))
        return NetRef(net=live[0])
    gate_type = GateType.XNOR if parity else GateType.XOR
    return NetRef(net=builder.emit(gate.name, gate_type, tuple(live)))


def _fold_mux(gate: Gate, refs: list[NetRef], builder: _Builder) -> NetRef:
    sel, d0, d1 = refs
    if sel.is_const:
        return d1 if sel.const else d0
    if d0.is_const and d1.is_const:
        if d0.const == d1.const:
            return NetRef(const=d0.const)
        if d1.const == 1:  # MUX(s, 0, 1) = s
            return NetRef(net=sel.net)
        return NetRef(net=builder.emit(gate.name, GateType.NOT, (sel.net,)))
    if not d0.is_const and not d1.is_const and d0.net == d1.net:
        return NetRef(net=d0.net)  # both branches identical
    if d0.is_const:
        if d0.const == 0:  # MUX(s, 0, b) = s AND b
            return NetRef(
                net=builder.emit(gate.name, GateType.AND, (sel.net, d1.net))
            )
        # MUX(s, 1, b) = NOT(s) OR b
        inv = builder.emit(builder.fresh(f"{gate.name}_ns"), GateType.NOT, (sel.net,))
        return NetRef(net=builder.emit(gate.name, GateType.OR, (inv, d1.net)))
    if d1.is_const:
        if d1.const == 1:  # MUX(s, a, 1) = s OR a
            return NetRef(
                net=builder.emit(gate.name, GateType.OR, (sel.net, d0.net))
            )
        # MUX(s, a, 0) = NOT(s) AND a
        inv = builder.emit(builder.fresh(f"{gate.name}_ns"), GateType.NOT, (sel.net,))
        return NetRef(net=builder.emit(gate.name, GateType.AND, (inv, d0.net)))
    return NetRef(
        net=builder.emit(gate.name, GateType.MUX, (sel.net, d0.net, d1.net))
    )


def propagate_constants(
    circuit: Circuit,
    assignments: dict[str, int],
    name: str | None = None,
) -> Circuit:
    """Rebuild *circuit* with the given nets hard-coded to constants.

    Args:
        circuit: source netlist (unchanged).
        assignments: ``net → 0/1``; assigned primary inputs are removed from
            the rebuilt circuit's input list (they no longer exist).
        name: name of the rebuilt circuit (default: ``<old>_cp``).

    Returns:
        The simplified circuit.  Primary outputs keep their position; a PO
        whose cone collapses to a constant is driven by a shared
        ``XOR/XNOR(x, x)`` constant net.
    """
    for net, value in assignments.items():
        if not circuit.has_net(net):
            raise NetlistError(f"cannot assign unknown net {net!r}")
        if value not in (0, 1):
            raise NetlistError(f"net {net!r}: assignment must be 0 or 1")

    builder = _Builder(name or f"{circuit.name}_cp")
    refs: dict[str, NetRef] = {}
    for pi in circuit.inputs:
        if pi in assignments:
            refs[pi] = NetRef(const=assignments[pi])
        else:
            builder.add_input(pi)
            refs[pi] = NetRef(net=pi)

    for gate_name in circuit.topological_order():
        gate = circuit.gate(gate_name)
        if gate_name in assignments:
            refs[gate_name] = NetRef(const=assignments[gate_name])
            continue
        in_refs = [refs[n] for n in gate.inputs]
        if gate.gate_type in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            refs[gate_name] = _fold_and_or(gate, in_refs, builder)
        elif gate.gate_type in (GateType.XOR, GateType.XNOR):
            refs[gate_name] = _fold_xor(gate, in_refs, builder)
        elif gate.gate_type is GateType.NOT:
            src = in_refs[0]
            if src.is_const:
                refs[gate_name] = NetRef(const=1 - src.const)  # type: ignore[operator]
            else:
                refs[gate_name] = NetRef(
                    net=builder.emit(gate_name, GateType.NOT, (src.net,))
                )
        elif gate.gate_type is GateType.BUF:
            refs[gate_name] = in_refs[0]  # alias (const or net)
        elif gate.gate_type is GateType.MUX:
            refs[gate_name] = _fold_mux(gate, in_refs, builder)
        else:  # pragma: no cover - vocabulary is closed
            raise AssertionError(f"unhandled gate type {gate.gate_type!r}")

    for po in circuit.outputs:
        resolved = _resolve(refs[po], builder)
        if resolved != po and not builder.circuit.has_net(po):
            # Aliasing/folding moved the PO's driver under another name;
            # re-emit a buffer so the circuit interface is preserved.
            resolved = builder.emit(po, GateType.BUF, (resolved,))
        builder.circuit.add_output(resolved)
    builder.circuit.validate()
    return builder.circuit
