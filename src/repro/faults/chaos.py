"""`repro chaos` — run the smoke grid under a named fault plan.

A *drill* is one end-to-end proof of the robustness contract: arm a
:class:`~repro.faults.FaultPlan`, run the Fig. 7 smoke grid through the
real topology the plan targets (worker subprocesses over a spool, a TCP
worker against a :class:`~repro.bus.SocketBus`, or the in-process store
path), and assert that the resulting records and rendered table are
**bit-identical** to a clean serial run.  Faults that were injected but
recovered from must be invisible in the science; only the recovery
counters (requeues, fail-overs, write retries) may differ.

This module is imported lazily by the CLI — it drives
:mod:`repro.experiments`, which :mod:`repro.faults` itself must never
import at module scope (the store depends on the faults package).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FaultPlan,
    named_fault_plan,
)

__all__ = ["DRILL_TOPOLOGY", "DrillOutcome", "run_chaos"]

#: Which execution topology exercises each named plan.  ``spool`` and
#: ``socket`` drills run real worker subprocesses (the plan travels via
#: ``REPRO_FAULT_PLAN``); ``local`` drills arm the plan in-process and
#: exercise the store write/read path; the ``serve`` drill runs a real
#: ``repro serve`` process (pipelined workers + remote store) and gates
#: on bit-identical artifact payloads rather than figure tables.
DRILL_TOPOLOGY: dict[str, str] = {
    "worker-crash": "spool",
    "heartbeat-stall": "spool",
    "lease-race": "spool",
    "all-workers-die": "spool",
    "socket-flaky": "socket",
    "serve-flaky": "serve",
    "torn-store": "local",
    "enospc": "local",
}

#: Lease heartbeat deadline for drill spools — short, so reaping a
#: killed worker does not dominate drill wall-clock.
_DRILL_STALE = 1.5
#: Fail-over deadline for the all-workers-die drill (must exceed
#: ``_DRILL_STALE`` so the corpse leases are reaped first).
_DRILL_LIVENESS = 4.0

_FIRED_LINE = re.compile(r"fault\[([a-z_.]+)\]: fired")


@dataclass
class DrillOutcome:
    """One drill's verdict: parity, injections, and recovery counters."""

    plan: str
    topology: str
    fingerprints_match: bool = False
    tables_match: bool = False
    injected: dict[str, int] = field(default_factory=dict)
    requeues: int = 0
    failed_over: int = 0
    write_retries: int = 0
    store_discards: int = 0
    seconds: float = 0.0
    failures: list[str] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        parts = [
            f"chaos[{self.plan}]: {verdict} ({self.topology}, "
            f"{self.total_injected} injected, {self.seconds:.1f}s)"
        ]
        recovered = []
        if self.requeues:
            recovered.append(f"requeues={self.requeues}")
        if self.failed_over:
            recovered.append(f"failed-over={self.failed_over}")
        if self.write_retries:
            recovered.append(f"write-retries={self.write_retries}")
        if self.store_discards:
            recovered.append(f"store-discards={self.store_discards}")
        if recovered:
            parts.append(" ".join(recovered))
        for failure in self.failures:
            parts.append(f"!! {failure}")
        return "\n".join(parts)


def _mask_runtime(table: str) -> str:
    """Blank the wall-clock column — the one legitimately varying field."""
    return "\n".join(
        re.sub(r"\d+\.\d$", "<sec>", line) for line in table.splitlines()
    )


def _src_root() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _worker_env(plan: FaultPlan | None) -> dict:
    env = {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": _src_root(),
        "PYTHONHASHSEED": "0",
    }
    if plan is not None:
        env[FAULT_PLAN_ENV] = plan.dumps()
    return env


def _spawn_spool_worker(
    spool_root, store_root, plan: FaultPlan | None
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--bus-dir", str(spool_root),
            "--store", str(store_root),
            "--poll", "0.1",
            "--stale-after", str(_DRILL_STALE),
            "--idle-timeout", "60",
        ],
        env=_worker_env(plan),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _spawn_socket_worker(address: str, plan: FaultPlan | None) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--bus-addr", address,
            "--poll", "0.1",
            "--idle-timeout", "60",
        ],
        env=_worker_env(plan),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _reap_worker(proc: subprocess.Popen) -> str:
    """Terminate a drill worker and return its captured output."""
    if proc.poll() is None:
        proc.terminate()
    try:
        output, _ = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - wedged worker
        proc.kill()
        output, _ = proc.communicate()
    return output or ""


def _count_fired(outputs: "list[str]", counts: dict) -> None:
    for output in outputs:
        for match in _FIRED_LINE.finditer(output):
            counts[match.group(1)] = counts.get(match.group(1), 0) + 1


class _Reference:
    """The clean serial run every drill is compared against."""

    def __init__(self, scale, seed: int) -> None:
        from repro.experiments import fig7_cells, format_fig7
        from repro.experiments.runner import ExperimentRunner, record_fingerprint

        self.cells = fig7_cells(scale, seed)
        with ExperimentRunner(jobs=0) as runner:
            records = runner.run(self.cells)
        self.fingerprints = [record_fingerprint(r) for r in records]
        self.table = _mask_runtime(format_fig7(records))


def _check_parity(outcome: DrillOutcome, reference: _Reference, records) -> None:
    from repro.experiments import format_fig7
    from repro.experiments.runner import record_fingerprint

    outcome.fingerprints_match = (
        [record_fingerprint(r) for r in records] == reference.fingerprints
    )
    outcome.tables_match = (
        _mask_runtime(format_fig7(records)) == reference.table
    )
    if not outcome.fingerprints_match:
        outcome.failures.append(
            "record fingerprints diverged from the clean serial run"
        )
    if not outcome.tables_match:
        outcome.failures.append("figure table diverged from the clean serial run")


def _require(outcome: DrillOutcome, condition: bool, what: str) -> None:
    if not condition:
        outcome.failures.append(what)


def _drill_spool(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro.bus import SpoolBus, SpoolDir
    from repro.experiments.runner import ExperimentRunner
    from repro.store import ArtifactStore

    all_die = plan.name == "all-workers-die"
    shared = plan.name == "lease-race"  # every worker runs under the plan
    store = ArtifactStore(workdir / "store")
    spool = SpoolDir(workdir / "spool", stale_after=_DRILL_STALE)
    bus = SpoolBus(
        spool,
        store,
        poll=0.1,
        timeout=240,
        liveness=_DRILL_LIVENESS if all_die else None,
    )
    victims = [_spawn_spool_worker(spool.root, store.root, plan)]
    if all_die:
        victims.append(_spawn_spool_worker(spool.root, store.root, plan))
    helpers: list[subprocess.Popen] = []
    stop = threading.Event()

    def _spawn_helper_on_first_lease() -> None:
        # The victim must win a lease before a healthy peer enters the
        # race, or a 2-job smoke grid can finish without ever touching
        # the armed worker.  A crashed victim leaves its lease behind,
        # so "leased/ is non-empty" covers both the stall and the crash.
        while not stop.is_set():
            if spool.leased_keys():
                helpers.append(
                    _spawn_spool_worker(spool.root, store.root, None)
                )
                return
            time.sleep(0.05)

    watcher = None
    if not all_die and not shared:
        watcher = threading.Thread(
            target=_spawn_helper_on_first_lease, daemon=True
        )
        watcher.start()
    elif shared:
        helpers.append(_spawn_spool_worker(spool.root, store.root, plan))

    runner = ExperimentRunner(jobs=0, store=store, bus=bus)
    try:
        records = runner.run(reference.cells)
    finally:
        stop.set()
        if watcher is not None:
            watcher.join(timeout=10)
        outputs = [_reap_worker(p) for p in victims + helpers]
        runner.close()
    _count_fired(outputs, outcome.injected)
    outcome.requeues = bus.stats.requeues
    outcome.failed_over = bus.stats.failed_over
    outcome.write_retries = store.stats.write_retries
    outcome.store_discards = store.stats.errors
    _check_parity(outcome, reference, records)
    if all_die:
        _require(
            outcome,
            outcome.failed_over >= 1,
            "coordinator never failed over despite a dead worker fleet",
        )
    elif plan.name in ("worker-crash", "heartbeat-stall"):
        _require(
            outcome,
            outcome.requeues >= 1,
            "no lease was ever reaped — the fault did not bite",
        )


def _drill_socket(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro.bus import SocketBus
    from repro.experiments.runner import ExperimentRunner

    bus = SocketBus(poll=0.1, timeout=240)
    worker = _spawn_socket_worker(bus.address, plan)
    runner = ExperimentRunner(jobs=0, store=workdir / "store", bus=bus)
    try:
        records = runner.run(reference.cells)
    finally:
        outputs = [_reap_worker(worker)]
        runner.close()
    _count_fired(outputs, outcome.injected)
    outcome.requeues = bus.stats.requeues
    outcome.failed_over = bus.stats.failed_over
    _check_parity(outcome, reference, records)
    _require(
        outcome,
        outcome.requeues >= 1,
        "no job was requeued — the dropped frame never happened",
    )


def _drill_local(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro import faults
    from repro.experiments.runner import ExperimentRunner
    from repro.store import ArtifactStore

    store = ArtifactStore(workdir / "store")
    faults.activate(plan)
    try:
        # Cold pass: the armed writes (torn file / ENOSPC) hit here and
        # must be absorbed by the store's RetryPolicy.
        with ExperimentRunner(jobs=0, store=store) as runner:
            records = runner.run(reference.cells)
        _check_parity(outcome, reference, records)
        if any(site.site == "store.read_corrupt" for site in plan.sites):
            # Warm pass from a fresh runner: the armed read fires on the
            # first successful decode, is discarded as a miss, and the
            # recompute heals the entry in place.
            with ExperimentRunner(jobs=0, store=store) as warm_runner:
                warm = warm_runner.run(reference.cells)
            warm_outcome = DrillOutcome(plan=plan.name, topology="local")
            _check_parity(warm_outcome, reference, warm)
            outcome.failures.extend(
                f"warm pass: {f}" for f in warm_outcome.failures
            )
            outcome.store_discards += warm_runner.store.stats.errors
        for site, count in faults.fired_counts().items():
            outcome.injected[site] = outcome.injected.get(site, 0) + count
    finally:
        faults.deactivate()
    outcome.write_retries = store.stats.write_retries
    outcome.store_discards += store.stats.errors
    _require(
        outcome,
        outcome.write_retries >= 1,
        "no write was ever retried — the fault did not bite",
    )
    corrupt = store.verify()
    _require(
        outcome,
        not corrupt,
        f"cache verify flagged {len(corrupt)} entr(y/ies) after healing",
    )


def _canon_payload(value):
    """Hashable canonical form of a codec payload tree (arrays by bytes)."""
    import numpy as np

    if isinstance(value, dict):
        return tuple(
            sorted((k, _canon_payload(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canon_payload(v) for v in value)
    if isinstance(value, np.ndarray):
        return (str(value.dtype), value.shape, value.tobytes())
    return value


def _artifact_fingerprint(payload: dict):
    """Bit-level identity of an artifact, minus wall-clock timing."""
    return _canon_payload(
        {k: v for k, v in payload.items() if k != "runtime_seconds"}
    )


_SERVE_READY = re.compile(r"serve: listening on (\S+) ")


def _drill_serve(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    """Attack-as-a-service drill: drop accepted connections, time out reads.

    A real ``repro serve`` process (two pipelined workers, on-disk store)
    runs under the plan — ``serve.accept_drop`` fires in its listener as
    workers and clients connect, and every party must reconnect-and-retry
    through it.  The drill process arms the same plan locally so
    ``remote_store.read_timeout`` bites the :class:`RemoteStore` fetch of
    the finished artifacts.  No figure table is rendered at the job
    level, so parity gates on the artifact payloads themselves: every
    served artifact must be bit-identical (timing aside) to a clean
    in-process :func:`execute_job` run of the same jobs.
    """
    from repro import faults
    from repro.benchgen import load_benchmark
    from repro.client import ServeClient
    from repro.experiments.common import lock_with
    from repro.experiments.runner import execute_job
    from repro.store.remote import RemoteStore

    # The exact AttackJobs the runner/client would build for the grid.
    jobs = []
    for cell in reference.cells:
        base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
        locked = lock_with(
            cell.scheme, base, key_size=cell.key_size, seed=cell.lock_seed
        )
        jobs.append(ServeClient.job_for(locked.circuit, cell.config))

    # Clean in-process reference: the parity target for every served job.
    expected = {
        job.store_key: _artifact_fingerprint(execute_job(job))
        for job in jobs
    }

    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--addr", "127.0.0.1:0",
            "--store", str(workdir / "store"),
            "--workers", "2",
            "--poll", "0.1",
        ],
        env=_worker_env(plan),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = remote = None
    faults.activate(plan)
    try:
        # Readiness line first — fault-fired lines only start once
        # connections arrive, so the bound address is always line one.
        box: dict = {}
        reader = threading.Thread(
            target=lambda: box.update(line=proc.stdout.readline()),
            daemon=True,
        )
        reader.start()
        reader.join(timeout=60)
        match = _SERVE_READY.search(box.get("line") or "")
        if match is None:
            outcome.failures.append(
                f"serve never became ready: {box.get('line')!r}"
            )
            return
        address = match.group(1)

        client = ServeClient(address)
        for job in jobs:
            client.submit_job(job, wait=False)
        served = {}
        for job in jobs:
            client.result(job.store_key, timeout=240)
            remote = remote or RemoteStore(address)
            payload = remote.get(job.artifact_kind, job.store_key)
            _require(
                outcome,
                payload is not None,
                f"remote store lost artifact {job.store_key[:12]}…",
            )
            if payload is not None:
                served[job.store_key] = _artifact_fingerprint(payload)
        stats = client.stats()
        outcome.requeues = int(stats.get("requeues", 0))
        outcome.failed_over = int(stats.get("failed_over", 0))
        client.shutdown()

        outcome.fingerprints_match = served == expected
        # No table exists at the job level; payload identity is the gate.
        outcome.tables_match = outcome.fingerprints_match
        if not outcome.fingerprints_match:
            outcome.failures.append(
                "served artifacts diverged from the clean in-process run"
            )
    finally:
        # Local fires (the remote-store timeout) are erased by
        # deactivate(), so fold them into the tally first.
        for site, count in faults.fired_counts().items():
            outcome.injected[site] = outcome.injected.get(site, 0) + count
        faults.deactivate()
        if remote is not None:
            remote.close()
        if client is not None:
            client.close()
        output = _reap_worker(proc)
        outcome.store_discards = remote.stats.errors if remote else 0
    _count_fired([output], outcome.injected)
    _require(
        outcome,
        outcome.injected.get("serve.accept_drop", 0) >= 1,
        "the listener never dropped a connection — accept_drop did not bite",
    )
    _require(
        outcome,
        outcome.injected.get("remote_store.read_timeout", 0) >= 1,
        "no remote-store read ever timed out — the fault did not bite",
    )


_DRILL_RUNNERS = {
    "spool": _drill_spool,
    "socket": _drill_socket,
    "serve": _drill_serve,
    "local": _drill_local,
}


def run_chaos(
    plans: "list[str]",
    scale=None,
    seed: int = 0,
    keep: bool = False,
    log=print,
) -> "list[DrillOutcome]":
    """Run one drill per named plan; return their outcomes.

    Every drill compares against one shared clean serial run of the
    Fig. 7 grid at *scale* (default: the active experiment scale, i.e.
    smoke unless ``REPRO_SCALE`` says otherwise).  Work directories are
    deleted unless *keep*.
    """
    from repro.experiments.common import active_scale

    scale = scale or active_scale()
    for name in plans:
        if name not in DRILL_TOPOLOGY:
            raise ValueError(
                f"unknown chaos plan {name!r}; known: "
                + ", ".join(sorted(DRILL_TOPOLOGY))
            )
    log(f"chaos: clean reference run (scale={scale.name}, seed={seed})")
    reference = _Reference(scale, seed)
    outcomes = []
    for name in plans:
        plan = named_fault_plan(name, seed=seed)
        topology = DRILL_TOPOLOGY[name]
        outcome = DrillOutcome(plan=name, topology=topology)
        workdir = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{name}-"))
        log(f"chaos: drilling {name} ({topology}) in {workdir}")
        started = time.monotonic()
        try:
            _DRILL_RUNNERS[topology](plan, reference, outcome, workdir)
        except Exception as exc:  # a drill must never kill its siblings
            outcome.failures.append(f"drill raised: {exc!r}")
        outcome.seconds = time.monotonic() - started
        _require(
            outcome,
            outcome.total_injected >= 1,
            "plan armed but no fault ever fired",
        )
        if not keep:
            shutil.rmtree(workdir, ignore_errors=True)
        log(outcome.summary())
        outcomes.append(outcome)
    return outcomes
