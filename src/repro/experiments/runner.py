"""Pooled, cache-aware experiment engine for the figure drivers.

The paper's headline figures (Fig. 7-10) are grids of *independent*
(benchmark x scheme x key size) attack cells.  This module turns each
figure into a declarative list of :class:`Cell` jobs and executes them
through one :class:`ExperimentRunner` that

* **parallelizes** — unique attacks are handed to a pluggable
  :class:`~repro.bus.protocol.JobBus`: the default ``local`` bus runs
  them serially or over a ``ProcessPoolExecutor`` on this host
  (``REPRO_JOBS`` / ``--jobs``; ``0`` stays serial so single-core runs
  remain exactly reproducible with zero pool overhead), while the
  ``spool`` and ``socket`` buses fan the same jobs out to independent
  ``repro worker`` processes (``--bus spool --bus-dir`` /
  ``--bus socket``);
* **caches** — locked netlists and trained attack results are keyed by
  content (a digest of the locked BENCH text plus the attack
  configuration with the post-processing threshold normalized out), so a
  netlist locked for Fig. 7 is reused by Fig. 8's Hamming runs and
  Fig. 9's threshold sweep, and a trained checkpoint is reused across
  thresholds and figures wherever the config hash matches;
* **seeds per cell** — every cell derives its lock / train RNG streams
  from ``SeedSequence(seed)`` spawned with a key computed from the cell
  identity ``(benchmark, scheme, key_size)``, *not* from grid iteration
  order, so serial, pooled and reordered runs produce bit-identical
  :class:`~repro.experiments.common.AttackRecord` payloads.

Cache coherence under parallelism is by construction: the parent process
plans the grid, dedupes attack jobs against its caches *before* any work
is submitted, executes only the unique jobs (in the pool or in-process),
and materializes every cell's record from the parent-side caches.
Workers never see the caches, so serial and pooled runs perform the same
unique computations in the same code path.

Every cache layer is a **write-through view over the artifact store**
(:class:`~repro.store.ArtifactStore`) when one is configured
(``--store`` / ``REPRO_STORE``): locked netlists and trained attacks are
probed in memory first, then on disk, and whatever gets computed is
persisted — so a second process resumes ``repro figures`` with zero lock
and zero train jobs.  The scheduler boundary is store-shaped too: a
pending attack is an :class:`AttackJob` — a content-addressed store key
plus the durable lock payload and config — and a worker ships back the
encoded attack artifact, exactly the unit a remote host would return.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.benchgen import load_benchmark
from repro.bus.protocol import JobBus, resolve_bus
from repro.core import MuxLinkConfig, MuxLinkResult, rescore_key, run_muxlink, score_key
from repro.experiments.common import (
    AttackRecord,
    ExperimentScale,
    lock_with,
)
from repro.locking import LockedCircuit
from repro.netlist import Circuit
from repro.store import (
    ArtifactStore,
    attack_store_key,
    circuit_digest,
    decode_attack_artifact,
    decode_circuit,
    decode_lock_artifact,
    encode_attack_artifact,
    encode_circuit,
    encode_lock_artifact,
    lock_store_key,
    resolve_store,
)

__all__ = [
    "AttackJob",
    "Cell",
    "ExperimentRunner",
    "RunnerStats",
    "cell_seed_sequence",
    "derive_cell_seeds",
    "execute_attack_job",
    "make_cell",
    "record_fingerprint",
    "resolve_jobs",
]


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 0.

    ``0`` and ``1`` both mean *serial in-process* (the reproducible
    single-core default); ``"auto"`` maps to :func:`os.cpu_count`.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "0") or "0"
    if isinstance(jobs, str):
        jobs = os.cpu_count() or 1 if jobs.strip().lower() == "auto" else int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def _stable_u32(text: str) -> int:
    """Order- and process-independent 32-bit hash of a string."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def cell_seed_sequence(
    seed: int, benchmark: str, scheme: str, key_size: int
) -> np.random.SeedSequence:
    """Root :class:`~numpy.random.SeedSequence` of one cell.

    The spawn key is derived from the cell *identity* — not from the
    position of the cell in a grid — so the stream is invariant to grid
    order, pool size and which figure requested the cell.  ``h`` and
    ``threshold`` are deliberately excluded: Fig. 10's hop sweep and
    Fig. 9's threshold sweep attack the *same* locked instance.
    """
    return np.random.SeedSequence(
        entropy=seed,
        spawn_key=(_stable_u32(benchmark), _stable_u32(scheme), int(key_size)),
    )


def derive_cell_seeds(
    seed: int, benchmark: str, scheme: str, key_size: int
) -> tuple[int, int]:
    """Independent ``(lock_seed, train_seed)`` streams for one cell."""
    lock_ss, train_ss = cell_seed_sequence(seed, benchmark, scheme, key_size).spawn(2)
    return (
        int(lock_ss.generate_state(1)[0]),
        int(train_ss.generate_state(1)[0]),
    )


@dataclass(frozen=True)
class Cell:
    """One declarative attack job of a figure grid.

    ``lock_seed`` and ``config`` (whose sampling/train seeds are the
    cell's derived streams) are precomputed by :func:`make_cell`, so a
    ``Cell`` is a self-contained, hashable, picklable work item.
    """

    benchmark: str
    scheme: str
    key_size: int
    circuit_scale: float
    seed: int
    lock_seed: int
    config: MuxLinkConfig


def make_cell(
    scale: ExperimentScale,
    benchmark: str,
    circuit_scale: float,
    scheme: str,
    key_size: int,
    seed: int = 0,
    *,
    h: int | None = None,
    threshold: float | None = None,
) -> Cell:
    """Build a :class:`Cell` with per-cell RNG streams derived from *seed*."""
    lock_seed, train_seed = derive_cell_seeds(seed, benchmark, scheme, key_size)
    config = scale.attack_config(seed=train_seed)
    if h is not None:
        config = replace(config, h=h)
    if threshold is not None:
        config = replace(config, threshold=threshold)
    return Cell(
        benchmark=benchmark,
        scheme=scheme,
        key_size=int(key_size),
        circuit_scale=float(circuit_scale),
        seed=int(seed),
        lock_seed=lock_seed,
        config=config,
    )


@dataclass
class RunnerStats:
    """Instrumented cache counters (tests assert zero re-locks on warm runs).

    ``*_computed`` counts real work, ``*_loaded`` counts artifacts
    rematerialized from the on-disk store, ``*_reused`` counts in-memory
    (same-process) hits — a warm resumed ``repro figures`` therefore
    shows ``locks_computed == attacks_computed == 0``.
    """

    bases_loaded: int = 0
    bases_reused: int = 0
    locks_computed: int = 0
    locks_loaded: int = 0
    locks_reused: int = 0
    attacks_computed: int = 0
    attacks_loaded: int = 0
    attacks_reused: int = 0
    cells_run: int = 0

    def summary(self) -> str:
        return (
            f"cells={self.cells_run} "
            f"locks={self.locks_computed} "
            f"(+{self.locks_reused} cached, +{self.locks_loaded} store) "
            f"attacks={self.attacks_computed} "
            f"(+{self.attacks_reused} cached, +{self.attacks_loaded} store)"
        )


@dataclass(frozen=True)
class AttackJob:
    """One pending unique attack, in the scheduler's exchange format.

    A job carries no live library objects: the netlist travels as the
    gate-order-preserving lock payload dict and the result comes back as
    the encoded attack artifact — the same bytes-shaped unit the store
    persists, so a worker can be a local process today and a remote host
    tomorrow (it would ship the payload back instead of writing our
    filesystem).

    Attributes:
        store_key: content address the finished artifact lands under.
        circuit: ``repro.store.encode_circuit`` payload of the locked
            netlist (gate order preserved — node indexing depends on it).
        config: the attack configuration (declarative, picklable).
    """

    store_key: str
    circuit: dict
    config: MuxLinkConfig


def execute_attack_job(job: AttackJob) -> dict:
    """Run one :class:`AttackJob`; returns the encoded attack artifact.

    The single code path for serial and pooled execution (workers import
    this module-level function).  Consumes and produces store payloads —
    never live :class:`Circuit` / :class:`MuxLinkResult` objects — so
    executing a job is independent of the submitting process's caches.
    """
    return encode_attack_artifact(
        run_muxlink(decode_circuit(job.circuit), job.config)
    )


def record_fingerprint(record: AttackRecord) -> tuple:
    """Deterministic payload of a record, for bit-identity assertions.

    Covers everything the attack *computed* — predicted key, metrics,
    per-MUX likelihoods, training losses — and excludes only wall-clock
    timing, which can never be identical between two runs.
    """
    result = record.extras["result"]
    scored = tuple(
        sorted(
            (s.mux_name, s.key_index, s.load, s.likelihoods)
            for s in result.scored
        )
    )
    return (
        record.benchmark,
        record.scheme,
        record.key_size,
        record.predicted_key,
        (
            record.metrics.n_total,
            record.metrics.n_correct,
            record.metrics.n_wrong,
            record.metrics.n_x,
        ),
        scored,
        tuple(result.history.train_loss),
        tuple(result.history.val_loss),
        record.extras["locked"].key,
    )


class ExperimentRunner:
    """Executes :class:`Cell` grids with artifact reuse and an optional pool.

    One runner instance is intended to be shared across figure drivers
    (see ``repro figures``): Fig. 8 / Fig. 9 / Fig. 10 then reuse the
    base circuits, locked netlists and trained attacks that Fig. 7
    already produced.  The runner is a context manager; ``close()``
    shuts the worker pool down (caches survive until the runner is
    garbage collected).

    With a *store* (an :class:`~repro.store.ArtifactStore`, a path, or
    the ``REPRO_STORE`` environment variable), the in-memory caches
    become a write-through view over the persistent content-addressed
    store: misses fall through to disk before computing, and computed
    locks/attacks are persisted — ``repro figures`` then resumes across
    invocations, and the CLI / bench suite / figure drivers share one
    artifact pool.  The in-memory layer stays in front, so the hot path
    of a single process is unchanged.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        store: ArtifactStore | str | os.PathLike | None = None,
        bus: JobBus | str | None = None,
        bus_dir: str | os.PathLike | None = None,
        bus_addr: str | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = resolve_store(store)
        self.bus = resolve_bus(
            bus,
            jobs=self.jobs,
            store=self.store,
            bus_dir=bus_dir,
            bus_addr=bus_addr,
        )
        self.stats = RunnerStats()
        self._bases: dict[tuple[str, float], Circuit] = {}
        self._base_digests: dict[tuple[str, float], str] = {}
        self._locks: dict[tuple, LockedCircuit] = {}
        self._digests: dict[tuple, str] = {}
        self._attacks: dict[str, MuxLinkResult] = {}

    # -- context management -------------------------------------------------
    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the job bus (worker pool / sockets; idempotent)."""
        self.bus.close()

    # -- artifact caches ----------------------------------------------------
    def base_circuit(self, benchmark: str, circuit_scale: float) -> Circuit:
        """Load (or reuse) one stand-in benchmark circuit."""
        key = (benchmark, float(circuit_scale))
        if key in self._bases:
            self.stats.bases_reused += 1
        else:
            self._bases[key] = load_benchmark(benchmark, scale=circuit_scale)
            self.stats.bases_loaded += 1
        return self._bases[key]

    @staticmethod
    def _lock_key(cell: Cell) -> tuple:
        return (
            cell.benchmark,
            cell.circuit_scale,
            cell.scheme,
            cell.key_size,
            cell.lock_seed,
        )

    def _base_digest(self, benchmark: str, circuit_scale: float) -> str:
        """Content digest of a base circuit (feeds the lock store key)."""
        key = (benchmark, float(circuit_scale))
        if key not in self._base_digests:
            base = self.base_circuit(benchmark, circuit_scale)
            self._base_digests[key] = circuit_digest(base)
        return self._base_digests[key]

    def _record_lock(self, key: tuple, locked: LockedCircuit) -> str:
        # Comment-free design digest — the same address ``run_muxlink``
        # computes, so ``repro attack --store`` on a dumped locked BENCH
        # hits the artifact the figure runner trained (the attack is
        # oracle-less; neither the key nor the file name is content).
        self._locks[key] = locked
        self._digests[key] = circuit_digest(locked.circuit)
        return self._digests[key]

    def locked_circuit(self, cell: Cell) -> LockedCircuit:
        """Lock (or reuse) the cell's netlist; digests feed the attack key.

        Probe order: in-memory cache, then the artifact store (the
        decoded payload preserves gate insertion order, so a store-loaded
        netlist is attack-identical to a freshly locked one), then a real
        locking pass — which is written through to the store.
        """
        key = self._lock_key(cell)
        if key in self._locks:
            self.stats.locks_reused += 1
            return self._locks[key]
        store_key = None
        if self.store is not None:
            store_key = lock_store_key(
                self._base_digest(cell.benchmark, cell.circuit_scale),
                cell.scheme,
                cell.key_size,
                cell.lock_seed,
            )
            locked = self.store.get(
                "locks", store_key, decoder=decode_lock_artifact
            )
            if locked is not None:
                self._record_lock(key, locked)
                self.stats.locks_loaded += 1
                return locked
        base = self.base_circuit(cell.benchmark, cell.circuit_scale)
        locked = lock_with(
            cell.scheme, base, key_size=cell.key_size, seed=cell.lock_seed
        )
        self._record_lock(key, locked)
        self.stats.locks_computed += 1
        if store_key is not None:
            self.store.put("locks", store_key, encode_lock_artifact(locked))
        return locked

    @staticmethod
    def _attack_key(digest: str, config: MuxLinkConfig) -> str:
        # Content address shared with the on-disk store: the
        # post-processing threshold and the pure execution knobs are
        # normalized out (Fig. 9 rescales without retraining; worker
        # counts cannot move a bit of the result).
        return attack_store_key(digest, config)

    # -- execution ----------------------------------------------------------
    def run(self, cells: list[Cell] | tuple[Cell, ...]) -> list[AttackRecord]:
        """Execute a grid; returns one record per cell, in cell order."""
        cells = list(cells)
        plans: list[tuple[Cell, tuple, str]] = []
        pending: dict[str, AttackJob] = {}
        for cell in cells:
            locked = self.locked_circuit(cell)
            lock_key = self._lock_key(cell)
            attack_key = self._attack_key(self._digests[lock_key], cell.config)
            if attack_key in self._attacks or attack_key in pending:
                self.stats.attacks_reused += 1
            elif self._load_attack(attack_key):
                self.stats.attacks_loaded += 1
            else:
                pending[attack_key] = AttackJob(
                    store_key=attack_key,
                    circuit=encode_circuit(locked.circuit),
                    config=cell.config,
                )
                self.stats.attacks_computed += 1
            plans.append((cell, lock_key, attack_key))

        self._execute(pending)
        self.stats.cells_run += len(cells)
        return [self._materialize(*plan) for plan in plans]

    def _load_attack(self, attack_key: str) -> bool:
        """Rematerialize one trained attack from the store, if present."""
        if self.store is None:
            return False
        result = self.store.get(
            "attacks", attack_key, decoder=decode_attack_artifact
        )
        if result is None:
            return False
        self._attacks[attack_key] = result
        return True

    def _execute(self, pending: dict[str, AttackJob]) -> None:
        """Run the unique jobs through the configured bus.

        Every finished artifact is cached and written through **as it
        completes** — a crashed worker or an interrupt late in a grid
        must not discard hours of already-finished training; the rerun
        resumes from whatever landed in the store.  Failure semantics
        are the bus's (the local bus re-raises the first failure after
        draining survivors; the distributed buses requeue and ultimately
        quarantine).
        """
        jobs = list(pending.values())
        if not jobs:
            return
        for job, payload, persisted in self.bus.run(jobs):
            self._finish_job(job, payload, persisted=persisted)

    def _finish_job(
        self, job: AttackJob, payload: dict, persisted: bool = False
    ) -> None:
        self._attacks[job.store_key] = decode_attack_artifact(payload)
        if self.store is not None and not persisted:
            self.store.put("attacks", job.store_key, payload)

    def _materialize(
        self, cell: Cell, lock_key: tuple, attack_key: str
    ) -> AttackRecord:
        result = self._attacks[attack_key]
        locked = self._locks[lock_key]
        # Rescoring at the cell's own threshold keeps cached results exact
        # across Fig. 9's sweep; at the trained threshold it is the
        # identity (post-processing is deterministic).
        predicted = rescore_key(result, cell.config.threshold)
        metrics = score_key(predicted, locked.key)
        return AttackRecord(
            benchmark=cell.benchmark,
            scheme=cell.scheme,
            key_size=cell.key_size,
            metrics=metrics,
            runtime_seconds=result.total_runtime,
            predicted_key=predicted,
            extras={
                "result": result,
                "locked": locked,
                "base": self._bases[(cell.benchmark, cell.circuit_scale)],
            },
        )
