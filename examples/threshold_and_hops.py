"""Ablations: the post-processing threshold and the h-hop neighbourhood.

Miniature of paper Figs. 9 and 10.  The threshold sweep re-uses one trained
model (post-processing only); the hop study retrains per h::

    python examples/threshold_and_hops.py
"""

from repro import (
    MuxLinkConfig,
    TrainConfig,
    load_benchmark,
    lock_dmux,
    rescore_key,
    run_muxlink,
    score_key,
)


def main() -> None:
    base = load_benchmark("c1908", scale=0.15)
    locked = lock_dmux(base, key_size=16, seed=2)

    print("=== Threshold sweep (one trained model, paper Fig. 9) ===")
    config = MuxLinkConfig(
        h=3, train=TrainConfig(epochs=15, learning_rate=1e-3, seed=0)
    )
    result = run_muxlink(locked.circuit, config)
    print(f"{'th':>5}{'AC':>8}{'PC':>8}{'KPA':>8}{'decided':>9}")
    for th in (0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0):
        m = score_key(rescore_key(result, th), locked.key)
        kpa = f"{m.kpa:.3f}" if m.kpa == m.kpa else "  n/a"
        print(f"{th:>5.2f}{m.accuracy:>8.3f}{m.precision:>8.3f}"
              f"{kpa:>8}{m.decision_rate:>9.3f}")
    print("-> precision climbs to 100% as the attack abstains more")

    print("\n=== Hop study (retrain per h, paper Fig. 10) ===")
    print(f"{'h':>3}{'AC':>8}{'KPA':>8}{'runtime(s)':>12}")
    for h in (1, 2, 3):
        cfg = MuxLinkConfig(
            h=h, train=TrainConfig(epochs=15, learning_rate=1e-3, seed=0)
        )
        res = run_muxlink(locked.circuit, cfg)
        m = score_key(res.predicted_key, locked.key)
        print(f"{h:>3}{m.accuracy:>8.3f}{m.kpa:>8.3f}{res.total_runtime:>12.1f}")
    print("-> larger neighbourhoods cost runtime; scores saturate by h=3")


if __name__ == "__main__":
    main()
