"""The uniform baseline-attack interface and its store identity."""

import pytest

from repro.attacks import (
    BaselineConfig,
    BaselineReport,
    SweepAttack,
    random_guess_attack,
    run_baseline_attack,
    saam_attack,
)
from repro.benchgen import random_netlist
from repro.errors import AttackError
from repro.locking import lock_dmux, lock_xor
from repro.netlist import Circuit, Gate, GateType
from repro.store import (
    baseline_config_token,
    baseline_store_key,
    decode_baseline_artifact,
    encode_baseline_artifact,
)


def base(seed=0):
    return random_netlist("base", 10, 5, 110, seed=seed)


# ------------------------------------------------------------ dispatch
def test_config_rejects_unknown_attack():
    with pytest.raises(AttackError, match="unknown baseline attack"):
        BaselineConfig(attack="sat")


def test_dispatch_runs_every_attack():
    locked = lock_dmux(base(), key_size=8, seed=1)
    train = [lock_dmux(base(seed=s), key_size=8, seed=s + 1) for s in (2, 3)]
    for attack in ("saam", "scope", "random"):
        report = run_baseline_attack(locked.circuit, BaselineConfig(attack=attack))
        assert report.attack == attack
        assert len(report.predicted_key) == 8
    report = run_baseline_attack(
        locked.circuit, BaselineConfig(attack="sweep"), train=train
    )
    assert report.attack == "sweep"
    assert len(report.predicted_key) == 8


def test_sweep_without_corpus_is_an_error():
    locked = lock_dmux(base(), key_size=8, seed=1)
    with pytest.raises(AttackError, match="training corpus"):
        run_baseline_attack(locked.circuit, BaselineConfig(attack="sweep"))


def test_saam_scores_follow_sign_convention():
    """Positive score backs bit "0": hard-coding 1 removed more logic."""
    locked = lock_xor(base(), key_size=8, seed=1)
    report = run_baseline_attack(locked.circuit, BaselineConfig(attack="saam"))
    reference = saam_attack(locked.circuit)
    assert report.predicted_key == reference.predicted_key
    for (bit, value), removed in reference.reductions.items():
        assert bit in report.scores
    for bit, score in report.scores.items():
        r0 = reference.reductions.get((bit, 0), 0)
        r1 = reference.reductions.get((bit, 1), 0)
        assert score == pytest.approx(r1 - r0)


def test_random_report_has_no_scores():
    locked = lock_dmux(base(), key_size=8, seed=1)
    config = BaselineConfig(attack="random", seed=7)
    report = run_baseline_attack(locked.circuit, config)
    assert report.scores == {}
    assert report.predicted_key == random_guess_attack(locked.circuit, seed=7)


# ------------------------------------------- SWEEP shape validation (PR 8)
def test_sweep_rejects_feature_dim_mismatch():
    """A target whose design_features dim differs from the training fit
    must raise AttackError naming both dims, not crash in numpy."""
    train = [lock_dmux(base(seed=s), key_size=8, seed=s + 1) for s in (2, 3)]
    attack = SweepAttack().fit(train)
    n_dims = attack._weights.shape[0]
    attack._weights = attack._weights[: n_dims - 2]
    locked = lock_dmux(base(), key_size=8, seed=1)
    with pytest.raises(
        AttackError, match=rf"{n_dims}-dim.*{n_dims - 2}-dim"
    ):
        attack.attack(locked.circuit)


# ------------------------------------------------- non-contiguous keys
def _holey_circuit():
    """keyinput0 and keyinput2 present, keyinput1 missing."""
    return Circuit.from_parts(
        name="holey",
        inputs=["a", "b", "keyinput0", "keyinput2"],
        gates=[
            Gate("m0", GateType.MUX, ("keyinput0", "a", "b")),
            Gate("m2", GateType.MUX, ("keyinput2", "b", "a")),
            Gate("out", GateType.AND, ("m0", "m2")),
        ],
        outputs=["out"],
    )


def test_random_guess_fills_key_holes_with_x():
    predicted = random_guess_attack(_holey_circuit(), seed=0)
    assert len(predicted) == 3
    assert predicted[1] == "x"
    assert predicted[0] in "01" and predicted[2] in "01"


def test_saam_fills_key_holes_with_x():
    report = saam_attack(_holey_circuit())
    assert len(report.predicted_key) == 3
    assert report.predicted_key[1] == "x"


# ------------------------------------------------------- store identity
def test_config_token_drops_inert_knobs():
    """Only result-affecting knobs key the artifact: SAAM ignores all of
    them, and the coin seed matters only under undecided='coin'."""
    assert baseline_config_token(
        BaselineConfig(attack="saam", seed=1, margin=0.5)
    ) == baseline_config_token(BaselineConfig(attack="saam", seed=9))
    assert baseline_config_token(
        BaselineConfig(attack="scope", undecided="x", seed=1)
    ) == baseline_config_token(BaselineConfig(attack="scope", undecided="x", seed=2))
    assert baseline_config_token(
        BaselineConfig(attack="scope", undecided="coin", seed=1)
    ) != baseline_config_token(
        BaselineConfig(attack="scope", undecided="coin", seed=2)
    )
    assert baseline_config_token(
        BaselineConfig(attack="sweep", margin=1e-3, undecided="x")
    ) != baseline_config_token(
        BaselineConfig(attack="sweep", margin=1e-6, undecided="x")
    )


def test_store_key_is_order_sensitive_in_train():
    """SWEEP's normal-equation reduction is float-order-sensitive, so the
    corpus is an ordered tuple in the artifact identity."""
    config = BaselineConfig(attack="sweep", undecided="x")
    pairs = (("d1", "0101"), ("d2", "1010"))
    assert baseline_store_key("t", config, pairs) != baseline_store_key(
        "t", config, pairs[::-1]
    )
    assert baseline_store_key("t", config, pairs) == baseline_store_key(
        "t", config, pairs
    )
    assert baseline_store_key("t", config, pairs) != baseline_store_key(
        "u", config, pairs
    )


def test_baseline_artifact_round_trip():
    report = BaselineReport(
        attack="scope",
        predicted_key="01x0",
        scores={0: 1.5, 2: -0.25, 3: 0.0},
        n_blind=1,
        runtime_seconds=0.125,
    )
    decoded = decode_baseline_artifact(encode_baseline_artifact(report))
    assert decoded == report


def test_baseline_artifact_round_trip_empty_scores():
    report = BaselineReport(attack="random", predicted_key="1101", n_blind=4)
    decoded = decode_baseline_artifact(encode_baseline_artifact(report))
    assert decoded.scores == {}
    assert decoded == report
