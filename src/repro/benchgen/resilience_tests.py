"""ANT / RNT learning-resilience tests (D-MUX paper, Sec. II-A).

The D-MUX authors propose two conclusive vulnerability tests for a locking
scheme:

* **ANT** (AND netlist test) — lock designs synthesized from a *single*
  gate type.  Any structural key leakage has nowhere to hide.
* **RNT** (random netlist test) — lock designs with randomly selected,
  well-distributed gates.

A scheme fails a test when an attacker can recover significantly more than
half of the key bits from the locked netlists alone.  This harness probes
leakage with the supervised SWEEP attack (trained on independently locked
copies), mirroring how TRLL was shown to fail ANT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.attacks import SweepAttack
from repro.benchgen.generators import and_netlist, random_netlist
from repro.core.metrics import aggregate_metrics, score_key
from repro.locking.common import LockedCircuit
from repro.netlist import Circuit

__all__ = ["ResilienceReport", "run_ant", "run_rnt", "run_resilience_suite"]


class Locker(Protocol):
    def __call__(
        self, circuit: Circuit, key_size: int, seed: int = ...
    ) -> LockedCircuit: ...


@dataclass(frozen=True)
class ResilienceReport:
    """Outcome of one learning-resilience test.

    Attributes:
        test: ``"ANT"`` or ``"RNT"``.
        kpa: pooled key-prediction accuracy of the probe attack.
        passed: True when the probe stays within *margin* of coin flipping.
        n_bits: total key bits probed.
    """

    test: str
    kpa: float
    passed: bool
    n_bits: int


def _probe(
    test: str,
    make_circuit: Callable[[str, int], Circuit],
    locker: Locker,
    key_size: int,
    n_train: int,
    n_test: int,
    margin: float,
    seed: int,
) -> ResilienceReport:
    corpus = [
        locker(make_circuit(f"{test.lower()}{i}", seed + i), key_size=key_size,
               seed=seed + i)
        for i in range(n_train + n_test)
    ]
    train, test_set = corpus[:n_train], corpus[n_train:]
    attack = SweepAttack(margin=1e-3, undecided="coin", seed=seed).fit(train)
    scores = [
        score_key(attack.attack(t.circuit).predicted_key, t.key)
        for t in test_set
    ]
    pooled = aggregate_metrics(scores)
    kpa = pooled.kpa
    return ResilienceReport(
        test=test,
        kpa=kpa,
        passed=abs(kpa - 0.5) <= margin,
        n_bits=pooled.n_total,
    )


def run_ant(
    locker: Locker,
    key_size: int = 8,
    n_gates: int = 120,
    n_train: int = 4,
    n_test: int = 3,
    margin: float = 0.2,
    seed: int = 0,
) -> ResilienceReport:
    """AND netlist test: single-gate-type designs."""
    return _probe(
        "ANT",
        lambda name, s: and_netlist(name, 10, 5, n_gates, seed=s),
        locker, key_size, n_train, n_test, margin, seed,
    )


def run_rnt(
    locker: Locker,
    key_size: int = 8,
    n_gates: int = 120,
    n_train: int = 4,
    n_test: int = 3,
    margin: float = 0.2,
    seed: int = 0,
) -> ResilienceReport:
    """Random netlist test: well-distributed gate types."""
    return _probe(
        "RNT",
        lambda name, s: random_netlist(name, 10, 5, n_gates, seed=s),
        locker, key_size, n_train, n_test, margin, seed,
    )


def run_resilience_suite(
    locker: Locker, key_size: int = 8, seed: int = 0
) -> tuple[ResilienceReport, ResilienceReport]:
    """Run both tests; a scheme failing either is conclusively vulnerable."""
    return (
        run_ant(locker, key_size=key_size, seed=seed),
        run_rnt(locker, key_size=key_size, seed=seed),
    )
