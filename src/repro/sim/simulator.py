"""Bit-parallel logic simulation.

Patterns are packed 64 per ``uint64`` word, so simulating the paper's
100 000 random patterns over a few-thousand-gate circuit is a handful of
numpy passes.  This replaces the Synopsys VCS flow the authors used for the
Hamming-distance experiment (Fig. 8) with identical combinational semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.netlist import Circuit, evaluate_gate

__all__ = ["pack_patterns", "random_patterns", "simulate", "simulate_outputs"]


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack a ``(n_patterns, n_inputs)`` 0/1 array into uint64 words.

    Returns:
        ``(n_inputs, n_words)`` array, pattern *p* stored in bit ``p % 64``
        of word ``p // 64``.
    """
    patterns = np.asarray(patterns)
    if patterns.ndim != 2:
        raise SimulationError("patterns must be 2-D (n_patterns, n_inputs)")
    n_patterns, n_inputs = patterns.shape
    n_words = (n_patterns + 63) // 64
    packed = np.zeros((n_inputs, n_words), dtype=np.uint64)
    bits = patterns.astype(np.uint64).T  # (n_inputs, n_patterns)
    for p in range(n_patterns):
        word, bit = divmod(p, 64)
        packed[:, word] |= bits[:, p] << np.uint64(bit)
    return packed


def random_patterns(
    n_inputs: int, n_patterns: int, seed: int = 0
) -> tuple[np.ndarray, int]:
    """Generate packed uniform random patterns.

    Returns:
        ``(words, n_patterns)`` where *words* has shape
        ``(n_inputs, ceil(n_patterns / 64))``.  Bits beyond *n_patterns* in
        the last word are random filler; consumers must mask them.
    """
    if n_inputs < 1 or n_patterns < 1:
        raise SimulationError("need at least one input and one pattern")
    rng = np.random.default_rng(seed)
    n_words = (n_patterns + 63) // 64
    words = rng.integers(
        0, np.iinfo(np.uint64).max, size=(n_inputs, n_words), dtype=np.uint64,
        endpoint=True,
    )
    return words, n_patterns


def simulate(
    circuit: Circuit,
    input_words: dict[str, np.ndarray] | np.ndarray,
) -> dict[str, np.ndarray]:
    """Evaluate every net of *circuit* over packed pattern words.

    Args:
        circuit: combinational netlist (validated, loop-free).
        input_words: either a mapping from primary-input name to a word
            array, or a ``(n_inputs, n_words)`` array in declaration order.

    Returns:
        Mapping from every net name (inputs and gates) to its word array.
    """
    if isinstance(input_words, np.ndarray):
        if input_words.shape[0] != len(circuit.inputs):
            raise SimulationError(
                f"expected {len(circuit.inputs)} input rows, "
                f"got {input_words.shape[0]}"
            )
        values: dict[str, np.ndarray] = {
            pi: input_words[i] for i, pi in enumerate(circuit.inputs)
        }
    else:
        values = dict(input_words)
        missing = [pi for pi in circuit.inputs if pi not in values]
        if missing:
            raise SimulationError(f"missing stimulus for inputs {missing!r}")

    shapes = {v.shape for v in values.values()}
    if len(shapes) != 1:
        raise SimulationError(f"inconsistent stimulus shapes {shapes!r}")

    for name in circuit.topological_order():
        gate = circuit.gate(name)
        values[name] = evaluate_gate(
            gate.gate_type, [values[net] for net in gate.inputs]
        )
    return values


def simulate_outputs(
    circuit: Circuit,
    input_words: dict[str, np.ndarray] | np.ndarray,
) -> np.ndarray:
    """Evaluate only the primary outputs; returns ``(n_outputs, n_words)``."""
    values = simulate(circuit, input_words)
    return np.stack([values[po] for po in circuit.outputs])
