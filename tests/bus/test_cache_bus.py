"""Lease-aware ``repro cache gc`` and machine-readable ``cache stats``."""

import json
import os

import pytest

from repro.bus import BusError, SpoolDir, encode_job
from repro.bus.socketbus import parse_address
from repro.cli import main
from repro.experiments import SMOKE_SCALE, make_cell
from repro.experiments.runner import AttackJob
from repro.store import ArtifactStore


def _age(path, days: float) -> None:
    past = os.stat(path).st_mtime - days * 86400.0
    os.utime(path, (past, past))


def _spool_with_inflight(tmp_path, keys) -> SpoolDir:
    spool = SpoolDir(tmp_path / "spool")
    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, "D-MUX", 6, seed=0)
    for key in keys:
        job = AttackJob(store_key=key, circuit={"x": 1}, config=cell.config)
        spool.enqueue(key, encode_job(job))
    return spool


def test_gc_protects_inflight_spool_keys(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    referenced = store.put("attacks", "a" * 16, {"payload": 1})
    collectable = store.put("attacks", "b" * 16, {"payload": 2})
    _age(referenced, 30)
    _age(collectable, 30)
    spool = _spool_with_inflight(tmp_path, ["a" * 16])
    spool.lease()  # leased jobs are protected too, not just pending

    removed, _ = store.gc(keep_days=7, protect=spool.referenced_keys())
    assert removed == 1
    assert referenced.exists(), "gc collected an in-flight job's artifact"
    assert not collectable.exists()


def test_cache_gc_cli_honors_bus_dir(tmp_path, capsys):
    store = ArtifactStore(tmp_path / "store")
    kept = store.put("attacks", "c" * 16, {"payload": 1})
    dropped = store.put("attacks", "d" * 16, {"payload": 2})
    _age(kept, 30)
    _age(dropped, 30)
    spool = _spool_with_inflight(tmp_path, ["c" * 16])

    rc = main(
        [
            "cache",
            "--store",
            str(store.root),
            "gc",
            "--keep-days",
            "7",
            "--bus-dir",
            str(spool.root),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert kept.exists() and not dropped.exists()
    assert "protected 1 in-flight key(s)" in out


def test_cache_gc_cli_reads_bus_dir_from_env(tmp_path, capsys, monkeypatch):
    store = ArtifactStore(tmp_path / "store")
    kept = store.put("attacks", "e" * 16, {"payload": 1})
    _age(kept, 30)
    spool = _spool_with_inflight(tmp_path, ["e" * 16])
    monkeypatch.setenv("REPRO_BUS_DIR", str(spool.root))

    rc = main(["cache", "--store", str(store.root), "gc", "--keep-days", "7"])
    assert rc == 0
    assert kept.exists()
    assert "protected 1" in capsys.readouterr().out


def test_cache_stats_json(tmp_path, capsys):
    store = ArtifactStore(tmp_path / "store")
    store.put("attacks", "a" * 16, {"payload": 1})
    store.put("locks", "b" * 16, {"payload": 2})

    rc = main(["cache", "--store", str(store.root), "stats", "--json"])
    assert rc == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["root"] == str(store.root)
    assert stats["schema"] == store.schema
    assert stats["kinds"]["attacks"]["count"] == 1
    assert stats["kinds"]["locks"]["count"] == 1
    assert stats["total"]["count"] == 2
    assert stats["total"]["bytes"] > 0


def test_parse_address():
    assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
    assert parse_address(":8080") == ("127.0.0.1", 8080)
    assert parse_address("8080") == ("127.0.0.1", 8080)
    assert parse_address("example.com:1") == ("example.com", 1)
    with pytest.raises(BusError, match="malformed"):
        parse_address("no-port-here")
