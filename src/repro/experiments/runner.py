"""Pooled, cache-aware experiment engine for the figure drivers.

The paper's headline figures (Fig. 7-10) are grids of *independent*
(benchmark x scheme x key size) attack cells.  This module turns each
figure into a declarative list of :class:`Cell` jobs and executes them
through one :class:`ExperimentRunner` that

* **parallelizes** — unique attacks are handed to a pluggable
  :class:`~repro.bus.protocol.JobBus`: the default ``local`` bus runs
  them serially or over a ``ProcessPoolExecutor`` on this host
  (``REPRO_JOBS`` / ``--jobs``; ``0`` stays serial so single-core runs
  remain exactly reproducible with zero pool overhead), while the
  ``spool`` and ``socket`` buses fan the same jobs out to independent
  ``repro worker`` processes (``--bus spool --bus-dir`` /
  ``--bus socket``);
* **caches** — locked netlists and trained attack results are keyed by
  content (a digest of the locked BENCH text plus the attack
  configuration with the post-processing threshold normalized out), so a
  netlist locked for Fig. 7 is reused by Fig. 8's Hamming runs and
  Fig. 9's threshold sweep, and a trained checkpoint is reused across
  thresholds and figures wherever the config hash matches;
* **seeds per cell** — every cell derives its lock / train RNG streams
  from ``SeedSequence(seed)`` spawned with a key computed from the cell
  identity ``(benchmark, scheme, key_size)``, *not* from grid iteration
  order, so serial, pooled and reordered runs produce bit-identical
  :class:`~repro.experiments.common.AttackRecord` payloads.

Cache coherence under parallelism is by construction: the parent process
plans the grid, dedupes attack jobs against its caches *before* any work
is submitted, executes only the unique jobs (in the pool or in-process),
and materializes every cell's record from the parent-side caches.
Workers never see the caches, so serial and pooled runs perform the same
unique computations in the same code path.

Every cache layer is a **write-through view over the artifact store**
(:class:`~repro.store.ArtifactStore`) when one is configured
(``--store`` / ``REPRO_STORE``): locked netlists and trained attacks are
probed in memory first, then on disk, and whatever gets computed is
persisted — so a second process resumes ``repro figures`` with zero lock
and zero train jobs.  The scheduler boundary is store-shaped too: a
pending attack is an :class:`AttackJob` — a content-addressed store key
plus the durable lock payload and config — and a worker ships back the
encoded attack artifact, exactly the unit a remote host would return.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.attacks.baseline import (
    BaselineConfig,
    BaselineReport,
    run_baseline_attack,
)
from repro.benchgen import load_benchmark
from repro.bus.protocol import JobBus, resolve_bus
from repro.core import MuxLinkConfig, MuxLinkResult, rescore_key, run_muxlink, score_key
from repro.experiments.common import (
    AttackRecord,
    ExperimentScale,
    lock_with,
)
from repro.locking import LockedCircuit
from repro.netlist import Circuit
from repro.store import (
    ArtifactStore,
    attack_store_key,
    baseline_store_key,
    circuit_digest,
    decode_attack_artifact,
    decode_baseline_artifact,
    decode_circuit,
    decode_lock_artifact,
    encode_attack_artifact,
    encode_baseline_artifact,
    encode_circuit,
    encode_lock_artifact,
    lock_store_key,
    resolve_store,
)

__all__ = [
    "AttackJob",
    "BaselineCell",
    "BaselineJob",
    "Cell",
    "ExperimentRunner",
    "RunnerStats",
    "cell_seed_sequence",
    "derive_baseline_seed",
    "derive_cell_seeds",
    "derive_copy_seeds",
    "execute_attack_job",
    "execute_baseline_job",
    "execute_job",
    "make_baseline_cell",
    "make_cell",
    "record_fingerprint",
    "resolve_jobs",
]


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 0.

    ``0`` and ``1`` both mean *serial in-process* (the reproducible
    single-core default); ``"auto"`` maps to :func:`os.cpu_count`.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "0") or "0"
    if isinstance(jobs, str):
        jobs = os.cpu_count() or 1 if jobs.strip().lower() == "auto" else int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def _stable_u32(text: str) -> int:
    """Order- and process-independent 32-bit hash of a string."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def cell_seed_sequence(
    seed: int, benchmark: str, scheme: str, key_size: int
) -> np.random.SeedSequence:
    """Root :class:`~numpy.random.SeedSequence` of one cell.

    The spawn key is derived from the cell *identity* — not from the
    position of the cell in a grid — so the stream is invariant to grid
    order, pool size and which figure requested the cell.  ``h`` and
    ``threshold`` are deliberately excluded: Fig. 10's hop sweep and
    Fig. 9's threshold sweep attack the *same* locked instance.
    """
    return np.random.SeedSequence(
        entropy=seed,
        spawn_key=(_stable_u32(benchmark), _stable_u32(scheme), int(key_size)),
    )


def derive_cell_seeds(
    seed: int, benchmark: str, scheme: str, key_size: int
) -> tuple[int, int]:
    """Independent ``(lock_seed, train_seed)`` streams for one cell."""
    lock_ss, train_ss = cell_seed_sequence(seed, benchmark, scheme, key_size).spawn(2)
    return (
        int(lock_ss.generate_state(1)[0]),
        int(train_ss.generate_state(1)[0]),
    )


def derive_copy_seeds(
    seed: int, benchmark: str, scheme: str, key_size: int, copy: int = 0
) -> tuple[int, int]:
    """``(lock_seed, train_seed)`` for locked copy *copy* of one cell.

    Spawned children of a :class:`~numpy.random.SeedSequence` are keyed
    by their index, so copy 0 is **bit-identical** to
    :func:`derive_cell_seeds` — a baseline attack on copy 0 shares the
    fig7 grid's locked netlist (and therefore its lock artifact) by
    content address, while every further copy gets an independent
    stream regardless of how many copies any particular figure asked
    for.
    """
    children = cell_seed_sequence(seed, benchmark, scheme, key_size).spawn(
        2 * (int(copy) + 1)
    )
    return (
        int(children[2 * copy].generate_state(1)[0]),
        int(children[2 * copy + 1].generate_state(1)[0]),
    )


def derive_baseline_seed(
    seed: int,
    benchmark: str,
    scheme: str,
    key_size: int,
    attack: str,
    copy: int = 0,
) -> int:
    """Coin-flip stream for one ``(cell, attack, copy)`` baseline run.

    The 5-element spawn key cannot collide with the 3-element cell
    roots or their 4-element spawned children, and hashing the attack
    name in keeps SCOPE's and SWEEP's coins independent on the same
    locked copy — the correlated-RNG bug the old ``seed + i`` scheme
    had (fig2 once fed the lock, SCOPE and SWEEP one flat stream).
    """
    root = np.random.SeedSequence(
        entropy=seed,
        spawn_key=(
            _stable_u32(benchmark),
            _stable_u32(scheme),
            int(key_size),
            _stable_u32(f"baseline:{attack}"),
            int(copy),
        ),
    )
    return int(root.generate_state(1)[0])


@dataclass(frozen=True)
class Cell:
    """One declarative attack job of a figure grid.

    ``lock_seed`` and ``config`` (whose sampling/train seeds are the
    cell's derived streams) are precomputed by :func:`make_cell`, so a
    ``Cell`` is a self-contained, hashable, picklable work item.
    """

    benchmark: str
    scheme: str
    key_size: int
    circuit_scale: float
    seed: int
    lock_seed: int
    config: MuxLinkConfig


def make_cell(
    scale: ExperimentScale,
    benchmark: str,
    circuit_scale: float,
    scheme: str,
    key_size: int,
    seed: int = 0,
    *,
    h: int | None = None,
    threshold: float | None = None,
) -> Cell:
    """Build a :class:`Cell` with per-cell RNG streams derived from *seed*."""
    lock_seed, train_seed = derive_cell_seeds(seed, benchmark, scheme, key_size)
    config = scale.attack_config(seed=train_seed)
    if h is not None:
        config = replace(config, h=h)
    if threshold is not None:
        config = replace(config, threshold=threshold)
    return Cell(
        benchmark=benchmark,
        scheme=scheme,
        key_size=int(key_size),
        circuit_scale=float(circuit_scale),
        seed=int(seed),
        lock_seed=lock_seed,
        config=config,
    )


@dataclass(frozen=True)
class BaselineCell:
    """One declarative baseline-attack job (SAAM/SCOPE/SWEEP/random).

    The same self-contained shape as :class:`Cell`: lock seeds and the
    attack config are precomputed by :func:`make_baseline_cell`, so a
    grid is pure data.  ``copy`` indexes the locked instance under
    attack (copy 0 shares the MuxLink grid's lock by construction);
    ``train_copies``/``train_lock_seeds`` name SWEEP's supervised
    corpus — other locked copies of the *same* cell identity, in order.
    """

    benchmark: str
    scheme: str
    key_size: int
    circuit_scale: float
    seed: int
    copy: int
    lock_seed: int
    attack: str
    config: BaselineConfig
    train_copies: tuple[int, ...] = ()
    train_lock_seeds: tuple[int, ...] = ()


def make_baseline_cell(
    benchmark: str,
    circuit_scale: float,
    scheme: str,
    key_size: int,
    attack: str,
    seed: int = 0,
    copy: int = 0,
    train_copies: tuple[int, ...] = (),
    *,
    undecided: str = "coin",
    threshold: float = 1e-9,
    margin: float = 1e-6,
    ridge: float = 1e-3,
) -> BaselineCell:
    """Build a :class:`BaselineCell` with per-cell derived RNG streams."""
    lock_seed, _ = derive_copy_seeds(seed, benchmark, scheme, key_size, copy)
    config = BaselineConfig(
        attack=attack,
        undecided=undecided,
        seed=derive_baseline_seed(seed, benchmark, scheme, key_size, attack, copy),
        threshold=threshold,
        margin=margin,
        ridge=ridge,
    )
    return BaselineCell(
        benchmark=benchmark,
        scheme=scheme,
        key_size=int(key_size),
        circuit_scale=float(circuit_scale),
        seed=int(seed),
        copy=int(copy),
        lock_seed=lock_seed,
        attack=attack,
        config=config,
        train_copies=tuple(int(j) for j in train_copies),
        train_lock_seeds=tuple(
            derive_copy_seeds(seed, benchmark, scheme, key_size, j)[0]
            for j in train_copies
        ),
    )


@dataclass
class RunnerStats:
    """Instrumented cache counters (tests assert zero re-locks on warm runs).

    ``*_computed`` counts real work, ``*_loaded`` counts artifacts
    rematerialized from the on-disk store, ``*_reused`` counts in-memory
    (same-process) hits — a warm resumed ``repro figures`` therefore
    shows ``locks_computed == attacks_computed == 0``.
    """

    bases_loaded: int = 0
    bases_reused: int = 0
    locks_computed: int = 0
    locks_loaded: int = 0
    locks_reused: int = 0
    attacks_computed: int = 0
    attacks_loaded: int = 0
    attacks_reused: int = 0
    baselines_computed: int = 0
    baselines_loaded: int = 0
    baselines_reused: int = 0
    cells_run: int = 0

    def summary(self) -> str:
        return (
            f"cells={self.cells_run} "
            f"locks={self.locks_computed} "
            f"(+{self.locks_reused} cached, +{self.locks_loaded} store) "
            f"attacks={self.attacks_computed} "
            f"(+{self.attacks_reused} cached, +{self.attacks_loaded} store) "
            f"baselines={self.baselines_computed} "
            f"(+{self.baselines_reused} cached, "
            f"+{self.baselines_loaded} store)"
        )


@dataclass(frozen=True)
class AttackJob:
    """One pending unique attack, in the scheduler's exchange format.

    A job carries no live library objects: the netlist travels as the
    gate-order-preserving lock payload dict and the result comes back as
    the encoded attack artifact — the same bytes-shaped unit the store
    persists, so a worker can be a local process today and a remote host
    tomorrow (it would ship the payload back instead of writing our
    filesystem).

    Attributes:
        store_key: content address the finished artifact lands under.
        circuit: ``repro.store.encode_circuit`` payload of the locked
            netlist (gate order preserved — node indexing depends on it).
        config: the attack configuration (declarative, picklable).
    """

    #: Wire tag dispatching :func:`repro.bus.protocol.decode_job` and
    #: :func:`execute_job`; ``artifact_kind`` is the store kind the
    #: finished payload lands under (class attributes, not fields — the
    #: values are implied by the type and never travel per instance).
    kind = "attack"
    artifact_kind = "attacks"

    store_key: str
    circuit: dict
    config: MuxLinkConfig


@dataclass(frozen=True)
class BaselineJob:
    """One pending baseline attack, in the same exchange format.

    ``circuit`` is the key-less encoded target (the attacks are
    oracle-less); ``train`` carries SWEEP's corpus as full encoded lock
    artifacts (keys included — supervision needs the ground truth), in
    corpus order.
    """

    kind = "baseline"
    artifact_kind = "baselines"

    store_key: str
    circuit: dict
    config: BaselineConfig
    train: tuple = ()


def execute_attack_job(job: AttackJob) -> dict:
    """Run one :class:`AttackJob`; returns the encoded attack artifact.

    The single code path for serial and pooled execution (workers import
    this module-level function).  Consumes and produces store payloads —
    never live :class:`Circuit` / :class:`MuxLinkResult` objects — so
    executing a job is independent of the submitting process's caches.
    """
    return encode_attack_artifact(
        run_muxlink(decode_circuit(job.circuit), job.config)
    )


def execute_baseline_job(job: BaselineJob) -> dict:
    """Run one :class:`BaselineJob`; returns the encoded report."""
    train = tuple(
        decode_lock_artifact(payload) for payload in job.train
    )
    report = run_baseline_attack(
        decode_circuit(job.circuit), job.config, train=train
    )
    return encode_baseline_artifact(report)


def execute_job(job) -> dict:
    """Execute any bus job — the one entry point every backend uses."""
    kind = getattr(job, "kind", "attack")
    if kind == "attack":
        return execute_attack_job(job)
    if kind == "baseline":
        return execute_baseline_job(job)
    raise ValueError(f"unknown job kind {kind!r}")


def record_fingerprint(record: AttackRecord) -> tuple:
    """Deterministic payload of a record, for bit-identity assertions.

    Covers everything the attack *computed* — predicted key, metrics,
    per-MUX likelihoods, training losses — and excludes only wall-clock
    timing, which can never be identical between two runs.  Works for
    both MuxLink records (``extras["result"]``) and baseline records
    (``extras["report"]``).
    """
    if "report" in record.extras:
        report: BaselineReport = record.extras["report"]
        return (
            record.benchmark,
            record.scheme,
            record.key_size,
            report.attack,
            record.extras.get("copy", 0),
            record.predicted_key,
            (
                record.metrics.n_total,
                record.metrics.n_correct,
                record.metrics.n_wrong,
                record.metrics.n_x,
            ),
            tuple(sorted(report.scores.items())),
            report.n_blind,
            record.extras["locked"].key,
        )
    result = record.extras["result"]
    scored = tuple(
        sorted(
            (s.mux_name, s.key_index, s.load, s.likelihoods)
            for s in result.scored
        )
    )
    return (
        record.benchmark,
        record.scheme,
        record.key_size,
        record.predicted_key,
        (
            record.metrics.n_total,
            record.metrics.n_correct,
            record.metrics.n_wrong,
            record.metrics.n_x,
        ),
        scored,
        tuple(result.history.train_loss),
        tuple(result.history.val_loss),
        record.extras["locked"].key,
    )


class ExperimentRunner:
    """Executes :class:`Cell` grids with artifact reuse and an optional pool.

    One runner instance is intended to be shared across figure drivers
    (see ``repro figures``): Fig. 8 / Fig. 9 / Fig. 10 then reuse the
    base circuits, locked netlists and trained attacks that Fig. 7
    already produced.  The runner is a context manager; ``close()``
    shuts the worker pool down (caches survive until the runner is
    garbage collected).

    With a *store* (an :class:`~repro.store.ArtifactStore`, a path, or
    the ``REPRO_STORE`` environment variable), the in-memory caches
    become a write-through view over the persistent content-addressed
    store: misses fall through to disk before computing, and computed
    locks/attacks are persisted — ``repro figures`` then resumes across
    invocations, and the CLI / bench suite / figure drivers share one
    artifact pool.  The in-memory layer stays in front, so the hot path
    of a single process is unchanged.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        store: ArtifactStore | str | os.PathLike | None = None,
        bus: JobBus | str | None = None,
        bus_dir: str | os.PathLike | None = None,
        bus_addr: str | None = None,
        liveness: float | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = resolve_store(store)
        self.bus = resolve_bus(
            bus,
            jobs=self.jobs,
            store=self.store,
            bus_dir=bus_dir,
            bus_addr=bus_addr,
            liveness=liveness,
        )
        self.stats = RunnerStats()
        self._bases: dict[tuple[str, float], Circuit] = {}
        self._base_digests: dict[tuple[str, float], str] = {}
        self._locks: dict[tuple, LockedCircuit] = {}
        self._digests: dict[tuple, str] = {}
        self._attacks: dict[str, MuxLinkResult] = {}
        self._baselines: dict[str, BaselineReport] = {}

    # -- context management -------------------------------------------------
    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the job bus (worker pool / sockets; idempotent)."""
        self.bus.close()

    # -- artifact caches ----------------------------------------------------
    def base_circuit(self, benchmark: str, circuit_scale: float) -> Circuit:
        """Load (or reuse) one stand-in benchmark circuit."""
        key = (benchmark, float(circuit_scale))
        if key in self._bases:
            self.stats.bases_reused += 1
        else:
            self._bases[key] = load_benchmark(benchmark, scale=circuit_scale)
            self.stats.bases_loaded += 1
        return self._bases[key]

    @staticmethod
    def _lock_key(cell: Cell) -> tuple:
        return (
            cell.benchmark,
            cell.circuit_scale,
            cell.scheme,
            cell.key_size,
            cell.lock_seed,
        )

    def _base_digest(self, benchmark: str, circuit_scale: float) -> str:
        """Content digest of a base circuit (feeds the lock store key)."""
        key = (benchmark, float(circuit_scale))
        if key not in self._base_digests:
            base = self.base_circuit(benchmark, circuit_scale)
            self._base_digests[key] = circuit_digest(base)
        return self._base_digests[key]

    def _record_lock(self, key: tuple, locked: LockedCircuit) -> str:
        # Comment-free design digest — the same address ``run_muxlink``
        # computes, so ``repro attack --store`` on a dumped locked BENCH
        # hits the artifact the figure runner trained (the attack is
        # oracle-less; neither the key nor the file name is content).
        self._locks[key] = locked
        self._digests[key] = circuit_digest(locked.circuit)
        return self._digests[key]

    def _lock_instance(
        self,
        benchmark: str,
        circuit_scale: float,
        scheme: str,
        key_size: int,
        lock_seed: int,
    ) -> LockedCircuit:
        """Lock (or reuse) one netlist instance; digests feed attack keys.

        Probe order: in-memory cache, then the artifact store (the
        decoded payload preserves gate insertion order, so a store-loaded
        netlist is attack-identical to a freshly locked one), then a real
        locking pass — which is written through to the store.  Explicit
        arguments (rather than a cell) because SWEEP's training corpus
        locks instances no cell directly attacks.
        """
        key = (benchmark, float(circuit_scale), scheme, int(key_size), int(lock_seed))
        if key in self._locks:
            self.stats.locks_reused += 1
            return self._locks[key]
        store_key = None
        if self.store is not None:
            store_key = lock_store_key(
                self._base_digest(benchmark, circuit_scale),
                scheme,
                key_size,
                lock_seed,
            )
            locked = self.store.get(
                "locks", store_key, decoder=decode_lock_artifact
            )
            if locked is not None:
                self._record_lock(key, locked)
                self.stats.locks_loaded += 1
                return locked
        base = self.base_circuit(benchmark, circuit_scale)
        locked = lock_with(scheme, base, key_size=key_size, seed=lock_seed)
        self._record_lock(key, locked)
        self.stats.locks_computed += 1
        if store_key is not None:
            self.store.put("locks", store_key, encode_lock_artifact(locked))
        return locked

    def locked_circuit(self, cell: "Cell | BaselineCell") -> LockedCircuit:
        """Lock (or reuse) the cell's netlist (see :meth:`_lock_instance`)."""
        return self._lock_instance(
            cell.benchmark,
            cell.circuit_scale,
            cell.scheme,
            cell.key_size,
            cell.lock_seed,
        )

    @staticmethod
    def _attack_key(digest: str, config: MuxLinkConfig) -> str:
        # Content address shared with the on-disk store: the
        # post-processing threshold and the pure execution knobs are
        # normalized out (Fig. 9 rescales without retraining; worker
        # counts cannot move a bit of the result).
        return attack_store_key(digest, config)

    # -- execution ----------------------------------------------------------
    def run(self, cells) -> list[AttackRecord]:
        """Execute a grid; returns one record per cell, in cell order.

        Grids may freely mix MuxLink :class:`Cell`\\ s and
        :class:`BaselineCell`\\ s — all pending unique jobs ride one bus
        wave, so a leaderboard's GNN trainings and its SCOPE/SWEEP runs
        fan out over the same workers.
        """
        cells = list(cells)
        plans: list[tuple] = []
        pending: dict = {}
        for cell in cells:
            if isinstance(cell, BaselineCell):
                plans.append(self._plan_baseline(cell, pending))
            else:
                plans.append(self._plan_attack(cell, pending))

        self._execute(pending)
        self.stats.cells_run += len(cells)
        return [self._materialize(*plan) for plan in plans]

    def _plan_attack(self, cell: Cell, pending: dict) -> tuple:
        locked = self.locked_circuit(cell)
        lock_key = self._lock_key(cell)
        attack_key = self._attack_key(self._digests[lock_key], cell.config)
        if attack_key in self._attacks or attack_key in pending:
            self.stats.attacks_reused += 1
        elif self._load_attack(attack_key):
            self.stats.attacks_loaded += 1
        else:
            pending[attack_key] = AttackJob(
                store_key=attack_key,
                circuit=encode_circuit(locked.circuit),
                config=cell.config,
            )
            self.stats.attacks_computed += 1
        return (cell, lock_key, attack_key)

    def _plan_baseline(self, cell: BaselineCell, pending: dict) -> tuple:
        locked = self.locked_circuit(cell)
        lock_key = self._lock_key(cell)
        train_locks = [
            self._lock_instance(
                cell.benchmark,
                cell.circuit_scale,
                cell.scheme,
                cell.key_size,
                lock_seed,
            )
            for lock_seed in cell.train_lock_seeds
        ]
        train_pairs = tuple(
            (
                self._digests[
                    (
                        cell.benchmark,
                        cell.circuit_scale,
                        cell.scheme,
                        cell.key_size,
                        int(lock_seed),
                    )
                ],
                lk.key,
            )
            for lock_seed, lk in zip(cell.train_lock_seeds, train_locks)
        )
        baseline_key = baseline_store_key(
            self._digests[lock_key], cell.config, train_pairs
        )
        if baseline_key in self._baselines or baseline_key in pending:
            self.stats.baselines_reused += 1
        elif self._load_baseline(baseline_key):
            self.stats.baselines_loaded += 1
        else:
            pending[baseline_key] = BaselineJob(
                store_key=baseline_key,
                circuit=encode_circuit(locked.circuit),
                config=cell.config,
                train=tuple(
                    encode_lock_artifact(lk) for lk in train_locks
                ),
            )
            self.stats.baselines_computed += 1
        return (cell, lock_key, baseline_key)

    def _load_attack(self, attack_key: str) -> bool:
        """Rematerialize one trained attack from the store, if present."""
        if self.store is None:
            return False
        result = self.store.get(
            "attacks", attack_key, decoder=decode_attack_artifact
        )
        if result is None:
            return False
        self._attacks[attack_key] = result
        return True

    def _load_baseline(self, baseline_key: str) -> bool:
        """Rematerialize one baseline report from the store, if present."""
        if self.store is None:
            return False
        report = self.store.get(
            "baselines", baseline_key, decoder=decode_baseline_artifact
        )
        if report is None:
            return False
        self._baselines[baseline_key] = report
        return True

    def _execute(self, pending: dict[str, AttackJob]) -> None:
        """Run the unique jobs through the configured bus.

        Every finished artifact is cached and written through **as it
        completes** — a crashed worker or an interrupt late in a grid
        must not discard hours of already-finished training; the rerun
        resumes from whatever landed in the store.  Failure semantics
        are the bus's (the local bus re-raises the first failure after
        draining survivors; the distributed buses requeue and ultimately
        quarantine).
        """
        jobs = list(pending.values())
        if not jobs:
            return
        for job, payload, persisted in self.bus.run(jobs):
            self._finish_job(job, payload, persisted=persisted)

    def _finish_job(
        self, job, payload: dict, persisted: bool = False
    ) -> None:
        if getattr(job, "kind", "attack") == "baseline":
            self._baselines[job.store_key] = decode_baseline_artifact(payload)
        else:
            self._attacks[job.store_key] = decode_attack_artifact(payload)
        if self.store is not None and not persisted:
            self.store.put(
                getattr(job, "artifact_kind", "attacks"),
                job.store_key,
                payload,
            )

    def _materialize(self, cell, lock_key: tuple, artifact_key: str) -> AttackRecord:
        if isinstance(cell, BaselineCell):
            return self._materialize_baseline(cell, lock_key, artifact_key)
        return self._materialize_attack(cell, lock_key, artifact_key)

    def _materialize_baseline(
        self, cell: BaselineCell, lock_key: tuple, baseline_key: str
    ) -> AttackRecord:
        report = self._baselines[baseline_key]
        locked = self._locks[lock_key]
        metrics = score_key(report.predicted_key, locked.key)
        return AttackRecord(
            benchmark=cell.benchmark,
            scheme=cell.scheme,
            key_size=cell.key_size,
            metrics=metrics,
            runtime_seconds=report.runtime_seconds,
            predicted_key=report.predicted_key,
            extras={
                "report": report,
                "locked": locked,
                "attack": cell.attack,
                "copy": cell.copy,
            },
        )

    def _materialize_attack(
        self, cell: Cell, lock_key: tuple, attack_key: str
    ) -> AttackRecord:
        result = self._attacks[attack_key]
        locked = self._locks[lock_key]
        # Rescoring at the cell's own threshold keeps cached results exact
        # across Fig. 9's sweep; at the trained threshold it is the
        # identity (post-processing is deterministic).
        predicted = rescore_key(result, cell.config.threshold)
        metrics = score_key(predicted, locked.key)
        return AttackRecord(
            benchmark=cell.benchmark,
            scheme=cell.scheme,
            key_size=cell.key_size,
            metrics=metrics,
            runtime_seconds=result.total_runtime,
            predicted_key=predicted,
            extras={
                "result": result,
                "locked": locked,
                "base": self._bases[(cell.benchmark, cell.circuit_scale)],
            },
        )
