"""Tests for Hamming-distance evaluation."""

import pytest

from repro.benchgen import load_c17, random_netlist
from repro.errors import SimulationError
from repro.netlist import Circuit, Gate, GateType
from repro.sim import hamming_distance, probably_equivalent


def test_identical_circuits_have_zero_hd():
    c = load_c17()
    assert hamming_distance(c, c.copy(), n_patterns=2048) == 0.0
    assert probably_equivalent(c, c.copy())


def test_inverted_output_hd():
    c = load_c17()
    broken = c.copy()
    broken.add_gate(Gate("inv22", GateType.NOT, ("G22",)))
    broken.redirect_output("G22", "inv22")
    # Renaming breaks the name-set check, so rename back via buffer.
    with pytest.raises(SimulationError):
        hamming_distance(c, broken)


def test_single_stuck_output():
    """Forcing one of two outputs to its complement gives HD ~= half the
    per-output error rate."""
    c = Circuit("t", inputs=["a", "b"])
    c.add_gate(Gate("y1", GateType.AND, ("a", "b")))
    c.add_gate(Gate("y2", GateType.OR, ("a", "b")))
    c.add_output("y1")
    c.add_output("y2")

    broken = Circuit("t2", inputs=["a", "b"])
    broken.add_gate(Gate("y1", GateType.NAND, ("a", "b")))  # inverted
    broken.add_gate(Gate("y2", GateType.OR, ("a", "b")))
    broken.add_output("y1")
    broken.add_output("y2")

    hd = hamming_distance(c, broken, n_patterns=4096, seed=1)
    assert hd == pytest.approx(0.5, abs=0.02)  # y1 always wrong, y2 right


def test_output_order_independence():
    c = load_c17()
    swapped = Circuit("sw", inputs=list(c.inputs))
    for name in c.topological_order():
        swapped.add_gate(c.gate(name))
    swapped.add_output("G23")
    swapped.add_output("G22")
    assert hamming_distance(c, swapped, n_patterns=1024) == 0.0


def test_mismatched_interfaces_rejected():
    c = load_c17()
    other = random_netlist("r", 5, 2, 20, seed=0)
    with pytest.raises(SimulationError):
        hamming_distance(c, other)


def test_hd_is_deterministic_per_seed():
    a = load_c17()
    b = Circuit("b", inputs=list(a.inputs))
    for name in a.topological_order():
        g = a.gate(name)
        if name == "G22":
            b.add_gate(Gate(name, GateType.AND, g.inputs))  # wrong type
        else:
            b.add_gate(g)
    for po in a.outputs:
        b.add_output(po)
    h1 = hamming_distance(a, b, n_patterns=512, seed=9)
    h2 = hamming_distance(a, b, n_patterns=512, seed=9)
    assert h1 == h2
    assert 0.0 < h1 < 1.0
