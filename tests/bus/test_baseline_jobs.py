"""Baseline jobs are first-class bus citizens alongside MuxLink jobs."""

import pytest

from repro.attacks import BaselineConfig
from repro.benchgen import random_netlist
from repro.bus import (
    JOB_ARTIFACT_KINDS,
    BusError,
    SpoolBus,
    decode_job,
    encode_job,
    job_artifact_kind,
)
from repro.experiments.runner import (
    BaselineJob,
    execute_baseline_job,
    execute_job,
)
from repro.locking import lock_dmux
from repro.store import (
    ArtifactStore,
    decode_baseline_artifact,
    encode_circuit,
    encode_lock_artifact,
)


def _baseline_job(attack="scope", train=()):
    locked = lock_dmux(
        random_netlist("base", 8, 4, 80, seed=0), key_size=6, seed=1
    )
    return BaselineJob(
        store_key="k" * 64,
        circuit=encode_circuit(locked.circuit),
        config=BaselineConfig(attack=attack, undecided="coin", seed=5),
        train=tuple(encode_lock_artifact(t) for t in train),
    )


def test_kind_registry():
    assert JOB_ARTIFACT_KINDS == {"attack": "attacks", "baseline": "baselines"}
    assert job_artifact_kind("baseline") == "baselines"
    with pytest.raises(BusError, match="unknown job kind"):
        job_artifact_kind("mystery")


def test_baseline_job_wire_round_trip():
    job = _baseline_job()
    payload = encode_job(job)
    assert payload["kind"] == "baseline"
    decoded = decode_job(payload)
    assert isinstance(decoded, BaselineJob)
    assert decoded.kind == "baseline"
    assert decoded.artifact_kind == "baselines"
    assert decoded.store_key == job.store_key
    assert decoded.config == job.config
    assert decoded.train == ()


def test_baseline_job_wire_round_trip_with_train():
    train = [
        lock_dmux(random_netlist("base", 8, 4, 80, seed=s), key_size=6, seed=s)
        for s in (2, 3)
    ]
    job = _baseline_job(attack="sweep", train=train)
    decoded = decode_job(encode_job(job))
    assert len(decoded.train) == 2
    artifact = execute_job(decoded)
    report = decode_baseline_artifact(artifact)
    assert report.attack == "sweep"
    assert len(report.predicted_key) == 6


def test_decode_rejects_unknown_kind():
    payload = encode_job(_baseline_job())
    payload["kind"] = "mystery"
    with pytest.raises(BusError, match="unknown job kind"):
        decode_job(payload)


def test_execute_job_dispatches_on_kind():
    job = _baseline_job()
    via_dispatch = decode_baseline_artifact(execute_job(job))
    direct = decode_baseline_artifact(execute_baseline_job(job))
    assert via_dispatch.predicted_key == direct.predicted_key
    assert via_dispatch.scores == direct.scores


def test_spool_bus_carries_baseline_jobs(tmp_path):
    """A baseline job spooled to disk executes (here: drained inline by
    adopting from a warmed store) under the 'baselines' artifact kind."""
    store = ArtifactStore(tmp_path / "store")
    job = _baseline_job()
    store.put("baselines", job.store_key, execute_baseline_job(job))
    bus = SpoolBus(tmp_path / "spool", store=store, poll=0.05)
    results = list(bus.run([job]))
    assert len(results) == 1
    finished, payload, persisted = results[0]
    assert finished is job
    assert persisted is True
    assert decode_baseline_artifact(payload).attack == "scope"
