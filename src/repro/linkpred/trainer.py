"""DGCNN training engine for link prediction (paper Sec. III-D / IV).

Follows the paper's recipe: Adam, 100 epochs, initial learning rate 1e-4,
keep the parameters that perform best on the 10 % validation split.
CI-scale experiments pass smaller epoch counts through the same interface.

The engine is built for throughput:

* **Cached batch components** — every example's normalized operator and
  feature block is built exactly once per split
  (:class:`~repro.gnn.BatchAssembler`); the per-epoch shuffle then
  assembles batches by pure array stitching, so epochs 2..N run none of
  the coo/dedup/degree scipy work.  The trajectory is bit-identical to
  the seed per-epoch rebuild at equal dtype.  Validation and scoring
  iterate fixed prebuilt batches (:class:`~repro.gnn.BatchCache`).
* **float32 runtime** — see the dtype policy in :mod:`repro.nn`
  (``REPRO_DTYPE=float64`` restores the well-conditioned mode).
* **Resumable** — :class:`Trainer` checkpoints weights, optimizer moments
  and both RNG streams, so an interrupted run resumes bit-identically.

:func:`train_link_predictor` remains the thin compatibility wrapper over
:class:`Trainer` that every existing caller uses.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.gnn import (
    BatchAssembler,
    BatchCache,
    DGCNN,
    GraphBatch,
    GraphExample,
    build_batch,
    choose_sortpool_k,
)
from repro.linkpred.dataset import LinkDataset
from repro.nn import KFAC, Adam, default_dtype

__all__ = [
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "make_trainer",
    "train_link_predictor",
    "score_examples",
    "score_stream",
]

#: Paper batch size; also the fallback for :func:`score_examples` callers
#: that do not thread a :class:`TrainConfig` through.
DEFAULT_BATCH_SIZE = 50


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the link-prediction GNN.

    Defaults are the paper's settings; ``epochs`` is the main knob CI-scale
    runs turn down.

    Attributes:
        epochs: maximum training epochs.
        learning_rate: initial Adam learning rate.
        batch_size: minibatch size (fixed cache partition).
        sortpool_percentile: SortPooling k percentile (paper: 0.6).
        seed: parameter / shuffle seed.
        patience: early stopping — abort when the validation loss has not
            improved for this many consecutive epochs (``None`` disables).
        lr_decay: multiplicative LR decay factor.
        lr_decay_every: apply ``lr_decay`` every this many epochs
            (``0`` disables scheduling).
        optimizer: ``"adam"`` (the paper's update rule) or ``"kfac"``
            (K-FAC-preconditioned Adam — second-order curvature fixes the
            gradient direction, Adam keeps the per-parameter scaling).
            A *semantic* knob: it changes the trajectory and therefore
            the artifact identity.
        kfac_damping: Tikhonov damping λ of the Kronecker factor
            inverses (``"kfac"`` only).
        kfac_ema_decay: EMA decay of the curvature factors.
        kfac_inv_every: recompute the damped exact inverses every this
            many steps.
        kfac_cov_every: collect curvature statistics every this many
            steps (``1`` = every step; larger values amortize the
            collection cost, the EMA factors coast in between).
        kfac_max_dim: skip preconditioning for blocks whose factor
            dimension exceeds this (``0`` = no cap).  The widest block —
            the first dense layer — costs an order of magnitude more to
            invert than all others combined; capped blocks keep their
            raw gradient.
        grad_shards: per-step gradient shard count — another *semantic*
            knob: each optimizer step averages this many fixed
            contiguous shards of the shuffled batch (weighted by shard
            size, reduced in shard order), so the trajectory depends on
            it but on nothing about how the shards are executed.  ``1``
            is exactly the single-batch formulation.
        n_train_workers: *execution* knob — how many processes the
            shards of a step are distributed over (capped at
            ``grad_shards``).  Any value produces bit-identical results,
            so the artifact store normalizes it out of the config token.
        checkpoint_path: where :class:`Trainer` persists its state.
        checkpoint_every: save a checkpoint every N epochs (``0`` = only
            the final one; ignored without ``checkpoint_path``).
        resume: resume from ``checkpoint_path`` when the file exists.
        log_every: print a progress line every N epochs (``0`` = silent).
    """

    epochs: int = 100
    learning_rate: float = 1e-4
    batch_size: int = DEFAULT_BATCH_SIZE
    sortpool_percentile: float = 0.6
    seed: int = 0
    patience: int | None = None
    lr_decay: float = 1.0
    lr_decay_every: int = 0
    optimizer: str = "adam"
    kfac_damping: float = 1e-3
    kfac_ema_decay: float = 0.95
    kfac_inv_every: int = 10
    kfac_cov_every: int = 1
    kfac_max_dim: int = 0
    grad_shards: int = 1
    n_train_workers: int = 1
    checkpoint_path: str | None = None
    checkpoint_every: int = 0
    resume: bool = False
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.optimizer not in ("adam", "kfac"):
            raise ValueError(
                f"optimizer must be 'adam' or 'kfac', got {self.optimizer!r}"
            )
        if self.grad_shards < 1:
            raise ValueError(f"grad_shards must be >= 1, got {self.grad_shards}")
        if self.kfac_cov_every < 1:
            raise ValueError(
                f"kfac_cov_every must be >= 1, got {self.kfac_cov_every}"
            )
        if self.kfac_max_dim < 0:
            raise ValueError(
                f"kfac_max_dim must be >= 0, got {self.kfac_max_dim}"
            )
        if self.n_train_workers < 1:
            raise ValueError(
                f"n_train_workers must be >= 1, got {self.n_train_workers}"
            )


@dataclass
class TrainHistory:
    """Per-epoch train loss, validation loss/accuracy/AUC and learning rate."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    val_auc: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_accuracy: float = 0.0
    best_val_loss: float = float("inf")
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


def _iter_batches(
    examples: Sequence[GraphExample],
    batch_size: int,
    cache: BatchCache | None = None,
) -> Iterator[GraphBatch]:
    """Yield evaluation batches — prebuilt from *cache* when available.

    This is the one chunked-batching loop shared by validation
    (:func:`_evaluate`) and scoring (:func:`score_examples`).
    """
    if cache is not None:
        yield from cache
    else:
        for start in range(0, len(examples), batch_size):
            yield build_batch(examples[start : start + batch_size])


def _roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the Mann-Whitney rank statistic (average-tie ranks).

    ``nan`` for single-class label sets — with tiny validation splits a
    class can be absent, and a fake 0.5 would poison best-epoch logic.
    """
    from scipy.stats import rankdata

    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    n_pos = int((labels == 1).sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    ranks = rankdata(scores)
    pos_rank_sum = float(ranks[labels == 1].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def _evaluate(
    model: DGCNN,
    examples: Sequence[GraphExample],
    batch_size: int,
    cache: BatchCache | None = None,
) -> tuple[float, float, float]:
    """``(mean cross-entropy, accuracy, ROC AUC)`` over *examples* in
    eval mode."""
    n = cache.n_examples if cache is not None else len(examples)
    if n == 0:
        return float("nan"), float("nan"), float("nan")
    correct = 0
    loss_sum = 0.0
    all_probs: list[np.ndarray] = []
    all_labels: list[np.ndarray] = []
    for batch in _iter_batches(examples, batch_size, cache):
        probs = model.predict_proba(batch)
        labels = batch.labels
        predicted = (probs > 0.5).astype(int)
        correct += int((predicted == labels).sum())
        clipped = np.clip(np.where(labels == 1, probs, 1 - probs), 1e-12, 1.0)
        loss_sum += float(-np.log(clipped).sum())
        all_probs.append(probs)
        all_labels.append(labels)
    auc = _roc_auc(np.concatenate(all_labels), np.concatenate(all_probs))
    return loss_sum / n, correct / n, auc


def score_examples(
    model: DGCNN,
    examples: Sequence[GraphExample],
    batch_size: int | None = None,
    cache: BatchCache | None = None,
) -> np.ndarray:
    """Likelihood of "link exists" for each example (paper step 5).

    ``batch_size`` defaults to :data:`DEFAULT_BATCH_SIZE`; callers with a
    :class:`TrainConfig` should pass ``config.batch_size`` so scoring
    chunks match the training configuration.

    Like :func:`_evaluate`, an optional prebuilt *cache* (a
    :class:`~repro.gnn.BatchCache` over the same examples) skips batch
    construction entirely — repeated scoring of a fixed split then pays
    the scipy/stacking cost exactly once, at cache build.
    """
    n = cache.n_examples if cache is not None else len(examples)
    if n == 0:
        return np.empty(0)
    if batch_size is None:
        batch_size = cache.batch_size if cache is not None else DEFAULT_BATCH_SIZE
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return np.concatenate(
        [
            model.predict_proba(batch)
            for batch in _iter_batches(examples, batch_size, cache)
        ]
    )


def score_stream(
    model: DGCNN,
    example_chunks: Iterable[Sequence[GraphExample]],
    batch_size: int | None = None,
    prefetch: int = 2,
) -> np.ndarray:
    """Score a stream of example chunks, overlapping production with GNN
    forwards.

    A producer thread drains *example_chunks* — doing whatever lazy work
    the iterable encodes, typically target-subgraph extraction and
    featurization (:func:`repro.linkpred.dataset.iter_target_examples`) —
    regroups the examples into :data:`DEFAULT_BATCH_SIZE`-style batches
    and pushes prebuilt :class:`~repro.gnn.GraphBatch` es through a
    bounded queue while the caller's thread runs ``predict_proba``.  At
    most *prefetch* batches are in flight, bounding memory on large
    designs.  numpy/scipy release the GIL inside their kernels, so
    extraction genuinely overlaps scoring.

    Returns exactly what ``score_examples(model, concatenated_chunks,
    batch_size)`` returns — the batch partition is identical, so scores
    are too.  ``prefetch <= 0`` degrades to that serial call.
    """
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if prefetch <= 0:
        merged = [e for chunk in example_chunks for e in chunk]
        return score_examples(model, merged, batch_size)

    feed: queue.Queue = queue.Queue(maxsize=prefetch)
    done = object()
    failure: list[BaseException] = []
    abort = threading.Event()

    def produce() -> None:
        try:
            pending: list[GraphExample] = []
            for chunk in example_chunks:
                pending.extend(chunk)
                while len(pending) >= batch_size and not abort.is_set():
                    feed.put(build_batch(pending[:batch_size]))
                    del pending[:batch_size]
                if abort.is_set():
                    return
            if pending and not abort.is_set():
                feed.put(build_batch(pending))
        except BaseException as exc:  # surfaced on the consumer thread
            failure.append(exc)
        finally:
            feed.put(done)

    producer = threading.Thread(
        target=produce, name="score-stream-producer", daemon=True
    )
    producer.start()
    scores: list[np.ndarray] = []
    try:
        while True:
            item = feed.get()
            if item is done:
                break
            scores.append(model.predict_proba(item))
    finally:
        # On consumer failure, unblock a producer waiting on a full queue
        # so join() cannot deadlock.
        abort.set()
        while True:
            try:
                if feed.get_nowait() is done:
                    break
            except queue.Empty:
                if not producer.is_alive():
                    break
                time.sleep(0.005)
        producer.join()
    if failure:
        raise failure[0]
    return np.concatenate(scores) if scores else np.empty(0)


#: Version 2: the pickle container was replaced by the shared
#: ``repro.store.codec`` npz format (same logical payload — weights,
#: best-so-far weights, Adam moments, both RNG streams, history — with
#: the same bit-identical resume guarantee, minus pickle's
#: arbitrary-code-on-load hazard).  Version-1 pickle checkpoints are
#: reported as unreadable, not silently migrated.
#: Version 3 adds the optimizer name, the K-FAC preconditioner state and
#: the per-epoch validation AUC; version-2 checkpoints still load (the
#: preconditioner cold-starts, ``val_auc`` backfills empty).
_CHECKPOINT_VERSION = 3
_LEGACY_CHECKPOINT_VERSIONS = frozenset({2})
_CHECKPOINT_KIND = "trainer-checkpoint"


class Trainer:
    """Stateful, resumable DGCNN training engine.

    Usage::

        trainer = Trainer(dataset, TrainConfig(epochs=100, patience=10))
        model, history = trainer.fit()

    ``fit`` may be called incrementally (``fit(until_epoch=…)``) and the
    full state — weights, best-so-far weights, Adam moments, shuffle and
    dropout RNG streams, history — round-trips through
    :meth:`save_checkpoint` / :meth:`load_checkpoint`, so::

        straight run  ==  run 5 epochs, checkpoint, reload, run the rest

    holds bit for bit.
    """

    def __init__(self, dataset: LinkDataset, config: TrainConfig = TrainConfig()):
        if not dataset.train:
            raise TrainingError("empty training split")
        self.dataset = dataset
        self.config = config
        k = choose_sortpool_k(
            dataset.subgraph_sizes or [e.n_nodes for e in dataset.train],
            percentile=config.sortpool_percentile,
        )
        self.model = DGCNN(
            in_features=dataset.feature_width, k=k, seed=config.seed
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        self.preconditioner: KFAC | None = None
        if config.optimizer == "kfac":
            self.preconditioner = KFAC(
                self.model,
                damping=config.kfac_damping,
                ema_decay=config.kfac_ema_decay,
                inv_every=config.kfac_inv_every,
                cov_every=config.kfac_cov_every,
                max_block_dim=config.kfac_max_dim or None,
            )
        self.rng = np.random.default_rng(config.seed)
        self.history = TrainHistory()
        self.epoch = 0
        self._best_state = self.model.state_dict()
        # The expensive part — built exactly once per split.
        self.train_assembler = BatchAssembler(dataset.train)
        self.val_cache = BatchCache(dataset.validation, config.batch_size)

    # ------------------------------------------------------------- training
    def fit(self, until_epoch: int | None = None) -> tuple[DGCNN, TrainHistory]:
        """Train to ``config.epochs`` (or ``until_epoch``, if smaller).

        On completion (epoch budget exhausted or early stopping) the
        best-validation weights are restored and the model switched to
        eval mode.  A partial ``fit`` leaves the live weights in place so
        training can continue.
        """
        config = self.config
        if (
            self.epoch == 0
            and config.resume
            and config.checkpoint_path
            and os.path.exists(config.checkpoint_path)
        ):
            self.load_checkpoint(config.checkpoint_path)
        target = config.epochs if until_epoch is None else min(until_epoch, config.epochs)

        while self.epoch < target and not self.history.stopped_early:
            self._run_epoch()
            if self._patience_exhausted():
                self.history.stopped_early = True
            if config.checkpoint_path and (
                (config.checkpoint_every
                 and self.epoch % config.checkpoint_every == 0)
                or self.epoch >= config.epochs
                or self.history.stopped_early
            ):
                self.save_checkpoint(config.checkpoint_path)

        if self.epoch >= self.config.epochs or self.history.stopped_early:
            self._finalize()
        return self.model, self.history

    def _run_epoch(self) -> None:
        config = self.config
        started = time.perf_counter()
        self.history.learning_rates.append(self.optimizer.lr)
        self.model.train()
        epoch_loss = 0.0
        n_batches = 0
        order = self.rng.permutation(len(self.train_assembler))
        for step_index, start in enumerate(
            range(0, len(order), config.batch_size)
        ):
            epoch_loss += self._train_step(
                order[start : start + config.batch_size], step_index
            )
            n_batches += 1
        self.history.train_loss.append(epoch_loss / max(n_batches, 1))

        val_loss, val_acc, val_auc = _evaluate(
            self.model, self.dataset.validation, config.batch_size,
            cache=self.val_cache,
        )
        self.history.val_loss.append(val_loss)
        self.history.val_accuracy.append(val_acc)
        self.history.val_auc.append(val_auc)
        # Model selection on validation *loss*: with small validation sets
        # the quantized accuracy makes early flukes win; cross-entropy is a
        # smoother criterion.  With no validation split the final weights win.
        if self.dataset.validation and val_loss <= self.history.best_val_loss:
            self.history.best_val_loss = val_loss
            self.history.best_val_accuracy = val_acc
            self.history.best_epoch = self.epoch
            self._best_state = self.model.state_dict()

        self.epoch += 1
        if config.lr_decay_every and self.epoch % config.lr_decay_every == 0:
            self.optimizer.lr *= config.lr_decay
        if config.log_every and (
            self.epoch % config.log_every == 0 or self.epoch == config.epochs
        ):
            seconds = time.perf_counter() - started
            print(
                f"[trainer] epoch {self.epoch:>4}/{config.epochs}"
                f"  train {self.history.train_loss[-1]:.4f}"
                f"  val {val_loss:.4f}  acc {val_acc:.3f}"
                f"  lr {self.history.learning_rates[-1]:.2e}"
                f"  ({seconds:.2f}s)"
            )

    def _train_step(self, indices: np.ndarray, step_index: int) -> float:
        """One optimizer step over the batch *indices*; returns the loss.

        The serial formulation: assemble, forward, backward (under the
        curvature tap when K-FAC is configured), precondition, step.
        :class:`~repro.linkpred.parallel.DataParallelTrainer` overrides
        this with the sharded formulation — everything around it
        (shuffle, evaluation, checkpointing) is shared.
        """
        # One batch in flight at a time, so the assembler's recycled
        # scratch buffers are safe (reuse_buffers contract).
        batch = self.train_assembler.assemble(indices, reuse_buffers=True)
        self.optimizer.zero_grad()
        loss = self.model.loss(batch)
        if self.preconditioner is not None:
            if self.preconditioner.wants_statistics():
                with self.preconditioner.collecting():
                    loss.backward()
            else:
                loss.backward()
            self.preconditioner.step()
        else:
            loss.backward()
        self.optimizer.step()
        return loss.item()

    def _patience_exhausted(self) -> bool:
        patience = self.config.patience
        if patience is None or patience <= 0 or not self.dataset.validation:
            return False
        if self.history.best_epoch < 0:
            return False
        return (self.epoch - 1) - self.history.best_epoch >= patience

    def _finalize(self) -> None:
        if self.dataset.validation and self.history.best_epoch >= 0:
            self.model.load_state_dict(self._best_state)
        self.model.eval()

    # ---------------------------------------------------------- persistence
    def save_checkpoint(self, path: str) -> None:
        """Persist the full training state (atomic rename)."""
        payload = {
            "version": _CHECKPOINT_VERSION,
            "epoch": self.epoch,
            "model_state": self.model.state_dict(),
            "best_state": [a.copy() for a in self._best_state],
            "optimizer_state": self.optimizer.state_dict(),
            "optimizer_name": self.config.optimizer,
            "preconditioner_state": (
                None
                if self.preconditioner is None
                else self.preconditioner.state_dict()
            ),
            "lr": self.optimizer.lr,
            "shuffle_rng_state": self.rng.bit_generator.state,
            "dropout_rng_state": self.model.dropout.rng.bit_generator.state,
            "history": asdict(self.history),
            "config": {
                "seed": self.config.seed,
                "batch_size": self.config.batch_size,
                "epochs": self.config.epochs,
                "dtype": str(default_dtype()),
                # Dataset/model identity: resuming against a checkpoint
                # from a different netlist must fail even when parameter
                # shapes happen to line up.
                "feature_width": self.dataset.feature_width,
                "k": self.model.k,
                "n_train": len(self.dataset.train),
                "n_validation": len(self.dataset.validation),
            },
        }
        from repro.store import codec

        codec.dump(payload, path, kind=_CHECKPOINT_KIND)

    def load_checkpoint(self, path: str) -> None:
        """Restore a :meth:`save_checkpoint` state into this trainer."""
        from repro.store import codec

        try:
            payload = codec.load(path, kind=_CHECKPOINT_KIND)
        except codec.CodecError as exc:
            raise TrainingError(
                f"unreadable checkpoint {path!r} — corrupt, or written by "
                f"the pre-npz pickle format ({exc})"
            ) from exc
        version = payload.get("version")
        if (
            version != _CHECKPOINT_VERSION
            and version not in _LEGACY_CHECKPOINT_VERSIONS
        ):
            raise TrainingError(
                f"unsupported checkpoint version {version!r}"
            )
        saved = payload["config"]
        if (
            saved["seed"] != self.config.seed
            or saved["batch_size"] != self.config.batch_size
        ):
            raise TrainingError(
                "checkpoint was written with a different seed/batch_size "
                f"({saved}) than this trainer's config"
            )
        if saved["dtype"] != str(default_dtype()):
            raise TrainingError(
                f"checkpoint was written under the {saved['dtype']} runtime "
                f"but the current runtime is {default_dtype()}; resuming "
                "across dtypes breaks bit-identical continuation "
                "(set REPRO_DTYPE / --dtype to match)"
            )
        current = {
            "feature_width": self.dataset.feature_width,
            "k": self.model.k,
            "n_train": len(self.dataset.train),
            "n_validation": len(self.dataset.validation),
        }
        mismatched = {
            key: (saved[key], value)
            for key, value in current.items()
            if saved[key] != value
        }
        if mismatched:
            raise TrainingError(
                "checkpoint belongs to a different dataset/model "
                f"(saved vs current: {mismatched})"
            )
        # Validate parameter-shape agreement across the whole payload
        # *before* assigning any state: a checkpoint from a different
        # architecture fails here with a clear error, not as a broadcast
        # error half-way through an in-place arena write.
        try:
            self._check_state_shapes(payload)
        except ValueError as exc:
            raise TrainingError(
                f"checkpoint {path!r} does not fit this model: {exc}"
            ) from exc
        # An optimizer swap across the checkpoint boundary is allowed
        # (Adam moments transfer; it is the same underlying update rule):
        # resuming an Adam checkpoint with K-FAC enabled cold-starts the
        # preconditioner, and preconditioner state from a K-FAC
        # checkpoint is ignored by an Adam resume.  Loaded first — it
        # validates its own block shapes, and nothing else may have been
        # mutated if that fails.
        preconditioner_state = payload.get("preconditioner_state")
        if self.preconditioner is not None and preconditioner_state is not None:
            try:
                self.preconditioner.load_state_dict(preconditioner_state)
            except ValueError as exc:
                raise TrainingError(
                    f"checkpoint {path!r} does not fit this model: {exc}"
                ) from exc
        self.epoch = int(payload["epoch"])
        self.model.load_state_dict(payload["model_state"])
        self._best_state = [a.copy() for a in payload["best_state"]]
        self.optimizer.load_state_dict(payload["optimizer_state"])
        self.optimizer.lr = float(payload["lr"])
        self.rng.bit_generator.state = payload["shuffle_rng_state"]
        self.model.dropout.rng.bit_generator.state = payload["dropout_rng_state"]
        history = dict(payload["history"])
        history.setdefault("val_auc", [])  # absent in version-2 checkpoints
        self.history = TrainHistory(**history)
        # Re-derive the early-stop gate under *this* trainer's config: a
        # checkpoint written by an early-stopped run must resume training
        # when the patience budget has been raised or disabled.
        self.history.stopped_early = self._patience_exhausted()

    def _check_state_shapes(self, payload: dict) -> None:
        """Raise ``ValueError`` when any persisted array does not match
        this model's parameters (checked before anything is assigned)."""
        params = self.model.parameters()
        for name in ("model_state", "best_state"):
            state = payload[name]
            if len(state) != len(params):
                raise ValueError(
                    f"{name} has {len(state)} arrays, model has {len(params)}"
                )
            for i, (param, data) in enumerate(zip(params, state)):
                if np.asarray(data).shape != param.data.shape:
                    raise ValueError(
                        f"{name}[{i}] has shape {np.asarray(data).shape}, "
                        f"parameter has shape {param.data.shape}"
                    )
        optimizer_state = payload["optimizer_state"]
        for name in ("m", "v"):
            moments = optimizer_state[name]
            if len(moments) != len(params):
                raise ValueError(
                    f"optimizer state has {len(moments)} {name!r} arrays, "
                    f"model has {len(params)} parameters"
                )
            for i, (param, data) in enumerate(zip(params, moments)):
                if np.asarray(data).shape != param.data.shape:
                    raise ValueError(
                        f"optimizer {name}[{i}] has shape "
                        f"{np.asarray(data).shape}, parameter has shape "
                        f"{param.data.shape}"
                    )


def make_trainer(dataset: LinkDataset, config: TrainConfig = TrainConfig()):
    """Build the right training engine for *config*.

    ``grad_shards == 1`` (the default) is the serial :class:`Trainer` —
    the exact historical formulation, whatever ``n_train_workers`` says
    (one shard cannot be distributed).  ``grad_shards > 1`` returns a
    :class:`~repro.linkpred.parallel.DataParallelTrainer`, whose
    trajectory is a function of the shard count alone: the worker count
    only changes which process executes each shard.
    """
    if config.grad_shards > 1:
        from repro.linkpred.parallel import DataParallelTrainer

        return DataParallelTrainer(dataset, config)
    return Trainer(dataset, config)


def train_link_predictor(
    dataset: LinkDataset, config: TrainConfig = TrainConfig()
) -> tuple[DGCNN, TrainHistory]:
    """Train a DGCNN on *dataset*, restoring the best-validation weights.

    Thin compatibility wrapper over :func:`make_trainer` (which adds
    early stopping, LR scheduling, checkpoint/resume, the K-FAC
    preconditioner and gradient sharding — all reachable through the
    :class:`TrainConfig` fields).

    Returns:
        ``(model, history)``; the model is in eval mode.
    """
    return make_trainer(dataset, config).fit()
