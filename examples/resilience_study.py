"""Why D-MUX was called "learning-resilient" — and what still breaks it.

Reproduces the motivation chain of the paper's introduction:

1. naive MUX locking falls to the structural SAAM attack;
2. D-MUX closes that hole (SAAM sees nothing);
3. constant-propagation attacks (SCOPE, SWEEP) are also blind on D-MUX;
4. only link prediction (MuxLink) recovers the key.

::

    python examples/resilience_study.py
"""

from repro import (
    MuxLinkConfig,
    TrainConfig,
    lock_dmux,
    lock_naive_mux,
    random_netlist,
    run_muxlink,
    score_key,
)
from repro.attacks import SweepAttack, saam_attack, scope_attack


def main() -> None:
    base = random_netlist("design", 12, 6, 180, seed=3)
    key_size = 12

    print("=== 1. SAAM vs naive MUX locking ===")
    naive = lock_naive_mux(base, key_size=key_size, seed=5)
    report = saam_attack(naive.circuit)
    m = score_key(report.predicted_key, naive.key)
    print(f"SAAM on naive MUX: AC={m.accuracy:.1%}, wrong={m.n_wrong} "
          f"(every decision is a structural proof)")

    print("\n=== 2. SAAM vs D-MUX ===")
    dmux = lock_dmux(base, key_size=key_size, seed=5)
    report = saam_attack(dmux.circuit)
    undecided = report.predicted_key.count("x")
    print(f"SAAM on D-MUX: {undecided}/{key_size} bits undecided "
          f"(no circuit reduction for any single key bit)")

    print("\n=== 3. Constant propagation vs D-MUX ===")
    scope = scope_attack(dmux.circuit, undecided="coin", seed=1)
    m = score_key(scope.predicted_key, dmux.key)
    print(f"SCOPE on D-MUX: KPA={m.kpa:.1%} (coin-flip territory)")

    train = [
        lock_dmux(random_netlist(f"t{i}", 12, 6, 180, seed=50 + i),
                  key_size=key_size, seed=50 + i)
        for i in range(4)
    ]
    sweep = SweepAttack(margin=1e-3, undecided="coin").fit(train)
    m = score_key(sweep.attack(dmux.circuit).predicted_key, dmux.key)
    print(f"SWEEP on D-MUX: KPA={m.kpa:.1%} (no feature signal to learn)")

    print("\n=== 4. MuxLink vs D-MUX ===")
    config = MuxLinkConfig(
        h=3, train=TrainConfig(epochs=20, learning_rate=1e-3, seed=0)
    )
    result = run_muxlink(dmux.circuit, config)
    m = score_key(result.predicted_key, dmux.key)
    print(f"MuxLink on D-MUX: AC={m.accuracy:.1%} PC={m.precision:.1%} "
          f"KPA={m.kpa:.1%} — link formation leaks what structure hides")


if __name__ == "__main__":
    main()
