"""Optimizers: Adam (the paper's choice) and plain SGD.

Both update parameters fully in place.  Adam additionally keeps its moment
estimates and two scratch buffers alive across steps, so a training step
allocates no new arrays — the update arithmetic is a fixed sequence of
``out=``-style numpy calls over preallocated storage, ordered to be
bit-identical to the textbook (allocate-per-step) formulation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.curvature import KFAC
from repro.nn.tensor import Tensor

__all__ = ["Adam", "KFAC", "SGD"]


class SGD:
    """Vanilla stochastic gradient descent."""

    def __init__(self, params: list[Tensor], lr: float = 0.01):
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for param in self.params:
            if param.grad is not None:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba, 2015).

    The paper trains DGCNN with "stochastic gradient descent with the Adam
    updating rule" at an initial learning rate of 1e-4.  ``state_dict`` /
    ``load_state_dict`` round-trip the step counter and moment estimates,
    which the :class:`repro.linkpred.trainer.Trainer` persists in its
    checkpoints.

    The moments, scratch buffers and a gradient staging area live in one
    contiguous arena with per-parameter views: the update arithmetic runs
    as ~15 whole-arena ufunc calls per step instead of ~13 per parameter,
    so ufunc dispatch stops dominating the step on small-parameter models.
    Elementwise ops over a concatenation are elementwise ops — the fused
    step is bit-identical to the textbook per-parameter formulation.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        sizes = [p.data.size for p in self.params]
        self._offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        dtypes = {p.data.dtype for p in self.params}
        self._dtype = self.params[0].data.dtype if self.params else np.float64
        self._fused = len(dtypes) <= 1
        if self._fused:
            total = int(self._offsets[-1]) if self.params else 0
            self._fm = np.zeros(total, dtype=self._dtype)
            self._fv = np.zeros(total, dtype=self._dtype)
            self._fg = np.empty(total, dtype=self._dtype)
            self._fa = np.empty(total, dtype=self._dtype)
            self._fb = np.empty(total, dtype=self._dtype)
            # Per-parameter views over the arenas (the state_dict unit).
            self._m = [self._param_view(self._fm, i) for i in range(len(self.params))]
            self._v = [self._param_view(self._fv, i) for i in range(len(self.params))]
            self._buf_a = self._buf_b = None
        else:
            # Mixed parameter dtypes: no shared arena — keep per-parameter
            # moments and scratch in each parameter's own dtype, exactly
            # like the per-parameter formulation.
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
            self._buf_a = [np.empty_like(p.data) for p in self.params]
            self._buf_b = [np.empty_like(p.data) for p in self.params]

    def _param_view(self, arena: np.ndarray, i: int) -> np.ndarray:
        start, stop = self._offsets[i], self._offsets[i + 1]
        return arena[start:stop].reshape(self.params[i].data.shape)

    def step(self) -> None:
        self.t += 1
        if self._fused and all(p.grad is not None for p in self.params):
            self._step_fused()
            return
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            if self._fused:  # some grads missing: arena slices as scratch
                a = self._param_view(self._fa, i)
                b = self._param_view(self._fb, i)
            else:
                a, b = self._buf_a[i], self._buf_b[i]
            self._update(param, param.grad, self._m[i], self._v[i], a, b)

    def _step_fused(self) -> None:
        for i, param in enumerate(self.params):
            self._param_view(self._fg, i)[...] = param.grad
        self._update(None, self._fg, self._fm, self._fv, self._fa, self._fb)
        for i, param in enumerate(self.params):
            param.data -= self._param_view(self._fb, i)

    def _update(self, param, grad, m, v, a, b) -> None:
        b1, b2 = self.beta1, self.beta2
        c1 = 1 - b1**self.t
        c2 = 1 - b2**self.t
        # m = b1 * m + (1 - b1) * grad
        np.multiply(m, b1, out=m)
        np.multiply(grad, 1 - b1, out=a)
        m += a
        # v = b2 * v + (1 - b2) * grad**2
        np.multiply(v, b2, out=v)
        np.multiply(grad, grad, out=a)
        a *= 1 - b2
        v += a
        # update = lr * (m / c1) / (sqrt(v / c2) + eps), evaluated in the
        # same operation order as the allocating formulation.
        np.divide(v, c2, out=a)
        np.sqrt(a, out=a)
        a += self.eps
        np.divide(m, c1, out=b)
        b *= self.lr
        b /= a
        if param is not None:
            param.data -= b

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def state_dict(self) -> dict:
        """Serializable optimizer state (step count + moment estimates)."""
        return {
            "t": self.t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        for name in ("m", "v"):
            if len(state[name]) != len(self.params):
                raise ValueError(
                    f"state has {len(state[name])} {name!r} moment arrays, "
                    f"optimizer has {len(self.params)} parameters"
                )
        # Validate every moment shape before touching the arenas: a
        # checkpoint from a different architecture must fail cleanly, not
        # as a broadcast error half-way through an in-place arena write.
        for i, param in enumerate(self.params):
            for name in ("m", "v"):
                shape = np.asarray(state[name][i]).shape
                if shape != param.data.shape:
                    raise ValueError(
                        f"parameter {i}: {name!r} moment has shape {shape}, "
                        f"parameter has shape {param.data.shape}"
                    )
        self.t = int(state["t"])
        for i, param in enumerate(self.params):
            # In-place view writes keep the fused arenas coherent.
            self._m[i][...] = np.asarray(state["m"][i], dtype=param.data.dtype)
            self._v[i][...] = np.asarray(state["v"][i], dtype=param.data.dtype)
