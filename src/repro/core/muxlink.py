"""The end-to-end MuxLink attack (paper Fig. 5).

Pipeline: locked BENCH netlist → attack graph → sampled link dataset →
DGCNN training → candidate-link scoring → Algorithm-1 post-processing →
predicted key.  Oracle-less throughout: only the locked netlist is read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.postprocess import (
    ScoredMux,
    decisions_to_key,
    postprocess_likelihoods,
)
from repro.gnn import DGCNN
from repro.linkpred import (
    AttackGraph,
    TrainConfig,
    TrainHistory,
    make_trainer,
    build_link_dataset,
    build_target_examples,
    extract_attack_graph,
    iter_target_examples,
    sample_links,
    score_examples,
    score_stream,
)
from repro.netlist import Circuit

__all__ = ["MuxLinkConfig", "MuxLinkResult", "run_muxlink", "rescore_key"]


@dataclass(frozen=True)
class MuxLinkConfig:
    """All attack knobs (paper defaults).

    Attributes:
        h: enclosing-subgraph hop count (paper: 3).
        threshold: post-processing decision threshold ``th`` (paper: 0.01).
        max_train_links: cap on sampled training links (paper: 100 000).
        val_fraction: validation share (paper: 10 %).
        train: GNN training hyper-parameters.
        use_drnl / use_gate_types: feature ablation switches.
        seed: sampling seed.
        n_workers: subgraph-extraction worker processes (``<= 1`` runs
            in-process; results are identical either way).
        score_prefetch: candidate scoring runs as a streamed pipeline —
            target-subgraph extraction overlaps GNN forwards with at most
            this many batches in flight (``<= 0`` restores the serial
            extract-everything-then-score path; likelihoods are identical
            either way).  Applies only when ``n_workers <= 1``: with a
            worker pool, extraction forks from the main thread over all
            candidates at once instead.
    """

    h: int = 3
    threshold: float = 0.01
    max_train_links: int = 100_000
    val_fraction: float = 0.1
    train: TrainConfig = field(default_factory=TrainConfig)
    use_drnl: bool = True
    use_gate_types: bool = True
    use_degree: bool = True
    seed: int = 0
    n_workers: int = 0
    score_prefetch: int = 2


@dataclass
class MuxLinkResult:
    """Everything the attack produced.

    ``scored`` retains per-MUX likelihoods, so the threshold study (Fig. 9)
    re-runs post-processing without re-training via :func:`rescore_key`.

    A result rematerialized from the artifact store carries the trained
    model (weights round-trip through ``repro.store.codec``) but no
    attack graph — ``graph`` is ``None`` there; re-extract it from the
    locked netlist when needed.
    """

    predicted_key: str
    scored: list[ScoredMux]
    n_key_bits: int
    history: TrainHistory
    runtime_seconds: dict[str, float]
    graph: AttackGraph | None = None
    model: DGCNN | None = None

    @property
    def total_runtime(self) -> float:
        return sum(self.runtime_seconds.values())


def run_muxlink(
    circuit: Circuit,
    config: MuxLinkConfig = MuxLinkConfig(),
    store=None,
) -> MuxLinkResult:
    """Attack a MUX-locked netlist.

    Args:
        circuit: the locked design (key inputs named ``keyinput<i>``,
            key gates are ``MUX`` primitives selected by them).
        config: attack configuration.
        store: optional :class:`~repro.store.ArtifactStore` (or a path
            to one).  The attack is then content-addressed by the
            netlist digest + the semantic config hash: a hit skips
            training entirely (the cached per-MUX likelihoods are
            re-thresholded at ``config.threshold``), a miss computes and
            persists.  The CLI, the figure drivers and the bench suite
            all key into the same pool.

    Returns:
        A :class:`MuxLinkResult` with the predicted key (``x`` for
        undecided bits) and full diagnostics.
    """
    # Local import: repro.store pulls netlist/locking helpers whose
    # package chain leads back into repro.core.
    from repro import store as store_mod

    artifact_store = store_mod.resolve_store(store) if store is not None else None
    store_key = None
    if artifact_store is not None:
        digest = store_mod.circuit_digest(circuit)
        store_key = store_mod.attack_store_key(digest, config)
        result = artifact_store.get(
            "attacks", store_key, decoder=store_mod.decode_attack_artifact
        )
        if result is not None:
            # The artifact was trained at *some* threshold; re-run the
            # (deterministic) post-processing at this caller's.
            result.predicted_key = rescore_key(result, config.threshold)
            return result

    runtime: dict[str, float] = {}

    start = time.perf_counter()
    graph = extract_attack_graph(circuit)
    sample = sample_links(
        graph,
        max_links=config.max_train_links,
        val_fraction=config.val_fraction,
        seed=config.seed,
    )
    dataset = build_link_dataset(
        graph,
        sample,
        h=config.h,
        use_drnl=config.use_drnl,
        use_gate_types=config.use_gate_types,
        use_degree=config.use_degree,
        n_workers=config.n_workers,
    )
    runtime["sampling"] = time.perf_counter() - start

    start = time.perf_counter()
    # The trainer owns batch caching, early stopping, LR scheduling and
    # checkpoint/resume; all knobs arrive through ``config.train``
    # (make_trainer picks the serial or gradient-sharded engine, and the
    # K-FAC preconditioner when configured).
    model, history = make_trainer(dataset, config.train).fit()
    runtime["training"] = time.perf_counter() - start

    start = time.perf_counter()
    if config.score_prefetch > 0 and config.n_workers <= 1:
        # Streamed pipeline: a producer thread extracts/featurizes the
        # candidate subgraphs chunk by chunk while this thread scores the
        # previous batches (bounded prefetch).  The batch partition — and
        # therefore every likelihood — is identical to the serial path.
        # With n_workers > 1 the serial path below runs instead:
        # multiprocessing pools must fork from the main thread (forking
        # from the producer while BLAS runs here is a deadlock hazard),
        # and one pool over all candidates beats a pool per chunk.
        target_examples: list = []

        def chunks():
            for group in iter_target_examples(
                graph, dataset,
                chunk_size=config.train.batch_size,
            ):
                target_examples.extend(group)
                yield [t.example for t in group]

        likelihoods = score_stream(
            model, chunks(), config.train.batch_size,
            prefetch=config.score_prefetch,
        )
    else:
        target_examples = build_target_examples(
            graph, dataset, n_workers=config.n_workers
        )
        likelihoods = score_examples(
            model, [t.example for t in target_examples], config.train.batch_size
        )
    runtime["testing"] = time.perf_counter() - start

    start = time.perf_counter()
    # Regroup per MUX: examples arrive as (d0, d1) pairs per target.
    scored: list[ScoredMux] = []
    by_mux: dict[tuple[str, int], dict[int, float]] = {}
    meta: dict[tuple[str, int], object] = {}
    for example, likelihood in zip(target_examples, likelihoods):
        key = (example.target.mux_name, example.target.load)
        by_mux.setdefault(key, {})[example.select_value] = float(likelihood)
        meta[key] = example.target
    for key, scores in by_mux.items():
        target = meta[key]
        scored.append(
            ScoredMux(
                mux_name=target.mux_name,
                key_index=target.key_index,
                load=target.load,
                drivers=(target.cand_d0, target.cand_d1),
                likelihoods=(scores[0], scores[1]),
            )
        )
    n_bits = max(t.key_index for t in graph.targets) + 1
    decisions = postprocess_likelihoods(scored, config.threshold)
    predicted = decisions_to_key(decisions, n_bits)
    runtime["post_processing"] = time.perf_counter() - start

    result = MuxLinkResult(
        predicted_key=predicted,
        scored=scored,
        n_key_bits=n_bits,
        history=history,
        runtime_seconds=runtime,
        graph=graph,
        model=model,
    )
    if artifact_store is not None and store_key is not None:
        artifact_store.put(
            "attacks", store_key, store_mod.encode_attack_artifact(result)
        )
    return result


def rescore_key(result: MuxLinkResult, threshold: float) -> str:
    """Re-run post-processing under a different ``th`` (no re-training)."""
    decisions = postprocess_likelihoods(result.scored, threshold)
    return decisions_to_key(decisions, result.n_key_bits)
