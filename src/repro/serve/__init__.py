"""Attack-as-a-service: the persistent serving layer over the job bus.

:class:`~repro.serve.server.AttackServer` is the ``repro serve`` loop —
a content-keyed request front end (memory LRU → artifact store →
pipelined worker fleet, with in-flight coalescing) plus the remote end
of :class:`repro.store.remote.RemoteStore`.  Clients live in
:mod:`repro.client`.
"""

from repro.serve.server import AttackServer, ServeError, ServeStats

__all__ = ["AttackServer", "ServeError", "ServeStats"]
