"""From-scratch numpy autograd substrate (PyTorch substitute)."""

from repro.nn.functional import (
    conv1d,
    dropout,
    log_softmax,
    max_pool1d,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.layers import Conv1d, Dropout, GraphConv, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, concat, relu, sigmoid, spmm, tanh

__all__ = [
    "Tensor",
    "spmm",
    "concat",
    "relu",
    "tanh",
    "sigmoid",
    "conv1d",
    "max_pool1d",
    "dropout",
    "log_softmax",
    "softmax",
    "softmax_cross_entropy",
    "Module",
    "Linear",
    "Conv1d",
    "Dropout",
    "GraphConv",
    "Adam",
    "SGD",
]
