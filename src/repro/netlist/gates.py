"""Gate types and their Boolean semantics.

The gate vocabulary mirrors the BENCH format used by the logic-locking
community (ISCAS-85 / ITC-99 distributions plus the ``MUX`` primitive used by
the released MuxLink / D-MUX artifacts).  Every combinational gate evaluates
bit-parallel over numpy ``uint64`` words so that the simulator in
:mod:`repro.sim` can run thousands of patterns per pass.

The paper encodes each gate's Boolean functionality as an 8-bit one-hot
vector (Sec. III-B).  :data:`FEATURE_GATE_ORDER` fixes that 8-entry order;
:func:`gate_feature_index` maps a :class:`GateType` onto it.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "GateType",
    "FEATURE_GATE_ORDER",
    "NUM_GATE_FEATURES",
    "gate_feature_index",
    "evaluate_gate",
    "gate_arity_ok",
    "INVERTING_GATES",
    "SYMMETRIC_GATES",
]


class GateType(str, enum.Enum):
    """Boolean primitives supported by the netlist substrate."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    MUX = "MUX"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Order of the 8-bit one-hot gate-functionality encoding (paper Sec. III-B).
#: ``MUX`` is deliberately absent: MuxLink removes key-controlled MUXes from
#: the graph before feature construction, and a netlist fed to the GNN must
#: not contain any other MUX primitive.
FEATURE_GATE_ORDER: tuple[GateType, ...] = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
)

NUM_GATE_FEATURES: int = len(FEATURE_GATE_ORDER)

_FEATURE_INDEX: dict[GateType, int] = {
    gate: idx for idx, gate in enumerate(FEATURE_GATE_ORDER)
}

#: Gates whose output is the complement of the same-family gate.
INVERTING_GATES: frozenset[GateType] = frozenset(
    {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
)

#: Gates whose output does not depend on input order.
SYMMETRIC_GATES: frozenset[GateType] = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    }
)


def gate_feature_index(gate_type: GateType) -> int:
    """Return the position of *gate_type* in the 8-bit one-hot encoding.

    Raises:
        ValueError: if the gate type has no feature slot (``MUX``).
    """
    try:
        return _FEATURE_INDEX[gate_type]
    except KeyError:
        raise ValueError(
            f"gate type {gate_type!s} has no feature encoding; "
            "MUX key-gates must be removed before feature construction"
        ) from None


def gate_arity_ok(gate_type: GateType, n_inputs: int) -> bool:
    """Check whether *n_inputs* is a legal fan-in for *gate_type*."""
    if gate_type in (GateType.NOT, GateType.BUF):
        return n_inputs == 1
    if gate_type is GateType.MUX:
        return n_inputs == 3
    return n_inputs >= 2


def evaluate_gate(gate_type: GateType, inputs: list[np.ndarray]) -> np.ndarray:
    """Evaluate a gate bit-parallel over ``uint64`` pattern words.

    Args:
        gate_type: the Boolean primitive to evaluate.
        inputs: one ``uint64`` array per fan-in net.  For ``MUX`` the order is
            ``(select, d0, d1)`` and the output is ``d0`` where the select bit
            is 0, ``d1`` where it is 1 (matching ``MUX(k, a, b)`` in BENCH).

    Returns:
        The output pattern word array.
    """
    if not gate_arity_ok(gate_type, len(inputs)):
        raise ValueError(
            f"{gate_type!s} gate cannot take {len(inputs)} input(s)"
        )
    if gate_type is GateType.MUX:
        sel, d0, d1 = inputs
        return (d0 & ~sel) | (d1 & sel)
    if gate_type is GateType.NOT:
        return ~inputs[0]
    if gate_type is GateType.BUF:
        return inputs[0].copy()

    if gate_type in (GateType.AND, GateType.NAND):
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc &= word
        return ~acc if gate_type is GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc |= word
        return ~acc if gate_type is GateType.NOR else acc
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc ^= word
        return ~acc if gate_type is GateType.XNOR else acc
    raise AssertionError(f"unhandled gate type {gate_type!r}")
