"""Gradient checks and behaviour tests for NN ops, layers and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv1d,
    Dropout,
    GraphConv,
    Linear,
    Module,
    SGD,
    Tensor,
    conv1d,
    log_softmax,
    max_pool1d,
    softmax,
    softmax_cross_entropy,
)
from tests.nn.test_tensor import numerical_grad

RNG = np.random.default_rng(7)


def check_grad(build, *arrays, rtol=1e-5):
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    build(*tensors).backward()
    for tensor, array in zip(tensors, arrays):
        num = numerical_grad(
            lambda: build(*[Tensor(a) for a in arrays]).item(), array
        )
        np.testing.assert_allclose(tensor.grad, num, rtol=rtol, atol=1e-7)


def test_conv1d_forward_known_values():
    x = Tensor(np.arange(6, dtype=float).reshape(1, 1, 6))
    w = Tensor(np.array([[[1.0, 1.0]]]))
    b = Tensor(np.zeros(1))
    out = conv1d(x, w, b, stride=1)
    np.testing.assert_array_equal(out.data[0, 0], [1, 3, 5, 7, 9])
    out2 = conv1d(x, w, b, stride=2)
    np.testing.assert_array_equal(out2.data[0, 0], [1, 5, 9])


def test_conv1d_gradients():
    x = RNG.normal(size=(2, 3, 8))
    w = RNG.normal(size=(4, 3, 3))
    b = RNG.normal(size=(4,))
    check_grad(
        lambda xx, ww, bb: conv1d(xx, ww, bb, stride=2).sum(), x, w, b
    )


def test_conv1d_shape_validation():
    x = Tensor(np.zeros((1, 2, 4)))
    w = Tensor(np.zeros((1, 3, 2)))
    with pytest.raises(ValueError):
        conv1d(x, w, Tensor(np.zeros(1)))
    w2 = Tensor(np.zeros((1, 2, 5)))
    with pytest.raises(ValueError):
        conv1d(x, w2, Tensor(np.zeros(1)))


def test_max_pool1d_forward_and_grad():
    x = Tensor(
        np.array([[[1.0, 3.0, 2.0, 8.0, 5.0, 4.0]]]), requires_grad=True
    )
    out = max_pool1d(x, 2, 2)
    np.testing.assert_array_equal(out.data[0, 0], [3, 8, 5])
    out.sum().backward()
    np.testing.assert_array_equal(
        x.grad[0, 0], [0, 1, 0, 1, 1, 0]
    )


def test_max_pool1d_grad_numeric():
    x = RNG.normal(size=(2, 2, 7))
    check_grad(lambda xx: max_pool1d(xx, 3, 2).sum(), x)


def test_log_softmax_and_softmax():
    x = RNG.normal(size=(4, 3)) * 5
    check_grad(lambda xx: (log_softmax(xx) * RNG_WEIGHTS).sum(), x)
    probs = softmax(Tensor(x)).data
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)
    assert (probs >= 0).all()


RNG_WEIGHTS = RNG.normal(size=(4, 3))


def test_cross_entropy_matches_manual():
    logits = Tensor(np.array([[2.0, 0.5], [0.1, 1.2]]), requires_grad=True)
    labels = np.array([0, 1])
    loss = softmax_cross_entropy(logits, labels)
    manual = -np.mean(
        [
            np.log(np.exp(2.0) / (np.exp(2.0) + np.exp(0.5))),
            np.log(np.exp(1.2) / (np.exp(0.1) + np.exp(1.2))),
        ]
    )
    assert loss.item() == pytest.approx(manual)


def test_cross_entropy_gradient():
    logits = RNG.normal(size=(5, 2))
    labels = np.array([0, 1, 1, 0, 1])
    check_grad(lambda t: softmax_cross_entropy(t, labels), logits)


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        softmax_cross_entropy(Tensor(np.zeros((2, 2))), np.array([0]))


def test_dropout_eval_mode_is_identity():
    layer = Dropout(0.5, np.random.default_rng(0))
    layer.eval()
    x = Tensor(np.ones((4, 4)))
    assert layer(x) is x


def test_dropout_scales_kept_units():
    layer = Dropout(0.5, np.random.default_rng(0))
    x = Tensor(np.ones((100, 100)), requires_grad=True)
    out = layer(x)
    values = np.unique(out.data)
    assert set(values) <= {0.0, 2.0}
    # Unbiased in expectation.
    assert out.data.mean() == pytest.approx(1.0, abs=0.05)


def test_linear_layer_trains_to_regression_target():
    rng = np.random.default_rng(3)
    layer = Linear(4, 1, rng)
    true_w = np.array([[1.0], [-2.0], [0.5], [3.0]])
    x = rng.normal(size=(64, 4))
    y = x @ true_w
    opt = Adam(layer.parameters(), lr=0.05)
    for _ in range(400):
        opt.zero_grad()
        pred = layer(Tensor(x))
        loss = ((pred - Tensor(y)) ** 2).mean()
        loss.backward()
        opt.step()
    np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


def test_sgd_descends():
    t = Tensor(np.array([10.0]), requires_grad=True)
    opt = SGD([t], lr=0.1)
    for _ in range(100):
        opt.zero_grad()
        (t * t).sum().backward()
        opt.step()
    assert abs(t.data[0]) < 1e-3


def test_graphconv_shapes_and_grad():
    import scipy.sparse as sp

    adj = sp.identity(5, format="csr")
    layer = GraphConv(3, 4, np.random.default_rng(0))
    h = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
    out = layer(adj, h)
    assert out.shape == (5, 4)
    out.sum().backward()
    assert h.grad is not None
    assert layer.weight.grad is not None


def test_module_parameter_discovery_and_state_dict():
    class Net(Module):
        def __init__(self):
            rng = np.random.default_rng(0)
            self.fc1 = Linear(3, 4, rng)
            self.blocks = [Linear(4, 4, rng), Linear(4, 2, rng)]

    net = Net()
    params = net.parameters()
    assert len(params) == 6  # 3 layers x (weight, bias)
    state = net.state_dict()
    for p in params:
        p.data = p.data * 0
    net.load_state_dict(state)
    assert any(p.data.any() for p in net.parameters())
    with pytest.raises(ValueError):
        net.load_state_dict(state[:-1])
