"""Fig. 8 bench — Hamming distance of recovered D-MUX designs."""

from repro.experiments import active_scale, format_fig8, run_fig8


def test_fig8_recovered_hamming_distance(bench_once, runner):
    scale = active_scale()
    rows = bench_once(run_fig8, scale=scale, runner=runner)
    print()
    print(format_fig8(rows))

    # Shape: recovered designs are far below the 50% corruption target
    # (paper average: 3.39%).
    avg = sum(r.hamming_distance for r in rows) / len(rows)
    assert avg < 0.25, [r.hamming_distance for r in rows]
    assert all(r.hamming_distance < 0.4 for r in rows)
