"""The block-sparse spmm engine: backends, workspaces, streamed scoring.

Runs in well under a minute::

    python examples/spmm_backends.py

Everything the DGCNN multiplies — four graph convolutions forward, four
transposed products backward, every step — goes through the engine in
``repro.nn.sparse``.  This example shows the three public knobs:

* ``REPRO_SPMM`` / :func:`repro.nn.set_spmm_backend` /
  :func:`repro.nn.spmm_scope` pick the kernel family (``scipy`` /
  ``ell`` / ``numba``); all of them are bit-identical in float64,
* forward workspaces make steady-state training allocation-free (nothing
  to configure — shown here by the bit-identical repeat run),
* ``MuxLinkConfig.score_prefetch`` streams candidate scoring so target
  subgraph extraction overlaps the GNN forwards.
"""

import numpy as np

from repro import MuxLinkConfig, TrainConfig, load_benchmark, lock_dmux, run_muxlink
from repro.gnn import build_batch, GraphExample
from repro.nn import SparseOp, numba_available, spmm_backend, spmm_scope


def main() -> None:
    # 1. One operator, three kernel families, identical numbers. ---------
    rng = np.random.default_rng(0)
    examples = [
        GraphExample(
            n_nodes=12,
            edges=rng.integers(0, 12, size=(20, 2)),
            features=rng.standard_normal((12, 4)),
            label=1,
        )
        for _ in range(8)
    ]
    batch = build_batch(examples)
    operator = batch.operator  # cached SparseOp: CSR/ELL built once per batch
    dense = rng.standard_normal((batch.n_nodes, 32)).astype(
        batch.features.dtype
    )
    reference = batch.norm_adj.tocsr() @ dense
    backends = ["scipy", "ell"] + (["numba"] if numba_available() else [])
    for backend in backends:
        with spmm_scope(backend):
            product = operator.matmul(dense)
            transposed = operator.matmul_t(dense)
        print(
            f"backend {backend:>5}: A@H exact={np.array_equal(product, reference)}"
            f"  A.T@G exact="
            f"{np.array_equal(transposed, batch.norm_adj.tocsr().T @ dense)}"
        )
    print(f"active backend (REPRO_SPMM): {spmm_backend()}")
    ell = operator.ell
    print(
        f"batched-ELL layout: {ell.shape[0]} rows padded to width "
        f"{ell.width} ({operator.nnz} stored entries)"
    )

    # 2. The full attack with streamed scoring. --------------------------
    # score_prefetch > 0 (the default) overlaps target-subgraph
    # extraction with GNN scoring through a bounded producer/consumer
    # queue; 0 restores the serial extract-everything-then-score path.
    # Likelihoods are bit-identical either way.
    base = load_benchmark("c1355", scale=0.3)
    locked = lock_dmux(base, key_size=8, seed=1)
    config = dict(
        h=2, train=TrainConfig(epochs=3, learning_rate=1e-3, seed=0), seed=0
    )
    streamed = run_muxlink(
        locked.circuit, MuxLinkConfig(score_prefetch=2, **config)
    )
    serial = run_muxlink(
        locked.circuit, MuxLinkConfig(score_prefetch=0, **config)
    )
    same = np.array_equal(
        np.array([m.likelihoods for m in streamed.scored]),
        np.array([m.likelihoods for m in serial.scored]),
    )
    print(
        f"\nstreamed scoring: key {streamed.predicted_key} "
        f"(serial parity: {same}, "
        f"testing stage {streamed.runtime_seconds['testing']:.2f}s)"
    )

    # 3. Workspace reuse is invisible — and exactly reproducible. --------
    # The DGCNN recycles its forward buffers (graph-conv slots, the
    # fused sortpool/conv gather) across steps; a re-run of the same
    # attack walks a bit-identical trajectory.
    again = run_muxlink(
        locked.circuit, MuxLinkConfig(score_prefetch=2, **config)
    )
    print(
        "repeat run bit-identical: "
        f"{again.predicted_key == streamed.predicted_key}"
    )


if __name__ == "__main__":
    main()
