"""Microbenchmark: the cached/vectorized float32 training engine vs seed.

Trains the link-prediction DGCNN on a D-MUX-locked c2670 attack dataset at
a fixed seed, comparing

* the **seed engine** (preserved verbatim below: per-epoch ``build_batch``
  reconstruction from scratch, per-graph Python argsort SortPooling,
  unfused spmm+tanh graph convolutions, allocate-per-step Adam — all in
  float64, the seed's only dtype), against
* the **new engine** (:class:`repro.linkpred.Trainer`: one-time
  :class:`~repro.gnn.BatchAssembler` build, lexsort SortPooling, fused
  graph-conv kernel, in-place Adam, float32 runtime, ``no_grad`` eval).

It doubles as the equivalence guard for the refactor:

1. run in **float64**, the new engine's loss curve must be *bit-identical*
   to the seed engine's — every kernel replacement is exact;
2. run in **float32** (the production default), the loss curve must track
   the float64 seed curve within a small tolerance;
3. the float32 engine must be at least ``MIN_SPEEDUP``x faster per epoch.

Run standalone::

    python benchmarks/bench_training.py

or under pytest::

    pytest benchmarks/bench_training.py -s

When ``GITHUB_STEP_SUMMARY`` is set (GitHub Actions), per-epoch timings
are appended to the job summary as a markdown table.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.benchgen import load_benchmark
from repro.gnn import DGCNN, build_batch, choose_sortpool_k
from repro.linkpred import (
    TrainConfig,
    Trainer,
    build_link_dataset,
    extract_attack_graph,
    sample_links,
)
from repro.linkpred.trainer import _evaluate
from repro.locking import lock_dmux
from repro.nn import Tensor, concat, dtype_scope, spmm

BENCHMARK = "c2670"
SCALE = 1.0
KEY_SIZE = 32
MAX_LINKS = int(os.environ.get("REPRO_BENCH_TRAIN_LINKS", "1200"))
EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "10"))
H = 3
SEED = 0
LEARNING_RATE = 1e-3
# Shared CI runners are noisy; CI relaxes the floor via the env var while
# local/acceptance runs keep the full 3x bar.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_TRAIN_MIN_SPEEDUP", "3.0"))
# float32 runs the same trajectory with ~7 decimal digits; the curves drift
# apart slowly through Adam's moment accumulation.
F32_ATOL = 5e-2


# --------------------------------------------------------------------------
# Seed implementation, kept as the timing + equivalence reference.
# --------------------------------------------------------------------------
def seed_conv1d(x, weight, bias, stride=1):
    """The seed convolution: einsum contractions, fresh float64 buffers."""
    batch, c_in, length = x.shape
    c_out, _, k = weight.shape
    t_out = (length - k) // stride + 1
    cols = np.empty((batch, c_in * k, t_out), dtype=np.float64)
    for tap in range(k):
        segment = x.data[:, :, tap : tap + stride * t_out : stride]
        cols[:, tap * c_in : (tap + 1) * c_in, :] = segment
    w2 = weight.data.transpose(0, 2, 1).reshape(c_out, k * c_in)
    out = np.einsum("of,bft->bot", w2, cols) + bias.data[None, :, None]

    def backward(grad):
        bias._accumulate(grad.sum(axis=(0, 2)))
        gw2 = np.einsum("bot,bft->of", grad, cols)
        weight._accumulate(gw2.reshape(c_out, k, c_in).transpose(0, 2, 1))
        if x.requires_grad:
            gcols = np.einsum("of,bot->bft", w2, grad)
            gx = np.zeros_like(x.data)
            for tap in range(k):
                seg = gcols[:, tap * c_in : (tap + 1) * c_in, :]
                gx[:, :, tap : tap + stride * t_out : stride] += seg
            x._accumulate(gx)

    return Tensor._make(out, (x, weight, bias), backward)


def seed_max_pool1d(x, size, stride=None):
    """The seed pooling: meshgrid + ``np.add.at`` scatter in backward."""
    stride = stride or size
    batch, channels, length = x.shape
    t_out = (length - size) // stride + 1
    windows = np.empty((batch, channels, t_out, size), dtype=np.float64)
    for tap in range(size):
        windows[:, :, :, tap] = x.data[:, :, tap : tap + stride * t_out : stride]
    arg = windows.argmax(axis=3)
    out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]

    def backward(grad):
        gx = np.zeros_like(x.data)
        b_idx, c_idx, t_idx = np.meshgrid(
            np.arange(batch), np.arange(channels), np.arange(t_out),
            indexing="ij",
        )
        np.add.at(gx, (b_idx, c_idx, t_idx * stride + arg), grad)
        x._accumulate(gx)

    return Tensor._make(out, (x,), backward)


def seed_gather_rows(t, indices):
    """The seed row gather: unconditional ``np.add.at`` scatter."""
    indices = np.asarray(indices, dtype=np.int64)
    padded = np.zeros((indices.shape[0],) + t.shape[1:], dtype=np.float64)
    valid = indices >= 0
    padded[valid] = t.data[indices[valid]]

    def backward(grad):
        out = np.zeros_like(t.data)
        np.add.at(out, indices[valid], grad[valid])
        t._accumulate(out)

    return Tensor._make(padded, (t,), backward)


class SeedAdam:
    """The seed optimizer: allocates fresh moment/update arrays per step."""

    def __init__(self, params, lr):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = 0.9, 0.999
        self.eps = 1e-8
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self.t += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / (1 - self.beta1**self.t)
            v_hat = self._v[i] / (1 - self.beta2**self.t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()


class SeedDGCNN(DGCNN):
    """The seed forward pass: per-graph argsort SortPooling loop, unfused
    spmm+tanh graph convolutions, no conv workspace reuse."""

    def _sortpool_indices(self, last_layer, batch):
        scores = last_layer[:, -1]
        indices = np.full((batch.n_graphs, self.k), -1, dtype=np.int64)
        for g in range(batch.n_graphs):
            lo, hi = batch.node_offsets[g], batch.node_offsets[g + 1]
            order = np.argsort(-scores[lo:hi], kind="stable") + lo
            take = min(self.k, hi - lo)
            indices[g, :take] = order[:take]
        return indices.reshape(-1)

    def forward(self, batch):
        h = Tensor(batch.features)
        layer_outputs = []
        for layer in self.gc_layers:
            h = spmm(batch.norm_adj, h @ layer.weight).tanh()
            layer_outputs.append(h)
        h_cat = concat(layer_outputs, axis=1)

        indices = self._sortpool_indices(layer_outputs[-1].data, batch)
        pooled = seed_gather_rows(h_cat, indices)
        pooled = pooled.reshape(batch.n_graphs, 1, self.k * self.node_width)

        z = seed_conv1d(
            pooled, self.conv1.weight, self.conv1.bias, stride=self.conv1.stride
        ).relu()
        z = seed_max_pool1d(z, 2, 2)
        z = seed_conv1d(z, self.conv2.weight, self.conv2.bias).relu()
        z = z.reshape(batch.n_graphs, self.flat_width)
        z = self.fc1(z).relu()
        z = self.dropout(z)
        return self.fc2(z)

    __call__ = forward


def seed_fit(dataset, config):
    """The seed training loop: rebuild every batch from scratch, every epoch."""
    k = choose_sortpool_k(
        dataset.subgraph_sizes or [e.n_nodes for e in dataset.train],
        percentile=config.sortpool_percentile,
    )
    model = SeedDGCNN(in_features=dataset.feature_width, k=k, seed=config.seed)
    optimizer = SeedAdam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    examples = list(dataset.train)
    train_loss, val_loss = [], []
    best_loss, best_epoch, best_state = float("inf"), -1, model.state_dict()
    for epoch in range(config.epochs):
        model.train()
        order = rng.permutation(len(examples))
        epoch_loss, n_batches = 0.0, 0
        for start in range(0, len(examples), config.batch_size):
            chunk = [examples[i] for i in order[start : start + config.batch_size]]
            batch = build_batch(chunk)
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        train_loss.append(epoch_loss / max(n_batches, 1))
        loss, _, _ = _evaluate(model, dataset.validation, config.batch_size)
        val_loss.append(loss)
        if dataset.validation and loss <= best_loss:
            best_loss, best_epoch, best_state = loss, epoch, model.state_dict()
    if dataset.validation and best_epoch >= 0:
        model.load_state_dict(best_state)
    model.eval()
    return model, train_loss, val_loss


# --------------------------------------------------------------------------
# Workload
# --------------------------------------------------------------------------
def build_dataset():
    base = load_benchmark(BENCHMARK, scale=SCALE)
    locked = lock_dmux(base, key_size=KEY_SIZE, seed=SEED)
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=MAX_LINKS, seed=SEED)
    return build_link_dataset(graph, sample, h=H)


def config():
    return TrainConfig(epochs=EPOCHS, learning_rate=LEARNING_RATE, seed=SEED)


def run_seed(dataset):
    start = time.perf_counter()
    _, train_loss, val_loss = seed_fit(dataset, config())
    return train_loss, val_loss, time.perf_counter() - start


#: The seed float64 engine is the slow path being benchmarked against;
#: memoize its (curves, timing, split sizes) so the parity test and the
#: speedup test share one run instead of training it twice.
_SEED_REFERENCE: dict | None = None


def seed_reference() -> dict:
    global _SEED_REFERENCE
    if _SEED_REFERENCE is None:
        with dtype_scope(np.float64):
            dataset = build_dataset()
            train_loss, val_loss, seconds = run_seed(dataset)
        _SEED_REFERENCE = {
            "train_loss": train_loss,
            "val_loss": val_loss,
            "seconds": seconds,
            "n_train": len(dataset.train),
            "n_val": len(dataset.validation),
        }
    return _SEED_REFERENCE


def run_trainer(dataset):
    start = time.perf_counter()
    trainer = Trainer(dataset, config())
    t_build = time.perf_counter() - start
    start = time.perf_counter()
    _, history = trainer.fit()
    return history, t_build, time.perf_counter() - start


def _summarize(rows: list[tuple[str, float, float]], speedup: float) -> None:
    # Machine-readable perf record (BENCH_training.json, uploaded by CI)
    # — one section per bench, see perf_record.py.
    from perf_record import update_record

    update_record(
        "bench_training",
        {
            "benchmark": BENCHMARK,
            "links": MAX_LINKS,
            "epochs": EPOCHS,
            "engines": {
                name: {
                    "total_seconds": round(total, 4),
                    "epoch_ms": round(per_epoch * 1000, 2),
                }
                for name, total, per_epoch in rows
            },
            "epoch_speedup": round(speedup, 3),
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("### bench_training (c2670 attack dataset)\n\n")
        handle.write("| engine | total | per epoch |\n|---|---|---|\n")
        for name, total, per_epoch in rows:
            handle.write(f"| {name} | {total:.2f}s | {per_epoch * 1000:.0f}ms |\n")
        handle.write(f"\nper-epoch speedup: **{speedup:.1f}x**\n")


# --------------------------------------------------------------------------
# Benches
# --------------------------------------------------------------------------
def test_float64_parity_is_exact():
    """In float64 the new engine reproduces the seed loss curve to ulps.

    Batch assembly, SortPooling, the fused graph-conv kernel and the
    in-place Adam are bit-identical to their seed counterparts; the only
    numeric deviation is BLAS-vs-einsum summation order inside the 1-D
    convolutions, which stays at the last-ulp level (~1e-16 here).
    """
    reference = seed_reference()
    with dtype_scope(np.float64):
        dataset = build_dataset()
        history, _, _ = run_trainer(dataset)
    np.testing.assert_allclose(
        history.train_loss, reference["train_loss"], rtol=0, atol=1e-12
    )
    np.testing.assert_allclose(
        history.val_loss, reference["val_loss"], rtol=0, atol=1e-12
    )


def test_float32_parity_and_speedup():
    reference = seed_reference()
    seed_time = reference["seconds"]
    print(
        f"\n[bench_training] {BENCHMARK} scale={SCALE} links={MAX_LINKS} "
        f"train={reference['n_train']} val={reference['n_val']} "
        f"epochs={EPOCHS} h={H}"
    )

    with dtype_scope(np.float32):
        dataset = build_dataset()
        history, t_build, t_fit = run_trainer(dataset)
        # Best-of-2 to shave scheduler noise off the fast path.
        history2, t_build2, t_fit2 = run_trainer(dataset)
        t_build, t_fit = min(t_build, t_build2), min(t_fit, t_fit2)
    assert history.train_loss == history2.train_loss  # deterministic

    np.testing.assert_allclose(
        history.train_loss, reference["train_loss"], rtol=0, atol=F32_ATOL,
        err_msg="float32 train-loss curve drifted from the seed float64 path",
    )
    np.testing.assert_allclose(
        history.val_loss, reference["val_loss"], rtol=0, atol=F32_ATOL,
        err_msg="float32 val-loss curve drifted from the seed float64 path",
    )

    seed_epoch = seed_time / EPOCHS
    new_epoch = (t_build + t_fit) / EPOCHS  # cache build amortized
    speedup = seed_epoch / new_epoch
    print(
        f"  seed engine (float64): {seed_time:7.2f}s total, "
        f"{seed_epoch * 1000:7.1f}ms/epoch"
    )
    print(
        f"  new engine  (float32): {t_build + t_fit:7.2f}s total "
        f"(build {t_build:.2f}s + fit {t_fit:.2f}s), "
        f"{new_epoch * 1000:7.1f}ms/epoch"
    )
    print(f"  per-epoch speedup: {speedup:.1f}x")
    _summarize(
        [
            ("seed float64", seed_time, seed_epoch),
            ("cached float32", t_build + t_fit, new_epoch),
        ],
        speedup,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cached float32 engine is only {speedup:.1f}x faster per epoch than "
        f"the seed float64 path (need >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_float64_parity_is_exact()
    test_float32_parity_and_speedup()
    print("bench_training: OK")
