"""Deterministic fault injection + unified retry policy.

Import order matters in this package: ``repro.bus`` and ``repro.store``
import :mod:`repro.faults` (for :func:`fire` and
:class:`~repro.faults.retry.RetryPolicy`), so nothing here may import
them back at module level.  The drill orchestration —
:mod:`repro.faults.chaos` — *does* drive the bus and the experiment
grids, which is why it is loaded lazily by the CLI and never re-exported
from this ``__init__``.
"""

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    NAMED_PLANS,
    FaultError,
    FaultPlan,
    FaultSite,
    activate,
    active_plan,
    deactivate,
    fire,
    fired_counts,
    named_fault_plan,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "NAMED_PLANS",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "RetryPolicy",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "fired_counts",
    "named_fault_plan",
]
