"""Layer-wise curvature capture and the K-FAC preconditioner.

K-FAC (Martens & Grosse, 2015) approximates each layer's Fisher block as
a Kronecker product ``A ⊗ G`` of the layer-input second moment ``A`` and
the grad-output second moment ``G``.  Both factors fall out of work the
network already does: every weight-bearing op here (``graph_conv``,
``conv1d`` / ``_conv1d_flat``, ``sortpool_conv``, ``linear``) computes
its weight gradient as ``actsᵀ @ grad_out`` for some effective 2-D
``acts`` / ``grad_out`` pair, so the backward closures publish exactly
that pair through a module-level *tap* (:func:`record`).  When no tap is
installed — every non-K-FAC run — the publish site is a single predicate
check and the backward pass is unchanged.

The tap consumes what it is handed **immediately**: several publishers
hand over views of :class:`~repro.nn.tensor.Workspace` resident buffers
that the next forward/backward overwrites, so :class:`CurvatureCollector`
reduces them to ``(d, d)`` second-moment contributions on the spot and
retains nothing batch-sized.

:class:`KFAC` owns a collector plus the EMA'd factors and their damped
exact inverses, and preconditions gradients *in place* between
``backward()`` and ``optimizer.step()`` — it composes with (rather than
replaces) the fused Adam update, which keeps Adam's per-parameter scale
normalization while the Kronecker inverses fix the gradient's direction.
All factor arithmetic runs in float64 regardless of the runtime dtype:
the matrices are tiny (the widest block of the DGCNN is the first dense
layer) and well-conditioned inverses are the whole point.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "CurvatureCollector",
    "KFAC",
    "collecting",
    "record",
    "tap_active",
]

#: The installed tap, or ``None``.  Module-level (not thread-local) on
#: purpose: training is single-threaded per process, and the publish-site
#: check must stay one global load.
_TAP: "CurvatureCollector | None" = None


def tap_active() -> bool:
    """True when a collector is installed (publish sites guard on this)."""
    return _TAP is not None


def record(
    weight: Tensor,
    acts: np.ndarray,
    grad_out: np.ndarray,
    bias: Tensor | None = None,
) -> None:
    """Publish one layer's effective ``(acts, grad_out)`` pair to the tap.

    ``acts`` is ``(rows, d_in)``, ``grad_out`` is ``(rows, d_out)``, laid
    out so that ``actsᵀ @ grad_out`` equals the (2-D effective) weight
    gradient the publisher computes.  No-op without an installed tap;
    unknown weights (a tapped model inside a larger program) are ignored
    by the collector.
    """
    tap = _TAP
    if tap is not None:
        tap.record(weight, acts, grad_out, bias)


@contextmanager
def collecting(collector: "CurvatureCollector") -> Iterator["CurvatureCollector"]:
    """Install *collector* as the process-wide tap for the ``with`` body."""
    global _TAP
    if _TAP is not None:
        raise RuntimeError("a curvature tap is already active")
    _TAP = collector
    try:
        yield collector
    finally:
        _TAP = None


def _layer_pairs(module) -> list[tuple[Tensor, Tensor | None]]:
    """``(weight, bias-or-None)`` per weight-bearing layer, in
    :meth:`~repro.nn.layers.Module.parameters` discovery order."""
    from repro.nn.layers import Module

    pairs: list[tuple[Tensor, Tensor | None]] = []

    def walk(m) -> None:
        weight = getattr(m, "weight", None)
        if isinstance(weight, Tensor) and weight.requires_grad:
            bias = getattr(m, "bias", None)
            if not (isinstance(bias, Tensor) and bias.requires_grad):
                bias = None
            pairs.append((weight, bias))
        for value in m.__dict__.values():
            if isinstance(value, Module):
                walk(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        walk(item)

    walk(module)
    return pairs


def _block_dims(weight: Tensor, bias: Tensor | None) -> tuple[int, int]:
    """Factor dimensions ``(d_in, d_out)`` of one layer block.

    2-D weights are ``(d_in, d_out)`` (GraphConv / Linear); 3-D weights
    are conv kernels ``(c_out, c_in, k)`` whose effective input width is
    ``c_in * k``.  A bias augments the input factor by one homogeneous
    coordinate.
    """
    if weight.data.ndim == 3:
        c_out, c_in, k = weight.data.shape
        d_in, d_out = c_in * k, c_out
    elif weight.data.ndim == 2:
        d_in, d_out = weight.data.shape
    else:
        raise ValueError(f"unsupported weight rank {weight.data.ndim}")
    return d_in + (1 if bias is not None else 0), d_out


def _weight_grad_2d(weight: Tensor) -> np.ndarray:
    """View/copy of ``weight.grad`` as the effective ``(d_in, d_out)``.

    The conv mapping matches the publishers' im2col column order
    (tap-major, then input channel): ``conv1d`` builds its gradient as
    ``gw2.reshape(c_out, k, c_in).transpose(0, 2, 1)``, so the inverse is
    ``grad.transpose(0, 2, 1).reshape(c_out, -1).T``.
    """
    grad = weight.grad
    if grad.ndim == 3:
        c_out = grad.shape[0]
        return grad.transpose(0, 2, 1).reshape(c_out, -1).T
    return grad


def _store_weight_grad(weight: Tensor, eff: np.ndarray) -> None:
    """Write an effective ``(d_in, d_out)`` gradient back into ``weight.grad``."""
    grad = weight.grad
    if grad.ndim == 3:
        c_out, c_in, k = grad.shape
        grad[...] = eff.T.reshape(c_out, k, c_in).transpose(0, 2, 1)
    else:
        grad[...] = eff


class CurvatureCollector:
    """Accumulates raw per-layer second-moment contributions for a model.

    One collector belongs to one model: layers are discovered once, in
    parameter order, and publishers are matched by weight identity.  A
    :meth:`record` call reduces the published ``(acts, grad_out)`` pair
    straight to ``Aᵢ += actsᵀacts`` / ``Gᵢ += grad_outᵀgrad_out`` (in
    float64, bias-augmented when the layer has one) — repeated records
    for one layer (gradient-sharded steps, or several backward calls
    between optimizer steps) sum, which is exactly the semantics a
    data-parallel coordinator needs when it absorbs shard contributions.

    :meth:`harvest` hands the pending sums over (aligned with
    :attr:`pairs`) and resets them.
    """

    def __init__(self, model, max_dim: int | None = None):
        self.pairs = _layer_pairs(model)
        self._index = {id(w): i for i, (w, _) in enumerate(self.pairs)}
        self._pending: list[list | None] = [None] * len(self.pairs)
        # Blocks beyond *max_dim* are never collected: their Gram matrices
        # and inverses dominate the cost profile (the first dense layer of
        # the DGCNN is an order of magnitude wider than every other
        # block), and skipping them degrades the affected layer to the
        # raw gradient rather than erroring.
        self.active = [
            max_dim is None or max(_block_dims(w, b)) <= max_dim
            for w, b in self.pairs
        ]

    @property
    def n_blocks(self) -> int:
        return len(self.pairs)

    def record(
        self,
        weight: Tensor,
        acts: np.ndarray,
        grad_out: np.ndarray,
        bias: Tensor | None = None,
    ) -> None:
        i = self._index.get(id(weight))
        if i is None or not self.active[i]:
            return
        acts64 = acts.astype(np.float64, copy=False)
        gout64 = grad_out.astype(np.float64, copy=False)
        rows = acts64.shape[0]
        if self.pairs[i][1] is not None:
            # Bias augmentation without materializing a ones column: the
            # augmented Gram matrix decomposes into the plain Gram, the
            # column sums, and the row count.
            d = acts64.shape[1]
            a = np.empty((d + 1, d + 1), dtype=np.float64)
            a[:d, :d] = acts64.T @ acts64
            s = acts64.sum(axis=0)
            a[:d, d] = s
            a[d, :d] = s
            a[d, d] = rows
        else:
            a = acts64.T @ acts64
        g = gout64.T @ gout64
        self.add(i, a, g, rows)

    def add(self, i: int, a: np.ndarray, g: np.ndarray, rows: int) -> None:
        """Fold one raw contribution ``(Σaaᵀ, Σggᵀ, rows)`` into block *i*."""
        if not self.active[i]:
            return
        slot = self._pending[i]
        if slot is None:
            self._pending[i] = [
                np.asarray(a, dtype=np.float64),
                np.asarray(g, dtype=np.float64),
                int(rows),
            ]
        else:
            slot[0] += a
            slot[1] += g
            slot[2] += int(rows)

    def harvest(self) -> list[tuple[np.ndarray, np.ndarray, int] | None]:
        """Return and reset the pending contributions (``None`` = no data)."""
        out: list[tuple[np.ndarray, np.ndarray, int] | None] = []
        for slot in self._pending:
            out.append(None if slot is None else (slot[0], slot[1], slot[2]))
        self._pending = [None] * len(self.pairs)
        return out


#: Lazily-resolved (get, set) thread-count functions of scipy's OpenBLAS,
#: ``None`` when unavailable, unset sentinel before first use.
_BLAS_CTL: tuple | None = ()


def _blas_thread_control() -> tuple | None:
    """Locate scipy's bundled OpenBLAS thread get/set entry points.

    K-FAC factor inverses are sub-200-dim LAPACK calls; on many-core
    hosts OpenBLAS fans each one out to the full thread pool and the
    wake/sync cost exceeds the O(d³) work by an order of magnitude
    (measured ~25ms per 130-dim inverse on a loaded 24-core box, ~0.4ms
    single-threaded).  The pip ``scipy.libs`` wheel layout exposes
    ``scipy_openblas_{get,set}_num_threads``; when the layout differs
    (conda MKL, system BLAS) this resolves to ``None`` and the refresh
    simply runs unclamped.
    """
    global _BLAS_CTL
    if _BLAS_CTL == ():
        _BLAS_CTL = None
        try:
            import ctypes
            import glob
            import os

            import scipy

            pattern = os.path.join(
                os.path.dirname(scipy.__file__),
                os.pardir,
                "scipy.libs",
                "libscipy_openblas*",
            )
            for path in glob.glob(pattern):
                lib = ctypes.CDLL(path)
                get = getattr(lib, "scipy_openblas_get_num_threads", None)
                put = getattr(lib, "scipy_openblas_set_num_threads", None)
                if get is not None and put is not None:
                    _BLAS_CTL = (get, put)
                    break
        except Exception:
            _BLAS_CTL = None
    return _BLAS_CTL


@contextmanager
def _single_threaded_blas() -> Iterator[None]:
    """Clamp scipy's OpenBLAS to one thread for tiny-matrix LAPACK work."""
    control = _blas_thread_control()
    if control is None:
        yield
        return
    get, put = control
    previous = get()
    put(1)
    try:
        yield
    finally:
        put(previous)


def _spd_inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a symmetric positive-definite matrix.

    Raw LAPACK Cholesky (``dpotrf`` + ``dpotri``): the
    ``scipy.linalg.cho_*`` wrappers add several ms of python-level
    overhead per call, independent of size — an order of magnitude more
    than the O(d³) work at K-FAC factor sizes.  Falls back to LU should
    damping ever fail to make the factor PD.  Callers batching several
    inverses should wrap the loop in :func:`_single_threaded_blas`.
    """
    try:
        from scipy.linalg.lapack import dpotrf, dpotri
    except Exception:
        return np.linalg.inv(matrix)
    chol, info = dpotrf(np.asfortranarray(matrix), lower=1)
    if info == 0:
        inv, info = dpotri(chol, lower=1)
    if info != 0:
        return np.linalg.inv(matrix)
    # dpotri fills only the lower triangle; mirror it.
    lower = np.tril(inv)
    return lower + np.tril(inv, -1).T


class KFAC:
    """K-FAC preconditioner composable with any first-order optimizer.

    Per training step (after ``backward()``, before ``optimizer.step()``)::

        with preconditioner.collecting():
            loss.backward()
        preconditioner.step()      # EMA update + in-place precondition
        optimizer.step()           # fused Adam consumes the new grads

    :meth:`step` folds the harvested second moments into EMA factors
    ``Aᵢ`` / ``Gᵢ`` (normalized per row, warmup-corrected like Adam's
    bias correction), refreshes the damped exact inverses every
    ``inv_every`` steps (factored Tikhonov damping with the π trace
    correction of Martens & Grosse, Sec. 6.3), and replaces every
    layer's gradient with ``Aᵢ⁻¹ @ grad @ Gᵢ⁻¹``.  Layers the tap never
    saw (or steps before any statistics exist) keep their raw gradient —
    the composition degrades to plain Adam, never to an error.

    ``state_dict`` / ``load_state_dict`` round-trip everything through
    plain dict/list/ndarray trees, so the trainer checkpoints them via
    the shared :mod:`repro.store.codec` unchanged.
    """

    def __init__(
        self,
        model,
        damping: float = 1e-3,
        ema_decay: float = 0.95,
        inv_every: int = 10,
        cov_every: int = 1,
        max_block_dim: int | None = None,
    ):
        if damping <= 0.0:
            raise ValueError(f"damping must be positive, got {damping}")
        if not 0.0 <= ema_decay < 1.0:
            raise ValueError(f"ema_decay must be in [0, 1), got {ema_decay}")
        if inv_every < 1:
            raise ValueError(f"inv_every must be >= 1, got {inv_every}")
        if cov_every < 1:
            raise ValueError(f"cov_every must be >= 1, got {cov_every}")
        self.damping = float(damping)
        self.ema_decay = float(ema_decay)
        self.inv_every = int(inv_every)
        self.cov_every = int(cov_every)
        self.collector = CurvatureCollector(model, max_dim=max_block_dim)
        self.t = 0
        n = self.collector.n_blocks
        self._n_updates = [0] * n
        self._dirty = False
        self._A: list[np.ndarray | None] = [None] * n
        self._G: list[np.ndarray | None] = [None] * n
        self._A_inv: list[np.ndarray | None] = [None] * n
        self._G_inv: list[np.ndarray | None] = [None] * n

    def collecting(self):
        """Context manager installing this preconditioner's tap."""
        return collecting(self.collector)

    def wants_statistics(self) -> bool:
        """Should the *next* step's backward run under the tap?

        ``cov_every`` amortizes the collection cost the same way
        ``inv_every`` amortizes inversion: statistics are gathered every
        N-th step (always including the first), the EMA factors coast in
        between.  ``cov_every=1`` collects every step.
        """
        return self.t % self.cov_every == 0

    def absorb(
        self, contributions: list[tuple[np.ndarray, np.ndarray, int] | None]
    ) -> None:
        """Fold externally harvested contributions (data-parallel shards)."""
        if len(contributions) != self.collector.n_blocks:
            raise ValueError(
                f"{len(contributions)} contributions for "
                f"{self.collector.n_blocks} blocks"
            )
        for i, contribution in enumerate(contributions):
            if contribution is not None:
                self.collector.add(i, *contribution)

    def step(self) -> None:
        """Update factors from pending statistics and precondition grads."""
        self.t += 1
        pending = self.collector.harvest()
        stale = False
        for i, contribution in enumerate(pending):
            if contribution is None:
                continue
            a_sum, g_sum, rows = contribution
            a_hat = a_sum / rows
            g_hat = g_sum / rows
            self._n_updates[i] += 1
            self._dirty = True
            # Warmup-corrected EMA: the first update adopts the estimate
            # outright, later ones blend — the factor is an unbiased-ish
            # average from step one instead of a zero-anchored ramp.
            decay = min(self.ema_decay, 1.0 - 1.0 / self._n_updates[i])
            if self._A[i] is None:
                self._A[i] = a_hat
                self._G[i] = g_hat
            else:
                self._A[i] *= decay
                self._A[i] += (1.0 - decay) * a_hat
                self._G[i] *= decay
                self._G[i] += (1.0 - decay) * g_hat
            if self._A_inv[i] is None:
                stale = True
        # Refresh only when the factors moved since the last inversion:
        # with sparse collection (cov_every > 1) a bare modulo would
        # recompute identical inverses.
        if stale or (self._dirty and self.t % self.inv_every == 0):
            self._refresh_inverses()
            self._dirty = False
        self._precondition()

    def _refresh_inverses(self) -> None:
        root = np.sqrt(self.damping)
        with _single_threaded_blas():
            for i, (a, g) in enumerate(zip(self._A, self._G)):
                if a is None:
                    continue
                d_a, d_g = a.shape[0], g.shape[0]
                trace_a = max(np.trace(a) / d_a, 1e-12)
                trace_g = max(np.trace(g) / d_g, 1e-12)
                # π-corrected factored damping: split sqrt(λ) between the
                # two factors in proportion to their average eigenvalue,
                # so the Kronecker product is damped by ~λI regardless of
                # how scale is distributed between A and G.
                pi = np.sqrt(trace_a / trace_g)
                self._A_inv[i] = _spd_inverse(a + (root * pi) * np.eye(d_a))
                self._G_inv[i] = _spd_inverse(g + (root / pi) * np.eye(d_g))

    def _precondition(self) -> None:
        for i, (weight, bias) in enumerate(self.collector.pairs):
            a_inv, g_inv = self._A_inv[i], self._G_inv[i]
            if a_inv is None or weight.grad is None:
                continue
            eff = _weight_grad_2d(weight)
            if bias is not None and bias.grad is not None:
                stacked = np.vstack([eff, bias.grad[None, :]])
                out = a_inv @ stacked @ g_inv
                bias.grad[...] = out[-1]
                _store_weight_grad(weight, out[:-1])
            else:
                _store_weight_grad(weight, a_inv @ eff @ g_inv)

    # ---------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        """Codec-ready snapshot of the factors, inverses and counters."""
        def copy(block):
            return None if block is None else block.copy()

        return {
            "t": self.t,
            "n_updates": list(self._n_updates),
            "dirty": self._dirty,
            "blocks": [
                {
                    "A": copy(self._A[i]),
                    "G": copy(self._G[i]),
                    "A_inv": copy(self._A_inv[i]),
                    "G_inv": copy(self._G_inv[i]),
                }
                for i in range(self.collector.n_blocks)
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot; validates block count/shapes up front."""
        blocks = state["blocks"]
        if len(blocks) != self.collector.n_blocks:
            raise ValueError(
                f"state has {len(blocks)} curvature blocks, model has "
                f"{self.collector.n_blocks}"
            )
        expected = [_block_dims(w, b) for w, b in self.collector.pairs]
        for i, block in enumerate(blocks):
            d_in, d_out = expected[i]
            for name, dim in (("A", d_in), ("G", d_out)):
                for key in (name, f"{name}_inv"):
                    value = block[key]
                    if value is not None and value.shape != (dim, dim):
                        raise ValueError(
                            f"curvature block {i} {key} has shape "
                            f"{value.shape}, expected {(dim, dim)}"
                        )
        self.t = int(state["t"])
        self._n_updates = [int(n) for n in state["n_updates"]]
        self._dirty = bool(state.get("dirty", False))
        for i, block in enumerate(blocks):
            self._A[i] = _as_f64(block["A"])
            self._G[i] = _as_f64(block["G"])
            self._A_inv[i] = _as_f64(block["A_inv"])
            self._G_inv[i] = _as_f64(block["G_inv"])


def _as_f64(block: np.ndarray | None) -> np.ndarray | None:
    return None if block is None else np.array(block, dtype=np.float64)
