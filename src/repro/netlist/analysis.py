"""Higher-level structural analyses over :class:`~repro.netlist.Circuit`.

These helpers serve three consumers:

* the locking passes (multi-output node enumeration, loop-safety checks),
* the SWEEP/SCOPE feature extractors (area / switching proxies),
* the experiment reports (size ordering for the Fig. 7 trend lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = [
    "multi_output_nets",
    "single_output_nets",
    "lockable_nets",
    "gate_level_map",
    "area_estimate",
    "switching_estimate",
    "FanoutProfile",
    "fanout_profile",
]

#: Relative area of each primitive in generic gate-equivalents (NAND2 = 1.0).
#: Used only as a *feature* for constant-propagation attacks; absolute
#: calibration is irrelevant as the attacks compare deltas.
_AREA_WEIGHTS: dict[GateType, float] = {
    GateType.NAND: 1.0,
    GateType.NOR: 1.0,
    GateType.AND: 1.25,
    GateType.OR: 1.25,
    GateType.NOT: 0.75,
    GateType.BUF: 0.75,
    GateType.XOR: 2.25,
    GateType.XNOR: 2.25,
    GateType.MUX: 2.5,
}


def multi_output_nets(circuit: Circuit, gates_only: bool = True) -> list[str]:
    """Nets driving more than one load (D-MUX "multi-output nodes").

    Args:
        circuit: netlist to analyse.
        gates_only: when True, only gate-driven nets qualify (primary inputs
            are never locked by the schemes reproduced here).
    """
    candidates = circuit.gate_names if gates_only else circuit.nets
    return [net for net in candidates if circuit.fanout_size(net) > 1]


def single_output_nets(circuit: Circuit, gates_only: bool = True) -> list[str]:
    """Nets driving exactly one load."""
    candidates = circuit.gate_names if gates_only else circuit.nets
    return [net for net in candidates if circuit.fanout_size(net) == 1]


def lockable_nets(circuit: Circuit) -> list[str]:
    """Gate-driven nets with at least one load — candidates for MUX locking."""
    return [net for net in circuit.gate_names if circuit.fanout_size(net) >= 1]


def gate_level_map(circuit: Circuit) -> dict[str, int]:
    """Topological level of every net (primary inputs at level 0)."""
    levels: dict[str, int] = {pi: 0 for pi in circuit.inputs}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        levels[name] = 1 + max((levels[n] for n in gate.inputs), default=0)
    return levels


def area_estimate(circuit: Circuit) -> float:
    """Total area in gate-equivalents (SWEEP/SCOPE feature)."""
    return sum(_AREA_WEIGHTS[g.gate_type] for g in circuit.gates)


def switching_estimate(circuit: Circuit) -> float:
    """Crude dynamic-power proxy: area-weighted fan-out activity.

    SWEEP extracts power/area features from synthesis reports; we emulate the
    power column with a topology-only proxy so the attack sees a feature that
    *would* shift if constant propagation pruned logic asymmetrically.
    """
    total = 0.0
    for gate in circuit.gates:
        loads = circuit.fanout_size(gate.name)
        total += _AREA_WEIGHTS[gate.gate_type] * (1 + 0.5 * loads)
    return total


@dataclass(frozen=True)
class FanoutProfile:
    """Fan-out distribution summary of a circuit."""

    mean: float
    maximum: int
    multi_output_fraction: float


def fanout_profile(circuit: Circuit) -> FanoutProfile:
    """Summarize the fan-out distribution over gate-driven nets."""
    sizes = [circuit.fanout_size(net) for net in circuit.gate_names]
    if not sizes:
        return FanoutProfile(mean=0.0, maximum=0, multi_output_fraction=0.0)
    multi = sum(1 for s in sizes if s > 1)
    return FanoutProfile(
        mean=sum(sizes) / len(sizes),
        maximum=max(sizes),
        multi_output_fraction=multi / len(sizes),
    )
