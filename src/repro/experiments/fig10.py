"""Fig. 10 — effect of the hop count ``h`` on scores and runtime.

Reproduced shape: scores jump from h = 1 to h = 2 and saturate by h ≈ 3,
while runtime grows with h (neighbourhoods grow exponentially).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.metrics import aggregate_metrics
from repro.experiments.common import (
    ExperimentScale,
    active_scale,
    attack_benchmark,
)
from repro.locking import DMUX_SCHEME

__all__ = ["Fig10Row", "run_fig10", "format_fig10"]


@dataclass(frozen=True)
class Fig10Row:
    h: int
    accuracy: float
    precision: float
    kpa: float
    runtime_seconds: float


def run_fig10(
    scale: ExperimentScale | None = None,
    hops: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
) -> list[Fig10Row]:
    """Re-run the attack for each h (paper: h in [1, 4], saturating at 3)."""
    scale = scale or active_scale()
    rows: list[Fig10Row] = []
    for h in hops:
        h_scale = replace(scale, h=h)
        records = []
        for name, circuit_scale, key_sizes in h_scale.benchmarks():
            if name not in h_scale.iscas:
                continue
            records.append(
                attack_benchmark(
                    name, DMUX_SCHEME, max(key_sizes), h_scale, circuit_scale,
                    seed=seed,
                )
            )
        metrics = aggregate_metrics([r.metrics for r in records])
        kpa = metrics.kpa if metrics.kpa == metrics.kpa else 0.0
        rows.append(
            Fig10Row(
                h=h,
                accuracy=metrics.accuracy,
                precision=metrics.precision,
                kpa=kpa,
                runtime_seconds=sum(r.runtime_seconds for r in records),
            )
        )
    return rows


def format_fig10(rows: list[Fig10Row]) -> str:
    lines = [
        "Fig. 10 — MuxLink scores and runtime vs h-hop size",
        f"{'h':>3}{'AC':>8}{'PC':>8}{'KPA':>8}{'runtime(s)':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r.h:>3}{r.accuracy:>8.3f}{r.precision:>8.3f}"
            f"{r.kpa:>8.3f}{r.runtime_seconds:>12.1f}"
        )
    return "\n".join(lines)
