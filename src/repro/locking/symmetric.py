"""Symmetric MUX-based locking — strategy S5 (Alaql et al., TVLSI 2021).

S5 is the special case of S4 where the two MUXes of a locality are driven by
*individual* key inputs and the sources ``{fi, fj}`` are single-output nodes.
Both MUXes share the same data-pin order, so each locality's two correct key
bits are complementary — which is why, under the same key size, symmetric
locking obfuscates fewer localities than D-MUX (paper Sec. IV, "Effect of
the LL Scheme").
"""

from __future__ import annotations

import numpy as np

from repro.errors import LockingError
from repro.locking.common import Locality, LockedCircuit, Strategy
from repro.locking.dmux import _gate_loads, _insert_pair, _pick, _source_nets
from repro.locking.keys import format_key
from repro.netlist import Circuit

__all__ = ["lock_symmetric", "SYMMETRIC_SCHEME"]

SYMMETRIC_SCHEME = "Symmetric-MUX"

_TRIES = 120


def _try_s5(
    circuit: Circuit, ki: int, kj: int, rng: np.random.Generator
) -> Locality | None:
    sources = _source_nets(circuit)
    single = [n for n in sources if circuit.fanout_size(n) == 1]
    for attempt in range(_TRIES):
        # Strict S5 wants one-output sources; if the pool has run dry fall
        # back to arbitrary sources (keeps large keys lockable — documented
        # deviation, the locality shape is unchanged).
        pool = single if single and attempt < _TRIES // 2 else sources
        if len(pool) < 2:
            return None
        fi, fj = _pick(rng, pool), _pick(rng, pool)
        if fi == fj:
            continue
        loads_i = [g for g in _gate_loads(circuit, fi) if g != fj]
        loads_j = [g for g in _gate_loads(circuit, fj) if g != fi]
        if not loads_i or not loads_j:
            continue
        gi, gj = _pick(rng, loads_i), _pick(rng, loads_j)
        if gi == gj:
            continue
        try:
            mux_i, mux_j = _insert_pair(
                circuit, ki, kj, fi, fj, gi, gj, rng, same_order=True
            )
        except LockingError:
            continue
        return Locality(Strategy.S5, (mux_i, mux_j))
    return None


def lock_symmetric(
    circuit: Circuit,
    key_size: int,
    seed: int = 0,
    name: str | None = None,
) -> LockedCircuit:
    """Lock *circuit* with symmetric MUX-based locking (S5).

    Args:
        circuit: source netlist (unchanged).
        key_size: number of key bits; must be even (each locality consumes
            two individual key inputs).
        seed: RNG seed controlling locality selection and pin order.
        name: name for the locked circuit.

    Raises:
        LockingError: odd key size or not enough viable localities.
    """
    if key_size < 2 or key_size % 2 != 0:
        raise LockingError("symmetric locking needs a positive even key size")
    rng = np.random.default_rng(seed)
    locked = circuit.copy(name or f"{circuit.name}_sym_k{key_size}")
    localities: list[Locality] = []
    for bit in range(0, key_size, 2):
        locality = _try_s5(locked, bit, bit + 1, rng)
        if locality is None:
            raise LockingError(
                f"{circuit.name}: no viable S5 locality for key bits "
                f"{bit},{bit + 1}"
            )
        localities.append(locality)

    key_bits = {
        m.key_index: m.select_for_true
        for loc in localities
        for m in loc.muxes
    }
    locked.validate()
    return LockedCircuit(
        circuit=locked,
        key=format_key(key_bits, key_size),
        localities=localities,
        scheme=SYMMETRIC_SCHEME,
        original_name=circuit.name,
    )
