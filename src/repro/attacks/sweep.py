"""SWEEP — supervised constant propagation attack.

SWEEP trains per-feature weights on a corpus of locked designs with known
keys: for every key bit it hard-codes both values, re-synthesizes, extracts
design-feature deltas, and fits a linear model mapping delta → correct bit.
At attack time the learned weights score each target key bit; scores inside
the margin are reported as ``x`` (or flipped as a coin, like the original
tool's arbitrary decisions).

Against D-MUX / symmetric locking every delta is (near-)zero by
construction, the regression has no signal, and SWEEP collapses to ≈50 %
KPA — paper Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AttackError
from repro.locking.common import LockedCircuit
from repro.locking.keys import key_input_index, key_inputs_of
from repro.netlist import Circuit
from repro.opt import cleanup, design_features, propagate_constants

__all__ = ["SweepAttack", "SweepReport"]


def _key_bit_deltas(circuit: Circuit) -> dict[int, np.ndarray]:
    """Per-key-bit feature deltas F(k=0) - F(k=1) after re-synthesis."""
    deltas: dict[int, np.ndarray] = {}
    for key_net in key_inputs_of(circuit):
        features = {}
        for value in (0, 1):
            resynth = cleanup(propagate_constants(circuit, {key_net: value}))
            features[value] = design_features(resynth)
        deltas[key_input_index(key_net)] = features[0] - features[1]
    return deltas


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one SWEEP attack run."""

    predicted_key: str
    scores: dict[int, float]
    n_blind: int


@dataclass
class SweepAttack:
    """Trainable SWEEP attack instance.

    Attributes:
        margin: |score| below which a bit is undecided.
        undecided: ``"x"`` to abstain, ``"coin"`` for seeded random guesses.
        ridge: L2 regularization of the least-squares fit.
    """

    margin: float = 1e-6
    undecided: str = "x"
    ridge: float = 1e-3
    seed: int = 0
    _weights: np.ndarray | None = field(default=None, repr=False)

    def fit(self, training_set: list[LockedCircuit]) -> "SweepAttack":
        """Learn feature weights from locked designs with known keys.

        Targets are ``+1`` for a correct bit of 0 and ``-1`` for 1, matching
        the sign convention of :meth:`attack` scores.
        """
        if not training_set:
            raise AttackError("SWEEP needs a non-empty training set")
        rows: list[np.ndarray] = []
        targets: list[float] = []
        for locked in training_set:
            deltas = _key_bit_deltas(locked.circuit)
            for bit, delta in deltas.items():
                if bit >= len(locked.key):
                    raise AttackError(
                        f"key bit {bit} outside key of size {len(locked.key)}"
                    )
                rows.append(delta)
                targets.append(1.0 if locked.key[bit] == "0" else -1.0)
        X = np.vstack(rows)
        y = np.array(targets)
        gram = X.T @ X + self.ridge * np.eye(X.shape[1])
        self._weights = np.linalg.solve(gram, X.T @ y)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def attack(self, circuit: Circuit) -> SweepReport:
        """Predict the key of a locked netlist using the learned weights."""
        if self._weights is None:
            raise AttackError("call fit() before attack()")
        key_nets = key_inputs_of(circuit)
        if not key_nets:
            raise AttackError("no key inputs found; is this netlist locked?")
        n_bits = max(key_input_index(k) for k in key_nets) + 1
        rng = np.random.default_rng(self.seed)

        deltas = _key_bit_deltas(circuit)
        guesses: dict[int, str] = {}
        scores: dict[int, float] = {}
        n_blind = 0
        for bit, delta in deltas.items():
            if delta.shape != self._weights.shape:
                raise AttackError(
                    f"feature dimension mismatch: target design yields "
                    f"{delta.shape[0]}-dim features but the model was "
                    f"fitted on {self._weights.shape[0]}-dim features"
                )
            score = float(delta @ self._weights)
            scores[bit] = score
            if score > self.margin:
                guesses[bit] = "0"
            elif score < -self.margin:
                guesses[bit] = "1"
            elif self.undecided == "coin":
                guesses[bit] = str(int(rng.integers(2)))
                n_blind += 1
            else:
                guesses[bit] = "x"
                n_blind += 1
        predicted = "".join(guesses.get(i, "x") for i in range(n_bits))
        return SweepReport(
            predicted_key=predicted, scores=scores, n_blind=n_blind
        )
