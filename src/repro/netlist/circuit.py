"""Mutable gate-level netlist with structural queries.

A :class:`Circuit` is a named DAG of :class:`Gate` instances.  A *net* is
identified by the name of its driver — either a primary input or a gate.
Primary outputs reference nets by name.  This is exactly the information
content of a combinational BENCH file.

The locking passes in :mod:`repro.locking` mutate circuits through the
editing API (:meth:`Circuit.add_gate`, :meth:`Circuit.rewire_input`, …);
all structural caches are invalidated on mutation and rebuilt lazily.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.gates import GateType, gate_arity_ok

__all__ = ["Gate", "Circuit", "CircuitStats"]


@dataclass(frozen=True)
class Gate:
    """A single gate instance.

    Attributes:
        name: net name driven by this gate (unique within the circuit).
        gate_type: the Boolean primitive.
        inputs: ordered fan-in net names.  For ``MUX`` the order is
            ``(select, d0, d1)``.
    """

    name: str
    gate_type: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("gate name must be non-empty")
        if not gate_arity_ok(self.gate_type, len(self.inputs)):
            raise NetlistError(
                f"gate {self.name!r}: {self.gate_type!s} cannot take "
                f"{len(self.inputs)} input(s)"
            )


@dataclass(frozen=True)
class CircuitStats:
    """Structural summary used by attacks and reports."""

    num_inputs: int
    num_outputs: int
    num_gates: int
    num_nets: int
    gate_counts: dict[str, int] = field(hash=False, default_factory=dict)
    depth: int = 0


class Circuit:
    """A combinational netlist.

    Args:
        name: circuit name (used in BENCH headers and reports).
        inputs: primary-input net names.
        outputs: primary-output net names (each must be driven).
        gates: gate instances in any order; stored in insertion order.
    """

    def __init__(
        self,
        name: str,
        inputs: list[str] | None = None,
        outputs: list[str] | None = None,
        gates: list[Gate] | None = None,
    ) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._input_set: set[str] = set()
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._fanouts: dict[str, list[str]] | None = None
        self._topo: list[str] | None = None
        self._output_counts: dict[str, int] | None = None
        for pi in inputs or []:
            self.add_input(pi)
        for gate in gates or []:
            self.add_gate(gate)
        for po in outputs or []:
            self.add_output(po)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary-input net names in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary-output net names in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> tuple[Gate, ...]:
        """All gates in insertion order."""
        return tuple(self._gates.values())

    @property
    def gate_names(self) -> tuple[str, ...]:
        return tuple(self._gates.keys())

    def gate(self, name: str) -> Gate:
        """Return the gate driving net *name*."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate drives net {name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._gates

    def is_input(self, net: str) -> bool:
        return net in self._input_set

    def is_output(self, net: str) -> bool:
        return net in self._output_count_map()

    def has_net(self, net: str) -> bool:
        return net in self._input_set or net in self._gates

    @property
    def nets(self) -> tuple[str, ...]:
        """All net names: primary inputs followed by gate outputs."""
        return tuple(self._inputs) + tuple(self._gates.keys())

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, {len(self._inputs)} PI, "
            f"{len(self._outputs)} PO, {len(self._gates)} gates)"
        )

    # ------------------------------------------------------------------
    # Editing API
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._fanouts = None
        self._topo = None
        self._output_counts = None

    def _output_count_map(self) -> dict[str, int]:
        """Cached multiset of primary-output references (net -> count).

        Rebuilt lazily after any mutation, like ``_fanouts``/``_topo``, so
        :meth:`is_output` and :meth:`fanout_size` stay O(1) instead of
        scanning ``_outputs`` on every call.
        """
        if self._output_counts is None:
            counts: dict[str, int] = {}
            for po in self._outputs:
                counts[po] = counts.get(po, 0) + 1
            self._output_counts = counts
        return self._output_counts

    def add_input(self, name: str) -> None:
        """Declare a new primary input."""
        if name in self._input_set:
            raise NetlistError(f"duplicate primary input {name!r}")
        if name in self._gates:
            raise NetlistError(f"net {name!r} already driven by a gate")
        self._inputs.append(name)
        self._input_set.add(name)
        self._invalidate()

    def remove_input(self, name: str) -> None:
        """Remove an unused primary input (no loads, not an output)."""
        if name not in self._input_set:
            raise NetlistError(f"{name!r} is not a primary input")
        if self.fanout(name) or name in self._output_count_map():
            raise NetlistError(f"primary input {name!r} is still in use")
        self._inputs.remove(name)
        self._input_set.discard(name)
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Declare an existing net as a primary output."""
        if not self.has_net(name):
            raise NetlistError(f"primary output {name!r} is not driven")
        self._outputs.append(name)
        self._output_counts = None

    def add_gate(self, gate: Gate) -> None:
        """Add a gate; its fan-in nets must already exist."""
        if gate.name in self._gates:
            raise NetlistError(f"duplicate gate {gate.name!r}")
        if gate.name in self._input_set:
            raise NetlistError(
                f"gate {gate.name!r} collides with a primary input"
            )
        for net in gate.inputs:
            if not self.has_net(net):
                raise NetlistError(
                    f"gate {gate.name!r} references undriven net {net!r}"
                )
        self._gates[gate.name] = gate
        self._invalidate()

    def remove_gate(self, name: str) -> Gate:
        """Remove the gate driving *name*.

        The net must have no remaining loads (fan-out gates or primary
        outputs); remove the loads first.
        """
        gate = self.gate(name)
        loads = self.fanout(name)
        if loads:
            raise NetlistError(
                f"cannot remove {name!r}: still feeds {sorted(loads)!r}"
            )
        if name in self._output_count_map():
            raise NetlistError(f"cannot remove {name!r}: is a primary output")
        del self._gates[name]
        self._invalidate()
        return gate

    def rewire_input(self, gate_name: str, old_net: str, new_net: str) -> None:
        """Replace one fan-in net of a gate (first occurrence only)."""
        gate = self.gate(gate_name)
        if old_net not in gate.inputs:
            raise NetlistError(
                f"gate {gate_name!r} has no input {old_net!r}"
            )
        if not self.has_net(new_net):
            raise NetlistError(f"net {new_net!r} is not driven")
        inputs = list(gate.inputs)
        inputs[inputs.index(old_net)] = new_net
        self._gates[gate_name] = Gate(gate.name, gate.gate_type, tuple(inputs))
        self._invalidate()

    def replace_gate(self, gate: Gate) -> None:
        """Replace an existing gate (same name) with a new definition."""
        if gate.name not in self._gates:
            raise NetlistError(f"no gate {gate.name!r} to replace")
        for net in gate.inputs:
            if not self.has_net(net):
                raise NetlistError(
                    f"gate {gate.name!r} references undriven net {net!r}"
                )
        self._gates[gate.name] = gate
        self._invalidate()

    def rename_gate(self, old: str, new: str) -> None:
        """Rename the gate driving *old* to *new*, updating loads and POs."""
        gate = self.gate(old)
        if self.has_net(new):
            raise NetlistError(f"net {new!r} already exists")
        self._gates = {
            (new if name == old else name): (
                Gate(new, g.gate_type, g.inputs) if name == old else g
            )
            for name, g in self._gates.items()
        }
        for load_name, load in list(self._gates.items()):
            if old in load.inputs:
                inputs = tuple(new if n == old else n for n in load.inputs)
                self._gates[load_name] = Gate(load.name, load.gate_type, inputs)
        self._outputs = [new if po == old else po for po in self._outputs]
        self._invalidate()

    def redirect_output(self, old_net: str, new_net: str) -> None:
        """Re-point every primary-output reference from *old_net* to *new_net*."""
        if not self.has_net(new_net):
            raise NetlistError(f"net {new_net!r} is not driven")
        self._outputs = [new_net if po == old_net else po for po in self._outputs]
        self._output_counts = None

    def fresh_name(self, prefix: str) -> str:
        """Return a net name starting with *prefix* not used in the circuit."""
        if not self.has_net(prefix):
            return prefix
        idx = 0
        while self.has_net(f"{prefix}_{idx}"):
            idx += 1
        return f"{prefix}_{idx}"

    @classmethod
    def from_parts(
        cls,
        name: str,
        inputs: list[str],
        outputs: list[str],
        gates: list[Gate],
    ) -> "Circuit":
        """Rebuild a circuit from its serialized parts, preserving gate order.

        Unlike feeding *gates* through :meth:`add_gate` (which requires
        fan-in nets to exist already, i.e. a topological insertion order),
        this accepts gates in **any** order and keeps exactly that order —
        attack-graph node indices follow ``Circuit.gates`` iteration
        order, so a deserialized circuit must reproduce the original
        insertion order bit for bit.  Structure is checked once at the
        end via :meth:`validate`.
        """
        circuit = cls(name, inputs=list(inputs))
        for gate in gates:
            if gate.name in circuit._gates:
                raise NetlistError(f"duplicate gate {gate.name!r}")
            if gate.name in circuit._input_set:
                raise NetlistError(
                    f"gate {gate.name!r} collides with a primary input"
                )
            circuit._gates[gate.name] = gate
        circuit._invalidate()
        for po in outputs:
            circuit.add_output(po)
        circuit.validate()
        return circuit

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep copy (gates are immutable, so this is cheap)."""
        dup = Circuit.__new__(Circuit)
        dup.name = name if name is not None else self.name
        dup._inputs = list(self._inputs)
        dup._input_set = set(self._input_set)
        dup._outputs = list(self._outputs)
        dup._gates = dict(self._gates)
        dup._fanouts = None
        dup._topo = None
        dup._output_counts = None
        return dup

    def __deepcopy__(self, memo: dict) -> "Circuit":
        dup = self.copy()
        memo[id(self)] = dup
        return dup

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def _fanout_map(self) -> dict[str, list[str]]:
        if self._fanouts is None:
            fanouts: dict[str, list[str]] = {net: [] for net in self.nets}
            for gate in self._gates.values():
                for net in gate.inputs:
                    fanouts[net].append(gate.name)
            self._fanouts = fanouts
        return self._fanouts

    def fanout(self, net: str) -> tuple[str, ...]:
        """Gate names loading *net* (duplicates preserved for multi-pin)."""
        if not self.has_net(net):
            raise NetlistError(f"unknown net {net!r}")
        return tuple(self._fanout_map()[net])

    def fanout_size(self, net: str) -> int:
        """Number of gate loads plus primary-output references of *net*."""
        return len(self.fanout(net)) + self._output_count_map().get(net, 0)

    def is_multi_output(self, net: str) -> bool:
        """True if *net* drives more than one load (D-MUX terminology)."""
        return self.fanout_size(net) > 1

    def topological_order(self) -> tuple[str, ...]:
        """Gate names in topological order.

        Raises:
            NetlistError: if the circuit contains a combinational loop.
        """
        if self._topo is None:
            indeg: dict[str, int] = {}
            for gate in self._gates.values():
                indeg[gate.name] = sum(
                    1 for net in gate.inputs if net in self._gates
                )
            ready = deque(
                name for name, deg in indeg.items() if deg == 0
            )
            order: list[str] = []
            fanouts = self._fanout_map()
            while ready:
                name = ready.popleft()
                order.append(name)
                for load in fanouts[name]:
                    indeg[load] -= 1
                    if indeg[load] == 0:
                        ready.append(load)
            if len(order) != len(self._gates):
                cyclic = sorted(set(self._gates) - set(order))
                raise NetlistError(
                    f"combinational loop through gates {cyclic[:8]!r}"
                )
            self._topo = order
        return tuple(self._topo)

    def has_combinational_loop(self) -> bool:
        try:
            self.topological_order()
        except NetlistError:
            return True
        return False

    def creates_loop(self, driver: str, load_gate: str) -> bool:
        """Would adding edge *driver* → *load_gate* create a cycle?

        True iff *load_gate* currently reaches the gate driving *driver*.
        """
        if driver in self._input_set:
            return False
        return driver in self.transitive_fanout(load_gate) or driver == load_gate

    def transitive_fanout(self, net: str) -> set[str]:
        """All gate names reachable downstream of *net* (excluding itself)."""
        fanouts = self._fanout_map()
        seen: set[str] = set()
        frontier = deque(fanouts[net])
        while frontier:
            cur = frontier.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            frontier.extend(fanouts[cur])
        return seen

    def transitive_fanin(self, net: str) -> set[str]:
        """All net names upstream of *net* (excluding itself)."""
        seen: set[str] = set()
        if net in self._gates:
            frontier = deque(self._gates[net].inputs)
        else:
            return seen
        while frontier:
            cur = frontier.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            if cur in self._gates:
                frontier.extend(self._gates[cur].inputs)
        return seen

    def depth(self) -> int:
        """Longest PI→PO path measured in gate levels."""
        levels: dict[str, int] = {pi: 0 for pi in self._inputs}
        for name in self.topological_order():
            gate = self._gates[name]
            levels[name] = 1 + max(
                (levels[net] for net in gate.inputs), default=0
            )
        return max((levels[po] for po in self._outputs), default=0)

    def validate(self) -> None:
        """Raise :class:`NetlistError` on any structural inconsistency."""
        for po in self._outputs:
            if not self.has_net(po):
                raise NetlistError(f"primary output {po!r} is not driven")
        for gate in self._gates.values():
            for net in gate.inputs:
                if not self.has_net(net):
                    raise NetlistError(
                        f"gate {gate.name!r} references undriven net {net!r}"
                    )
        self.topological_order()

    def stats(self) -> CircuitStats:
        """Structural summary (used by SWEEP/SCOPE feature extraction)."""
        counts: dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.gate_type.value] = counts.get(gate.gate_type.value, 0) + 1
        return CircuitStats(
            num_inputs=len(self._inputs),
            num_outputs=len(self._outputs),
            num_gates=len(self._gates),
            num_nets=len(self._inputs) + len(self._gates),
            gate_counts=counts,
            depth=self.depth(),
        )

    def dangling_nets(self) -> tuple[str, ...]:
        """Nets with no loads and not declared as primary outputs.

        A non-empty result after hard-coding a key bit is exactly the
        circuit-reduction signal exploited by SAAM.
        """
        out_map = self._output_count_map()
        return tuple(
            net
            for net in self.nets
            if not self._fanout_map()[net] and net not in out_map
        )
