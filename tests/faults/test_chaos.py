"""The `repro chaos` drill engine (cheap paths; CI runs the full drills)."""

import pytest

from repro.experiments import SMOKE_SCALE
from repro.faults import NAMED_PLANS
from repro.faults.chaos import DRILL_TOPOLOGY, DrillOutcome, run_chaos


def test_every_named_plan_has_a_drill_topology():
    assert set(DRILL_TOPOLOGY) == set(NAMED_PLANS)
    assert set(DRILL_TOPOLOGY.values()) <= {"spool", "socket", "serve", "local"}
    assert DRILL_TOPOLOGY["serve-flaky"] == "serve"


def test_unknown_plan_is_rejected_before_any_work():
    with pytest.raises(ValueError, match="unknown chaos plan"):
        run_chaos(["chaos-monkey"], scale=SMOKE_SCALE, log=lambda *a: None)


def test_outcome_summary_shape():
    outcome = DrillOutcome(plan="enospc", topology="local")
    outcome.injected = {"store.write_enospc": 2}
    outcome.write_retries = 2
    assert outcome.ok
    assert "PASS" in outcome.summary()
    assert "write-retries=2" in outcome.summary()
    outcome.failures.append("tables diverged")
    assert not outcome.ok
    assert "FAIL" in outcome.summary()
    assert "tables diverged" in outcome.summary()


def test_enospc_drill_end_to_end(tmp_path):
    """The cheapest real drill: injected ENOSPC on the in-process store
    path, absorbed by the retry policy, bit-identical tables."""
    lines = []
    (outcome,) = run_chaos(
        ["enospc"], scale=SMOKE_SCALE, seed=0, log=lines.append
    )
    assert outcome.ok, outcome.summary()
    assert outcome.fingerprints_match and outcome.tables_match
    assert outcome.injected.get("store.write_enospc", 0) >= 1
    assert outcome.write_retries >= 1
    assert any("PASS" in line for line in lines)
