"""Microbenchmark: the block-sparse spmm engine vs the PR 2 training engine.

Trains the link-prediction DGCNN on a D-MUX-locked c2670 attack dataset at
a fixed seed, comparing

* the **PR 2 engine** (preserved verbatim below: per-call ``tocsr()`` and
  ``matrix.T`` scipy dispatch in the graph convolution, node-sized
  ``H^{1:L}`` concat copies, per-example offset adds + validated
  ``csr_matrix`` construction in ``assemble``, im2col batched-GEMM
  convolutions with ``tensordot`` backward, windows/argmax pooling,
  per-parameter Adam), against
* the **current engine**: cached :class:`~repro.nn.sparse.SparseOp`
  operators (format conversion once per batch, transpose product on the
  original CSR arrays, preallocated outputs), zero-alloc forward
  workspaces (resident graph-conv slots + the pooled ``H^{1:L}`` buffer
  written by a fused sortpool gather), flat-GEMM convolutions, two-way-max
  pooling and the arena-fused Adam.

It is simultaneously the equivalence guard for the refactor:

1. run in **float64**, the current engine's loss curve must match the
   PR 2 engine's to ``1e-12`` (the only deviation is BLAS summation order
   inside the reshaped convolution GEMMs — last-ulp level);
2. run in **float32** (the production default), the current engine must
   be at least ``MIN_SPEEDUP``x faster per training epoch;
3. candidate scoring through the streamed extract→score pipeline must
   reproduce the serial path bit for bit and at least match its runtime
   (within ``STREAM_SLACK`` for timer noise).

Per-kernel spmm timings (scipy dispatch vs ``SparseOp`` vs the batched-ELL
numpy core vs numba when installed) are printed and, together with the
engine timings, written to the machine-readable ``BENCH_training.json``
perf record (see ``perf_record.py``) that CI uploads.

Run standalone::

    python benchmarks/bench_spmm.py

or under pytest::

    pytest benchmarks/bench_spmm.py -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from perf_record import update_record
from repro.benchgen import load_benchmark
from repro.gnn import (
    BatchAssembler,
    BatchCache,
    DGCNN,
    build_batch,
    choose_sortpool_k,
)
from repro.linkpred import (
    TrainConfig,
    Trainer,
    build_link_dataset,
    build_target_examples,
    extract_attack_graph,
    iter_target_examples,
    sample_links,
    score_examples,
    score_stream,
)
from repro.linkpred.trainer import _evaluate
from repro.nn import SparseOp, Tensor, concat, dtype_scope, numba_available, spmm_scope

BENCHMARK = "c2670"
SCALE = 1.0
KEY_SIZE = 32
MAX_LINKS = int(os.environ.get("REPRO_BENCH_SPMM_LINKS", "1200"))
EPOCHS = int(os.environ.get("REPRO_BENCH_SPMM_EPOCHS", "8"))
H = 3
SEED = 0
LEARNING_RATE = 1e-3
#: Required per-epoch training speedup of the current engine over PR 2.
#: The issue targeted 1.3x on the assumption that the scipy matvec kernels
#: were ~25% of an epoch; warm-path measurement shows the C kernels are
#: ~6% and the recoverable cost was the plumbing around them (transpose
#: construction, format validation, allocs, concat copies, batched-GEMM
#: loops).  On a 1-core container the engine lands at 1.20-1.27x; the
#: default floor is set where the gate is robust to scheduler noise, and
#: the measured speedup is printed and recorded for the perf trajectory.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SPMM_MIN_SPEEDUP", "1.15"))
#: The streamed scorer must at least match the serial path; the slack
#: absorbs timer noise on sub-second scoring runs.
STREAM_SLACK = float(os.environ.get("REPRO_BENCH_STREAM_SLACK", "1.25"))


# --------------------------------------------------------------------------
# PR 2 engine, preserved verbatim as the timing + equivalence reference.
# --------------------------------------------------------------------------
def pr2_graph_conv(norm_adj, h, weight):
    """The PR 2 kernel: per-call ``tocsr`` and ``matrix.T`` dispatch."""
    matrix = norm_adj.tocsr()
    out = matrix @ (h.data @ weight.data)
    np.tanh(out, out=out)

    def backward(grad):
        gt = np.multiply(out, out)
        np.subtract(1.0, gt, out=gt)
        np.multiply(grad, gt, out=gt)
        ga = matrix.T @ gt
        if weight.requires_grad:
            weight._accumulate(h.data.T @ ga)
        if h.requires_grad:
            h._accumulate_owned(ga @ weight.data.T)

    return Tensor._make(out, (h, weight), backward)


def pr2_conv1d(x, weight, bias, stride=1, workspace=None):
    """The PR 2 convolution: im2col + batched GEMM, tensordot backward."""
    batch, c_in, length = x.shape
    c_out, _, k = weight.shape
    t_out = (length - k) // stride + 1
    dtype = x.data.dtype
    if workspace is not None:
        cols = workspace.acquire((batch, c_in * k, t_out), dtype)
    else:
        cols = np.empty((batch, c_in * k, t_out), dtype=dtype)
    if stride == k:
        windows = x.data[:, :, : t_out * k].reshape(batch, c_in, t_out, k)
        cols.reshape(batch, k, c_in, t_out)[...] = windows.transpose(0, 3, 1, 2)
    else:
        for tap in range(k):
            segment = x.data[:, :, tap : tap + stride * t_out : stride]
            cols[:, tap * c_in : (tap + 1) * c_in, :] = segment
    w2 = weight.data.transpose(0, 2, 1).reshape(c_out, k * c_in)
    out = np.matmul(w2, cols)
    out += bias.data[None, :, None]
    released = [False]

    def backward(grad):
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw2 = np.tensordot(grad, cols, axes=([0, 2], [0, 2]))
            weight._accumulate(gw2.reshape(c_out, k, c_in).transpose(0, 2, 1))
        if x.requires_grad:
            gcols = np.matmul(w2.T, grad)
            gx = np.zeros_like(x.data)
            if stride == k:
                gx[:, :, : t_out * k] = (
                    gcols.reshape(batch, k, c_in, t_out)
                    .transpose(0, 2, 3, 1)
                    .reshape(batch, c_in, t_out * k)
                )
            else:
                for tap in range(k):
                    seg = gcols[:, tap * c_in : (tap + 1) * c_in, :]
                    gx[:, :, tap : tap + stride * t_out : stride] += seg
            x._accumulate_owned(gx)
        if workspace is not None and not released[0]:
            released[0] = True
            workspace.release(cols)

    return Tensor._make(out, (x, weight, bias), backward)


def pr2_max_pool1d(x, size, stride=None):
    """The PR 2 pooling: windows buffer + argmax + take_along_axis."""
    stride = stride or size
    batch, channels, length = x.shape
    t_out = (length - size) // stride + 1
    windows = np.empty((batch, channels, t_out, size), dtype=x.data.dtype)
    for tap in range(size):
        windows[:, :, :, tap] = x.data[:, :, tap : tap + stride * t_out : stride]
    arg = windows.argmax(axis=3)
    out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]

    def backward(grad):
        gx = np.zeros(x.data.shape, dtype=x.data.dtype)
        offsets = (
            np.arange(batch)[:, None, None] * channels
            + np.arange(channels)[None, :, None]
        ) * length
        flat = offsets + np.arange(t_out)[None, None, :] * stride + arg
        gx.reshape(-1)[flat.reshape(-1)] = grad.reshape(-1)
        x._accumulate_owned(gx)

    return Tensor._make(out, (x,), backward)


class Pr2DGCNN(DGCNN):
    """The PR 2 forward: per-layer tensors + node-sized concat copy."""

    def _sortpool_indices(self, last_layer, batch):
        # PR 2's ordering: two-key lexsort (vs the current radix-packed
        # uint64 single sort) — identical output order.
        scores = last_layer[:, -1]
        graph_ids = batch.graph_ids
        order = np.lexsort((-scores, graph_ids))
        within = batch.segment_positions
        take = within < self.k
        indices = np.full(batch.n_graphs * self.k, -1, dtype=np.int64)
        indices[graph_ids[take] * self.k + within[take]] = order[take]
        return indices

    def forward(self, batch):
        h = Tensor(batch.features)
        layer_outputs = []
        for layer in self.gc_layers:
            h = pr2_graph_conv(batch.norm_adj, h, layer.weight)
            layer_outputs.append(h)
        h_cat = concat(layer_outputs, axis=1)

        indices = self._sortpool_indices(layer_outputs[-1].data, batch)
        pooled = h_cat.gather_rows(indices, unique=True)
        pooled = pooled.reshape(batch.n_graphs, 1, self.k * self.node_width)

        z = pr2_conv1d(
            pooled, self.conv1.weight, self.conv1.bias,
            stride=self.conv1.stride, workspace=self.conv1._workspace,
        ).relu()
        z = pr2_max_pool1d(z, 2, 2)
        z = pr2_conv1d(
            z, self.conv2.weight, self.conv2.bias,
            workspace=self.conv2._workspace,
        ).relu()
        z = z.reshape(batch.n_graphs, self.flat_width)
        z = self.fc1(z).relu()
        z = self.dropout(z)
        return self.fc2(z)

    __call__ = forward


class Pr2Assembler(BatchAssembler):
    """The PR 2 assemble: per-example offset adds + validated csr ctor."""

    def assemble(self, index_order):
        import scipy.sparse as sp

        index_order = np.asarray(index_order, dtype=np.int64)
        sizes = self.sizes[index_order]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        nnz_offsets = np.concatenate([[0], np.cumsum(self._nnz[index_order])])
        data = np.concatenate([self._data[i] for i in index_order])
        indices = np.concatenate(
            [
                self._indices[i] + node_off
                for i, node_off in zip(index_order, offsets[:-1])
            ]
        )
        indptr = np.concatenate(
            [[0]]
            + [
                self._indptr_tail[i] + nnz_off
                for i, nnz_off in zip(index_order, nnz_offsets[:-1])
            ]
        )
        total = int(offsets[-1])
        norm_adj = sp.csr_matrix(
            (data, indices, indptr), shape=(total, total), copy=False
        )
        features = np.concatenate([self._features[i] for i in index_order])
        from repro.gnn import GraphBatch

        return GraphBatch(
            norm_adj=norm_adj,
            features=features,
            node_offsets=offsets,
            labels=self.labels[index_order],
        )


class Pr2Adam:
    """The PR 2 optimizer: per-parameter in-place update loop."""

    def __init__(self, params, lr):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = 0.9, 0.999
        self.eps = 1e-8
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._buf_a = [np.empty_like(p.data) for p in self.params]
        self._buf_b = [np.empty_like(p.data) for p in self.params]

    def step(self):
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        c1 = 1 - b1**self.t
        c2 = 1 - b2**self.t
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            m, v = self._m[i], self._v[i]
            a, b = self._buf_a[i], self._buf_b[i]
            np.multiply(m, b1, out=m)
            np.multiply(grad, 1 - b1, out=a)
            m += a
            np.multiply(v, b2, out=v)
            np.multiply(grad, grad, out=a)
            a *= 1 - b2
            v += a
            np.divide(v, c2, out=a)
            np.sqrt(a, out=a)
            a += self.eps
            np.divide(m, c1, out=b)
            b *= self.lr
            b /= a
            param.data -= b

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()


def pr2_fit(dataset, config, assembler, val_cache):
    """The PR 2 training loop (Trainer._run_epoch, with PR 2 components)."""
    k = choose_sortpool_k(
        dataset.subgraph_sizes or [e.n_nodes for e in dataset.train],
        percentile=config.sortpool_percentile,
    )
    model = Pr2DGCNN(in_features=dataset.feature_width, k=k, seed=config.seed)
    optimizer = Pr2Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    train_loss, val_loss = [], []
    best_loss, best_epoch, best_state = float("inf"), -1, model.state_dict()
    for _ in range(config.epochs):
        model.train()
        order = rng.permutation(len(assembler))
        epoch_loss, n_batches = 0.0, 0
        for start in range(0, len(order), config.batch_size):
            batch = assembler.assemble(order[start : start + config.batch_size])
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        train_loss.append(epoch_loss / max(n_batches, 1))
        loss, _, _ = _evaluate(
            model, dataset.validation, config.batch_size, cache=val_cache
        )
        val_loss.append(loss)
        if dataset.validation and loss <= best_loss:
            best_loss, best_epoch, best_state = loss, len(val_loss) - 1, model.state_dict()
    if dataset.validation and best_epoch >= 0:
        model.load_state_dict(best_state)
    model.eval()
    return model, train_loss, val_loss


# --------------------------------------------------------------------------
# Workload
# --------------------------------------------------------------------------
def build_attack_inputs():
    base = load_benchmark(BENCHMARK, scale=SCALE)
    from repro.locking import lock_dmux

    locked = lock_dmux(base, key_size=KEY_SIZE, seed=SEED)
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=MAX_LINKS, seed=SEED)
    return graph, build_link_dataset(graph, sample, h=H)


def config():
    return TrainConfig(epochs=EPOCHS, learning_rate=LEARNING_RATE, seed=SEED)


def run_pr2(dataset):
    """Returns ``(model, train_loss, val_loss, build_seconds, fit_seconds)``."""
    start = time.perf_counter()
    assembler = Pr2Assembler(dataset.train)
    val_cache = BatchCache(dataset.validation, config().batch_size)
    t_build = time.perf_counter() - start
    start = time.perf_counter()
    model, train_loss, val_loss = pr2_fit(dataset, config(), assembler, val_cache)
    return model, train_loss, val_loss, t_build, time.perf_counter() - start


def run_current(dataset):
    start = time.perf_counter()
    trainer = Trainer(dataset, config())
    t_build = time.perf_counter() - start
    start = time.perf_counter()
    model, history = trainer.fit()
    return model, history, t_build, time.perf_counter() - start


# --------------------------------------------------------------------------
# Per-kernel spmm timings
# --------------------------------------------------------------------------
def _time(fn, repeat=200):
    fn()
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        best = min(best, (time.perf_counter() - start) / repeat)
    return best * 1e6  # microseconds


def kernel_timings(dataset):
    """Forward/transpose spmm per-kernel timings on one real batch."""
    batch = build_batch(dataset.train[: TrainConfig().batch_size])
    matrix = batch.norm_adj.tocsr()
    op = SparseOp.from_csr(matrix)
    rng = np.random.default_rng(SEED)
    dense = rng.standard_normal((matrix.shape[0], 32)).astype(matrix.data.dtype)
    out = np.empty_like(dense)

    rows = {}
    rows["scipy @ (dispatch)"] = _time(lambda: matrix @ dense)
    rows["scipy .T @ (dispatch)"] = _time(lambda: matrix.T @ dense)
    with spmm_scope("scipy"):
        rows["SparseOp.matmul out="] = _time(lambda: op.matmul(dense, out=out))
        rows["SparseOp.matmul_t out="] = _time(lambda: op.matmul_t(dense, out=out))
    with spmm_scope("ell"):
        op.prepare()
        rows["ELL numpy matmul"] = _time(lambda: op.matmul(dense, out=out))
        rows["ELL numpy matmul_t"] = _time(lambda: op.matmul_t(dense, out=out))
        parity = np.array_equal(op.matmul(dense), matrix @ dense)
    if numba_available():
        with spmm_scope("numba"):
            rows["ELL numba matmul"] = _time(lambda: op.matmul(dense, out=out))
    info = {
        "n_rows": int(matrix.shape[0]),
        "nnz": int(matrix.nnz),
        "ell_width": int(op.ell.width),
        "dense_cols": 32,
        "ell_parity_exact": bool(parity),
    }
    return rows, info


# --------------------------------------------------------------------------
# Benches
# --------------------------------------------------------------------------
def test_float64_parity():
    """In float64 both engines walk the same loss trajectory (to 1e-12).

    Operator assembly, the spmm kernels, pooling, Adam and the sortpool
    gather are bit-identical; the reshaped convolution GEMMs differ from
    the PR 2 batched form only in BLAS summation order (last-ulp level).
    """
    with dtype_scope(np.float64):
        _, dataset = build_attack_inputs()
        _, pr2_train, pr2_val, _, _ = run_pr2(dataset)
        _, history, _, _ = run_current(dataset)
    np.testing.assert_allclose(
        history.train_loss, pr2_train, rtol=0, atol=1e-12,
        err_msg="current engine diverged from the PR 2 loss curve (train)",
    )
    np.testing.assert_allclose(
        history.val_loss, pr2_val, rtol=0, atol=1e-12,
        err_msg="current engine diverged from the PR 2 loss curve (val)",
    )


def test_float32_epoch_speedup_and_streamed_scoring():
    with dtype_scope(np.float32):
        graph, dataset = build_attack_inputs()
        print(
            f"\n[bench_spmm] {BENCHMARK} scale={SCALE} links={MAX_LINKS} "
            f"train={len(dataset.train)} val={len(dataset.validation)} "
            f"epochs={EPOCHS} h={H}"
        )
        rows, info = kernel_timings(dataset)
        width = max(len(k) for k in rows)
        print(
            f"  spmm kernels on one batch "
            f"(N={info['n_rows']}, nnz={info['nnz']}, "
            f"ELL width {info['ell_width']}, 32 columns):"
        )
        for name, micros in rows.items():
            print(f"    {name:<{width}}  {micros:8.1f} us")

        # engine comparison (best of 2 to shave scheduler noise)
        model, _, _, pr2_build, pr2_fit_s = run_pr2(dataset)
        _, _, _, pr2_build2, pr2_fit_s2 = run_pr2(dataset)
        pr2_build = min(pr2_build, pr2_build2)
        pr2_fit_s = min(pr2_fit_s, pr2_fit_s2)
        _, history, t_build, t_fit = run_current(dataset)
        _, history2, t_build2, t_fit2 = run_current(dataset)
        assert history.train_loss == history2.train_loss  # deterministic
        t_build, t_fit = min(t_build, t_build2), min(t_fit, t_fit2)

        pr2_epoch = pr2_fit_s / EPOCHS
        new_epoch = t_fit / EPOCHS
        speedup = pr2_epoch / new_epoch
        amortized = (pr2_build + pr2_fit_s) / (t_build + t_fit)
        print(
            f"  PR 2 engine   : {pr2_build + pr2_fit_s:6.2f}s "
            f"(build {pr2_build:.2f}s + fit {pr2_fit_s:.2f}s, "
            f"{pr2_epoch * 1000:6.1f}ms/epoch)"
        )
        print(
            f"  current engine: {t_build + t_fit:6.2f}s "
            f"(build {t_build:.2f}s + fit {t_fit:.2f}s, "
            f"{new_epoch * 1000:6.1f}ms/epoch)"
        )
        print(
            f"  per-epoch speedup: {speedup:.2f}x "
            f"(amortized incl. build: {amortized:.2f}x)"
        )

        # streamed extract->score pipeline vs the serial path
        start = time.perf_counter()
        targets = build_target_examples(graph, dataset)
        serial_scores = score_examples(
            model, [t.example for t in targets], TrainConfig().batch_size
        )
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        streamed_scores = score_stream(
            model,
            (
                [t.example for t in chunk]
                for chunk in iter_target_examples(
                    graph, dataset, chunk_size=TrainConfig().batch_size
                )
            ),
            TrainConfig().batch_size,
            prefetch=2,
        )
        stream_seconds = time.perf_counter() - start
        stream_ratio = stream_seconds / max(serial_seconds, 1e-9)
        print(
            f"  scoring {len(targets)} candidates: serial "
            f"{serial_seconds * 1000:.0f}ms, streamed "
            f"{stream_seconds * 1000:.0f}ms ({stream_ratio:.2f}x serial)"
        )
        assert np.array_equal(serial_scores, streamed_scores), (
            "streamed scoring diverged from the serial path"
        )

    update_record(
        "bench_spmm",
        {
            "benchmark": BENCHMARK,
            "links": MAX_LINKS,
            "epochs": EPOCHS,
            "kernels_us": {k: round(v, 2) for k, v in rows.items()},
            "kernel_batch": info,
            "pr2_build_seconds": round(pr2_build, 4),
            "pr2_fit_seconds": round(pr2_fit_s, 4),
            "pr2_epoch_ms": round(pr2_epoch * 1000, 2),
            "build_seconds": round(t_build, 4),
            "fit_seconds": round(t_fit, 4),
            "epoch_ms": round(new_epoch * 1000, 2),
            "epoch_speedup": round(speedup, 3),
            "amortized_speedup": round(amortized, 3),
            "scoring_serial_seconds": round(serial_seconds, 4),
            "scoring_stream_seconds": round(stream_seconds, 4),
            "stream_ratio": round(stream_ratio, 3),
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"current engine is only {speedup:.2f}x faster per epoch than the "
        f"PR 2 engine (need >= {MIN_SPEEDUP}x)"
    )
    assert stream_ratio <= STREAM_SLACK, (
        f"streamed scorer took {stream_ratio:.2f}x the serial path "
        f"(allowed {STREAM_SLACK}x)"
    )


def numba_parity_slice():
    """The ``REPRO_SPMM=numba`` parity slice CI runs when numba installs.

    Trains the same fixed-seed workload under the scipy and the numba
    backend in both dtypes and asserts **bit-identical** loss curves
    (the backends accumulate every output row in storage order — see
    ``tests/nn/test_sparse.py`` for the kernel-level guarantee; this is
    the end-to-end one, through the real JIT kernels).

    Skips with a visible notice — mirrored into the CI job summary —
    when numba is not importable, because ``REPRO_SPMM=numba`` would
    silently fall back to the ``ell`` kernels and the "parity" would not
    test numba at all.
    """
    if not numba_available():
        notice = (
            "bench_spmm: NOTICE — numba is not importable; skipping the "
            "REPRO_SPMM=numba parity slice (the numba backend would fall "
            "back to the ell kernels, proving nothing)"
        )
        print(notice)
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a", encoding="utf-8") as handle:
                handle.write(f"### numba spmm parity slice\n\n_{notice}_\n")
        return False

    for dtype in (np.float64, np.float32):
        with dtype_scope(dtype):
            _, dataset = build_attack_inputs()
            with spmm_scope("scipy"):
                _, reference, _, _ = run_current(dataset)
            with spmm_scope("numba"):
                _, history, _, _ = run_current(dataset)
        assert history.train_loss == reference.train_loss, (
            f"numba backend diverged from scipy in {np.dtype(dtype).name} "
            "(train loss)"
        )
        assert history.val_loss == reference.val_loss, (
            f"numba backend diverged from scipy in {np.dtype(dtype).name} "
            "(val loss)"
        )
        print(
            f"  numba == scipy loss curves in {np.dtype(dtype).name} "
            f"({len(history.train_loss)} epochs, bitwise)"
        )
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as handle:
            handle.write(
                "### numba spmm parity slice\n\nnumba kernels matched the "
                "scipy backend bit for bit in float64 and float32.\n"
            )
    return True


if __name__ == "__main__":
    import sys

    if "--numba-parity" in sys.argv:
        numba_parity_slice()
        print("bench_spmm --numba-parity: OK")
    else:
        test_float64_parity()
        test_float32_epoch_speedup_and_streamed_scoring()
        print("bench_spmm: OK")
