"""Locked netlist → undirected attack graph (paper Sec. III-A, step 1–2).

MuxLink first identifies the key-controlled MUXes by tracing the key
inputs, removes them from the netlist, and converts the rest to an
undirected gate graph.  Primary inputs and outputs are *not* nodes — the
GNN learns the composition of gates, nothing else.  Every data input of a
removed MUX becomes a *target link* candidate.

The adjacency is stored in CSR form (``indptr``/``indices`` int32 arrays
with the neighbor list of node ``u`` at ``indices[indptr[u]:indptr[u+1]]``,
sorted ascending).  The whole subgraph-extraction hot path
(:mod:`repro.linkpred.subgraph`) operates on these flat arrays with
vectorized numpy kernels; :attr:`AttackGraph.neighbors` remains available
as a set-per-node compatibility view for callers that predate the CSR
backbone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AttackError
from repro.locking.keys import is_key_input, key_input_index
from repro.netlist import Circuit, GateType, gate_feature_index

__all__ = ["AttackGraph", "MuxTarget", "NeighborView", "extract_attack_graph"]


@dataclass(frozen=True)
class MuxTarget:
    """One removed key MUX and its two candidate links.

    Attributes:
        mux_name: name of the removed MUX gate.
        key_index: key bit driving its select pin.
        load: node index of the locked gate.
        cand_d0: node index of the data-0 net (passed when the key bit is 0).
        cand_d1: node index of the data-1 net.
    """

    mux_name: str
    key_index: int
    load: int
    cand_d0: int
    cand_d1: int

    def candidates(self) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """``(driver, load, select_value)`` for both candidate links."""
        return (self.cand_d0, self.load, 0), (self.cand_d1, self.load, 1)


class NeighborView:
    """Sequence of per-node neighbor sets backed by the CSR arrays.

    Compatibility shim for pre-CSR callers: ``view[u]`` materializes the
    neighbor set of ``u`` (an O(degree) copy), so hot loops should read the
    CSR arrays directly via :meth:`AttackGraph.neighbor_array`.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self._indptr = indptr
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def __getitem__(self, node: int) -> set[int]:
        if node < 0:  # list-style wraparound, like the legacy list[set]
            node += len(self)
        if not 0 <= node < len(self):
            raise IndexError(f"node {node} out of range")
        start, end = self._indptr[node], self._indptr[node + 1]
        return set(map(int, self._indices[start:end]))

    def __iter__(self):
        for node in range(len(self)):
            yield self[node]


@dataclass(eq=False)
class AttackGraph:
    """Undirected gate graph with the key MUXes stripped out.

    Attributes:
        node_names: gate name per node index.
        index: inverse mapping.
        indptr: CSR row pointer, shape ``(n_nodes + 1,)``.
        indices: CSR column indices (neighbors, sorted per row) over
            *observed* links only — target links and key logic excluded.
        gate_types: per-node Boolean function (never ``MUX``).
        gate_feature_ids: per-node feature row (0–7), precomputed once so
            extraction never touches the enum in the hot path.
        targets: one record per removed key MUX.
    """

    node_names: list[str]
    index: dict[str, int]
    indptr: np.ndarray
    indices: np.ndarray
    gate_types: list[GateType]
    gate_feature_ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    targets: list[MuxTarget] = field(default_factory=list)

    def __post_init__(self) -> None:
        # int32 halves the memory bandwidth of the extraction hot path;
        # gate-level netlists stay far below 2**31 nodes/edges.
        self.indptr = np.asarray(self.indptr, dtype=np.int32)
        self.indices = np.asarray(self.indices, dtype=np.int32)
        if self.gate_feature_ids is None:
            self.gate_feature_ids = np.array(
                [gate_feature_index(gt) for gt in self.gate_types],
                dtype=np.int64,
            )

    @classmethod
    def from_neighbor_sets(
        cls,
        node_names: list[str],
        index: dict[str, int],
        neighbors: list[set[int]],
        gate_types: list[GateType],
        targets: list[MuxTarget],
    ) -> "AttackGraph":
        """Build the CSR arrays from a legacy ``list[set[int]]`` adjacency."""
        degrees = np.fromiter(
            (len(n) for n in neighbors), dtype=np.int32, count=len(neighbors)
        )
        indptr = np.zeros(len(neighbors) + 1, dtype=np.int32)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for u, nbrs in enumerate(neighbors):
            indices[indptr[u] : indptr[u + 1]] = sorted(nbrs)
        return cls(
            node_names=node_names,
            index=index,
            indptr=indptr,
            indices=indices,
            gate_types=gate_types,
            targets=targets,
        )

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def neighbors(self) -> NeighborView:
        """Per-node neighbor *sets* (compatibility view over the CSR arrays)."""
        return NeighborView(self.indptr, self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Observed degree per node, shape ``(n_nodes,)``."""
        return np.diff(self.indptr)

    def neighbor_array(self, node: int) -> np.ndarray:
        """Neighbors of *node* as a sorted int32 array view (no copy)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def n_edges(self) -> int:
        return len(self.indices) // 2

    def edges_array(self) -> np.ndarray:
        """All observed undirected edges as an ``(E, 2)`` array, ``u < v``.

        Rows are ordered by ``u`` then ``v`` (CSR rows are sorted), so the
        result is deterministic for a given graph.
        """
        u = np.repeat(np.arange(self.n_nodes, dtype=np.int64), self.degrees)
        v = self.indices
        keep = u < v
        return np.column_stack((u[keep], v[keep]))

    def edges(self) -> list[tuple[int, int]]:
        """All observed undirected edges as ``(u, v)`` tuples with ``u < v``."""
        return [tuple(row) for row in self.edges_array().tolist()]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbor_array(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and row[pos] == v


def _is_key_mux(circuit: Circuit, name: str) -> bool:
    gate = circuit.gate(name)
    return gate.gate_type is GateType.MUX and is_key_input(gate.inputs[0])


def extract_attack_graph(circuit: Circuit) -> AttackGraph:
    """Build the attack graph of a MUX-locked netlist.

    Raises:
        AttackError: if the netlist has no key MUXes, contains non-key
            MUX primitives (no feature encoding), or a MUX data input /
            load that is not a gate (cannot become a graph node).
    """
    key_muxes = [
        g.name for g in circuit.gates if _is_key_mux(circuit, g.name)
    ]
    if not key_muxes:
        raise AttackError("no key-controlled MUXes found in the netlist")
    key_mux_set = set(key_muxes)

    for gate in circuit.gates:
        if gate.gate_type is GateType.MUX and gate.name not in key_mux_set:
            raise AttackError(
                f"non-key MUX {gate.name!r}: MuxLink expects all MUX "
                "primitives to be key gates"
            )

    node_names = [g.name for g in circuit.gates if g.name not in key_mux_set]
    index = {name: i for i, name in enumerate(node_names)}
    neighbors: list[set[int]] = [set() for _ in node_names]
    gate_types = [circuit.gate(name).gate_type for name in node_names]

    for name in node_names:
        v = index[name]
        for net in circuit.gate(name).inputs:
            if net in index:
                u = index[net]
                if u != v:
                    neighbors[u].add(v)
                    neighbors[v].add(u)
            # Primary inputs and key MUX outputs are skipped: the former
            # are not nodes, the latter become target links below.

    targets: list[MuxTarget] = []
    for mux_name in key_muxes:
        gate = circuit.gate(mux_name)
        select, d0, d1 = gate.inputs
        loads = [
            load for load in circuit.fanout(mux_name) if load not in key_mux_set
        ]
        if not loads:
            raise AttackError(f"key MUX {mux_name!r} drives no gate")
        for net in (d0, d1):
            if net not in index:
                raise AttackError(
                    f"key MUX {mux_name!r} data input {net!r} is not a "
                    "gate net; cannot form a target link"
                )
        for load in loads:
            targets.append(
                MuxTarget(
                    mux_name=mux_name,
                    key_index=key_input_index(select),
                    load=index[load],
                    cand_d0=index[d0],
                    cand_d1=index[d1],
                )
            )
    return AttackGraph.from_neighbor_sets(
        node_names=node_names,
        index=index,
        neighbors=neighbors,
        gate_types=gate_types,
        targets=targets,
    )
