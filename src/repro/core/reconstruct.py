"""Design recovery and Hamming-distance evaluation (paper Fig. 8).

The recovered key may contain ``x`` bits; following the paper, the HD for
such keys averages over the possible remaining key-bit assignments.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.locking import apply_key
from repro.netlist import Circuit
from repro.sim import hamming_distance

__all__ = ["recover_design", "hamming_with_x"]


def recover_design(locked: Circuit, predicted_key: str) -> Circuit:
    """Apply *predicted_key*; ``x`` bits keep their key input and MUX."""
    return apply_key(locked, predicted_key)


def _x_positions(key: str) -> list[int]:
    return [i for i, c in enumerate(key) if c in "xX"]


def hamming_with_x(
    original: Circuit,
    locked: Circuit,
    predicted_key: str,
    n_patterns: int = 10_000,
    seed: int = 0,
    max_assignments: int = 32,
) -> float:
    """Average HD between *original* and the recovered design.

    Decided bits are hard-coded; the ``x`` bits are enumerated exhaustively
    when ``2**n_x <= max_assignments`` and sampled uniformly otherwise
    (the paper enumerates "all the possible remaining key-bit assignments"
    — feasible there because few bits stay undecided).
    """
    xs = _x_positions(predicted_key)
    if not xs:
        recovered = apply_key(locked, predicted_key)
        return hamming_distance(original, recovered, n_patterns, seed=seed)

    if 2 ** len(xs) <= max_assignments:
        assignments = list(itertools.product("01", repeat=len(xs)))
    else:
        rng = np.random.default_rng(seed)
        assignments = [
            tuple(str(b) for b in rng.integers(0, 2, size=len(xs)))
            for _ in range(max_assignments)
        ]

    total = 0.0
    key_chars = list(predicted_key)
    for assignment in assignments:
        for pos, bit in zip(xs, assignment):
            key_chars[pos] = bit
        recovered = apply_key(locked, "".join(key_chars))
        total += hamming_distance(original, recovered, n_patterns, seed=seed)
    return total / len(assignments)
