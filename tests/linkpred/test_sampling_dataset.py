"""Tests for link sampling, dataset assembly, and the trainer."""

import numpy as np
import pytest

from repro.benchgen import random_netlist
from repro.errors import TrainingError
from repro.linkpred import (
    TrainConfig,
    build_link_dataset,
    build_target_examples,
    extract_attack_graph,
    iter_target_examples,
    sample_links,
    score_examples,
    train_link_predictor,
)
from repro.locking import lock_dmux


def graph_for(seed=0, n_gates=100, key_size=6):
    base = random_netlist("base", 10, 5, n_gates, seed=seed)
    locked = lock_dmux(base, key_size=key_size, seed=seed)
    return extract_attack_graph(locked.circuit)


# ---------------------------------------------------------------- sampling
def test_sample_is_balanced_and_labelled():
    graph = graph_for()
    sample = sample_links(graph, seed=1)
    links = sample.train + sample.validation
    positives = [l for l in links if l[2] == 1]
    negatives = [l for l in links if l[2] == 0]
    assert abs(len(positives) - len(negatives)) <= 1
    for u, v, _ in positives:
        assert graph.has_edge(u, v)
    for u, v, _ in negatives:
        assert not graph.has_edge(u, v)


def test_negatives_exclude_target_candidates():
    graph = graph_for(seed=2)
    forbidden = set()
    for t in graph.targets:
        forbidden.add(frozenset((t.cand_d0, t.load)))
        forbidden.add(frozenset((t.cand_d1, t.load)))
    sample = sample_links(graph, seed=2)
    for u, v, label in sample.train + sample.validation:
        if label == 0:
            assert frozenset((u, v)) not in forbidden


def test_max_links_cap():
    graph = graph_for(seed=3, n_gates=200)
    sample = sample_links(graph, max_links=40, seed=3)
    assert sample.n_links <= 40


def test_val_split_fraction():
    graph = graph_for(seed=4)
    sample = sample_links(graph, val_fraction=0.2, seed=4)
    total = sample.n_links
    assert len(sample.validation) == int(total * 0.2)


def test_sampling_determinism():
    graph = graph_for(seed=5)
    a = sample_links(graph, seed=7)
    b = sample_links(graph, seed=7)
    assert a.train == b.train and a.validation == b.validation


def test_bad_val_fraction():
    graph = graph_for(seed=6)
    with pytest.raises(TrainingError):
        sample_links(graph, val_fraction=1.0)


def test_hard_negative_fraction():
    graph = graph_for(seed=7)
    sample = sample_links(graph, seed=7, hard_negative_fraction=0.5)
    # Hard negatives are 2-hop pairs: verify at least some exist.
    two_hop = 0
    for u, v, label in sample.train + sample.validation:
        if label == 0:
            if any(v in graph.neighbors[m] for m in graph.neighbors[u]):
                two_hop += 1
    assert two_hop > 0


# ----------------------------------------------------------------- dataset
def test_dataset_shapes_and_split():
    graph = graph_for(seed=8)
    sample = sample_links(graph, seed=8)
    ds = build_link_dataset(graph, sample, h=2)
    assert len(ds.train) == len(sample.train)
    assert len(ds.validation) == len(sample.validation)
    widths = {e.features.shape[1] for e in ds.train + ds.validation}
    assert widths == {ds.feature_width}
    assert all(e.label in (0, 1) for e in ds.train)
    assert len(ds.subgraph_sizes) == len(ds.train)


def test_feature_width_composition():
    graph = graph_for(seed=9)
    sample = sample_links(graph, seed=9)
    full = build_link_dataset(graph, sample, h=2)
    no_drnl = build_link_dataset(graph, sample, h=2, use_drnl=False)
    no_gate = build_link_dataset(graph, sample, h=2, use_gate_types=False)
    no_degree = build_link_dataset(graph, sample, h=2, use_degree=False)
    assert full.feature_width == 8 + (full.max_label + 1) + 8
    assert no_drnl.feature_width == 8 + 8
    assert no_gate.feature_width == full.feature_width - 8
    assert no_degree.feature_width == full.feature_width - 8


def test_target_examples_two_per_mux():
    graph = graph_for(seed=10, key_size=5)
    sample = sample_links(graph, seed=10)
    ds = build_link_dataset(graph, sample, h=2)
    targets = build_target_examples(graph, ds)
    assert len(targets) == 2 * len(graph.targets)
    assert all(t.example.label == -1 for t in targets)
    assert {t.select_value for t in targets} == {0, 1}
    widths = {t.example.features.shape[1] for t in targets}
    assert widths == {ds.feature_width}


# ----------------------------------------------------------------- trainer
def test_training_improves_and_restores_best():
    graph = graph_for(seed=11)
    sample = sample_links(graph, seed=11)
    ds = build_link_dataset(graph, sample, h=2)
    model, history = train_link_predictor(
        ds, TrainConfig(epochs=8, learning_rate=1e-3, seed=0)
    )
    assert len(history.train_loss) == 8
    assert len(history.val_loss) == 8
    assert history.best_epoch >= 0
    assert history.best_val_loss <= min(history.val_loss) + 1e-12
    assert not model.training  # returned in eval mode


def test_score_examples_shape_and_range():
    graph = graph_for(seed=12)
    sample = sample_links(graph, seed=12)
    ds = build_link_dataset(graph, sample, h=2)
    model, _ = train_link_predictor(ds, TrainConfig(epochs=2, seed=0))
    targets = build_target_examples(graph, ds)
    scores = score_examples(model, [t.example for t in targets])
    assert scores.shape == (len(targets),)
    assert ((scores >= 0) & (scores <= 1)).all()
    assert score_examples(model, []).shape == (0,)


def test_empty_training_split_rejected():
    graph = graph_for(seed=13)
    sample = sample_links(graph, seed=13)
    ds = build_link_dataset(graph, sample, h=1)
    ds.train = []
    with pytest.raises(TrainingError):
        train_link_predictor(ds)


def test_training_determinism():
    graph = graph_for(seed=14)
    sample = sample_links(graph, seed=14)
    ds = build_link_dataset(graph, sample, h=1)
    m1, h1 = train_link_predictor(ds, TrainConfig(epochs=3, seed=5))
    m2, h2 = train_link_predictor(ds, TrainConfig(epochs=3, seed=5))
    assert h1.train_loss == h2.train_loss
    np.testing.assert_array_equal(
        m1.state_dict()[0], m2.state_dict()[0]
    )


def test_iter_target_examples_chunking_matches_build():
    """Chunked lazy extraction yields exactly build_target_examples."""
    graph = graph_for(seed=14, key_size=6)
    sample = sample_links(graph, seed=14)
    ds = build_link_dataset(graph, sample, h=2)
    reference = build_target_examples(graph, ds)
    for chunk_size in (1, 3, 4, 999):
        chunks = list(iter_target_examples(graph, ds, chunk_size=chunk_size))
        flat = [t for chunk in chunks for t in chunk]
        assert len(flat) == len(reference)
        if chunk_size == 3:  # rounded up to even: MUX pairs stay together
            assert all(len(c) % 2 == 0 for c in chunks[:-1])
        for a, b in zip(flat, reference):
            assert a.target == b.target
            assert a.select_value == b.select_value
            assert a.example.n_nodes == b.example.n_nodes
            assert np.array_equal(a.example.edges, b.example.edges)
            assert np.array_equal(a.example.features, b.example.features)
    with pytest.raises(ValueError):
        next(iter_target_examples(graph, ds, chunk_size=0))
