"""Experiment runners regenerating every figure of the paper."""

from repro.experiments.common import (
    CI_SCALE,
    PAPER_SCALE,
    AttackRecord,
    ExperimentScale,
    active_scale,
    attack_benchmark,
    format_records,
    lock_with,
)
from repro.experiments.fig2 import Fig2Row, format_fig2, run_fig2
from repro.experiments.fig7 import format_fig7, run_fig7, summarize_fig7
from repro.experiments.fig8 import Fig8Row, format_fig8, run_fig8
from repro.experiments.fig9 import Fig9Row, format_fig9, run_fig9
from repro.experiments.fig10 import Fig10Row, format_fig10, run_fig10

__all__ = [
    "ExperimentScale",
    "CI_SCALE",
    "PAPER_SCALE",
    "active_scale",
    "AttackRecord",
    "attack_benchmark",
    "lock_with",
    "format_records",
    "run_fig2",
    "format_fig2",
    "Fig2Row",
    "run_fig7",
    "format_fig7",
    "summarize_fig7",
    "run_fig8",
    "format_fig8",
    "Fig8Row",
    "run_fig9",
    "format_fig9",
    "Fig9Row",
    "run_fig10",
    "format_fig10",
    "Fig10Row",
]
