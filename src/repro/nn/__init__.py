"""From-scratch numpy autograd substrate (PyTorch substitute).

Runtime dtype policy: float32 by default, switchable to float64 via the
``REPRO_DTYPE`` environment variable or :func:`set_default_dtype` /
:func:`dtype_scope` (gradient checks need float64).  Inference paths run
under :func:`no_grad` to skip tape recording entirely.

Sparse kernel policy: the graph convolutions run on the block-sparse
engine in :mod:`repro.nn.sparse`; ``REPRO_SPMM`` (or
:func:`set_spmm_backend` / :func:`spmm_scope`) selects the kernel family —
``scipy`` (default), ``ell`` (batched-ELL numpy) or ``numba`` (JIT, falls
back to ``ell`` when numba is missing).  All backends are bit-identical
in float64.
"""

from repro.nn.curvature import CurvatureCollector, collecting, record, tap_active
from repro.nn.functional import (
    conv1d,
    dropout,
    gather_rows,
    graph_conv,
    linear,
    log_softmax,
    max_pool1d,
    segment_max,
    segment_mean,
    segment_sum,
    softmax,
    softmax_cross_entropy,
    gather_stack,
    sortpool_conv,
    stack_columns,
)
from repro.nn.layers import Conv1d, Dropout, GraphConv, Linear, Module
from repro.nn.optim import KFAC, SGD, Adam
from repro.nn.sparse import (
    BlockEll,
    SparseOp,
    as_sparse_op,
    csr_from_parts,
    numba_available,
    set_spmm_backend,
    spmm_backend,
    spmm_scope,
)
from repro.nn.tensor import (
    Tensor,
    Workspace,
    concat,
    default_dtype,
    dtype_scope,
    is_grad_enabled,
    no_grad,
    relu,
    set_default_dtype,
    sigmoid,
    spmm,
    tanh,
)

__all__ = [
    "Tensor",
    "Workspace",
    "spmm",
    "concat",
    "relu",
    "tanh",
    "sigmoid",
    "default_dtype",
    "set_default_dtype",
    "dtype_scope",
    "no_grad",
    "is_grad_enabled",
    "conv1d",
    "max_pool1d",
    "dropout",
    "graph_conv",
    "gather_stack",
    "sortpool_conv",
    "stack_columns",
    "gather_rows",
    "BlockEll",
    "SparseOp",
    "as_sparse_op",
    "csr_from_parts",
    "numba_available",
    "spmm_backend",
    "set_spmm_backend",
    "spmm_scope",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "log_softmax",
    "softmax",
    "softmax_cross_entropy",
    "linear",
    "Module",
    "Linear",
    "Conv1d",
    "Dropout",
    "GraphConv",
    "Adam",
    "KFAC",
    "SGD",
    "CurvatureCollector",
    "collecting",
    "record",
    "tap_active",
]
