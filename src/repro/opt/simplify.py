"""Structural cleanup passes: dead-logic removal and buffer collapsing.

These run after :func:`repro.opt.propagate_constants` to finish the
"re-synthesis" that SWEEP/SCOPE perform between feature extractions, and
they also power the SAAM circuit-reduction check (dead logic appearing
after a key assignment is exactly the reduction signal).
"""

from __future__ import annotations

from repro.netlist import Circuit, GateType

__all__ = ["remove_dead_logic", "collapse_buffers", "cleanup"]


def remove_dead_logic(circuit: Circuit) -> tuple[Circuit, int]:
    """Strip gates that reach no primary output.

    Returns:
        ``(cleaned_copy, removed_count)``.
    """
    out = circuit.copy()
    removed = 0
    while True:
        dangling = [net for net in out.dangling_nets() if out.has_gate(net)]
        if not dangling:
            break
        for net in dangling:
            out.remove_gate(net)
            removed += 1
    return out, removed


def collapse_buffers(circuit: Circuit) -> tuple[Circuit, int]:
    """Rewire loads of every BUF to its source and drop the buffer.

    Buffers that drive a primary output are kept (removing them would rename
    the output net and break name-based comparisons).

    Returns:
        ``(cleaned_copy, removed_count)``.
    """
    out = circuit.copy()
    removed = 0
    progress = True
    while progress:
        progress = False
        for name in list(out.gate_names):
            gate = out.gate(name)  # re-fetch: earlier rewires may be visible
            if gate.gate_type is not GateType.BUF:
                continue
            if out.is_output(gate.name):
                continue
            source = gate.inputs[0]
            for load in list(out.fanout(gate.name)):
                out.rewire_input(load, gate.name, source)
            out.remove_gate(gate.name)
            removed += 1
            progress = True
    return out, removed


def cleanup(circuit: Circuit) -> Circuit:
    """Full structural cleanup: collapse buffers, then drop dead logic."""
    out, _ = collapse_buffers(circuit)
    out, _ = remove_dead_logic(out)
    return out
