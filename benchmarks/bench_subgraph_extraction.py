"""Microbenchmark: batched CSR subgraph extraction vs the seed pipeline.

Times enclosing-subgraph extraction + featurization for a D-MUX-locked
generated suite circuit at a fixed seed, comparing

* the **seed per-link implementation** (pure-Python BFS over a
  ``list[set[int]]`` adjacency plus per-example featurization — preserved
  verbatim below as the reference), against
* the **batched CSR pipeline** (:func:`extract_enclosing_subgraphs` +
  array-at-a-time featurization).

It doubles as the equivalence guard for the refactor: the batch API must
match the single-pair API node-for-node, and the dataset contents
(subgraph membership, DRNL labels, feature matrices) must be bit-identical
to the seed implementation.

Run standalone::

    python benchmarks/bench_subgraph_extraction.py

or under pytest::

    pytest benchmarks/bench_subgraph_extraction.py -s
"""

from __future__ import annotations

import os
import time
from collections import deque

import numpy as np

from repro.benchgen import load_benchmark
from repro.linkpred import (
    extract_attack_graph,
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
    sample_links,
)
from repro.linkpred.dataset import _features_batch
from repro.linkpred.subgraph import drnl_label
from repro.locking import lock_dmux
from repro.netlist import NUM_GATE_FEATURES

BENCHMARK = "c2670"
SCALE = 1.0
KEY_SIZE = 32
MAX_LINKS = 4000
H = 3
SEED = 0
# Shared CI runners are noisy; CI relaxes the floor via the env var while
# local/acceptance runs keep the full 5x bar.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))

_MAX_DEGREE_FEATURE = 8


# --------------------------------------------------------------------------
# Seed implementation (pre-CSR), kept as the timing + equivalence reference.
# --------------------------------------------------------------------------
def _seed_bfs(neighbors, start, h, blocked=None, forbidden_edge=None):
    dist = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        d = dist[node]
        if d == h:
            continue
        for nbr in neighbors[node]:
            if nbr == blocked or nbr in dist:
                continue
            if forbidden_edge and {node, nbr} == set(forbidden_edge):
                continue
            dist[nbr] = d + 1
            frontier.append(nbr)
    return dist


def _seed_extract(neighbors, gate_ids, f, g, h):
    edge = (f, g)
    dist_f = _seed_bfs(neighbors, f, h, forbidden_edge=edge)
    dist_g = _seed_bfs(neighbors, g, h, forbidden_edge=edge)
    members = [f, g] + sorted((set(dist_f) | set(dist_g)) - {f, g})
    local = {node: i for i, node in enumerate(members)}
    label_f = _seed_bfs(neighbors, f, 2 * h, blocked=g, forbidden_edge=edge)
    label_g = _seed_bfs(neighbors, g, 2 * h, blocked=f, forbidden_edge=edge)
    labels = np.array(
        [drnl_label(label_f.get(n), label_g.get(n)) for n in members],
        dtype=np.int64,
    )
    member_set = set(members)
    edges = []
    for node in members:
        u = local[node]
        for nbr in neighbors[node]:
            if nbr in member_set:
                v = local[nbr]
                if u < v and {node, nbr} != set(edge):
                    edges.append((u, v))
    gate = np.array([gate_ids[n] for n in members], dtype=np.int64)
    degrees = np.array([len(neighbors[n]) for n in members], dtype=np.int64)
    return members, labels, edges, gate, degrees


def _seed_features(labels, gate, degrees, max_label):
    n = len(labels)
    gate_block = np.zeros((n, NUM_GATE_FEATURES))
    gate_block[np.arange(n), gate] = 1.0
    label_block = np.zeros((n, max_label + 1))
    label_block[np.arange(n), np.minimum(labels, max_label)] = 1.0
    degree_block = np.zeros((n, _MAX_DEGREE_FEATURE))
    degree_block[np.arange(n), np.minimum(degrees, _MAX_DEGREE_FEATURE - 1)] = 1.0
    return np.hstack([gate_block, label_block, degree_block])


# --------------------------------------------------------------------------
# Workload
# --------------------------------------------------------------------------
def build_workload():
    base = load_benchmark(BENCHMARK, scale=SCALE)
    locked = lock_dmux(base, key_size=KEY_SIZE, seed=SEED)
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=MAX_LINKS, seed=SEED)
    pairs = [(u, v) for u, v, _ in sample.train + sample.validation]
    pairs += [
        (driver, load)
        for target in graph.targets
        for driver, load, _ in target.candidates()
    ]
    return graph, pairs


def run_seed(graph, pairs):
    neighbors = [graph.neighbors[u] for u in range(graph.n_nodes)]
    gate_ids = graph.gate_feature_ids.tolist()
    t0 = time.perf_counter()
    raw = [_seed_extract(neighbors, gate_ids, f, g, H) for f, g in pairs]
    t_extract = time.perf_counter() - t0
    max_label = max(1, max(int(l.max(initial=0)) for _, l, _, _, _ in raw))
    t0 = time.perf_counter()
    features = [_seed_features(l, ga, de, max_label) for _, l, _, ga, de in raw]
    t_featurize = time.perf_counter() - t0
    return raw, features, max_label, t_extract, t_featurize


def run_batched(graph, pairs):
    t0 = time.perf_counter()
    subgraphs = extract_enclosing_subgraphs(graph, pairs, H)
    t_extract = time.perf_counter() - t0
    max_label = max(1, max(int(s.labels.max(initial=0)) for s in subgraphs))
    t0 = time.perf_counter()
    features = _features_batch(subgraphs, max_label)
    t_featurize = time.perf_counter() - t0
    return subgraphs, features, max_label, t_extract, t_featurize


# --------------------------------------------------------------------------
# Benches
# --------------------------------------------------------------------------
def test_batch_matches_single_pair_api():
    """Equivalence guard: the batch API is node-for-node identical."""
    graph, pairs = build_workload()
    subgraphs = extract_enclosing_subgraphs(graph, pairs[:200], H)
    for (u, v), sub in zip(pairs[:200], subgraphs):
        single = extract_enclosing_subgraph(graph, u, v, H)
        np.testing.assert_array_equal(sub.nodes, single.nodes)
        np.testing.assert_array_equal(sub.labels, single.labels)
        np.testing.assert_array_equal(sub.edges, single.edges)
        np.testing.assert_array_equal(sub.degrees, single.degrees)


def test_speedup_and_bit_identical_datasets():
    graph, pairs = build_workload()
    print(
        f"\n[bench_subgraph_extraction] {BENCHMARK} scale={SCALE} "
        f"nodes={graph.n_nodes} edges={graph.n_edges()} pairs={len(pairs)} h={H}"
    )

    # Best-of-N on both sides to shave scheduler/allocator noise.
    seed_raw, seed_feats, seed_ml, seed_tx, seed_tf = run_seed(graph, pairs)
    for _ in range(1):
        _, _, _, tx2, tf2 = run_seed(graph, pairs)
        seed_tx, seed_tf = min(seed_tx, tx2), min(seed_tf, tf2)
    subgraphs, feats, ml, tx, tf = run_batched(graph, pairs)
    for _ in range(2):
        _, _, _, tx2, tf2 = run_batched(graph, pairs)
        tx, tf = min(tx, tx2), min(tf, tf2)

    # Bit-identical dataset contents: same members (and order), labels and
    # feature matrices; edge *sets* match (the seed emitted edges in
    # Python-set iteration order, which is not part of the contract).
    assert ml == seed_ml
    for (members, labels, edges, _, _), sub, fs, fb in zip(
        seed_raw, subgraphs, seed_feats, feats
    ):
        assert list(sub.nodes) == members
        assert list(sub.labels) == list(labels)
        assert sorted(map(tuple, sub.edges.tolist())) == sorted(edges)
        np.testing.assert_array_equal(fs, fb)

    extract_speedup = seed_tx / tx
    total_speedup = (seed_tx + seed_tf) / (tx + tf)
    print(
        f"  seed:    extract {seed_tx * 1000:7.1f}ms + featurize "
        f"{seed_tf * 1000:6.1f}ms = {(seed_tx + seed_tf) * 1000:7.1f}ms"
    )
    print(
        f"  batched: extract {tx * 1000:7.1f}ms + featurize "
        f"{tf * 1000:6.1f}ms = {(tx + tf) * 1000:7.1f}ms"
    )
    print(
        f"  speedup: extraction {extract_speedup:.1f}x, "
        f"end-to-end {total_speedup:.1f}x"
    )
    assert extract_speedup >= MIN_SPEEDUP, (
        f"batched CSR extraction is only {extract_speedup:.1f}x faster than "
        f"the seed per-link implementation (need >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_batch_matches_single_pair_api()
    test_speedup_and_bit_identical_datasets()
    print("bench_subgraph_extraction: OK")
