"""The resilience leaderboard: every attack × every scheme, one table.

The paper's argument is comparative — MuxLink breaks the
learning-resilient schemes that SAAM, SCOPE, SWEEP and random guessing
cannot.  This driver runs the full attack zoo over the fig. 7 grid
(schemes × benchmarks × key sizes) through one shared
:class:`~repro.experiments.runner.ExperimentRunner`, so every lock and
every attack artifact is content-addressed: a leaderboard over a store
warmed by ``repro figures`` re-locks nothing and re-attacks nothing,
and MuxLink rows are bit-identical to fig. 7's.

``ensemble=True`` adds combined rows (``muxlink+scope`` /
``muxlink+sweep``): the baseline's per-bit scores are blended into the
GNN's per-MUX likelihoods via
:func:`~repro.core.postprocess.ensemble_likelihoods` *before*
Algorithm 1 re-runs.  Combination happens coordinator-side from the two
cached artifacts — no extra jobs hit the bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    KeyMetrics,
    aggregate_metrics,
    decisions_to_key,
    ensemble_likelihoods,
    postprocess_likelihoods,
    score_key,
)
from repro.errors import AttackError
from repro.experiments.common import AttackRecord, ExperimentScale, active_scale
from repro.experiments.runner import (
    ExperimentRunner,
    make_baseline_cell,
    make_cell,
)
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME

__all__ = [
    "LEADERBOARD_ATTACKS",
    "ENSEMBLE_ATTACKS",
    "LeaderboardRow",
    "run_leaderboard",
    "format_leaderboard",
    "leaderboard_fingerprint",
]

#: Default roster, strongest attack first.
LEADERBOARD_ATTACKS = ("muxlink", "saam", "scope", "sweep", "random")

#: Post-processing combinations available with ``ensemble=True``.
ENSEMBLE_ATTACKS = ("muxlink+scope", "muxlink+sweep")

_DISPLAY = {
    "muxlink": "MuxLink",
    "saam": "SAAM",
    "scope": "SCOPE",
    "sweep": "SWEEP",
    "random": "random",
    "muxlink+scope": "MuxLink+SCOPE",
    "muxlink+sweep": "MuxLink+SWEEP",
}

#: Likelihood boost applied per normalized baseline vote in ensembles.
ENSEMBLE_WEIGHT = 0.25


@dataclass(frozen=True)
class LeaderboardRow:
    """One (benchmark, scheme, key size, attack) leaderboard entry."""

    benchmark: str
    scheme: str
    key_size: int
    attack: str
    metrics: KeyMetrics
    predicted_key: str
    runtime_seconds: float


def _base_parts(attacks: tuple[str, ...]) -> list[str]:
    """Unique primitive attacks needed, in first-use order."""
    parts: list[str] = []
    for attack in attacks:
        for part in attack.split("+"):
            if part not in parts:
                parts.append(part)
    return parts


def run_leaderboard(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
    attacks: tuple[str, ...] | None = None,
    ensemble: bool = False,
    train_copies: int = 2,
) -> list[LeaderboardRow]:
    """Run every requested attack over the fig. 7 grid.

    Args:
        attacks: roster to run (default :data:`LEADERBOARD_ATTACKS`,
            plus :data:`ENSEMBLE_ATTACKS` when *ensemble* is set).
            Entries containing ``+`` are coordinator-side combinations.
        train_copies: extra locked copies (1..N) SWEEP trains on; the
            attacked copy is always copy 0 — the same lock instance the
            MuxLink grid uses, so the store stays shared with fig. 7.
    """
    scale = scale or active_scale()
    if attacks is None:
        attacks = LEADERBOARD_ATTACKS + (ENSEMBLE_ATTACKS if ensemble else ())
    for attack in attacks:
        for part in attack.split("+"):
            if part not in LEADERBOARD_ATTACKS:
                raise AttackError(f"unknown leaderboard attack {part!r}")
    parts = _base_parts(tuple(attacks))

    grid = [
        (scheme, name, circuit_scale, key_size)
        for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME)
        for name, circuit_scale, key_sizes in scale.benchmarks()
        for key_size in key_sizes
    ]
    cells = []
    for scheme, name, circuit_scale, key_size in grid:
        for part in parts:
            if part == "muxlink":
                cells.append(
                    make_cell(scale, name, circuit_scale, scheme, key_size, seed)
                )
            else:
                cells.append(
                    make_baseline_cell(
                        name,
                        circuit_scale,
                        scheme,
                        key_size,
                        part,
                        seed=seed,
                        copy=0,
                        train_copies=(
                            tuple(range(1, train_copies + 1))
                            if part == "sweep"
                            else ()
                        ),
                    )
                )
    if runner is not None:
        records = runner.run(cells)
    else:
        with ExperimentRunner(jobs=jobs) as owned:
            records = owned.run(cells)

    by_part: dict[tuple, AttackRecord] = {}
    for (scheme, name, _, key_size), chunk in zip(
        grid, _chunks(records, len(parts))
    ):
        for part, record in zip(parts, chunk):
            by_part[(name, scheme, key_size, part)] = record

    rows: list[LeaderboardRow] = []
    for scheme, name, _, key_size in grid:
        for attack in attacks:
            if "+" in attack:
                mux_part, base_part = attack.split("+", 1)
                record = _combine(
                    by_part[(name, scheme, key_size, mux_part)],
                    by_part[(name, scheme, key_size, base_part)],
                    scale.threshold,
                )
            else:
                record = by_part[(name, scheme, key_size, attack)]
            rows.append(
                LeaderboardRow(
                    benchmark=name,
                    scheme=scheme,
                    key_size=key_size,
                    attack=attack,
                    metrics=record.metrics,
                    predicted_key=record.predicted_key,
                    runtime_seconds=record.runtime_seconds,
                )
            )
    return rows


def _chunks(items: list, size: int):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _combine(
    mux_record: AttackRecord, base_record: AttackRecord, threshold: float
) -> AttackRecord:
    """Ensemble one MuxLink record with one baseline record (same lock)."""
    result = mux_record.extras["result"]
    report = base_record.extras["report"]
    locked = mux_record.extras["locked"]
    adjusted = ensemble_likelihoods(
        result.scored, report.scores, weight=ENSEMBLE_WEIGHT
    )
    decisions = postprocess_likelihoods(adjusted, threshold)
    predicted = decisions_to_key(decisions, len(locked.key))
    return AttackRecord(
        benchmark=mux_record.benchmark,
        scheme=mux_record.scheme,
        key_size=mux_record.key_size,
        metrics=score_key(predicted, locked.key),
        runtime_seconds=mux_record.runtime_seconds + base_record.runtime_seconds,
        predicted_key=predicted,
        extras={},
    )


def leaderboard_fingerprint(rows: list[LeaderboardRow]) -> tuple:
    """Runtime-free digest of a leaderboard — equal across serial /
    pooled / bus-distributed / warm-store runs of the same grid."""
    return tuple(
        (
            r.benchmark,
            r.scheme,
            r.key_size,
            r.attack,
            r.predicted_key,
            r.metrics.n_total,
            r.metrics.n_correct,
            r.metrics.n_wrong,
            r.metrics.n_x,
        )
        for r in rows
    )


def format_leaderboard(rows: list[LeaderboardRow]) -> str:
    lines = [
        "Resilience leaderboard — schemes × attacks × key sizes",
        f"{'benchmark':<10}{'scheme':<15}{'K':>5} {'attack':<15}"
        f"{'AC':>8}{'PC':>8}{'KPA':>8}{'X':>5}{'sec':>8}",
    ]
    for r in rows:
        m = r.metrics
        kpa = f"{m.kpa:>8.3f}" if m.kpa == m.kpa else f"{'nan':>8}"
        lines.append(
            f"{r.benchmark:<10}{r.scheme:<15}{r.key_size:>5} "
            f"{_DISPLAY.get(r.attack, r.attack):<15}"
            f"{m.accuracy:>8.3f}{m.precision:>8.3f}{kpa}{m.n_x:>5}"
            f"{r.runtime_seconds:>8.1f}"
        )
    lines.append("")
    lines.append("Summary (pooled KPA per scheme × attack):")
    pools: dict[tuple[str, str], list[KeyMetrics]] = {}
    order: list[tuple[str, str]] = []
    for r in rows:
        key = (r.scheme, r.attack)
        if key not in pools:
            pools[key] = []
            order.append(key)
        pools[key].append(r.metrics)
    for scheme, attack in order:
        pooled = aggregate_metrics(pools[(scheme, attack)])
        kpa = f"{pooled.kpa:.3f}" if pooled.kpa == pooled.kpa else "nan"
        lines.append(
            f"  {scheme:<15}{_DISPLAY.get(attack, attack):<15}KPA={kpa}"
        )
    return "\n".join(lines)
