"""MuxLink reproduction — GNN link-prediction attack on MUX-based locking.

Reproduces Alrahis et al., "MuxLink: Circumventing Learning-Resilient
MUX-Locking Using Graph Neural Network-based Link Prediction" (DATE 2022).

Quickstart::

    from repro import load_benchmark, lock_dmux, run_muxlink, score_key

    base = load_benchmark("c1355", scale=0.3)
    locked = lock_dmux(base, key_size=32, seed=1)
    result = run_muxlink(locked.circuit)
    print(score_key(result.predicted_key, locked.key).kpa)
"""

from repro.benchgen import (
    benchmark_names,
    load_benchmark,
    load_c17,
    random_netlist,
)
from repro.core import (
    KeyMetrics,
    MuxLinkConfig,
    MuxLinkResult,
    aggregate_metrics,
    hamming_with_x,
    recover_design,
    rescore_key,
    run_muxlink,
    score_key,
)
from repro.linkpred import TrainConfig, Trainer
from repro.locking import (
    LockedCircuit,
    apply_key,
    lock_dmux,
    lock_naive_mux,
    lock_symmetric,
    lock_xor,
)
from repro.netlist import Circuit, Gate, GateType, load_bench, parse_bench, write_bench
from repro.sim import hamming_distance
from repro.store import ArtifactStore, resolve_store

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "parse_bench",
    "load_bench",
    "write_bench",
    "load_benchmark",
    "load_c17",
    "random_netlist",
    "benchmark_names",
    "LockedCircuit",
    "lock_dmux",
    "lock_symmetric",
    "lock_naive_mux",
    "lock_xor",
    "apply_key",
    "MuxLinkConfig",
    "MuxLinkResult",
    "TrainConfig",
    "Trainer",
    "run_muxlink",
    "rescore_key",
    "KeyMetrics",
    "score_key",
    "aggregate_metrics",
    "recover_design",
    "hamming_with_x",
    "hamming_distance",
    "ArtifactStore",
    "resolve_store",
    "__version__",
]
