"""Tests for the pooled, cache-aware experiment engine.

Covers the three guarantees the runner makes:

* **determinism** — per-cell RNG streams are keyed on cell identity, so
  records are bit-identical across grid order, pool size and figures;
* **reuse** — locked netlists and trained attacks are cached and shared
  across cells and figure drivers (warm reruns re-lock nothing);
* **parallelism** — a pooled run returns exactly the serial records.
"""

import random

import pytest

from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    attack_benchmark,
    cell_seed_sequence,
    derive_cell_seeds,
    fig7_cells,
    fig8_cells,
    fig9_cells,
    fig10_cells,
    make_cell,
    record_fingerprint,
    resolve_jobs,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME


# ---------------------------------------------------------------------------
# jobs resolution
# ---------------------------------------------------------------------------
def test_resolve_jobs_argument_env_and_auto(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 0
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit argument beats the env
    assert resolve_jobs("auto") >= 1
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs() >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_runner_honours_repro_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert ExperimentRunner().jobs == 4
    assert ExperimentRunner(jobs=0).jobs == 0


# ---------------------------------------------------------------------------
# per-cell seeding
# ---------------------------------------------------------------------------
def test_cell_seeds_keyed_on_identity_not_order():
    a = derive_cell_seeds(0, "c1355", DMUX_SCHEME, 6)
    b = derive_cell_seeds(0, "c1355", DMUX_SCHEME, 6)
    assert a == b  # pure function of (seed, identity)
    # Every component of the identity — and the base seed — moves the stream.
    assert a != derive_cell_seeds(1, "c1355", DMUX_SCHEME, 6)
    assert a != derive_cell_seeds(0, "c1908", DMUX_SCHEME, 6)
    assert a != derive_cell_seeds(0, "c1355", SYMMETRIC_SCHEME, 6)
    assert a != derive_cell_seeds(0, "c1355", DMUX_SCHEME, 8)
    # Lock and train streams are themselves independent.
    assert a[0] != a[1]


def test_cell_seed_sequence_ignores_h_and_threshold():
    base = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0)
    hopped = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0, h=2)
    swept = make_cell(
        SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0, threshold=0.5
    )
    # Same locked instance across Fig. 9 / Fig. 10 style overrides ...
    assert base.lock_seed == hopped.lock_seed == swept.lock_seed
    assert base.config.train.seed == hopped.config.train.seed
    # ... while the overrides themselves land in the config.
    assert hopped.config.h == 2
    assert swept.config.threshold == 0.5
    ss = cell_seed_sequence(0, "c1355", DMUX_SCHEME, 6)
    assert ss.spawn_key  # identity-derived, not iteration-order-derived


def test_records_invariant_to_grid_order():
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    shuffled = list(cells)
    random.Random(1234).shuffle(shuffled)
    direct = ExperimentRunner(jobs=0).run(cells)
    reordered = ExperimentRunner(jobs=0).run(shuffled)
    by_id = {
        (r.benchmark, r.scheme, r.key_size): record_fingerprint(r)
        for r in reordered
    }
    for record in direct:
        key = (record.benchmark, record.scheme, record.key_size)
        assert record_fingerprint(record) == by_id[key]


def test_attack_benchmark_matches_runner_cell():
    record = attack_benchmark(
        "c1355", DMUX_SCHEME, 6, SMOKE_SCALE, 0.1, seed=0
    )
    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0)
    via_runner = ExperimentRunner(jobs=0).run([cell])[0]
    assert record_fingerprint(record) == record_fingerprint(via_runner)


# ---------------------------------------------------------------------------
# serial <-> parallel parity
# ---------------------------------------------------------------------------
def test_pooled_fig7_bit_identical_to_serial():
    serial = run_fig7(scale=SMOKE_SCALE, seed=0, jobs=0)
    with ExperimentRunner(jobs=2) as pooled_runner:
        pooled = run_fig7(scale=SMOKE_SCALE, seed=0, runner=pooled_runner)
        assert pooled_runner.jobs == 2
    assert [record_fingerprint(r) for r in serial] == [
        record_fingerprint(r) for r in pooled
    ]


def test_pool_size_does_not_change_records():
    with ExperimentRunner(jobs=3) as wide:
        records_wide = wide.run(fig7_cells(SMOKE_SCALE, seed=7))
    records_serial = ExperimentRunner(jobs=0).run(fig7_cells(SMOKE_SCALE, seed=7))
    assert [record_fingerprint(r) for r in records_wide] == [
        record_fingerprint(r) for r in records_serial
    ]


# ---------------------------------------------------------------------------
# artifact cache
# ---------------------------------------------------------------------------
def test_warm_rerun_hits_cache_with_zero_relocks():
    runner = ExperimentRunner(jobs=0)
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    cold = runner.run(cells)
    locks_after_cold = runner.stats.locks_computed
    attacks_after_cold = runner.stats.attacks_computed
    assert locks_after_cold == 2  # one per scheme at SMOKE scale
    assert runner.stats.locks_reused == 0

    warm = runner.run(cells)
    assert runner.stats.locks_computed == locks_after_cold  # zero re-locks
    assert runner.stats.attacks_computed == attacks_after_cold
    assert runner.stats.locks_reused == len(cells)
    assert runner.stats.attacks_reused == len(cells)
    assert [record_fingerprint(r) for r in cold] == [
        record_fingerprint(r) for r in warm
    ]


def test_figures_share_artifacts_through_one_runner():
    runner = ExperimentRunner(jobs=0)
    run_fig7(scale=SMOKE_SCALE, seed=0, runner=runner)
    locks = runner.stats.locks_computed
    attacks = runner.stats.attacks_computed

    # Fig. 8 (D-MUX max-key ISCAS cells) and Fig. 9 (same, both schemes)
    # are sub-grids of Fig. 7: nothing new is locked or trained.
    run_fig8(scale=SMOKE_SCALE, seed=0, runner=runner)
    run_fig9(scale=SMOKE_SCALE, thresholds=(0.0, 0.5, 1.0), seed=0, runner=runner)
    assert runner.stats.locks_computed == locks
    assert runner.stats.attacks_computed == attacks

    # Fig. 10 re-attacks at new hop counts but reuses every locked netlist.
    run_fig10(scale=SMOKE_SCALE, hops=(1, 2), seed=0, runner=runner)
    assert runner.stats.locks_computed == locks
    assert runner.stats.attacks_computed == attacks + 1  # only the h=2 cell


def test_cell_lists_are_subsets_of_fig7():
    fig7_ids = {
        (c.benchmark, c.scheme, c.key_size, c.lock_seed)
        for c in fig7_cells(SMOKE_SCALE, seed=0)
    }
    for cells in (
        fig8_cells(SMOKE_SCALE, seed=0),
        fig9_cells(SMOKE_SCALE, seed=0),
        fig10_cells(SMOKE_SCALE, hops=(1, 2, 3), seed=0),
    ):
        assert {
            (c.benchmark, c.scheme, c.key_size, c.lock_seed) for c in cells
        } <= fig7_ids


def test_distinct_seeds_produce_distinct_locks():
    runner = ExperimentRunner(jobs=0)
    cells = [
        make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=s)
        for s in (0, 1)
    ]
    keys = {runner.locked_circuit(c).key for c in cells}
    assert runner.stats.locks_computed == 2
    assert len(keys) == 2 or cells[0].lock_seed != cells[1].lock_seed
