"""Tests for the experiment layer: presets plus end-to-end figure drivers.

Every figure driver (``run_fig7`` .. ``run_fig10``) runs end-to-end under
the ``SMOKE`` preset (one tiny benchmark, one key size, two epochs), with
record shapes and metric ranges asserted.  The engine-level guarantees
(parallel parity, cache reuse, per-cell seeding) live in
``tests/core/test_runner.py``.
"""

import math

import pytest

from repro.experiments import (
    CI_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentRunner,
    ExperimentScale,
    active_scale,
    attack_benchmark,
    format_fig2,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    lock_with,
    run_fig2,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    scale_by_name,
    summarize_fig7,
)
from repro.experiments.common import format_records
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME


@pytest.fixture(scope="module")
def shared_runner():
    """One cache-warm runner for the whole module, like ``repro figures``."""
    with ExperimentRunner(jobs=0) as runner:
        yield runner


def test_scale_presets_and_env(monkeypatch):
    assert SMOKE_SCALE.name == "smoke"
    assert CI_SCALE.name == "ci"
    assert PAPER_SCALE.name == "paper"
    assert PAPER_SCALE.iscas_keys == (64, 128, 256)
    assert len(SMOKE_SCALE.iscas) == 1 and SMOKE_SCALE.epochs == 2
    monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
    assert active_scale() is CI_SCALE
    monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "paper")
    assert active_scale() is PAPER_SCALE
    monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "smoke")
    assert active_scale() is SMOKE_SCALE


def test_scale_by_name():
    assert scale_by_name("smoke") is SMOKE_SCALE
    assert scale_by_name("CI") is CI_SCALE
    with pytest.raises(KeyError):
        scale_by_name("nope")


def test_scale_benchmark_enumeration():
    rows = CI_SCALE.benchmarks()
    names = [r[0] for r in rows]
    assert names == list(CI_SCALE.iscas) + list(CI_SCALE.itc)
    for _, scale, keys in rows:
        assert 0 < scale <= 1
        assert keys


def test_lock_with_dispatch():
    from repro.benchgen import load_benchmark

    base = load_benchmark("c1355", scale=0.1)
    locked = lock_with(DMUX_SCHEME, base, key_size=4, seed=0)
    assert locked.scheme == DMUX_SCHEME
    with pytest.raises(KeyError):
        lock_with("nope", base, key_size=4)


def test_attack_benchmark_record():
    record = attack_benchmark(
        "c1355", DMUX_SCHEME, 6, SMOKE_SCALE, SMOKE_SCALE.circuit_scale_iscas,
        seed=0,
    )
    assert record.benchmark == "c1355"
    assert record.metrics.n_total == 6
    assert len(record.predicted_key) == 6
    assert record.runtime_seconds > 0
    assert "result" in record.extras
    table = format_records([record], "t")
    assert "c1355" in table


def test_fig2_runner_smoke():
    rows = run_fig2(scale=SMOKE_SCALE, n_copies=2, key_size=6, seed=1)
    # 1 benchmark x 2 schemes x 2 attacks
    assert len(rows) == 4
    assert {r.attack for r in rows} == {"SCOPE", "SWEEP"}
    for row in rows:
        assert 0.0 <= row.metrics.accuracy <= 1.0
    assert "Fig. 2" in format_fig2(rows)


# ---------------------------------------------------------------------------
# End-to-end figure drivers under SMOKE
# ---------------------------------------------------------------------------
def test_fig7_end_to_end(shared_runner):
    records = run_fig7(scale=SMOKE_SCALE, seed=0, runner=shared_runner)
    # 1 benchmark x 1 key size x 2 schemes
    assert len(records) == 2
    assert {r.scheme for r in records} == {DMUX_SCHEME, SYMMETRIC_SCHEME}
    for record in records:
        assert record.benchmark in SMOKE_SCALE.iscas
        assert record.key_size in SMOKE_SCALE.iscas_keys
        assert record.metrics.n_total == record.key_size
        assert len(record.predicted_key) == record.key_size
        assert set(record.predicted_key) <= {"0", "1", "x"}
        assert 0.0 <= record.metrics.accuracy <= 1.0
        assert 0.0 <= record.metrics.precision <= 1.0
        assert record.runtime_seconds > 0
    summary = summarize_fig7(records)
    assert set(summary) >= {"accuracy", "precision", "kpa"}
    assert not math.isnan(summary["accuracy"])
    assert "Summary" in format_fig7(records)


def test_fig8_end_to_end(shared_runner):
    rows = run_fig8(scale=SMOKE_SCALE, seed=0, runner=shared_runner)
    assert [r.benchmark for r in rows] == list(SMOKE_SCALE.iscas)
    for row in rows:
        assert row.key_size == max(SMOKE_SCALE.iscas_keys)
        assert 0.0 <= row.accuracy <= 1.0
        assert 0 <= row.n_x <= row.key_size
        assert 0.0 <= row.hamming_distance <= 1.0
    assert "Fig. 8" in format_fig8(rows)


def test_fig9_end_to_end(shared_runner):
    thresholds = (0.0, 0.5, 1.0)
    rows = run_fig9(
        scale=SMOKE_SCALE, thresholds=thresholds, seed=0, runner=shared_runner
    )
    assert len(rows) == 2 * len(thresholds)  # 2 schemes x thresholds
    for row in rows:
        assert row.threshold in thresholds
        assert 0.0 <= row.accuracy <= 1.0
        assert 0.0 <= row.precision <= 1.0
        assert 0.0 <= row.decision_rate <= 1.0
    # th = 1 forces full abstention -> PC = 100 %.
    final = [r for r in rows if r.threshold == 1.0]
    assert len(final) == 2
    assert all(r.precision == 1.0 for r in final)
    assert "Fig. 9" in format_fig9(rows)


def test_fig10_end_to_end(shared_runner):
    hops = (1, 2)
    rows = run_fig10(scale=SMOKE_SCALE, hops=hops, seed=0, runner=shared_runner)
    assert [r.h for r in rows] == list(hops)
    for row in rows:
        assert 0.0 <= row.accuracy <= 1.0
        assert 0.0 <= row.precision <= 1.0
        assert row.runtime_seconds > 0
    assert "Fig. 10" in format_fig10(rows)


def test_formatters_handle_empty_gracefully():
    assert "Fig. 8" in format_fig8([])
    assert "Fig. 10" in format_fig10([])
