"""Gate: distributed figure output must be bit-identical to serial.

Usage: ``check_spool_parity.py SERIAL.txt DISTRIBUTED.txt``.

Compares the figure tables of two ``repro figures`` transcripts after
dropping run bookkeeping (runner/bus/store stats, the ``bus=``/
``store=``/``scale=`` banner) and masking the trailing wall-clock
column — a worker measures its own runtime; every *computed* value is
compared exactly.  Exits non-zero with a diff on divergence.
"""

from __future__ import annotations

import difflib
import re
import sys

_BOOKKEEPING = ("runner:", "bus[", "store:", "store=", "bus=", "scale=")


def tables(path: str) -> list[str]:
    kept = []
    with open(path) as handle:
        for line in handle:
            if line.startswith(_BOOKKEEPING):
                continue
            kept.append(re.sub(r"\d+\.\d$", "<sec>", line.rstrip()))
    return kept


def main(argv: list[str]) -> int:
    serial, distributed = tables(argv[1]), tables(argv[2])
    if serial != distributed:
        sys.stderr.write("figure tables diverged from serial:\n")
        sys.stderr.writelines(
            f"{line}\n"
            for line in difflib.unified_diff(
                serial, distributed, argv[1], argv[2], lineterm=""
            )
        )
        return 1
    rows = sum(1 for line in serial if line.strip())
    print(f"bit-parity OK ({rows} table lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
