"""Best-effort BLAS thread capping for bus workers.

OpenBLAS wakes its whole spin-waiting thread pool on every kernel call.
One process on a 24-core host, that is free; four bus workers doing it
concurrently means ~96 spinning threads fighting for 24 cores, and the
measured per-job wall-clock **doubles** (see ``benchmarks/bench_bus.py``
history in ``BENCH_training.json``).  The attack jobs themselves are
single-core — BLAS parallelism buys them nothing (pinning to 1 thread
leaves serial runtime unchanged) — so a fanned-out worker should cap
its BLAS pool and let the job-level parallelism own the cores.

``threadpoolctl`` is the canonical tool for this but is not a repro
dependency; this module does the one narrow thing we need with ctypes
against whichever OpenBLAS numpy already loaded.  Everything is
best-effort: on a host without a discoverable OpenBLAS (MKL builds,
non-Linux without /proc) it silently does nothing, which only costs
the oversubscription margin, never correctness.
"""

from __future__ import annotations

import ctypes
import os
import pathlib

#: set_num_threads entry points across OpenBLAS builds, most specific
#: first (scipy-openblas wheels prefix and suffix the classic name).
_SET_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
)


def _candidate_libraries() -> list[str]:
    """Paths of BLAS shared objects already mapped into this process."""
    seen: list[str] = []
    try:
        with open(f"/proc/{os.getpid()}/maps") as maps:
            for line in maps:
                path = line.split()[-1] if line.split() else ""
                if "blas" in pathlib.PurePath(path).name.lower():
                    if path not in seen:
                        seen.append(path)
    except OSError:
        pass
    return seen


def limit_blas_threads(n: int) -> bool:
    """Cap the loaded OpenBLAS pool at ``n`` threads.

    Returns True if a set_num_threads entry point was found and called,
    False if no controllable BLAS was located (harmless).  ``n <= 0``
    is a no-op by contract — callers use it to mean "leave BLAS alone".
    """
    if n <= 0:
        return False
    for path in _candidate_libraries():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _SET_SYMBOLS:
            fn = getattr(lib, symbol, None)
            if fn is None:
                continue
            try:
                fn.argtypes = [ctypes.c_int]
                fn.restype = None
                fn(int(n))
                return True
            except (ctypes.ArgumentError, OSError):  # pragma: no cover
                continue
    return False
