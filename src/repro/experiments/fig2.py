"""Fig. 2 — SWEEP and SCOPE are blind on D-MUX / symmetric locking.

The paper locks each ISCAS-85 benchmark 100× with K = 64 and shows both
constant-propagation attacks stuck at KPA ≈ 50 %.  This runner performs
the same protocol at a configurable number of copies; the claim
reproduced is the *flat ≈ 0.5 KPA line* across benchmarks and schemes.

Since PR 8 the study is a declarative :class:`BaselineCell` grid
executed by the shared :class:`~repro.experiments.runner.ExperimentRunner`
— the same engine (and store, and job bus) the MuxLink figures use, so
locked copies persist, reports are content-addressed, and serial /
pooled / reordered runs are bit-identical.  Every copy derives its lock
stream and each attack its coin stream from the cell identity
(:func:`~repro.experiments.runner.derive_copy_seeds` /
:func:`~repro.experiments.runner.derive_baseline_seed`), replacing the
old flat ``seed + i`` scheme that fed the lock, SCOPE's coin and
SWEEP's coin one correlated stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import KeyMetrics, aggregate_metrics
from repro.experiments.common import ExperimentScale, active_scale
from repro.experiments.runner import (
    BaselineCell,
    ExperimentRunner,
    make_baseline_cell,
)
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME

__all__ = ["Fig2Row", "fig2_cells", "run_fig2", "format_fig2"]

#: Attack order within one (scheme, benchmark) block — fixed so the
#: emitted rows match the historical table layout.
_FIG2_ATTACKS = ("scope", "sweep")


@dataclass(frozen=True)
class Fig2Row:
    """Pooled attack scores for one (benchmark, scheme, attack) cell."""

    benchmark: str
    scheme: str
    attack: str
    metrics: KeyMetrics


def fig2_cells(
    scale: ExperimentScale | None = None,
    n_copies: int = 4,
    key_size: int | None = None,
    seed: int = 0,
) -> list[BaselineCell]:
    """The (scheme × benchmark × attack × copy) grid as declarative cells.

    SWEEP trains leave-one-out: copy *i*'s corpus is every other copy,
    in index order (the corpus order is part of the artifact identity).
    """
    scale = scale or active_scale()
    key_size = key_size or min(scale.iscas_keys)
    cells: list[BaselineCell] = []
    for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME):
        for name in scale.iscas:
            for attack in _FIG2_ATTACKS:
                for copy in range(n_copies):
                    train = (
                        tuple(j for j in range(n_copies) if j != copy)
                        if attack == "sweep"
                        else ()
                    )
                    cells.append(
                        make_baseline_cell(
                            name,
                            scale.circuit_scale_iscas,
                            scheme,
                            key_size,
                            attack,
                            seed=seed,
                            copy=copy,
                            train_copies=train,
                            undecided="coin",
                            margin=1e-3,
                        )
                    )
    return cells


def run_fig2(
    scale: ExperimentScale | None = None,
    n_copies: int = 4,
    key_size: int | None = None,
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> list[Fig2Row]:
    """Regenerate the Fig. 2 resilience study.

    Args:
        scale: experiment preset (CI default).
        n_copies: locked copies per benchmark (paper: 100; CI: 4).
        key_size: key bits per copy (paper: 64; default: smallest preset key).
        seed: base RNG seed.
        runner: shared :class:`ExperimentRunner` (reuses its caches /
            store / bus); a fresh one honouring *jobs* is used otherwise.
    """
    scale = scale or active_scale()
    cells = fig2_cells(scale, n_copies=n_copies, key_size=key_size, seed=seed)
    if runner is not None:
        records = runner.run(cells)
    else:
        with ExperimentRunner(jobs=jobs) as owned:
            records = owned.run(cells)
    # Cell order is (scheme, benchmark, attack, copy): pool each run of
    # n_copies consecutive records into one row.
    rows: list[Fig2Row] = []
    for start in range(0, len(records), n_copies):
        block = records[start : start + n_copies]
        cell = cells[start]
        rows.append(
            Fig2Row(
                cell.benchmark,
                cell.scheme,
                cell.attack.upper(),
                aggregate_metrics([r.metrics for r in block]),
            )
        )
    return rows


def format_fig2(rows: list[Fig2Row]) -> str:
    lines = [
        "Fig. 2 — constant-propagation attacks on learning-resilient locking",
        f"{'benchmark':<10}{'scheme':<15}{'attack':<8}{'AC':>8}{'PC':>8}{'KPA':>8}",
    ]
    for r in rows:
        m = r.metrics
        lines.append(
            f"{r.benchmark:<10}{r.scheme:<15}{r.attack:<8}"
            f"{m.accuracy:>8.3f}{m.precision:>8.3f}{m.kpa:>8.3f}"
        )
    return "\n".join(lines)
