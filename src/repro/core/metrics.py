"""Attack evaluation metrics — paper Sec. IV.

* **AC** (accuracy): correctly deciphered bits / total key bits.
* **PC** (precision): (correct + X) / total — an ``x`` guess is never
  *wrong*, so precision rewards abstaining over guessing badly.
* **KPA** (key prediction accuracy): correct / decided — accuracy over the
  bits the attack actually committed to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["KeyMetrics", "score_key", "aggregate_metrics"]


@dataclass(frozen=True)
class KeyMetrics:
    """Scores of one predicted key against the ground truth."""

    n_total: int
    n_correct: int
    n_wrong: int
    n_x: int

    @property
    def accuracy(self) -> float:
        """AC = Kcorrect / Ktotal."""
        return self.n_correct / self.n_total if self.n_total else math.nan

    @property
    def precision(self) -> float:
        """PC = (Kcorrect + Kx) / Ktotal."""
        if not self.n_total:
            return math.nan
        return (self.n_correct + self.n_x) / self.n_total

    @property
    def kpa(self) -> float:
        """KPA = Kcorrect / (Ktotal - Kx); NaN when nothing was decided."""
        decided = self.n_total - self.n_x
        return self.n_correct / decided if decided else math.nan

    @property
    def decision_rate(self) -> float:
        """Fraction of key bits the attack committed to (1 - X ratio)."""
        return 1 - self.n_x / self.n_total if self.n_total else math.nan


def score_key(predicted: str, actual: str) -> KeyMetrics:
    """Score a predicted key string (``0``/``1``/``x``) against the truth.

    Raises:
        ValueError: on length mismatch or invalid characters.
    """
    if len(predicted) != len(actual):
        raise ValueError(
            f"length mismatch: predicted {len(predicted)}, actual {len(actual)}"
        )
    correct = wrong = undecided = 0
    for pred, act in zip(predicted, actual):
        if act not in "01":
            raise ValueError(f"actual key has invalid character {act!r}")
        if pred in "xX":
            undecided += 1
        elif pred not in "01":
            raise ValueError(f"predicted key has invalid character {pred!r}")
        elif pred == act:
            correct += 1
        else:
            wrong += 1
    return KeyMetrics(
        n_total=len(actual), n_correct=correct, n_wrong=wrong, n_x=undecided
    )


def aggregate_metrics(results: list[KeyMetrics]) -> KeyMetrics:
    """Pool several runs into one (micro-averaged) metric."""
    if not results:
        raise ValueError("cannot aggregate zero results")
    return KeyMetrics(
        n_total=sum(r.n_total for r in results),
        n_correct=sum(r.n_correct for r in results),
        n_wrong=sum(r.n_wrong for r in results),
        n_x=sum(r.n_x for r in results),
    )
