"""Benchmark-suite configuration.

Each bench regenerates one figure of the paper at CI scale (set
``REPRO_EXPERIMENT_SCALE=paper`` for the full-size protocol) and prints the
paper-style table to stdout; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.
"""

import pytest


@pytest.fixture
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure regeneration takes seconds to minutes; statistical repetition
    would multiply that for no insight, so every bench uses one round.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
