"""Data-parallel training tests: the grad_shards/n_train_workers split —
sharded trajectories are a function of the shard count alone, worker
count is a pure execution knob (bit-identical curves and weights)."""

import numpy as np
import pytest

from repro.linkpred import TrainConfig, Trainer, make_trainer
from repro.linkpred.parallel import DataParallelTrainer, shard_dropout_rng
from repro.linkpred.trainer import Trainer as SerialTrainer

from tests.linkpred.test_trainer import toy_dataset


def cfg(**overrides):
    base = dict(epochs=3, learning_rate=3e-3, batch_size=10, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


def assert_same_run(a, b):
    model_a, hist_a = a
    model_b, hist_b = b
    assert hist_a.train_loss == hist_b.train_loss
    assert hist_a.val_loss == hist_b.val_loss
    assert hist_a.val_auc == hist_b.val_auc
    for x, y in zip(model_a.state_dict(), model_b.state_dict()):
        np.testing.assert_array_equal(x, y)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------
def test_make_trainer_routes_on_grad_shards_not_workers():
    dataset = toy_dataset()
    assert type(make_trainer(dataset, cfg())) is SerialTrainer
    # One shard cannot be distributed: worker count alone never engages
    # the data-parallel engine.
    assert type(make_trainer(dataset, cfg(n_train_workers=4))) is SerialTrainer
    assert isinstance(
        make_trainer(dataset, cfg(grad_shards=2)), DataParallelTrainer
    )


def test_config_validation():
    with pytest.raises(ValueError):
        cfg(grad_shards=0)
    with pytest.raises(ValueError):
        cfg(n_train_workers=0)
    with pytest.raises(ValueError):
        cfg(optimizer="sgd")


# ---------------------------------------------------------------------------
# shard RNG
# ---------------------------------------------------------------------------
def test_shard_dropout_rng_is_deterministic_and_distinct():
    streams = {
        (e, s, h): shard_dropout_rng(3, e, s, h).random(4).tolist()
        for e in range(2)
        for s in range(2)
        for h in range(2)
    }
    again = shard_dropout_rng(3, 1, 1, 1).random(4).tolist()
    assert streams[(1, 1, 1)] == again
    assert len({tuple(v) for v in streams.values()}) == len(streams)


# ---------------------------------------------------------------------------
# worker-count invariance (the headline contract)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("optimizer", ["adam", "kfac"])
def test_serial_and_pooled_shards_are_bit_identical(optimizer):
    """n_train_workers ∈ {1, 2} over fixed grad_shards: same float
    trajectory, same weights, bit for bit."""
    run_one = make_trainer(
        toy_dataset(), cfg(grad_shards=2, n_train_workers=1, optimizer=optimizer)
    ).fit()
    run_two = make_trainer(
        toy_dataset(), cfg(grad_shards=2, n_train_workers=2, optimizer=optimizer)
    ).fit()
    assert_same_run(run_one, run_two)


def test_single_shard_matches_serial_trainer_exactly():
    """grad_shards=1 through the factory IS the serial engine: identical
    object type and identical trajectory to a plain Trainer."""
    serial = Trainer(toy_dataset(), cfg()).fit()
    routed = make_trainer(toy_dataset(), cfg(n_train_workers=3)).fit()
    assert_same_run(serial, routed)


def test_sharded_loss_is_float64_stable_across_workers():
    """Loss curves compared as float64 — the acceptance criterion's
    formulation — across worker counts."""
    curves = []
    for workers in (1, 2):
        _, history = make_trainer(
            toy_dataset(), cfg(grad_shards=3, n_train_workers=workers)
        ).fit()
        curves.append(np.asarray(history.train_loss, dtype=np.float64))
    np.testing.assert_array_equal(curves[0], curves[1])


def test_more_shards_than_examples_in_a_batch():
    """Trailing batches smaller than the shard count drop empty shards
    deterministically (no NaNs, no division by zero)."""
    # 36 train examples, batch 10 -> final batch of 6 with 8 shards.
    _, history = make_trainer(
        toy_dataset(), cfg(grad_shards=8, n_train_workers=2)
    ).fit()
    assert np.isfinite(history.train_loss).all()


# ---------------------------------------------------------------------------
# checkpoint interop
# ---------------------------------------------------------------------------
def test_sharded_checkpoint_resume_is_bit_identical(tmp_path):
    path = str(tmp_path / "ck.npz")
    config = cfg(grad_shards=2, epochs=4)
    full = make_trainer(toy_dataset(), config).fit()

    partial = make_trainer(toy_dataset(), config)
    partial.fit(until_epoch=2)
    partial.save_checkpoint(path)

    resumed = make_trainer(toy_dataset(), config)
    resumed.load_checkpoint(path)
    assert_same_run(full, resumed.fit())


def test_sharded_checkpoint_is_worker_count_portable(tmp_path):
    """A checkpoint written under the pool resumes in-process (and vice
    versa) bit-identically: the coordinator's RNG streams are the only
    ones persisted, and shard streams are re-derived."""
    path = str(tmp_path / "ck.npz")
    config_pool = cfg(grad_shards=2, n_train_workers=2, epochs=4)
    config_local = cfg(grad_shards=2, n_train_workers=1, epochs=4)
    full = make_trainer(toy_dataset(), config_local).fit()

    partial = make_trainer(toy_dataset(), config_pool)
    partial.fit(until_epoch=2)
    partial.save_checkpoint(path)

    resumed = make_trainer(toy_dataset(), config_local)
    resumed.load_checkpoint(path)
    assert_same_run(full, resumed.fit())
