"""BLAS thread capping: found on this host, no-op contract, determinism.

The bit-identity contract of every bus backend rests on all processes
using the *same* OpenBLAS thread count — the pool size changes the
floating-point reduction order.  ``repro`` pins the pool to 1 at import
(``REPRO_BLAS_THREADS`` overrides); these tests cover the primitive.
"""

import numpy as np

from repro.bus.threads import _candidate_libraries, limit_blas_threads


def test_noop_contract():
    assert limit_blas_threads(0) is False
    assert limit_blas_threads(-3) is False


def test_caps_the_loaded_openblas():
    # numpy is imported, so its BLAS is mapped into this process.  The
    # pinned container image ships a scipy-openblas numpy; if a future
    # image swaps BLAS implementations the discovery legitimately finds
    # nothing and capping degrades to a no-op.
    if not _candidate_libraries():
        assert limit_blas_threads(1) is False
        return
    assert limit_blas_threads(1) is True


def test_matmul_bit_identical_under_recapping():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((256, 256))
    limit_blas_threads(1)
    one = a @ a
    limit_blas_threads(2)
    limit_blas_threads(1)
    again = a @ a
    assert (one == again).all()
