"""Benchmark circuit generation: random DAGs and the evaluation suites."""

from repro.benchgen.generators import (
    GeneratorConfig,
    and_netlist,
    random_circuit,
    random_netlist,
)
from repro.benchgen.resilience_tests import (
    ResilienceReport,
    run_ant,
    run_resilience_suite,
    run_rnt,
)
from repro.benchgen.suites import (
    ISCAS85_SUITE,
    ITC99_SUITE,
    BenchmarkSpec,
    benchmark_names,
    benchmark_spec,
    load_benchmark,
    load_c17,
)

__all__ = [
    "GeneratorConfig",
    "random_circuit",
    "random_netlist",
    "and_netlist",
    "BenchmarkSpec",
    "ISCAS85_SUITE",
    "ITC99_SUITE",
    "benchmark_names",
    "benchmark_spec",
    "load_benchmark",
    "load_c17",
    "ResilienceReport",
    "run_ant",
    "run_rnt",
    "run_resilience_suite",
]
