"""Key-recovery post-processing (paper Sec. III-E, Algorithm 1).

The GNN outputs a likelihood per candidate link.  Post-processing turns
those into key bits per obfuscated locality:

* **single MUX** (S2/S3): compare the two candidate likelihoods; commit
  when they differ by at least ``th``.
* **shared-key pair** (S4): two MUXes driven by one key input; the MUX with
  the larger likelihood gap decides the shared bit.
* **individual-key pair** (S1/S5): Algorithm 1 — the larger gap decides its
  own MUX's bit and the partner receives the complementary assignment
  (both MUXes multiplex the same two source nets, so exactly one of them
  passes each net).

Localities are reconstructed from attacker-visible structure only: shared
key inputs and shared data-net pairs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace

from repro.errors import AttackError

__all__ = [
    "ScoredMux",
    "ensemble_likelihoods",
    "postprocess_likelihoods",
    "decisions_to_key",
]


@dataclass(frozen=True)
class ScoredMux:
    """One key MUX with scored candidate links.

    Attributes:
        mux_name: MUX gate name (for reporting).
        key_index: key bit on the select pin.
        load: node index of the locked gate.
        drivers: ``(d0, d1)`` node indices of the data pins.
        likelihoods: ``(l_d0, l_d1)`` GNN scores of the candidate links.
    """

    mux_name: str
    key_index: int
    load: int
    drivers: tuple[int, int]
    likelihoods: tuple[float, float]

    @property
    def delta(self) -> float:
        return abs(self.likelihoods[0] - self.likelihoods[1])

    def best_select(self) -> int:
        """Key value passing the higher-likelihood candidate."""
        return 0 if self.likelihoods[0] >= self.likelihoods[1] else 1

    def best_driver(self) -> int:
        return self.drivers[self.best_select()]

    def select_passing(self, driver: int) -> int:
        """Key value that passes *driver* through this MUX."""
        if driver == self.drivers[0]:
            return 0
        if driver == self.drivers[1]:
            return 1
        raise AttackError(f"driver {driver} is not an input of {self.mux_name}")


@dataclass(frozen=True)
class _Decision:
    bit: str  # "0" / "1" / "x"
    confidence: float


def _decide_single(mux: ScoredMux, th: float) -> dict[int, _Decision]:
    if mux.delta >= th:
        return {mux.key_index: _Decision(str(mux.best_select()), mux.delta)}
    return {mux.key_index: _Decision("x", mux.delta)}


def _decide_shared_key(muxes: list[ScoredMux], th: float) -> dict[int, _Decision]:
    """S4: all MUXes share one key input; the widest gap decides."""
    winner = max(muxes, key=lambda m: m.delta)
    if winner.delta >= th:
        return {winner.key_index: _Decision(str(winner.best_select()), winner.delta)}
    return {winner.key_index: _Decision("x", winner.delta)}


def _decide_pair(mi: ScoredMux, mj: ScoredMux, th: float) -> dict[int, _Decision]:
    """Algorithm 1 for S1/S5 localities (individual keys, same net pair)."""
    d1, d2 = mi.delta, mj.delta
    if max(d1, d2) < th or d1 == d2:
        # Lines 16–19: no decision (including the exact-tie case).
        return {
            mi.key_index: _Decision("x", d1),
            mj.key_index: _Decision("x", d2),
        }
    winner, partner = (mi, mj) if d1 > d2 else (mj, mi)
    winner_bit = winner.best_select()
    winner_driver = winner.best_driver()
    other_driver = (
        winner.drivers[1] if winner_driver == winner.drivers[0] else winner.drivers[0]
    )
    partner_bit = partner.select_passing(other_driver)
    return {
        winner.key_index: _Decision(str(winner_bit), winner.delta),
        partner.key_index: _Decision(str(partner_bit), winner.delta),
    }


def postprocess_likelihoods(
    scored: list[ScoredMux], threshold: float = 0.01
) -> dict[int, str]:
    """Recover key-bit assignments from scored MUXes.

    Returns:
        ``{key_index: "0" | "1" | "x"}``.  Conflicting decisions for the
        same bit (possible only in malformed inputs) resolve by confidence.
    """
    if threshold < 0:
        raise AttackError("threshold must be non-negative")

    by_key: dict[int, list[ScoredMux]] = defaultdict(list)
    for mux in scored:
        by_key[mux.key_index].append(mux)

    # Partner S1/S5 pairs: individual keys, identical driver pair.
    by_driver_set: dict[frozenset, list[ScoredMux]] = defaultdict(list)
    for mux in scored:
        if len(by_key[mux.key_index]) == 1:  # not an S4 member
            by_driver_set[frozenset(mux.drivers)].append(mux)

    decisions: dict[int, _Decision] = {}

    def merge(new: dict[int, _Decision]) -> None:
        for key_index, decision in new.items():
            held = decisions.get(key_index)
            if held is None or decision.confidence > held.confidence:
                decisions[key_index] = decision

    paired: set[str] = set()
    for muxes in by_driver_set.values():
        if len(muxes) == 2 and muxes[0].key_index != muxes[1].key_index:
            merge(_decide_pair(muxes[0], muxes[1], threshold))
            paired.update(m.mux_name for m in muxes)

    for key_index, muxes in by_key.items():
        if len(muxes) > 1:
            merge(_decide_shared_key(muxes, threshold))
        elif muxes[0].mux_name not in paired:
            merge(_decide_single(muxes[0], threshold))

    return {key_index: d.bit for key_index, d in decisions.items()}


def decisions_to_key(decisions: dict[int, str], n_bits: int) -> str:
    """Render per-bit decisions as a key string, ``x`` for missing bits."""
    return "".join(decisions.get(i, "x") for i in range(n_bits))


def ensemble_likelihoods(
    scored: list[ScoredMux],
    bit_scores: dict[int, float],
    weight: float = 0.25,
) -> list[ScoredMux]:
    """Blend per-bit baseline scores into MuxLink's per-MUX likelihoods.

    *bit_scores* follow the SCOPE/SWEEP sign convention — a positive
    score backs key-bit value ``"0"`` (select 0 passes the true driver).
    Scores are normalized by the corpus peak ``max |score|`` so *weight*
    is a fraction of the likelihood scale regardless of which attack
    produced them; the boost is added to the backed select's likelihood
    **before** Algorithm 1, so a structural signal can tip an
    under-threshold GNN gap over the decision line (and never flips a
    confident one unless it out-weighs the gap).

    Against D-MUX / symmetric locking the baselines are blind (scores
    ≈ 0 after normalization degenerate to no-ops), so the ensemble is a
    strict superset of MuxLink there — exactly the paper's resilience
    claim restated as a combiner.
    """
    if weight < 0:
        raise AttackError("ensemble weight must be non-negative")
    if not bit_scores:
        return list(scored)
    peak = max(abs(score) for score in bit_scores.values())
    if peak == 0.0:
        return list(scored)
    out: list[ScoredMux] = []
    for mux in scored:
        score = bit_scores.get(mux.key_index)
        if not score:
            out.append(mux)
            continue
        vote = score / peak  # in [-1, 1]; positive backs select 0
        l0, l1 = mux.likelihoods
        if vote > 0:
            l0 += weight * vote
        else:
            l1 += weight * -vote
        out.append(replace(mux, likelihoods=(l0, l1)))
    return out
