"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import main
from repro.netlist import load_bench


def test_generate_and_lock_and_unlock_roundtrip(tmp_path, capsys):
    base = tmp_path / "c1355.bench"
    locked = tmp_path / "locked.bench"
    unlocked = tmp_path / "unlocked.bench"

    assert main(["generate", "c1355", "--scale", "0.1", "-o", str(base)]) == 0
    circuit, key = load_bench(base)
    assert key is None
    assert len(circuit) >= 16

    assert main([
        "lock", str(base), "--scheme", "dmux", "--key-size", "8",
        "--seed", "1", "-o", str(locked),
    ]) == 0
    locked_circuit, stored_key = load_bench(locked)
    assert stored_key is not None and len(stored_key) == 8
    assert len(locked_circuit) > len(circuit)

    assert main(["unlock", str(locked), "-o", str(unlocked)]) == 0
    assert main(["hd", str(base), str(unlocked), "--patterns", "1024"]) == 0
    out = capsys.readouterr().out
    assert "HD = 0.0000%" in out


def test_saam_and_scope_commands(tmp_path, capsys):
    base = tmp_path / "b.bench"
    locked = tmp_path / "l.bench"
    main(["generate", "c1908", "--scale", "0.1", "-o", str(base)])
    main([
        "lock", str(base), "--scheme", "naive-mux", "--key-size", "6",
        "-o", str(locked),
    ])
    assert main(["saam", str(locked)]) == 0
    assert main(["scope", str(locked)]) == 0
    out = capsys.readouterr().out
    assert "SAAM key guess:" in out
    assert "SCOPE key guess:" in out


def test_attack_command_smoke(tmp_path, capsys):
    base = tmp_path / "b.bench"
    locked = tmp_path / "l.bench"
    main(["generate", "c1355", "--scale", "0.12", "-o", str(base)])
    main(["lock", str(base), "--key-size", "6", "-o", str(locked)])
    assert main([
        "attack", str(locked), "--h", "1", "--epochs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "predicted key:" in out
    assert "AC=" in out  # stored key enables scoring


def test_unlock_without_key_fails(tmp_path, capsys):
    base = tmp_path / "b.bench"
    main(["generate", "c17", "-o", str(base)])
    assert main(["unlock", str(base), "-o", str(tmp_path / "u.bench")]) == 2


def test_unknown_benchmark_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["generate", "c9999", "-o", str(tmp_path / "x.bench")])


def test_figures_command_smoke(capsys):
    assert main([
        "figures", "--scale", "smoke", "--figures", "7", "9",
        "--jobs", "0", "--seed", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "Fig. 9" in out
    assert "Fig. 8" not in out  # only the requested figures run
    # The shared runner reports its cache counters.
    assert "runner: cells=" in out


def test_figures_command_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["figures", "--figures", "3"])


def test_attack_command_store_roundtrip(tmp_path, capsys):
    base = tmp_path / "b.bench"
    locked = tmp_path / "l.bench"
    store = tmp_path / "store"
    main(["generate", "c1355", "--scale", "0.12", "-o", str(base)])
    main(["lock", str(base), "--key-size", "6", "-o", str(locked)])
    capsys.readouterr()  # drain the generate/lock chatter
    args = ["attack", str(locked), "--h", "1", "--epochs", "2",
            "--store", str(store)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0  # warm: rematerialized, not retrained
    warm = capsys.readouterr().out
    assert cold.splitlines()[0] == warm.splitlines()[0]  # same predicted key
    from repro.store import ArtifactStore

    assert len(list(ArtifactStore(store).entries())) == 1


def test_figures_command_with_store(tmp_path, capsys):
    store = tmp_path / "store"
    args = ["figures", "--scale", "smoke", "--figures", "7",
            "--jobs", "0", "--store", str(store)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert f"store={store}" in cold
    assert "store: " in cold  # hit/miss/bytes counters are reported
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "locks=0" in warm and "attacks=0" in warm
    assert "+2 store" in warm  # both artifacts rematerialized from disk


def test_cache_command_requires_a_store(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert main(["cache", "stats"]) == 2
    assert "no artifact store" in capsys.readouterr().err


def test_cache_ls_stats_gc_verify(tmp_path, capsys, monkeypatch):
    from repro.store import ArtifactStore

    store_dir = tmp_path / "store"
    store = ArtifactStore(store_dir)
    store.put("locks", "ab" * 32, {"x": 1})
    bad = store.put("attacks", "cd" * 32, {"y": 2})

    assert main(["cache", "--store", str(store_dir), "ls"]) == 0
    out = capsys.readouterr().out
    assert "locks" in out and "attacks" in out and "2 artifact(s)" in out

    # stats honours REPRO_STORE when --store is omitted
    monkeypatch.setenv("REPRO_STORE", str(store_dir))
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "total" in out and "2 artifact(s)" in out

    bad.write_bytes(b"junk")
    assert main(["cache", "--store", str(store_dir), "verify"]) == 1
    out = capsys.readouterr().out
    assert "corrupt:" in out and "1 corrupt" in out
    assert main(["cache", "--store", str(store_dir), "verify", "--delete"]) == 1
    capsys.readouterr()
    assert main(["cache", "--store", str(store_dir), "verify"]) == 0
    capsys.readouterr()

    import os
    import time

    survivor = store.path_for("locks", "ab" * 32)
    stamp = time.time() - 5 * 86400
    os.utime(survivor, (stamp, stamp))
    assert main(["cache", "--store", str(store_dir), "gc",
                 "--keep-days", "1"]) == 0
    out = capsys.readouterr().out
    assert "removed 1 file(s)" in out
    assert not survivor.exists()
