"""Logic-locking schemes: XOR, naive MUX, D-MUX (S1–S4) and symmetric (S5)."""

from repro.locking.common import (
    Locality,
    LockedCircuit,
    MuxInstance,
    Strategy,
    insert_key_mux,
)
from repro.locking.dmux import DMUX_SCHEME, lock_dmux
from repro.locking.keys import (
    KEY_INPUT_PREFIX,
    format_key,
    is_key_input,
    key_input_index,
    key_input_name,
    key_inputs_of,
    parse_key,
)
from repro.locking.naive_mux import NAIVE_MUX_SCHEME, lock_naive_mux
from repro.locking.symmetric import SYMMETRIC_SCHEME, lock_symmetric
from repro.locking.unlock import apply_key
from repro.locking.xor_locking import XOR_SCHEME, lock_xor

__all__ = [
    "Strategy",
    "MuxInstance",
    "Locality",
    "LockedCircuit",
    "insert_key_mux",
    "lock_dmux",
    "lock_symmetric",
    "lock_naive_mux",
    "lock_xor",
    "apply_key",
    "DMUX_SCHEME",
    "SYMMETRIC_SCHEME",
    "NAIVE_MUX_SCHEME",
    "XOR_SCHEME",
    "KEY_INPUT_PREFIX",
    "key_input_name",
    "key_input_index",
    "is_key_input",
    "key_inputs_of",
    "format_key",
    "parse_key",
]
