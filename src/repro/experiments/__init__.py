"""Experiment runners regenerating every figure of the paper.

Figure grids are declarative :class:`~repro.experiments.runner.Cell`
lists executed by the pooled, cache-aware
:class:`~repro.experiments.runner.ExperimentRunner` (``REPRO_JOBS`` /
``repro figures --jobs N``); share one runner across figures to reuse
locked netlists and trained attacks.
"""

from repro.experiments.common import (
    CI_SCALE,
    PAPER_SCALE,
    SCALES,
    SMOKE_SCALE,
    AttackRecord,
    ExperimentScale,
    active_scale,
    attack_benchmark,
    format_records,
    lock_with,
    scale_by_name,
)
from repro.experiments.fig2 import Fig2Row, fig2_cells, format_fig2, run_fig2
from repro.experiments.fig7 import fig7_cells, format_fig7, run_fig7, summarize_fig7
from repro.experiments.fig8 import Fig8Row, fig8_cells, format_fig8, run_fig8
from repro.experiments.fig9 import Fig9Row, fig9_cells, format_fig9, run_fig9
from repro.experiments.fig10 import (
    Fig10Row,
    fig10_cells,
    format_fig10,
    run_fig10,
)
from repro.experiments.leaderboard import (
    ENSEMBLE_ATTACKS,
    LEADERBOARD_ATTACKS,
    LeaderboardRow,
    format_leaderboard,
    leaderboard_fingerprint,
    run_leaderboard,
)
from repro.experiments.runner import (
    AttackJob,
    BaselineCell,
    BaselineJob,
    Cell,
    ExperimentRunner,
    RunnerStats,
    cell_seed_sequence,
    derive_baseline_seed,
    derive_cell_seeds,
    derive_copy_seeds,
    execute_attack_job,
    execute_baseline_job,
    execute_job,
    make_baseline_cell,
    make_cell,
    record_fingerprint,
    resolve_jobs,
)

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "CI_SCALE",
    "PAPER_SCALE",
    "SCALES",
    "active_scale",
    "scale_by_name",
    "AttackRecord",
    "attack_benchmark",
    "lock_with",
    "format_records",
    "AttackJob",
    "BaselineCell",
    "BaselineJob",
    "Cell",
    "ExperimentRunner",
    "RunnerStats",
    "cell_seed_sequence",
    "derive_baseline_seed",
    "derive_cell_seeds",
    "derive_copy_seeds",
    "execute_attack_job",
    "execute_baseline_job",
    "execute_job",
    "make_baseline_cell",
    "make_cell",
    "record_fingerprint",
    "resolve_jobs",
    "run_fig2",
    "fig2_cells",
    "format_fig2",
    "Fig2Row",
    "LEADERBOARD_ATTACKS",
    "ENSEMBLE_ATTACKS",
    "LeaderboardRow",
    "run_leaderboard",
    "format_leaderboard",
    "leaderboard_fingerprint",
    "fig7_cells",
    "run_fig7",
    "format_fig7",
    "summarize_fig7",
    "fig8_cells",
    "run_fig8",
    "format_fig8",
    "Fig8Row",
    "fig9_cells",
    "run_fig9",
    "format_fig9",
    "Fig9Row",
    "fig10_cells",
    "run_fig10",
    "format_fig10",
    "Fig10Row",
]
