"""Chaos-drill bench: what does surviving injected faults cost?

Times a clean serial fig7 smoke-grid run, then runs the ``repro chaos``
drills (default: ``enospc`` + ``worker-crash``) against the same grid.
Every drill must PASS its own gates — at least one fault injected, the
recovery counters showing the machinery engaged, and the resulting
records and rendered table **bit-identical** to the clean run.  The
per-drill wall-clock and its overhead multiple over the clean run land
under the ``bench_chaos`` section of ``BENCH_training.json``.

The overhead is dominated by deliberate drill mechanics (stale-lease
deadlines, reconnect backoff, worker subprocess startup), not by the
fault-injection layer itself: an unarmed ``faults.fire()`` is a
dictionary miss, and the clean pass here runs with the faults package
fully imported.

``REPRO_BENCH_CHAOS_PLANS`` (comma-separated named plans) widens or
narrows the drilled set.

Run standalone::

    python benchmarks/bench_chaos.py

or under pytest::

    pytest benchmarks/bench_chaos.py -s
"""

from __future__ import annotations

import os
import time

from perf_record import update_record
from repro.experiments import SMOKE_SCALE, ExperimentRunner, fig7_cells
from repro.faults.chaos import DRILL_TOPOLOGY, run_chaos

PLANS = [
    name
    for name in os.environ.get(
        "REPRO_BENCH_CHAOS_PLANS", "enospc,worker-crash"
    ).split(",")
    if name
]


def test_chaos_drills_pass_with_bounded_overhead():
    for name in PLANS:
        assert name in DRILL_TOPOLOGY, f"unknown chaos plan {name!r}"

    # The clean baseline every drill is compared against, timed with the
    # faults package armed-but-silent — exactly the production shape.
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    started = time.perf_counter()
    with ExperimentRunner(jobs=0) as runner:
        runner.run(cells)
    clean_s = time.perf_counter() - started
    print(f"bench_chaos: clean serial grid ({len(cells)} cells) {clean_s:.2f}s")

    outcomes = run_chaos(PLANS, scale=SMOKE_SCALE, seed=0)

    drills = {}
    for outcome in outcomes:
        assert outcome.ok, outcome.summary()
        assert outcome.fingerprints_match and outcome.tables_match
        overhead = outcome.seconds / clean_s if clean_s else 0.0
        drills[outcome.plan] = {
            "topology": outcome.topology,
            "seconds": round(outcome.seconds, 2),
            "overhead_x": round(overhead, 2),
            "injected": outcome.total_injected,
            "requeues": outcome.requeues,
            "failed_over": outcome.failed_over,
            "write_retries": outcome.write_retries,
        }
        print(
            f"bench_chaos: {outcome.plan} ({outcome.topology}) "
            f"{outcome.seconds:.2f}s = {overhead:.2f}x clean, "
            f"{outcome.total_injected} injected"
        )

    update_record(
        "bench_chaos",
        {
            "scale": SMOKE_SCALE.name,
            "cells": len(cells),
            "clean_serial_s": round(clean_s, 2),
            "drills": drills,
            "bit_identical": True,
        },
    )


if __name__ == "__main__":
    test_chaos_drills_pass_with_bounded_overhead()
    print("bench_chaos: OK")
