"""Domain artifact payloads: exact round trips and stable content keys."""

import numpy as np
import pytest

from repro.benchgen import load_benchmark
from repro.core import MuxLinkConfig, rescore_key, run_muxlink
from repro.gnn import build_batch
from repro.linkpred import TrainConfig
from repro.locking import lock_dmux
from repro.netlist.bench import parse_bench, write_bench
from repro.store import (
    attack_store_key,
    circuit_digest,
    codec,
    config_token,
    decode_attack_artifact,
    decode_circuit,
    decode_lock_artifact,
    encode_attack_artifact,
    encode_circuit,
    encode_lock_artifact,
    lock_store_key,
)


@pytest.fixture(scope="module")
def locked():
    return lock_dmux(load_benchmark("c1355", scale=0.1), key_size=6, seed=1)


@pytest.fixture(scope="module")
def attack_result(locked):
    config = MuxLinkConfig(h=1, train=TrainConfig(epochs=2, seed=0), seed=0)
    return config, run_muxlink(locked.circuit, config)


# ---------------------------------------------------------------------------
# circuits — gate-order preservation is the load-bearing property
# ---------------------------------------------------------------------------
def test_circuit_roundtrip_preserves_gate_order(locked):
    decoded = decode_circuit(encode_circuit(locked.circuit))
    assert decoded.gate_names == locked.circuit.gate_names
    assert decoded.inputs == locked.circuit.inputs
    assert decoded.outputs == locked.circuit.outputs
    assert write_bench(decoded) == write_bench(locked.circuit)


def test_bench_roundtrip_does_not_preserve_gate_order(locked):
    """Why the store cannot just keep BENCH text: parsing re-resolves
    gates in dependency order, which permutes attack-graph node indices
    for any circuit whose insertion order is not topological (every
    locked netlist: the key MUX is inserted after its load gate)."""
    text = write_bench(locked.circuit)
    reparsed, _ = parse_bench(text, name=locked.circuit.name)
    assert set(reparsed.gate_names) == set(locked.circuit.gate_names)
    assert reparsed.gate_names != locked.circuit.gate_names


def test_decoded_circuit_attacks_bit_identically(locked):
    config = MuxLinkConfig(h=1, train=TrainConfig(epochs=1, seed=0), seed=0)
    original = run_muxlink(locked.circuit, config)
    decoded = run_muxlink(decode_circuit(encode_circuit(locked.circuit)), config)
    assert original.predicted_key == decoded.predicted_key
    assert [
        (s.mux_name, s.key_index, s.load, s.drivers, s.likelihoods)
        for s in original.scored
    ] == [
        (s.mux_name, s.key_index, s.load, s.drivers, s.likelihoods)
        for s in decoded.scored
    ]
    assert original.history.train_loss == decoded.history.train_loss


# ---------------------------------------------------------------------------
# lock artifacts
# ---------------------------------------------------------------------------
def test_lock_artifact_roundtrip(tmp_path, locked):
    path = tmp_path / "lock.npz"
    codec.dump(encode_lock_artifact(locked), path, kind="locks")
    back = decode_lock_artifact(codec.load(path, kind="locks"))
    assert back.key == locked.key
    assert back.scheme == locked.scheme
    assert back.original_name == locked.original_name
    assert back.localities == locked.localities
    assert back.circuit.gate_names == locked.circuit.gate_names
    assert write_bench(back.circuit, key=back.key) == write_bench(
        locked.circuit, key=locked.key
    )


# ---------------------------------------------------------------------------
# attack artifacts
# ---------------------------------------------------------------------------
def test_attack_artifact_roundtrip_is_bit_exact(tmp_path, attack_result):
    config, result = attack_result
    path = tmp_path / "attack.npz"
    codec.dump(encode_attack_artifact(result), path, kind="attacks")
    back = decode_attack_artifact(codec.load(path, kind="attacks"))

    assert back.predicted_key == result.predicted_key
    assert back.n_key_bits == result.n_key_bits
    assert back.runtime_seconds == result.runtime_seconds
    assert back.total_runtime == result.total_runtime
    assert [
        (s.mux_name, s.key_index, s.load, s.drivers, s.likelihoods)
        for s in back.scored
    ] == [
        (s.mux_name, s.key_index, s.load, s.drivers, s.likelihoods)
        for s in result.scored
    ]
    for likelihoods in ((s.likelihoods for s in back.scored),):
        for pair in likelihoods:
            assert isinstance(pair, tuple)
    assert back.history.train_loss == result.history.train_loss
    assert back.history.val_loss == result.history.val_loss
    assert back.history.best_epoch == result.history.best_epoch
    assert back.graph is None  # re-derive from the locked netlist


def test_attack_artifact_rescoring_matches(attack_result):
    config, result = attack_result
    back = decode_attack_artifact(encode_attack_artifact(result))
    for threshold in (0.0, 0.01, 0.5, 1.0):
        assert rescore_key(back, threshold) == rescore_key(result, threshold)


def test_attack_artifact_model_weights_roundtrip(attack_result):
    config, result = attack_result
    back = decode_attack_artifact(encode_attack_artifact(result))
    assert back.model is not None and back.model.k == result.model.k
    for ours, theirs in zip(back.model.state_dict(), result.model.state_dict()):
        np.testing.assert_array_equal(ours, theirs)


def test_rebuilt_model_scores_identically(attack_result, locked):
    from repro.linkpred import (
        build_link_dataset,
        extract_attack_graph,
        sample_links,
    )

    config, result = attack_result
    back = decode_attack_artifact(encode_attack_artifact(result))
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=60, val_fraction=0.2, seed=0)
    dataset = build_link_dataset(graph, sample, h=1)
    batch = build_batch(dataset.validation or dataset.train[:8])
    np.testing.assert_array_equal(
        back.model.predict_proba(batch), result.model.predict_proba(batch)
    )


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------
def test_config_token_normalizes_threshold_and_execution_knobs():
    base = MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5))
    same = [
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5), threshold=0.5),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5), n_workers=8),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5), score_prefetch=0),
        MuxLinkConfig(
            h=2,
            seed=3,
            train=TrainConfig(epochs=5, log_every=7, checkpoint_path="x"),
        ),
    ]
    for config in same:
        assert config_token(config) == config_token(base)
    different = [
        MuxLinkConfig(h=3, seed=3, train=TrainConfig(epochs=5)),
        MuxLinkConfig(h=2, seed=4, train=TrainConfig(epochs=5)),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=6)),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5, seed=1)),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5), use_drnl=False),
        MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5), max_train_links=9),
    ]
    for config in different:
        assert config_token(config) != config_token(base)


def test_config_token_normalizes_train_workers_but_not_shards():
    base = MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5))
    # Worker count is pure execution: results are bit-identical for any
    # value, so it must not fracture the artifact pool.
    workers = MuxLinkConfig(
        h=2, seed=3, train=TrainConfig(epochs=5, n_train_workers=8)
    )
    assert config_token(workers) == config_token(base)
    # The shard count fixes the gradient reduction order — semantic.
    sharded = MuxLinkConfig(
        h=2, seed=3, train=TrainConfig(epochs=5, grad_shards=2)
    )
    assert config_token(sharded) != config_token(base)


def test_config_token_tracks_optimizer_and_kfac_knobs():
    base = MuxLinkConfig(h=2, seed=3, train=TrainConfig(epochs=5))
    kfac = MuxLinkConfig(
        h=2, seed=3, train=TrainConfig(epochs=5, optimizer="kfac")
    )
    assert config_token(kfac) != config_token(base)
    damped = MuxLinkConfig(
        h=2,
        seed=3,
        train=TrainConfig(epochs=5, optimizer="kfac", kfac_damping=1e-2),
    )
    assert config_token(damped) != config_token(kfac)
    # Under Adam the kfac_* knobs are inert — they must not move the token.
    inert = MuxLinkConfig(
        h=2,
        seed=3,
        train=TrainConfig(
            epochs=5, kfac_damping=1e-2, kfac_ema_decay=0.5, kfac_inv_every=3
        ),
    )
    assert config_token(inert) == config_token(base)


def test_config_token_tracks_runtime_dtype():
    import repro.nn as nn

    config = MuxLinkConfig()
    with nn.dtype_scope(np.float64):
        token64 = config_token(config)
    with nn.dtype_scope(np.float32):
        token32 = config_token(config)
    assert token64 != token32


def test_store_keys_are_stable_hex(locked):
    digest = circuit_digest(locked.circuit)
    assert len(digest) == 64 and int(digest, 16) >= 0
    # Cosmetic differences do not move the digest: the design does.
    renamed = locked.circuit.copy(name="some-other-file-stem")
    assert circuit_digest(renamed) == digest
    key = attack_store_key(digest, MuxLinkConfig())
    assert len(key) == 64 and key == attack_store_key(digest, MuxLinkConfig())
    lkey = lock_store_key(digest, "D-MUX", 64, 123)
    assert len(lkey) == 64
    assert lkey != lock_store_key(digest, "D-MUX", 64, 124)
    assert lkey != lock_store_key(digest, "D-MUX", 32, 123)
    assert lkey != lock_store_key(digest, "Symmetric-MUX", 64, 123)
