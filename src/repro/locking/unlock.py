"""Applying a key to a locked netlist (functional unlock)."""

from __future__ import annotations

from repro.locking.keys import key_input_name, parse_key
from repro.netlist import Circuit
from repro.opt import cleanup as cleanup_pass
from repro.opt import propagate_constants

__all__ = ["apply_key"]


def apply_key(circuit: Circuit, key: str, simplify: bool = True) -> Circuit:
    """Hard-code *key* into *circuit* and fold the key logic away.

    Args:
        circuit: a locked netlist whose key inputs follow the
            ``keyinput<i>`` convention.
        key: key string (``0``/``1``; ``x`` bits are left symbolic, i.e.
            their key inputs and MUXes survive).
        simplify: also run structural cleanup (buffer collapse + dead-logic
            removal) so a correct key reproduces the original gate count.

    Returns:
        The unlocked circuit (input list no longer contains assigned key
        inputs).
    """
    assignments = {
        key_input_name(i): bit for i, bit in parse_key(key).items()
    }
    out = propagate_constants(circuit, assignments, name=f"{circuit.name}_unlocked")
    if simplify:
        out = cleanup_pass(out)
    return out
