"""Baseline oracle-less attacks: SAAM, SCOPE, SWEEP, random guess."""

from repro.attacks.baseline import (
    BASELINE_ATTACKS,
    BaselineConfig,
    BaselineReport,
    run_baseline_attack,
)
from repro.attacks.random_guess import random_guess_attack
from repro.attacks.saam import SaamReport, saam_attack
from repro.attacks.scope import ScopeReport, scope_attack
from repro.attacks.sweep import SweepAttack, SweepReport

__all__ = [
    "BASELINE_ATTACKS",
    "BaselineConfig",
    "BaselineReport",
    "run_baseline_attack",
    "saam_attack",
    "SaamReport",
    "scope_attack",
    "ScopeReport",
    "SweepAttack",
    "SweepReport",
    "random_guess_attack",
]
