"""SCOPE — synthesis-based constant propagation attack (unsupervised).

For every key bit, SCOPE hard-codes both values, re-synthesizes, and
compares design features of the two results.  A clear asymmetry indicates
which value simplified away real logic (the wrong one); symmetric results
force a blind guess.  Against D-MUX and symmetric MUX locking the two
branches are structurally symmetric by design, so SCOPE degenerates to coin
flipping — the ≈50 % KPA of paper Fig. 2.

Decision rule (documented simplification of the SCOPE clustering): the key
value whose re-synthesized circuit **retains more logic** is taken as
correct — hard-coding the wrong value of a naive MUX detaches the true
cone, shrinking the design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AttackError
from repro.locking.keys import key_input_index, key_inputs_of
from repro.netlist import Circuit
from repro.opt import cleanup, design_features, propagate_constants

__all__ = ["scope_attack", "ScopeReport"]

#: Feature weights for the asymmetry score: gate count, net count and area
#: dominate (the report columns real SCOPE keys on).
_WEIGHTS_HEAD = np.array([1.0, 1.0, 0.25, 0.5, 0.25])


def _score(delta: np.ndarray) -> float:
    """Scalar asymmetry: positive when value 0 retains more logic."""
    head = delta[: len(_WEIGHTS_HEAD)]
    return float(np.dot(head, _WEIGHTS_HEAD))


@dataclass(frozen=True)
class ScopeReport:
    """Outcome of a SCOPE run.

    Attributes:
        predicted_key: per-bit guesses (``x`` only when ``undecided='x'``).
        scores: per-bit asymmetry scores (0.0 means fully symmetric).
        n_blind: bits decided by coin flip (no structural signal).
    """

    predicted_key: str
    scores: dict[int, float]
    n_blind: int


def scope_attack(
    circuit: Circuit,
    threshold: float = 1e-9,
    undecided: str = "coin",
    seed: int = 0,
) -> ScopeReport:
    """Run SCOPE on a locked netlist.

    Args:
        circuit: locked design with ``keyinput<i>`` key inputs.
        threshold: minimum |score| for a structural decision.
        undecided: ``"coin"`` (flip a seeded coin, mirroring the arbitrary
            decisions synthesis noise produces in the original tool) or
            ``"x"`` (abstain).
        seed: seed for the coin flips.

    Returns:
        A :class:`ScopeReport`.
    """
    if undecided not in ("coin", "x"):
        raise AttackError("undecided must be 'coin' or 'x'")
    key_nets = key_inputs_of(circuit)
    if not key_nets:
        raise AttackError("no key inputs found; is this netlist locked?")
    n_bits = max(key_input_index(k) for k in key_nets) + 1
    rng = np.random.default_rng(seed)

    guesses: dict[int, str] = {}
    scores: dict[int, float] = {}
    n_blind = 0
    for key_net in key_nets:
        bit = key_input_index(key_net)
        features = {}
        for value in (0, 1):
            resynth = cleanup(propagate_constants(circuit, {key_net: value}))
            features[value] = design_features(resynth)
        score = _score(features[0] - features[1])
        scores[bit] = score
        if score > threshold:
            guesses[bit] = "0"  # value 0 keeps more logic -> correct
        elif score < -threshold:
            guesses[bit] = "1"
        elif undecided == "coin":
            guesses[bit] = str(int(rng.integers(2)))
            n_blind += 1
        else:
            guesses[bit] = "x"
            n_blind += 1

    predicted = "".join(guesses.get(i, "x") for i in range(n_bits))
    return ScopeReport(predicted_key=predicted, scores=scores, n_blind=n_blind)
