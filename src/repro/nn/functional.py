"""Neural-net operations beyond basic tensor arithmetic.

These are the pieces the DGCNN needs: 1-D convolution, max-pooling,
dropout, the fused graph-convolution kernel, segment/gather primitives for
per-graph reductions over stacked node matrices, and the softmax
cross-entropy loss.  Each is an autograd node with an exact gradient.

All ops compute in the dtype of their inputs (see the dtype policy in
:mod:`repro.nn.tensor`); scratch buffers can be recycled across training
steps through a :class:`repro.nn.tensor.Workspace`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.curvature import record as _record_curvature
from repro.nn.curvature import tap_active as _tap_active
from repro.nn.tensor import Tensor, Workspace, is_grad_enabled

__all__ = [
    "conv1d",
    "linear",
    "max_pool1d",
    "dropout",
    "graph_conv",
    "gather_stack",
    "sortpool_conv",
    "stack_columns",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "log_softmax",
    "softmax_cross_entropy",
    "softmax",
]


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    stride: int = 1,
    workspace: Workspace | None = None,
) -> Tensor:
    """1-D convolution.

    Args:
        x: input of shape ``(batch, c_in, length)``.
        weight: kernel of shape ``(c_out, c_in, k)``.
        bias: per-channel bias of shape ``(c_out,)``.
        stride: kernel stride.
        workspace: optional buffer pool for the im2col matrix — the
            largest allocation of the op.  The buffer is released back to
            the pool by the backward pass (or immediately when the tape is
            not recording), so one buffer serves every step of a training
            loop.

    Returns:
        Tensor of shape ``(batch, c_out, (length - k) // stride + 1)``.
    """
    batch, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    t_out = (length - k) // stride + 1
    if t_out < 1:
        raise ValueError(
            f"kernel {k} with stride {stride} does not fit length {length}"
        )
    if c_in == 1 and stride == k and x.data.flags.c_contiguous:
        return _conv1d_flat(x, weight, bias, k, t_out)

    # im2col in channel-major layout: (c_in * k, batch * t_out).  One flat
    # GEMM then serves the whole batch — no per-example batched-GEMM loop,
    # and the weight/input gradients are single GEMMs too.
    dtype = x.data.dtype
    f_width = c_in * k
    if workspace is not None:
        cols = workspace.acquire((f_width, batch * t_out), dtype)
    else:
        cols = np.empty((f_width, batch * t_out), dtype=dtype)
    cols4 = cols.reshape(k, c_in, batch, t_out)
    for tap in range(k):
        segment = x.data[:, :, tap : tap + stride * t_out : stride]
        cols4[tap] = segment.transpose(1, 0, 2)
    w2 = weight.data.transpose(0, 2, 1).reshape(c_out, f_width)
    out_f = w2 @ cols  # (c_out, batch * t_out)
    out = np.ascontiguousarray(
        out_f.reshape(c_out, batch, t_out).transpose(1, 0, 2)
    )
    out += bias.data[None, :, None]

    recording = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad or bias.requires_grad
    )
    if not recording:
        if workspace is not None:
            workspace.release(cols)

        def backward(grad: np.ndarray) -> None:  # pragma: no cover - no tape
            pass

        return Tensor._make(out, (x, weight, bias), backward)

    released = False

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, c_out, t_out) -> channel-major (c_out, batch * t_out)
        nonlocal released
        g_f = np.ascontiguousarray(grad.transpose(1, 0, 2)).reshape(c_out, -1)
        if _tap_active():
            # Before the im2col buffer is released: cols is workspace-owned.
            _record_curvature(weight, cols.T, g_f.T, bias)
        if bias.requires_grad:
            bias._accumulate_owned(g_f.sum(axis=1))
        if weight.requires_grad:
            gw2 = g_f @ cols.T
            weight._accumulate_owned(
                gw2.reshape(c_out, k, c_in).transpose(0, 2, 1)
            )
        if x.requires_grad:
            gcols4 = (w2.T @ g_f).reshape(k, c_in, batch, t_out)
            gx = np.zeros_like(x.data)
            for tap in range(k):
                seg = gcols4[tap].transpose(1, 0, 2)
                gx[:, :, tap : tap + stride * t_out : stride] += seg
            x._accumulate_owned(gx)
        if workspace is not None and not released:
            released = True
            workspace.release(cols)

    return Tensor._make(out, (x, weight, bias), backward)


def _conv1d_flat(
    x: Tensor, weight: Tensor, bias: Tensor, k: int, t_out: int
) -> Tensor:
    """Single-channel, non-overlapping convolution as one flat GEMM.

    With ``c_in == 1`` and ``stride == k`` (the DGCNN's first convolution,
    whose kernel spans a whole node's feature row) every output position
    is an independent k-tap dot product, so the op *is* a dense layer:
    ``(batch * t_out, k) @ (k, c_out)``.  No im2col buffer, no batched
    GEMM loop, and both weight and input gradients are single GEMMs too.
    """
    batch = x.shape[0]
    c_out = weight.shape[0]
    length = x.shape[2]
    windows = x.data.reshape(batch, -1)[:, : t_out * k].reshape(-1, k)
    w2 = weight.data.reshape(c_out, k)
    out2 = windows @ w2.T  # (batch * t_out, c_out)
    out2 += bias.data[None, :]
    out = np.ascontiguousarray(
        out2.reshape(batch, t_out, c_out).transpose(0, 2, 1)
    )

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, c_out, t_out) -> flat (batch * t_out, c_out)
        g2 = np.ascontiguousarray(grad.transpose(0, 2, 1)).reshape(-1, c_out)
        if _tap_active():
            _record_curvature(weight, windows, g2, bias)
        if bias.requires_grad:
            bias._accumulate_owned(g2.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate_owned((g2.T @ windows).reshape(c_out, 1, k))
        if x.requires_grad:
            gx_flat = g2 @ w2  # (batch * t_out, k)
            if t_out * k == length:
                gx = gx_flat.reshape(batch, 1, length)
            else:
                gx = np.zeros_like(x.data)
                gx.reshape(batch, -1)[:, : t_out * k] = gx_flat.reshape(
                    batch, -1
                )
            x._accumulate_owned(gx)

    return Tensor._make(out, (x, weight, bias), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused dense layer ``x @ W + b``.

    One tape node instead of two (matmul → add), with arithmetic and
    gradients identical bit for bit to the composed tensor ops: the
    forward is the same two ufunc/GEMM calls, and the backward produces
    ``dW = xᵀ grad``, ``db = grad.sum(axis=0)`` (what ``_unbroadcast``
    reduces the add gradient to for a 1-D bias) and ``dx = grad Wᵀ``.
    Being a single node also gives the curvature tap its dense-layer
    ``(acts, grad_out)`` pair.
    """
    if x.ndim != 2:
        raise ValueError(f"expected (batch, in_features) input, got {x.shape}")
    out = x.data @ weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        if _tap_active():
            _record_curvature(weight, x.data, grad, bias)
        if bias.requires_grad:
            bias._accumulate_owned(grad.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate_owned(x.data.T @ grad)
        if x.requires_grad:
            x._accumulate_owned(grad @ weight.data.T)

    return Tensor._make(out, (x, weight, bias), backward)


def max_pool1d(x: Tensor, size: int, stride: int | None = None) -> Tensor:
    """Max pooling over the last axis of a ``(batch, c, length)`` tensor."""
    stride = stride or size
    batch, channels, length = x.shape
    t_out = (length - size) // stride + 1
    if t_out < 1:
        raise ValueError(f"pool size {size} does not fit length {length}")

    if size == 2 and stride == 2:
        # The DGCNN's pool: a two-way elementwise maximum beats the
        # windows/argmax/take_along_axis machinery by an order of
        # magnitude at these shapes.  argmax breaks ties toward the first
        # tap, matched here by the strict comparison.
        first = x.data[:, :, 0 : 2 * t_out : 2]
        second = x.data[:, :, 1 : 2 * t_out : 2]
        out = np.maximum(first, second)
        arg = second > first
    else:
        windows = np.empty((batch, channels, t_out, size), dtype=x.data.dtype)
        for tap in range(size):
            windows[:, :, :, tap] = x.data[
                :, :, tap : tap + stride * t_out : stride
            ]
        arg = windows.argmax(axis=3)
        out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]

    def backward(grad: np.ndarray) -> None:
        # Always C-ordered (zeros_like would inherit an F-ordered layout,
        # breaking the flat-index scatter below).
        gx = np.zeros(x.data.shape, dtype=x.data.dtype)
        if size == 2 and stride == 2:
            # Two masked stores instead of flat-index arithmetic: each
            # window routes its gradient to whichever tap won the max.
            np.copyto(gx[:, :, 0 : 2 * t_out : 2], grad, where=~arg)
            np.copyto(gx[:, :, 1 : 2 * t_out : 2], grad, where=arg)
        elif stride >= size:
            # Non-overlapping windows (the DGCNN case): every input
            # position feeds at most one window, so the scatter is a
            # direct flat-index assignment — no ufunc.at.
            offsets = (
                np.arange(batch)[:, None, None] * channels
                + np.arange(channels)[None, :, None]
            ) * length
            flat = offsets + np.arange(t_out)[None, None, :] * stride + arg
            gx.reshape(-1)[flat.reshape(-1)] = grad.reshape(-1)
        else:
            b_idx, c_idx, t_idx = np.meshgrid(
                np.arange(batch), np.arange(channels), np.arange(t_out),
                indexing="ij",
            )
            source = t_idx * stride + arg
            np.add.at(gx, (b_idx, c_idx, source), grad)
        x._accumulate_owned(gx)

    return Tensor._make(out, (x,), backward)


def dropout(
    x: Tensor, rate: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``.

    The mask is drawn in float64 (so a given RNG state yields the same
    draw sequence regardless of runtime dtype) and cast to the input's
    dtype before use.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    mask = ((rng.random(x.shape) >= rate) / (1.0 - rate)).astype(
        x.data.dtype, copy=False
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate_owned(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def graph_conv(
    norm_adj,
    h: Tensor,
    weight: Tensor,
    out: np.ndarray | None = None,
    workspace: Workspace | None = None,
    feature_cols: np.ndarray | None = None,
) -> Tensor:
    """Fused DGCNN graph convolution ``tanh( A (H W) )`` (paper Eq. 4).

    One autograd node instead of three (matmul → spmm → tanh), with the
    sparse products running through the block-sparse engine
    (:mod:`repro.nn.sparse`): the operator's CSR/ELL layouts are cached on
    the :class:`~repro.nn.sparse.SparseOp`, so passing a batch's cached
    operator (``GraphBatch.operator``) converts formats once per batch
    instead of once per layer per step, and the backward transpose product
    never materializes ``A^T``.

    Args:
        norm_adj: the normalized operator — a
            :class:`~repro.nn.sparse.SparseOp` (cached forms reused) or
            any scipy sparse matrix (wrapped per call).
        h: ``(N, c_in)`` node features.
        weight: ``(c_in, c_out)`` layer weight.
        out: optional destination for the tanh output — e.g. a column
            slice of a preassembled ``H^{1:L}`` buffer (may be strided).
            When given, the returned tensor's data *is* this view.
        workspace: optional scratch pool; the ``H W`` product, the
            pre-activation and the backward's two scratch matrices then
            live in recycled :meth:`~repro.nn.tensor.Workspace.resident`
            slots, making steady-state steps allocation-free.
        feature_cols: optional ``(N, c)`` one-hot column indices proving
            ``h[i] == sum_j onehot(feature_cols[i, j])`` (the batcher's
            detected node-information structure): the ``H W`` product is
            then ``c`` row gathers of ``W`` instead of a GEMM.  Gradients
            are computed from the dense ``h`` as usual; results differ
            from the GEMM only in floating-point summation order.

    Bit-identical to the unfused scipy composition — the same kernels run
    in the same order under every ``REPRO_SPMM`` backend (the
    ``feature_cols`` shortcut reorders the ``H W`` summation and is opt-in).
    """
    from repro.nn.sparse import as_sparse_op

    op = as_sparse_op(norm_adj)
    n, c_out = h.shape[0], weight.shape[1]
    dtype = np.result_type(h.data.dtype, weight.data.dtype)
    if workspace is not None:
        hw_buf = workspace.resident("graph_conv.hw", (n, c_out), dtype)
        if feature_cols is not None:
            np.take(
                weight.data, feature_cols[:, 0], axis=0, out=hw_buf,
                mode="clip",
            )
            for j in range(1, feature_cols.shape[1]):
                hw_buf += weight.data[feature_cols[:, j]]
            hw = hw_buf
        else:
            hw = np.matmul(h.data, weight.data, out=hw_buf)
        z = op.matmul(
            hw, out=workspace.resident("graph_conv.z", (n, c_out), dtype)
        )
    elif feature_cols is not None:
        hw = weight.data[feature_cols[:, 0]].copy()
        for j in range(1, feature_cols.shape[1]):
            hw += weight.data[feature_cols[:, j]]
        z = op.matmul(hw)
    else:
        z = op.matmul(h.data @ weight.data)
    if out is None:
        # Without a destination the pre-activation is (or must become) a
        # private array; tanh runs in place on it.
        if workspace is not None:
            out_data = np.tanh(z)
        else:
            out_data = np.tanh(z, out=z)
    else:
        out_data = out
        np.tanh(z, out=out_data)

    def backward(grad: np.ndarray) -> None:
        # d tanh: g' = grad * (1 - out^2); then dH = (A^T g') W^T and
        # dW = H^T (A^T g').  One scratch array serves the whole chain.
        if workspace is not None:
            gt = workspace.resident(
                "graph_conv.gt", out_data.shape, out_data.dtype
            )
            np.multiply(out_data, out_data, out=gt)
        else:
            gt = np.multiply(out_data, out_data)
        np.subtract(1.0, gt, out=gt)
        np.multiply(grad, gt, out=gt)
        ga = op.matmul_t(
            gt,
            out=workspace.resident("graph_conv.ga", gt.shape, gt.dtype)
            if workspace is not None
            else None,
        )
        if _tap_active():
            # The layer is linear in W with input H and back-propagated
            # pre-activation gradient A^T g' (= ga): dW = H^T ga, so
            # (H, ga) is exactly the layer's effective curvature pair.
            _record_curvature(weight, h.data, ga)
        if weight.requires_grad:
            weight._accumulate_owned(h.data.T @ ga)
        if h.requires_grad:
            h._accumulate_owned(np.matmul(ga, weight.data.T))

    return Tensor._make(out_data, (h, weight), backward)


def gather_stack(
    tensors: list[Tensor], indices: np.ndarray, buffer: np.ndarray
) -> Tensor:
    """Row-gather several tensors into column blocks of one buffer.

    One autograd node computing ``concat([t[indices] for t in tensors],
    axis=1)`` with ``-1`` indices yielding zero rows — the SortPooling
    gather of the DGCNN, exploiting that gathering a concatenation equals
    concatenating the gathers.  The shared index masks are computed once
    (not per layer), rows are gathered with integer indexing (no strided
    boolean writes) and the result lives in the caller's *buffer*, so the
    ``H^{1:L}`` concatenation never materializes at node size.

    Indices must not repeat (SortPooling guarantees it): the gradient
    scatter is a direct assignment, and each input receives a freshly
    owned gradient array.
    """
    indices = np.asarray(indices, dtype=np.int64)
    valid_rows = np.nonzero(indices >= 0)[0]
    source_rows = indices[valid_rows]
    all_valid = valid_rows.shape[0] == indices.shape[0]
    widths = [t.shape[1] for t in tensors]
    offsets = np.cumsum([0] + widths)
    if buffer.shape != (indices.shape[0], offsets[-1]):
        raise ValueError(
            f"buffer shape {buffer.shape} does not match "
            f"({indices.shape[0]}, {offsets[-1]})"
        )
    safe = indices if all_valid else np.maximum(indices, 0)
    for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
        buffer[:, start:stop] = t.data[safe]
    if not all_valid:
        buffer[indices < 0] = 0.0

    def backward(grad: np.ndarray) -> None:
        rows = grad if all_valid else grad[valid_rows]
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            out = np.zeros_like(t.data)
            out[source_rows] = rows[:, start:stop]
            t._accumulate_owned(out)

    return Tensor._make(buffer, tuple(tensors), backward)


def sortpool_conv(
    tensors: list[Tensor],
    indices: np.ndarray,
    weight: Tensor,
    bias: Tensor,
    k: int,
    workspace: Workspace | None = None,
) -> Tensor:
    """SortPooling gather fused with the node-wide first convolution.

    Equivalent to gathering the per-layer outputs into the pooled
    ``H^{1:L}`` matrix, reshaping to ``(B, 1, k * width)`` and running the
    stride-``width`` convolution — but the concatenation never
    materializes: each layer's gathered block multiplies its own column
    slice of the kernel and the partial products accumulate, so the op
    runs L narrow GEMMs over contiguous arrays instead of strided
    buffer writes plus one wide GEMM.  ``-1`` indices denote padding rows
    (graphs smaller than k): their outputs are exactly ``bias``, and no
    gradient flows through them — identical to the unfused composition up
    to BLAS summation order inside the GEMMs.
    """
    indices = np.asarray(indices, dtype=np.int64)
    rows = indices.shape[0]
    if rows % k:
        raise ValueError(f"{rows} pooled rows do not tile into k={k}")
    n_graphs = rows // k
    c_out = weight.shape[0]
    width = weight.shape[2]
    if weight.shape[1] != 1 or width != sum(t.shape[1] for t in tensors):
        raise ValueError(
            f"kernel {weight.shape} does not span layer widths "
            f"{[t.shape[1] for t in tensors]}"
        )
    valid_rows = np.nonzero(indices >= 0)[0]
    all_valid = valid_rows.shape[0] == rows
    source_rows = indices[valid_rows]
    safe = indices if all_valid else np.maximum(indices, 0)
    invalid_rows = None if all_valid else np.nonzero(indices < 0)[0]

    w2 = weight.data.reshape(c_out, width)
    dtype = np.result_type(tensors[0].data.dtype, w2.dtype)
    if workspace is not None:
        acc = workspace.resident("sortpool_conv.acc", (rows, c_out), dtype)
        part = workspace.resident("sortpool_conv.part", (rows, c_out), dtype)
    else:
        acc = np.empty((rows, c_out), dtype=dtype)
        part = np.empty((rows, c_out), dtype=dtype)
    # Contiguous per-layer kernel blocks: BLAS consumes them (and their
    # transposes) directly, where strided column slices of w2 would force
    # internal copies on every GEMM.
    kernel_blocks: list[np.ndarray] = []
    column = 0
    for t in tensors:
        c = t.shape[1]
        kernel_blocks.append(np.ascontiguousarray(w2[:, column : column + c]))
        column += c
    gathered: list[np.ndarray] = []
    for i, t in enumerate(tensors):
        c = t.shape[1]
        if workspace is not None:
            # mode="clip" skips per-element bounds checks (safe is already
            # clipped) — measurably faster than the default "raise" path.
            block = np.take(
                t.data, safe, axis=0, mode="clip",
                out=workspace.resident(f"sortpool_conv.g{i}", (rows, c), dtype),
            )
        else:
            block = t.data[safe]
        if invalid_rows is not None:
            # Zero padding rows so backward weight grads stay exact.
            block[invalid_rows] = 0.0
        gathered.append(block)
        if i == 0:
            np.matmul(block, kernel_blocks[i].T, out=acc)
        else:
            np.matmul(block, kernel_blocks[i].T, out=part)
            acc += part
    acc += bias.data[None, :]
    out = np.ascontiguousarray(acc.reshape(n_graphs, k, c_out).transpose(0, 2, 1))

    def backward(grad: np.ndarray) -> None:
        # grad: (B, c_out, k) -> row-major (B * k, c_out)
        g2 = np.ascontiguousarray(grad.transpose(0, 2, 1)).reshape(rows, c_out)
        if _tap_active():
            # The pooled H^{1:L} matrix the fusion avoids is the layer's
            # input; assemble it only on K-FAC runs.
            _record_curvature(weight, np.hstack(gathered), g2, bias)
        if bias.requires_grad:
            bias._accumulate_owned(g2.sum(axis=0))
        if weight.requires_grad:
            gw2 = np.empty((c_out, width), dtype=g2.dtype)
            col = 0
            for block in gathered:
                c = block.shape[1]
                gw2[:, col : col + c] = g2.T @ block
                col += c
            weight._accumulate_owned(gw2.reshape(c_out, 1, width))
        for t, block, kernel_block in zip(tensors, gathered, kernel_blocks):
            if t.requires_grad:
                gp = g2 @ kernel_block  # (rows, c)
                scattered = np.zeros_like(t.data)
                if all_valid:
                    scattered[source_rows] = gp
                else:
                    scattered[source_rows] = gp[valid_rows]
                t._accumulate_owned(scattered)

    return Tensor._make(out, tuple(tensors) + (weight, bias), backward)


def stack_columns(tensors: list[Tensor], data: np.ndarray) -> Tensor:
    """Wrap a preassembled column-stacked buffer as an axis-1 concat node.

    *data* is a ``(N, sum(widths))`` buffer whose column blocks were
    written in place by the producers of *tensors* (each tensor's data is
    a view into it), so the forward pass is free — no
    :func:`repro.nn.tensor.concat` copy.  The gradient splits back to the
    inputs exactly like ``concat``'s.
    """
    sizes = [t.shape[1] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    if data.shape[1] != offsets[-1]:
        raise ValueError(
            f"buffer has {data.shape[1]} columns, tensors cover {offsets[-1]}"
        )

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            t._accumulate(grad[:, start:stop])

    return Tensor._make(data, tuple(tensors), backward)


def gather_rows(x: Tensor, indices: np.ndarray, unique: bool = False) -> Tensor:
    """Row gather with ``-1`` → zero-row padding (see ``Tensor.gather_rows``)."""
    return x.gather_rows(indices, unique=unique)


def _check_segment_args(
    x: Tensor, segment_ids: np.ndarray, n_segments: int
) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape != (x.shape[0],):
        raise ValueError(
            f"segment_ids shape {segment_ids.shape} does not match "
            f"{x.shape[0]} rows"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= n_segments
    ):
        raise ValueError("segment id out of range")
    return segment_ids


def segment_sum(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Sum rows of *x* into ``n_segments`` buckets given per-row ids.

    Gradient: each input row receives its segment's gradient.
    """
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    data = np.zeros((n_segments,) + x.shape[1:], dtype=x.data.dtype)
    np.add.at(data, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[segment_ids])

    return Tensor._make(data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zero rows."""
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    counts = np.bincount(segment_ids, minlength=n_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    data = np.zeros((n_segments,) + x.shape[1:], dtype=x.data.dtype)
    np.add.at(data, segment_ids, x.data)
    data /= safe.reshape((-1,) + (1,) * (x.ndim - 1))

    def backward(grad: np.ndarray) -> None:
        scale = (1.0 / safe[segment_ids]).reshape((-1,) + (1,) * (x.ndim - 1))
        x._accumulate(grad[segment_ids] * scale)

    return Tensor._make(data, (x,), backward)


def segment_max(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Per-segment maximum of rows; empty segments yield zero rows.

    Gradient routes to every row attaining its segment's maximum (ties
    each receive the full gradient, matching the summed-subgradient
    convention of ``Tensor.relu``).
    """
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    data = np.full(
        (n_segments,) + x.shape[1:], -np.inf, dtype=x.data.dtype
    )
    np.maximum.at(data, segment_ids, x.data)
    empty = np.bincount(segment_ids, minlength=n_segments) == 0
    if empty.any():
        data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        mask = x.data == data[segment_ids]
        x._accumulate(grad[segment_ids] * mask)

    return Tensor._make(data, (x,), backward)


def _log_softmax_data(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Numerically stable log-softmax over the last axis."""
    data = _log_softmax_data(x.data)
    probs = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - probs * grad.sum(axis=-1, keepdims=True))

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Softmax over the last axis (via exp of log-softmax for stability)."""
    return log_softmax(x).exp()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(batch, classes)`` logits and int labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected (batch, classes) logits and (batch,) labels, got "
            f"{logits.shape} and {labels.shape}"
        )
    log_probs = _log_softmax_data(logits.data)
    batch = logits.shape[0]
    loss = -log_probs[np.arange(batch), labels].mean()
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(batch), labels] -= 1.0
        logits._accumulate(grad * g / batch)

    return Tensor._make(np.asarray(loss), (logits,), backward)
