"""One retry/backoff policy for every recovery path.

Before this module, each backend carried its own constants: the socket
worker hardcoded a 30 s connect timeout and a hand-rolled ``backoff * 2``
loop, the spool bus counted attempts against
``DEFAULT_MAX_ATTEMPTS``, and the artifact store retried nothing at all.
:class:`RetryPolicy` is the single source of truth they now share —
attempt caps, exponential backoff, per-operation timeouts — so "how hard
do we try" is one knob instead of five.

Jitter is **deterministic**: the fraction added to each delay is derived
from ``sha256(seed, attempt)``, not from a live RNG, so two runs of the
same drill back off on the same schedule and the chaos parity gates can
hold wall-clock-free invariants.  (Determinism matters here; the usual
thundering-herd argument for random jitter does not, because a repro
fleet is a handful of workers, not a million clients.)
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace

__all__ = [
    "RETRY_ATTEMPTS_ENV",
    "RETRY_BASE_DELAY_ENV",
    "RETRY_CONNECT_TIMEOUT_ENV",
    "RETRY_MAX_DELAY_ENV",
    "RETRY_READ_TIMEOUT_ENV",
    "RetryPolicy",
]

RETRY_ATTEMPTS_ENV = "REPRO_RETRY_ATTEMPTS"
RETRY_BASE_DELAY_ENV = "REPRO_RETRY_BASE_DELAY"
RETRY_MAX_DELAY_ENV = "REPRO_RETRY_MAX_DELAY"
RETRY_CONNECT_TIMEOUT_ENV = "REPRO_RETRY_CONNECT_TIMEOUT"
RETRY_READ_TIMEOUT_ENV = "REPRO_RETRY_READ_TIMEOUT"


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt caps, backoff schedule and socket timeouts, in one place.

    Attributes:
        max_attempts: total tries of an operation (and the bus requeue
            budget — attempt N of a job that already failed/expired
            ``N >= max_attempts`` times is quarantined).
        base_delay: delay before the first retry, seconds.
        multiplier: backoff growth factor per retry.
        max_delay: backoff ceiling, seconds.
        jitter: max deterministic jitter as a fraction of the delay
            (0.25 = up to +25 %).
        connect_timeout: socket ``connect()`` deadline, seconds.
        read_timeout: blocking socket read deadline, seconds — generous
            by default because the peer may legitimately be training a
            GNN between frames.
        seed: jitter stream selector (two policies with different seeds
            back off on different, but individually fixed, schedules).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    connect_timeout: float = 10.0
    read_timeout: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """Policy from ``REPRO_RETRY_*`` knobs; explicit *overrides* win."""
        env: dict = {}
        raw = os.environ.get(RETRY_ATTEMPTS_ENV, "").strip()
        if raw:
            env["max_attempts"] = int(raw)
        for field_name, env_name in (
            ("base_delay", RETRY_BASE_DELAY_ENV),
            ("max_delay", RETRY_MAX_DELAY_ENV),
            ("connect_timeout", RETRY_CONNECT_TIMEOUT_ENV),
            ("read_timeout", RETRY_READ_TIMEOUT_ENV),
        ):
            raw = os.environ.get(env_name, "").strip()
            if raw:
                env[field_name] = float(raw)
        env.update(overrides)
        return cls(**env)

    def with_attempts(self, max_attempts: int | None) -> "RetryPolicy":
        """This policy with a different attempt budget (``None`` = keep)."""
        if max_attempts is None or max_attempts == self.max_attempts:
            return self
        return replace(self, max_attempts=int(max_attempts))

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based), jitter included."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if not self.jitter or not base:
            return base
        digest = hashlib.sha256(
            f"{self.seed}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter * fraction)

    def sleep(self, attempt: int) -> float:
        """Sleep the attempt's backoff; returns the seconds slept."""
        seconds = self.delay(attempt)
        if seconds:
            time.sleep(seconds)
        return seconds

    def call(
        self,
        fn,
        *,
        retry_on: tuple = (OSError,),
        describe: str = "operation",
        on_retry=None,
    ):
        """Run ``fn()`` with up to ``max_attempts`` tries.

        *retry_on* names the recoverable exception types; anything else
        propagates immediately.  *on_retry(attempt, exc, delay)* is
        called before each backoff sleep (the store counts retries and
        warns through it).  The final failure re-raises the last
        recoverable exception unchanged.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                seconds = self.delay(attempt)
                if on_retry is not None:
                    on_retry(attempt, exc, seconds)
                if seconds:
                    time.sleep(seconds)
        raise AssertionError(f"unreachable: {describe}")  # pragma: no cover
