"""Bit-parity across bus backends: local == spool == socket.

The acceptance contract of the job bus: ``repro figures --figures
7 8 9 10 --scale smoke`` produces byte-identical figure tables whether
the attack jobs execute serially in the coordinator (``--bus local``),
in two independent ``repro worker`` processes draining a spool directory
(``--bus spool``), or in two workers connected over TCP
(``--bus socket``).  Wall-clock columns are masked — a distributed run
measures its own runtimes — but every computed value must match.
"""

import pathlib
import re
import socket as socketlib
import subprocess
import sys

import repro
from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    fig7_cells,
    record_fingerprint,
)

_SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parents[1])
_FIGURES = ["figures", "--figures", "7", "8", "9", "10", "--scale", "smoke"]
_ENV = {"PATH": "/usr/bin:/bin", "PYTHONPATH": _SRC_ROOT, "PYTHONHASHSEED": "0"}


def _figures_cli(extra_args: list[str]) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *_FIGURES, *extra_args],
        capture_output=True,
        text=True,
        env=_ENV,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def _start_worker(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--poll",
            "0.1",
            "--idle-timeout",
            "300",
            *args,
        ],
        env=_ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _tables(stdout: str) -> str:
    """Figure tables only, wall-clock columns masked."""
    lines = [
        line
        for line in stdout.splitlines()
        if line.strip()
        and not line.startswith(
            ("runner:", "store:", "store=", "scale=", "bus=", "bus[")
        )
    ]
    return "\n".join(re.sub(r"\d+\.\d$", "<sec>", line) for line in lines)


def _free_port() -> int:
    with socketlib.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_figure_tables_bit_identical_across_buses(tmp_path):
    local = _figures_cli(["--store", str(tmp_path / "store-local")])
    reference = _tables(local)
    assert "AC=" in local or reference  # sanity: tables materialized

    # --- spool: two real worker processes draining one directory -------
    spool_dir = str(tmp_path / "spool")
    spool_store = str(tmp_path / "store-spool")
    workers = [
        _start_worker(["--bus-dir", spool_dir, "--store", spool_store])
        for _ in range(2)
    ]
    try:
        spool = _figures_cli(
            [
                "--store",
                spool_store,
                "--bus",
                "spool",
                "--bus-dir",
                spool_dir,
            ]
        )
    finally:
        for worker in workers:
            worker.terminate()
            worker.wait(timeout=30)
    assert _tables(spool) == reference
    assert "bus[spool]" in spool

    # --- socket: two workers over TCP, no shared spool ------------------
    addr = f"127.0.0.1:{_free_port()}"
    workers = [_start_worker(["--bus-addr", addr]) for _ in range(2)]
    try:
        sock = _figures_cli(
            [
                "--store",
                str(tmp_path / "store-socket"),
                "--bus",
                "socket",
                "--bus-addr",
                addr,
            ]
        )
    finally:
        for worker in workers:
            worker.terminate()
            worker.wait(timeout=30)
    assert _tables(sock) == reference
    assert "bus[socket]" in sock


def test_warm_store_yields_zero_releases(tmp_path):
    """A warm spool-bus coordinator never enqueues: the runner's store
    dedupe runs *before* the bus, so nothing is leased, no workers are
    needed, and the figures come straight from the store."""
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    store = tmp_path / "store"
    cold = ExperimentRunner(jobs=0, store=store)
    reference = [record_fingerprint(r) for r in cold.run(cells)]
    cold.close()

    warm = ExperimentRunner(
        store=store, bus="spool", bus_dir=tmp_path / "spool"
    )
    records = warm.run(cells)
    assert [record_fingerprint(r) for r in records] == reference
    assert warm.stats.attacks_computed == 0
    assert warm.bus.stats.submitted == 0  # zero leases ever created
    assert warm.bus.stats.requeues == 0
    assert warm.bus.spool.pending_keys() == []
    assert warm.bus.spool.leased_keys() == []
    warm.close()


def _leaderboard_cli(extra_args: list[str]) -> str:
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "leaderboard",
            "--scale",
            "smoke",
            "--ensemble",
            *extra_args,
        ],
        capture_output=True,
        text=True,
        env=_ENV,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_leaderboard_bit_identical_across_spool_bus(tmp_path):
    """PR 8 acceptance: a cold `repro leaderboard --store D` over the
    spool bus with two workers is bit-identical to a serial in-memory
    run, and a warm rerun in a fresh process performs zero lock, attack
    or baseline jobs — the mixed MuxLink+baseline grid fans out and
    adopts exactly like a MuxLink-only one."""
    serial = _leaderboard_cli([])
    reference = _tables(serial)
    assert "MuxLink+SCOPE" in serial  # the ensemble rows materialized

    spool_dir = str(tmp_path / "spool")
    store = str(tmp_path / "store")
    workers = [
        _start_worker(["--bus-dir", spool_dir, "--store", store])
        for _ in range(2)
    ]
    try:
        spool = _leaderboard_cli(
            ["--store", store, "--bus", "spool", "--bus-dir", spool_dir]
        )
    finally:
        for worker in workers:
            worker.terminate()
            worker.wait(timeout=30)
    assert _tables(spool) == reference
    assert "bus[spool]" in spool

    warm = _leaderboard_cli(["--store", store])
    assert _tables(warm) == reference
    assert "locks=0" in warm
    assert "attacks=0" in warm
    assert "baselines=0" in warm
