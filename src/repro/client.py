"""Client side of attack-as-a-service: talk to a ``repro serve`` process.

:class:`ServeClient` computes the **same content key the runner would**
(:func:`~repro.store.artifacts.circuit_digest` of the locked netlist +
the normalized config token) and submits the same
:func:`~repro.bus.protocol.encode_job` payload — so a served prediction
is bit-identical to ``repro attack`` by construction, a key the server
already holds returns without training, and an identical request in
flight coalesces.

Typical use (see ``examples/serve_client.py``)::

    from repro.client import ServeClient

    client = ServeClient("127.0.0.1:7764")
    result = client.attack(locked.circuit, config)   # MuxLinkResult
    key = client.predict_key(locked.circuit, config) # just the key bits

Module-level :func:`submit` / :func:`result` / :func:`predict_key`
helpers wrap a one-shot client for scripts.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.bus.protocol import RetryPolicy, encode_job
from repro.serve.server import ServeError
from repro.store.artifacts import (
    attack_store_key,
    circuit_digest,
    decode_attack_artifact,
    decode_baseline_artifact,
    encode_circuit,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core import MuxLinkConfig, MuxLinkResult

__all__ = ["ServeClient", "predict_key", "result", "submit"]

#: ``result`` frame kind → artifact decoder.
_DECODERS = {
    "attacks": decode_attack_artifact,
    "baselines": decode_baseline_artifact,
}


class ServeClient:
    """One persistent connection to a ``repro serve`` endpoint.

    Thread-safe (one request/reply exchange at a time); transient socket
    failures — including the server's injected ``serve.accept_drop`` —
    reconnect and retry on the shared
    :class:`~repro.faults.RetryPolicy` backoff.
    """

    def __init__(
        self, address: str, retry: RetryPolicy | None = None
    ) -> None:
        from repro.bus.socketbus import parse_address

        self.host, self.port = parse_address(address)
        self.address = f"{self.host}:{self.port}"
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()

    # -- wire ----------------------------------------------------------------
    def _ensure(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.retry.connect_timeout
            )
            sock.settimeout(self.retry.read_timeout)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _exchange(
        self,
        payload: dict,
        expect: tuple[str, ...],
        expect_key: str | None = None,
    ) -> dict:
        """Send one frame, read frames until an expected op arrives.

        *expect_key* additionally matches the reply's ``key`` field —
        a retried ``wait`` can leave duplicate/stale result frames in
        the stream, and they must never satisfy a later exchange.
        """
        from repro.bus.socketbus import recv_message, send_message

        def _attempt() -> dict:
            with self._lock:
                try:
                    sock = self._ensure()
                    send_message(sock, payload)
                    while True:
                        reply = recv_message(sock)
                        if reply is None:
                            self._drop()
                            raise OSError("serve connection closed")
                        if reply.get("op") in expect and (
                            expect_key is None
                            or str(reply.get("key", "")) == expect_key
                        ):
                            return reply
                        # e.g. an unsolicited result frame for an
                        # earlier fire-and-forget submit: ignore.
                except OSError:
                    self._drop()
                    raise

        return self.retry.call(
            _attempt,
            retry_on=(OSError,),
            describe=f"serve {payload.get('op')}",
        )

    # -- request construction ------------------------------------------------
    @staticmethod
    def job_for(circuit, config: "MuxLinkConfig"):
        """The exact :class:`AttackJob` the runner would build."""
        from repro.experiments.runner import AttackJob

        key = attack_store_key(circuit_digest(circuit), config)
        return AttackJob(
            store_key=key, circuit=encode_circuit(circuit), config=config
        )

    @staticmethod
    def predict_store_key(circuit, config: "MuxLinkConfig") -> str:
        """The content address a submit of (circuit, config) lands under."""
        return attack_store_key(circuit_digest(circuit), config)

    # -- protocol ------------------------------------------------------------
    def submit_job(self, job, wait: bool = False) -> dict:
        """Low-level submit of an encoded-job carrier; returns accept frame.

        With ``wait=True`` the server follows the accept frame with the
        result frame once available; collect it with :meth:`result`.
        """
        reply = self._exchange(
            {
                "op": "submit",
                "key": job.store_key,
                "job": encode_job(job),
                "wait": wait,
            },
            ("accepted",),
            expect_key=job.store_key,
        )
        return reply

    def submit(
        self, circuit, config: "MuxLinkConfig", wait: bool = False
    ) -> tuple[str, str]:
        """Submit an attack request; returns ``(store_key, status)``.

        *status* is ``hit`` (artifact already warm), ``coalesced``
        (identical request already training) or ``queued``.
        """
        job = self.job_for(circuit, config)
        reply = self.submit_job(job, wait=wait)
        return job.store_key, str(reply.get("status", ""))

    def result(
        self, key: str, kind: str = "attacks", timeout: float | None = None
    ) -> Any:
        """Block until *key*'s artifact exists; return the decoded object.

        Issues a ``wait`` op (idempotent — safe after a ``submit`` with
        or without ``wait=True``); *timeout* bounds the total wait, on
        top of the per-read socket timeout.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while True:
            try:
                reply = self._exchange(
                    {"op": "wait", "key": key, "kind": kind},
                    ("result",),
                    expect_key=key,
                )
            except OSError:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServeError(
                        f"no result for {key[:12]}… within {timeout:.0f}s"
                    )
                continue
            if not reply.get("ok"):
                raise ServeError(
                    f"serve request {key[:12]}… failed:\n"
                    f"{reply.get('error')}"
                )
            payload = reply["result"]
            decoder = _DECODERS.get(str(reply.get("kind", kind)))
            return decoder(payload) if decoder else payload

    def attack(self, circuit, config: "MuxLinkConfig") -> "MuxLinkResult":
        """Submit + wait: the served equivalent of ``run_muxlink``."""
        key, _ = self.submit(circuit, config, wait=False)
        return self.result(key, kind="attacks")

    def predict_key(self, circuit, config: "MuxLinkConfig") -> str:
        """The predicted key bits at ``config.threshold``.

        The content key normalizes the threshold out (a stored artifact
        rescores post-hoc), so the prediction is recomputed from the
        served likelihoods at the *requested* threshold — exactly what
        the runner does for threshold-sweep cells.
        """
        from repro.core.muxlink import rescore_key

        return rescore_key(self.attack(circuit, config), config.threshold)

    def stats(self) -> dict:
        """The server's :class:`~repro.serve.server.ServeStats` counters."""
        return self._exchange({"op": "stats"}, ("stats",))["stats"]

    def ping(self) -> bool:
        return self._exchange({"op": "ping"}, ("pong",)).get("op") == "pong"

    def shutdown(self) -> None:
        """Ask the server to exit its loop (used by benches and CI)."""
        try:
            self._exchange({"op": "shutdown"}, ("bye",))
        except OSError:  # pragma: no cover - server died before replying
            pass
        self.close()


# ---------------------------------------------------------------------------
# One-shot conveniences
# ---------------------------------------------------------------------------
def submit(address: str, circuit, config) -> tuple[str, str]:
    """Fire-and-forget submit; returns ``(store_key, status)``."""
    client = ServeClient(address)
    try:
        return client.submit(circuit, config)
    finally:
        client.close()


def result(address: str, key: str, kind: str = "attacks", timeout=None):
    """Fetch (blocking) the decoded artifact for a submitted key."""
    client = ServeClient(address)
    try:
        return client.result(key, kind=kind, timeout=timeout)
    finally:
        client.close()


def predict_key(address: str, circuit, config) -> str:
    """Submit + wait + rescore: the one-call served key prediction."""
    client = ServeClient(address)
    try:
        return client.predict_key(circuit, config)
    finally:
        client.close()
