"""Pluggable job bus: how pending attack jobs reach their workers.

See :mod:`repro.bus.protocol` for the seam contract, and the three
backends: :class:`~repro.bus.local.LocalBus` (in-process / pool),
:class:`~repro.bus.spool.SpoolBus` (shared spool directory + N
``repro worker`` processes) and :class:`~repro.bus.socketbus.SocketBus`
(stdlib TCP queue).
"""

from repro.bus.local import LocalBus
from repro.bus.protocol import (
    BLAS_THREADS_ENV,
    BUS_ADDR_ENV,
    BUS_DIR_ENV,
    BUS_ENV,
    BUS_JOB_KIND,
    BUS_LEASE_BATCH_ENV,
    BUS_LIVENESS_ENV,
    BUS_MESSAGE_KIND,
    BUS_QUARANTINE_KIND,
    DEFAULT_LEASE_BATCH,
    DEFAULT_LIVENESS,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_PIPELINE,
    DEFAULT_POLL,
    DEFAULT_STALE_AFTER,
    DEFAULT_WORKER_BLAS_THREADS,
    JOB_ARTIFACT_KINDS,
    SERVE_ADDR_ENV,
    BusError,
    BusStats,
    JobBus,
    QuarantinedJob,
    RetryPolicy,
    decode_job,
    encode_job,
    job_artifact_kind,
    resolve_bus,
)
from repro.bus.socketbus import SocketBus, parse_address, serve_spool
from repro.bus.spool import SpoolBus, SpoolDir
from repro.bus.threads import limit_blas_threads
from repro.bus.worker import WorkerStats, run_worker

__all__ = [
    "BLAS_THREADS_ENV",
    "BUS_ADDR_ENV",
    "BUS_DIR_ENV",
    "BUS_ENV",
    "BUS_JOB_KIND",
    "BUS_LEASE_BATCH_ENV",
    "BUS_LIVENESS_ENV",
    "BUS_MESSAGE_KIND",
    "BUS_QUARANTINE_KIND",
    "JOB_ARTIFACT_KINDS",
    "SERVE_ADDR_ENV",
    "BusError",
    "job_artifact_kind",
    "BusStats",
    "DEFAULT_LEASE_BATCH",
    "DEFAULT_LIVENESS",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_PIPELINE",
    "DEFAULT_POLL",
    "DEFAULT_STALE_AFTER",
    "DEFAULT_WORKER_BLAS_THREADS",
    "JobBus",
    "LocalBus",
    "QuarantinedJob",
    "RetryPolicy",
    "SocketBus",
    "SpoolBus",
    "SpoolDir",
    "WorkerStats",
    "decode_job",
    "encode_job",
    "limit_blas_threads",
    "parse_address",
    "resolve_bus",
    "run_worker",
    "serve_spool",
]
