"""Conventional XOR/XNOR logic locking (paper Fig. 1 ②).

Included as the classic baseline whose *key leakage* motivated
learning-resilient locking: the inserted gate type (XOR vs XNOR) maps
directly onto the key-bit value unless re-synthesis hides it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LockingError
from repro.locking.common import LockedCircuit
from repro.locking.keys import format_key, key_input_name
from repro.netlist import Circuit, Gate, GateType

__all__ = ["lock_xor", "XOR_SCHEME"]

XOR_SCHEME = "XOR"


def lock_xor(
    circuit: Circuit,
    key_size: int,
    seed: int = 0,
    name: str | None = None,
) -> LockedCircuit:
    """Insert *key_size* XOR/XNOR key gates on random wires.

    A key bit of 0 inserts ``XOR(keyinput, wire)``, a key bit of 1 inserts
    ``XNOR(keyinput, wire)``; both are transparent under the correct key.
    Every load of the chosen wire (gates and primary outputs) is moved to
    the key-gate output.

    Raises:
        LockingError: if the circuit has fewer lockable wires than key bits.
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    rng = np.random.default_rng(seed)
    locked = circuit.copy(name or f"{circuit.name}_xor_k{key_size}")

    key_bits: dict[int, int] = {}
    lockable = [
        n
        for n in locked.gate_names
        if locked.gate(n).gate_type is not GateType.MUX
    ]
    if len(lockable) < key_size:
        raise LockingError(
            f"{circuit.name}: only {len(lockable)} lockable wires for "
            f"key size {key_size}"
        )
    chosen = rng.choice(len(lockable), size=key_size, replace=False)
    for bit, idx in enumerate(sorted(int(i) for i in chosen)):
        wire = lockable[idx]
        value = int(rng.integers(2))
        key_net = key_input_name(bit)
        locked.add_input(key_net)
        gate_type = GateType.XNOR if value else GateType.XOR
        # The key gate takes over the locked wire's name so the circuit
        # interface (PO names) is preserved; the original driver moves to
        # an `_enc` net, mirroring how locking tools rename nets.
        enc = locked.fresh_name(f"{wire}_enc")
        locked.rename_gate(wire, enc)
        locked.add_gate(Gate(wire, gate_type, (key_net, enc)))
        for load in list(locked.fanout(enc)):
            if load != wire:
                locked.rewire_input(load, enc, wire)
        locked.redirect_output(enc, wire)
        key_bits[bit] = value

    locked.validate()
    return LockedCircuit(
        circuit=locked,
        key=format_key(key_bits, key_size),
        localities=[],
        scheme=XOR_SCHEME,
        original_name=circuit.name,
    )
