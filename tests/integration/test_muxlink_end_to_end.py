"""End-to-end MuxLink integration tests (CI-scale: small circuits/epochs)."""

import pytest

from repro import (
    MuxLinkConfig,
    TrainConfig,
    hamming_with_x,
    lock_dmux,
    lock_symmetric,
    random_netlist,
    rescore_key,
    run_muxlink,
    score_key,
)

CI_CONFIG = MuxLinkConfig(
    h=2, train=TrainConfig(epochs=10, learning_rate=1e-3, seed=0), seed=0
)


@pytest.fixture(scope="module")
def dmux_attack():
    base = random_netlist("itest", 10, 5, 150, seed=42)
    locked = lock_dmux(base, key_size=12, seed=42)
    result = run_muxlink(locked.circuit, CI_CONFIG)
    return base, locked, result


def test_attack_beats_random_guessing(dmux_attack):
    _, locked, result = dmux_attack
    metrics = score_key(result.predicted_key, locked.key)
    assert metrics.n_total == 12
    # Even a lightly-trained model must beat coin flipping on average;
    # allow slack for CI-scale training.
    assert metrics.kpa > 0.5


def test_result_structure(dmux_attack):
    _, locked, result = dmux_attack
    assert result.n_key_bits == 12
    assert len(result.predicted_key) == 12
    assert set(result.predicted_key) <= set("01x")
    assert len(result.scored) == len(locked.mux_instances())
    assert set(result.runtime_seconds) == {
        "sampling", "training", "testing", "post_processing",
    }
    assert result.total_runtime > 0


def test_rescore_matches_threshold_semantics(dmux_attack):
    _, _, result = dmux_attack
    strict = rescore_key(result, threshold=1.0)
    loose = rescore_key(result, threshold=0.0)
    # Stricter thresholds only add X bits.
    assert strict.count("x") >= loose.count("x")
    assert rescore_key(result, result and 0.01) == rescore_key(result, 0.01)


def test_precision_monotone_in_threshold(dmux_attack):
    _, locked, result = dmux_attack
    precisions = []
    for th in (0.0, 0.2, 0.5, 0.9):
        metrics = score_key(rescore_key(result, th), locked.key)
        precisions.append(metrics.precision)
    assert precisions == sorted(precisions)
    # th=1 forces full abstention => precision 1.
    full = score_key(rescore_key(result, 1.0), locked.key)
    assert full.precision == 1.0


def test_recovered_design_hd(dmux_attack):
    base, locked, result = dmux_attack
    hd = hamming_with_x(
        base, locked.circuit, result.predicted_key,
        n_patterns=1024, max_assignments=8,
    )
    # The attacker's goal is HD -> 0; even CI-scale must stay below coin-flip.
    assert hd < 0.5


def test_symmetric_scheme_end_to_end():
    base = random_netlist("itest2", 10, 5, 150, seed=44)
    locked = lock_symmetric(base, key_size=12, seed=44)
    result = run_muxlink(locked.circuit, CI_CONFIG)
    metrics = score_key(result.predicted_key, locked.key)
    assert metrics.n_total == 12
    # Non-inferiority at CI scale; the quality claims live in benchmarks/.
    assert metrics.kpa >= 0.5


def test_attack_is_deterministic():
    base = random_netlist("itest3", 8, 4, 100, seed=44)
    locked = lock_dmux(base, key_size=8, seed=44)
    cfg = MuxLinkConfig(h=1, train=TrainConfig(epochs=3, seed=1), seed=1)
    a = run_muxlink(locked.circuit, cfg)
    b = run_muxlink(locked.circuit, cfg)
    assert a.predicted_key == b.predicted_key


def test_streamed_scoring_matches_serial(dmux_attack):
    """The extract->score pipeline is bit-identical to the serial path."""
    import numpy as np

    base, locked, streamed = dmux_attack
    assert CI_CONFIG.score_prefetch > 0  # module fixture ran the pipeline
    serial_config = MuxLinkConfig(
        h=CI_CONFIG.h, train=CI_CONFIG.train, seed=CI_CONFIG.seed,
        score_prefetch=0,
    )
    serial = run_muxlink(locked.circuit, serial_config)
    assert serial.predicted_key == streamed.predicted_key
    np.testing.assert_array_equal(
        np.array([m.likelihoods for m in serial.scored]),
        np.array([m.likelihoods for m in streamed.scored]),
    )
