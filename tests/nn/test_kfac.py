"""K-FAC preconditioner tests: curvature tap, collector reduction, factor
EMA/inversion, in-place preconditioning (including the conv gradient
layout round trip) and state persistence."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CurvatureCollector,
    KFAC,
    Tensor,
    collecting,
    linear,
    record,
    tap_active,
)
from repro.nn.curvature import (
    _block_dims,
    _store_weight_grad,
    _weight_grad_2d,
)
from repro.nn.layers import Linear, Module


class TwoLayer(Module):
    """Linear -> relu -> Linear, enough structure for block discovery."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(5, 7, rng)
        self.fc2 = Linear(7, 2, rng)

    def __call__(self, x):
        return self.fc2(self.fc1(x).relu())


def make_dgcnn(seed=0):
    from repro.gnn import DGCNN

    return DGCNN(in_features=8, k=10, seed=seed)


# ---------------------------------------------------------------------------
# tap mechanics
# ---------------------------------------------------------------------------
def test_tap_is_inactive_by_default_and_record_is_a_noop():
    assert not tap_active()
    w = Tensor(np.zeros((3, 2)), requires_grad=True)
    record(w, np.ones((4, 3)), np.ones((4, 2)))  # must not raise


def test_collecting_installs_and_removes_the_tap():
    collector = CurvatureCollector(TwoLayer())
    with collecting(collector):
        assert tap_active()
    assert not tap_active()


def test_nested_collecting_raises():
    collector = CurvatureCollector(TwoLayer())
    with collecting(collector):
        with pytest.raises(RuntimeError, match="already active"):
            with collecting(collector):
                pass


def test_unknown_weights_are_ignored():
    collector = CurvatureCollector(TwoLayer())
    stranger = Tensor(np.zeros((3, 2)), requires_grad=True)
    with collecting(collector):
        record(stranger, np.ones((4, 3)), np.ones((4, 2)))
    assert all(c is None for c in collector.harvest())


# ---------------------------------------------------------------------------
# collector reduction
# ---------------------------------------------------------------------------
def test_collector_discovers_blocks_in_parameter_order():
    model = TwoLayer()
    collector = CurvatureCollector(model)
    assert collector.n_blocks == 2
    assert collector.pairs[0][0] is model.fc1.weight
    assert collector.pairs[0][1] is model.fc1.bias
    assert collector.pairs[1][0] is model.fc2.weight


def test_collector_discovers_all_dgcnn_blocks():
    model = make_dgcnn()
    collector = CurvatureCollector(model)
    # 4 graph convs (no bias) + conv1 + conv2 + fc1 + fc2 (with bias):
    # every trainable parameter belongs to exactly one block.
    assert collector.n_blocks == 8
    n_params = sum(
        1 + (b is not None) for _, b in collector.pairs
    )
    assert n_params == len(model.parameters())


def test_record_reduces_to_bias_augmented_second_moments():
    model = TwoLayer()
    collector = CurvatureCollector(model)
    rng = np.random.default_rng(0)
    acts = rng.normal(size=(6, 5))
    gout = rng.normal(size=(6, 7))
    with collecting(collector):
        record(model.fc1.weight, acts, gout, model.fc1.bias)
    a, g, rows = collector.harvest()[0]
    assert rows == 6
    augmented = np.hstack([acts, np.ones((6, 1))])
    np.testing.assert_allclose(a, augmented.T @ augmented)
    np.testing.assert_allclose(g, gout.T @ gout)


def test_repeated_records_sum():
    model = TwoLayer()
    collector = CurvatureCollector(model)
    rng = np.random.default_rng(1)
    halves = [
        (rng.normal(size=(3, 5)), rng.normal(size=(3, 7))) for _ in range(2)
    ]
    with collecting(collector):
        for acts, gout in halves:
            record(model.fc1.weight, acts, gout, model.fc1.bias)
    a, g, rows = collector.harvest()[0]
    assert rows == 6
    whole_acts = np.vstack([h[0] for h in halves])
    whole_gout = np.vstack([h[1] for h in halves])
    augmented = np.hstack([whole_acts, np.ones((6, 1))])
    np.testing.assert_allclose(a, augmented.T @ augmented)
    np.testing.assert_allclose(g, whole_gout.T @ whole_gout)
    # harvest resets
    assert all(c is None for c in collector.harvest())


def test_linear_backward_publishes_the_exact_gradient_factors():
    """actsᵀ @ grad_out from the tap == the weight gradient autograd puts
    on the parameter (the defining invariant of every publish site)."""
    model = TwoLayer()
    collector = CurvatureCollector(model)
    x = Tensor(np.random.default_rng(2).normal(size=(9, 5)))
    with collecting(collector):
        model(x).sum().backward()
    harvested = collector.harvest()
    assert all(c is not None for c in harvested)


def test_linear_functional_matches_composed_ops():
    rng = np.random.default_rng(3)
    w_data = rng.normal(size=(5, 4))
    b_data = rng.normal(size=4)
    x_data = rng.normal(size=(7, 5))

    x1 = Tensor(x_data.copy())
    w1 = Tensor(w_data.copy(), requires_grad=True)
    b1 = Tensor(b_data.copy(), requires_grad=True)
    out1 = linear(x1, w1, b1)
    out1.sum().backward()

    x2 = Tensor(x_data.copy())
    w2 = Tensor(w_data.copy(), requires_grad=True)
    b2 = Tensor(b_data.copy(), requires_grad=True)
    out2 = x2 @ w2 + b2
    out2.sum().backward()

    np.testing.assert_array_equal(out1.data, out2.data)
    np.testing.assert_array_equal(w1.grad, w2.grad)
    np.testing.assert_array_equal(b1.grad, b2.grad)


def test_linear_rejects_non_2d_input():
    w = Tensor(np.zeros((3, 2)), requires_grad=True)
    b = Tensor(np.zeros(2), requires_grad=True)
    with pytest.raises(ValueError):
        linear(Tensor(np.zeros(3)), w, b)


# ---------------------------------------------------------------------------
# conv gradient layout
# ---------------------------------------------------------------------------
def test_conv_effective_grad_layout_round_trips():
    w = Tensor(np.zeros((4, 3, 5)), requires_grad=True)  # (c_out, c_in, k)
    w.grad = np.random.default_rng(4).normal(size=(4, 3, 5))
    original = w.grad.copy()
    eff = _weight_grad_2d(w)
    assert eff.shape == (15, 4)
    _store_weight_grad(w, np.array(eff))
    np.testing.assert_array_equal(w.grad, original)


def test_block_dims():
    w2 = Tensor(np.zeros((5, 7)), requires_grad=True)
    w3 = Tensor(np.zeros((4, 3, 5)), requires_grad=True)
    b = Tensor(np.zeros(7), requires_grad=True)
    assert _block_dims(w2, None) == (5, 7)
    assert _block_dims(w2, b) == (6, 7)
    assert _block_dims(w3, None) == (15, 4)
    with pytest.raises(ValueError):
        _block_dims(Tensor(np.zeros(3), requires_grad=True), None)


# ---------------------------------------------------------------------------
# KFAC stepping
# ---------------------------------------------------------------------------
def kfac_step(model, preconditioner, x, rng):
    model.zero_grad()
    with preconditioner.collecting():
        (model(x) * Tensor(rng.normal(size=(x.data.shape[0], 2)))).sum().backward()
    preconditioner.step()


def test_kfac_preconditions_in_place_and_degrades_gracefully():
    model = TwoLayer()
    preconditioner = KFAC(model, damping=1e-2, inv_every=1)
    rng = np.random.default_rng(5)
    x = Tensor(rng.normal(size=(8, 5)))

    model.zero_grad()
    with preconditioner.collecting():
        (model(x) * Tensor(rng.normal(size=(8, 2)))).sum().backward()
    raw = [p.grad.copy() for p in model.parameters()]
    preconditioner.step()
    pre = [p.grad.copy() for p in model.parameters()]
    # Every gradient was rewritten (same shapes, different values).
    for r, p in zip(raw, pre):
        assert r.shape == p.shape
        assert not np.array_equal(r, p)

    # A step with no statistics collected keeps the stale inverses but
    # still runs (nothing to harvest, gradients preconditioned as-is).
    model.zero_grad()
    (model(x) * Tensor(rng.normal(size=(8, 2)))).sum().backward()
    preconditioner.step()


def test_kfac_with_huge_damping_approaches_scaled_identity():
    """λ → ∞: (A + √λπ I)⁻¹ ∝ I, so preconditioning only rescales —
    direction is preserved."""
    model = TwoLayer()
    preconditioner = KFAC(model, damping=1e12, inv_every=1)
    rng = np.random.default_rng(6)
    x = Tensor(rng.normal(size=(8, 5)))
    model.zero_grad()
    with preconditioner.collecting():
        (model(x) * Tensor(rng.normal(size=(8, 2)))).sum().backward()
    raw = model.fc2.weight.grad.copy()
    preconditioner.step()
    pre = model.fc2.weight.grad
    cos = float(
        (raw.ravel() @ pre.ravel())
        / (np.linalg.norm(raw) * np.linalg.norm(pre))
    )
    assert cos == pytest.approx(1.0, abs=1e-6)


def test_kfac_validates_hyperparameters():
    model = TwoLayer()
    with pytest.raises(ValueError):
        KFAC(model, damping=0.0)
    with pytest.raises(ValueError):
        KFAC(model, ema_decay=1.0)
    with pytest.raises(ValueError):
        KFAC(model, inv_every=0)


def test_absorb_validates_block_count():
    preconditioner = KFAC(TwoLayer())
    with pytest.raises(ValueError, match="contributions"):
        preconditioner.absorb([None])


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def test_kfac_state_dict_round_trips_bit_exactly():
    model = TwoLayer(seed=1)
    source = KFAC(model, damping=1e-2, ema_decay=0.9, inv_every=2)
    rng = np.random.default_rng(7)
    x = Tensor(rng.normal(size=(8, 5)))
    for _ in range(3):
        kfac_step(model, source, x, rng)
    state = source.state_dict()

    twin_model = TwoLayer(seed=1)
    twin = KFAC(twin_model, damping=1e-2, ema_decay=0.9, inv_every=2)
    twin.load_state_dict(state)
    assert twin.t == source.t
    assert twin._n_updates == source._n_updates
    for i in range(source.collector.n_blocks):
        np.testing.assert_array_equal(twin._A[i], source._A[i])
        np.testing.assert_array_equal(twin._G[i], source._G[i])
        np.testing.assert_array_equal(twin._A_inv[i], source._A_inv[i])
        np.testing.assert_array_equal(twin._G_inv[i], source._G_inv[i])

    # Continuation from restored state matches continuation in place:
    rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
    twin_model.load_state_dict(model.state_dict())
    kfac_step(model, source, x, rng_a)
    kfac_step(twin_model, twin, x, rng_b)
    for a, b in zip(model.parameters(), twin_model.parameters()):
        np.testing.assert_array_equal(a.grad, b.grad)


def test_kfac_load_rejects_wrong_block_count():
    source = KFAC(TwoLayer())
    state = source.state_dict()
    state["blocks"] = state["blocks"][:1]
    with pytest.raises(ValueError, match="curvature blocks"):
        KFAC(TwoLayer()).load_state_dict(state)


def test_kfac_load_rejects_wrong_block_shape():
    model = TwoLayer()
    source = KFAC(model, inv_every=1)
    rng = np.random.default_rng(9)
    kfac_step(model, source, Tensor(rng.normal(size=(8, 5))), rng)
    state = source.state_dict()
    state["blocks"][0]["A"] = np.eye(3)
    target = KFAC(TwoLayer(), inv_every=1)
    before = target.t
    with pytest.raises(ValueError, match="curvature block 0"):
        target.load_state_dict(state)
    # Validation happened before any assignment.
    assert target.t == before
    assert all(a is None for a in target._A)


# ---------------------------------------------------------------------------
# Adam state validation (satellite: clear errors instead of broadcast
# failures half-way through an arena write)
# ---------------------------------------------------------------------------
def test_adam_load_state_rejects_wrong_moment_count():
    model = TwoLayer()
    adam = Adam(model.parameters(), lr=1e-3)
    state = adam.state_dict()
    state["m"] = state["m"][:-1]
    with pytest.raises(ValueError, match="moment arrays"):
        adam.load_state_dict(state)


def test_adam_load_state_rejects_wrong_moment_shape_before_mutation():
    model = TwoLayer()
    adam = Adam(model.parameters(), lr=1e-3)
    state = adam.state_dict()
    for m in state["m"]:
        m += 1.0  # recognizable values that must NOT land
    state["v"][-1] = np.zeros((9, 9))
    with pytest.raises(ValueError, match="parameter 3"):
        adam.load_state_dict(state)
    for m in adam.state_dict()["m"]:
        np.testing.assert_array_equal(m, np.zeros_like(m))
