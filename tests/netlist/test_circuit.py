"""Unit tests for the Circuit data structure."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Circuit, Gate, GateType


def half_adder():
    c = Circuit("ha", inputs=["a", "b"])
    c.add_gate(Gate("sum", GateType.XOR, ("a", "b")))
    c.add_gate(Gate("carry", GateType.AND, ("a", "b")))
    c.add_output("sum")
    c.add_output("carry")
    return c


def chain(n=4):
    c = Circuit("chain", inputs=["x"])
    prev = "x"
    for i in range(n):
        c.add_gate(Gate(f"n{i}", GateType.NOT, (prev,)))
        prev = f"n{i}"
    c.add_output(prev)
    return c


def test_basic_construction_and_accessors():
    c = half_adder()
    assert c.inputs == ("a", "b")
    assert c.outputs == ("sum", "carry")
    assert len(c) == 2
    assert c.gate("sum").gate_type is GateType.XOR
    assert c.has_net("a") and c.has_net("carry") and not c.has_net("zz")
    assert set(c.nets) == {"a", "b", "sum", "carry"}


def test_duplicate_and_undriven_rejected():
    c = half_adder()
    with pytest.raises(NetlistError):
        c.add_input("a")
    with pytest.raises(NetlistError):
        c.add_gate(Gate("sum", GateType.OR, ("a", "b")))
    with pytest.raises(NetlistError):
        c.add_gate(Gate("g", GateType.OR, ("a", "nope")))
    with pytest.raises(NetlistError):
        c.add_output("nope")


def test_gate_arity_checked_at_construction():
    with pytest.raises(NetlistError):
        Gate("g", GateType.NOT, ("a", "b"))
    with pytest.raises(NetlistError):
        Gate("g", GateType.MUX, ("a", "b"))


def test_fanout_and_multi_output():
    c = half_adder()
    assert sorted(c.fanout("a")) == ["carry", "sum"]
    assert c.fanout_size("a") == 2
    assert c.is_multi_output("a")
    # 'sum' is a PO only: one load.
    assert c.fanout_size("sum") == 1
    assert not c.is_multi_output("sum")


def test_po_counts_in_fanout_size():
    c = Circuit("t", inputs=["a"])
    c.add_gate(Gate("g", GateType.BUF, ("a",)))
    c.add_output("g")
    c.add_output("g")
    assert c.fanout_size("g") == 2


def test_topological_order_and_depth():
    c = chain(5)
    order = c.topological_order()
    assert list(order) == [f"n{i}" for i in range(5)]
    assert c.depth() == 5


def test_loop_detection():
    c = Circuit("loop", inputs=["a"])
    c.add_gate(Gate("g1", GateType.AND, ("a", "a")))
    c.add_gate(Gate("g2", GateType.AND, ("g1", "a")))
    # Manually create a cycle g1 <- g2.
    c.rewire_input("g1", "a", "g2")
    assert c.has_combinational_loop()
    with pytest.raises(NetlistError):
        c.topological_order()


def test_creates_loop_predicts_cycles():
    c = chain(3)
    # Feeding n2 back into n0 would create a loop.
    assert c.creates_loop("n2", "n0")
    assert not c.creates_loop("x", "n2")
    assert not c.creates_loop("n0", "n2") is True or True  # sanity


def test_transitive_cones():
    c = chain(4)
    assert c.transitive_fanout("n0") == {"n1", "n2", "n3"}
    assert c.transitive_fanin("n3") == {"x", "n0", "n1", "n2"}
    assert c.transitive_fanin("x") == set()


def test_rewire_and_replace():
    c = half_adder()
    c.add_gate(Gate("inv", GateType.NOT, ("b",)))
    c.rewire_input("sum", "b", "inv")
    assert c.gate("sum").inputs == ("a", "inv")
    c.replace_gate(Gate("carry", GateType.NAND, ("a", "b")))
    assert c.gate("carry").gate_type is GateType.NAND
    with pytest.raises(NetlistError):
        c.rewire_input("sum", "b", "inv")  # 'b' no longer an input of sum
    with pytest.raises(NetlistError):
        c.replace_gate(Gate("nope", GateType.NOT, ("a",)))


def test_remove_gate_guards():
    c = chain(2)
    with pytest.raises(NetlistError):
        c.remove_gate("n0")  # still feeds n1
    with pytest.raises(NetlistError):
        c.remove_gate("n1")  # primary output
    c2 = Circuit("t", inputs=["a"])
    c2.add_gate(Gate("dead", GateType.NOT, ("a",)))
    removed = c2.remove_gate("dead")
    assert removed.name == "dead"
    assert not c2.has_gate("dead")


def test_redirect_output():
    c = half_adder()
    c.add_gate(Gate("inv", GateType.NOT, ("sum",)))
    c.redirect_output("sum", "inv")
    assert c.outputs == ("inv", "carry")


def test_fresh_name():
    c = half_adder()
    assert c.fresh_name("mux") == "mux"
    c.add_gate(Gate("mux", GateType.NOT, ("a",)))
    assert c.fresh_name("mux") == "mux_0"


def test_copy_is_independent():
    c = half_adder()
    dup = c.copy("dup")
    dup.add_gate(Gate("extra", GateType.NOT, ("a",)))
    assert not c.has_gate("extra")
    assert dup.name == "dup"
    assert c.outputs == dup.outputs


def test_stats_and_dangling():
    c = half_adder()
    st = c.stats()
    assert st.num_gates == 2
    assert st.gate_counts == {"XOR": 1, "AND": 1}
    assert st.depth == 1
    assert c.dangling_nets() == ()
    c.add_gate(Gate("dead", GateType.NOT, ("a",)))
    assert c.dangling_nets() == ("dead",)


def test_validate_passes_on_good_circuit():
    half_adder().validate()
