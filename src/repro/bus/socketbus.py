"""Stdlib TCP job bus: a length-prefixed codec-frame queue.

Wire protocol (every frame is a 4-byte big-endian length followed by a
:func:`repro.store.codec.dumps` blob of kind ``bus-message``):

========  =========================  =========================================
sender    message                    meaning
========  =========================  =========================================
worker    ``{op: lease}``            request one job
server    ``{op: job, key, attempt,  here is one (the *same* payload shape a
          job}``                     spool file carries)
server    ``{op: empty}``            nothing queued; poll again in a moment
worker    ``{op: done, key,          job finished; ``result`` is the encoded
          result}``                  attack artifact
worker    ``{op: failed, key,        job raised; traceback attached
          traceback}``
========  =========================  =========================================

Two servers speak it:

* :class:`SocketBus` — embedded in the coordinator (``repro figures
  --bus socket``): the listening socket lives on the bus object, and the
  selector loop runs *inside* :meth:`SocketBus.run` while a grid is in
  flight.  Results come back over the wire, so socket workers need no
  shared filesystem at all.
* :func:`serve_spool` — the standalone ``repro serve-bus`` broker: it
  leases jobs from a :class:`~repro.bus.spool.SpoolDir` on behalf of
  TCP-connected workers (heartbeating the leases while the connection
  lives), writes returned artifacts into the store, and requeues the
  job when a connection dies mid-execution.  It bridges a spool to
  workers that cannot mount the directory.

A worker death is detected as a connection EOF/reset: the in-flight job
returns to the queue with its attempt count bumped, and a job that burns
``max_attempts`` attempts raises :class:`~repro.bus.protocol.BusError`
carrying the last traceback (the socket-mode quarantine).
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from typing import TYPE_CHECKING, Iterator

from repro.bus.protocol import (
    BUS_MESSAGE_KIND,
    DEFAULT_POLL,
    BusError,
    JobBus,
    RetryPolicy,
    encode_job,
)
from repro.store import codec
from repro.store.codec import CodecError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bus.spool import SpoolDir
    from repro.experiments.runner import AttackJob
    from repro.store import ArtifactStore

__all__ = ["SocketBus", "parse_address", "recv_message", "send_message", "serve_spool"]

_LEN_BYTES = 4
#: Frames above this are refused outright — a desynced or hostile peer
#: must not make the server allocate gigabytes.
MAX_FRAME = 512 * 1024 * 1024


def parse_address(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (bare ``":port"`` = localhost)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit() and text != "":
        if text.isdigit():  # bare port
            return "127.0.0.1", int(text)
        raise BusError(f"malformed bus address {text!r}; expected host:port")
    return host or "127.0.0.1", int(port)


def send_message(sock: socket.socket, payload: dict) -> None:
    """Write one framed codec message (blocking until fully sent)."""
    blob = codec.dumps(payload, kind=BUS_MESSAGE_KIND)
    sock.sendall(len(blob).to_bytes(_LEN_BYTES, "big") + blob)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one framed message from a blocking socket; ``None`` on EOF."""
    header = _recv_exact(sock, _LEN_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise BusError(f"oversized bus frame ({length} bytes)")
    blob = _recv_exact(sock, length)
    if blob is None:
        return None
    return codec.loads(blob, kind=BUS_MESSAGE_KIND)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Connection:
    """One worker link on the server side: recv buffer + execution state."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = b""
        self.executing: tuple[str, int] | None = None  # (key, attempt)

    def feed(self) -> list[dict] | None:
        """Drain readable bytes into complete frames; ``None`` = gone."""
        try:
            data = self.sock.recv(1 << 20)
        except BlockingIOError:  # pragma: no cover - spurious readiness
            return []
        except OSError:
            return None
        if not data:
            return None
        self.buffer += data
        messages = []
        while len(self.buffer) >= _LEN_BYTES:
            length = int.from_bytes(self.buffer[:_LEN_BYTES], "big")
            if length > MAX_FRAME:
                return None  # desynced peer; drop the connection
            if len(self.buffer) < _LEN_BYTES + length:
                break
            blob = self.buffer[_LEN_BYTES : _LEN_BYTES + length]
            self.buffer = self.buffer[_LEN_BYTES + length :]
            try:
                messages.append(codec.loads(blob, kind=BUS_MESSAGE_KIND))
            except CodecError:
                return None
        return messages

    def send(self, payload: dict) -> bool:
        try:
            send_message(self.sock, payload)
            return True
        except OSError:
            return False


class _Server:
    """Selector plumbing shared by :class:`SocketBus` and the spool broker.

    *read_timeout* bounds every blocking operation on an accepted
    connection (``sendall`` of a job frame to a wedged peer, a reply
    read) — before it, one hung worker socket could block the
    coordinator forever.  A timeout surfaces as ``OSError`` on the
    operation, which the callers already treat as a dead connection.
    """

    def __init__(
        self, address: str, read_timeout: float | None = None
    ) -> None:
        host, port = parse_address(address)
        self._listener = socket.create_server((host, port), backlog=128)
        self._listener.setblocking(False)
        self.read_timeout = read_timeout
        self.selector = selectors.DefaultSelector()
        self.selector.register(self._listener, selectors.EVENT_READ)
        self.connections: dict[socket.socket, _Connection] = {}
        bound = self._listener.getsockname()
        self.address = f"{bound[0]}:{bound[1]}"

    def _accepted(self, sock: socket.socket) -> bool:
        """Hook consulted on every accept; ``False`` drops the peer.

        The base server accepts everything; the serve front-end
        (:mod:`repro.serve`) overrides this to honor the
        ``serve.accept_drop`` fault site — the peer sees an immediate
        EOF and must reconnect on its retry schedule.
        """
        return True

    def poll(self, timeout: float) -> list[tuple[_Connection, list[dict] | None]]:
        """One select cycle → ``(connection, messages-or-EOF)`` events."""
        events = []
        for key, _ in self.selector.select(timeout=timeout):
            sock = key.fileobj
            if sock is self._listener:
                try:
                    conn_sock, _ = self._listener.accept()
                except OSError:  # pragma: no cover - racing close
                    continue
                if not self._accepted(conn_sock):
                    try:
                        conn_sock.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                # settimeout(None) == setblocking(True); a finite value
                # keeps blocking semantics but bounds each operation.
                conn_sock.settimeout(self.read_timeout)
                connection = _Connection(conn_sock)
                self.connections[conn_sock] = connection
                self.selector.register(conn_sock, selectors.EVENT_READ)
            else:
                connection = self.connections[sock]
                events.append((connection, connection.feed()))
        return events

    def drop(self, connection: _Connection) -> None:
        try:
            self.selector.unregister(connection.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        self.connections.pop(connection.sock, None)
        try:
            connection.sock.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        for connection in list(self.connections.values()):
            self.drop(connection)
        try:
            self.selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        self._listener.close()
        self.selector.close()


class SocketBus(JobBus):
    """Coordinator-embedded TCP queue (``repro figures --bus socket``)."""

    name = "socket"

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        poll: float = DEFAULT_POLL,
        max_attempts: int | None = None,
        timeout: float | None = None,
        liveness: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__()
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._server = _Server(
            address, read_timeout=self.retry.read_timeout
        )
        self.address = self._server.address
        self.poll = float(poll)
        self.max_attempts = int(
            self.retry.max_attempts if max_attempts is None else max_attempts
        )
        self.timeout = timeout
        self.liveness = float(liveness) if liveness else None

    def run(
        self, jobs: "list[AttackJob]"
    ) -> "Iterator[tuple[AttackJob, dict, bool]]":
        t0 = time.perf_counter()
        waiting = {job.store_key: job for job in jobs}
        queue: deque[tuple[str, int]] = deque((key, 0) for key in waiting)
        encoded = {job.store_key: encode_job(job) for job in jobs}
        self.stats.submitted += len(jobs)
        self.stats.submit_seconds += time.perf_counter() - t0

        last_progress = time.monotonic()
        while waiting:
            events = self._server.poll(self.poll)
            t0 = time.perf_counter()
            for connection, messages in events:
                if messages is None:  # worker vanished (EOF / reset)
                    self._requeue(connection, queue, waiting)
                    self._server.drop(connection)
                    continue
                for message in messages:
                    op = message.get("op")
                    if op == "lease":
                        self._dispatch(connection, queue, encoded)
                    elif op == "done":
                        key = str(message["key"])
                        connection.executing = None
                        if key in waiting:
                            job = waiting.pop(key)
                            self.stats.completed += 1
                            self.stats.adopt_seconds += (
                                time.perf_counter() - t0
                            )
                            yield job, message["result"], False
                            t0 = time.perf_counter()
                    elif op == "failed":
                        key = str(message["key"])
                        # connection.executing is the only record of this
                        # attempt's count — read it before clearing, or a
                        # deterministic crasher resets to attempt 0 every
                        # round and never reaches quarantine.
                        attempt = None
                        if (
                            connection.executing is not None
                            and connection.executing[0] == key
                        ):
                            attempt = connection.executing[1]
                        connection.executing = None
                        self._record_failure(
                            key,
                            str(message.get("traceback", "")),
                            queue,
                            waiting,
                            attempt,
                        )
            self.stats.adopt_seconds += time.perf_counter() - t0
            if not waiting:
                break
            # A connection mid-job counts as progress: a legitimately
            # long training run produces no frames while it computes,
            # and must trip neither the timeout nor the fail-over.
            busy = any(
                c.executing is not None
                for c in self._server.connections.values()
            )
            now = time.monotonic()
            if events or busy:
                last_progress = now
                continue
            quiet = now - last_progress
            if self.timeout is not None and quiet > self.timeout:
                raise BusError(
                    f"socket bus made no progress for {self.timeout:.0f}s — "
                    f"{len(waiting)} job(s) outstanding, "
                    f"{len(self._server.connections)} worker connection(s); "
                    f"point workers at `repro worker --bus-addr "
                    f"{self.address}`"
                )
            if self.liveness is not None and quiet > self.liveness:
                # Graceful degradation: every worker is gone (dead
                # connections requeued their jobs, none are executing).
                # Finish the grid in-process instead of hanging.
                remaining = list(waiting.values())
                queue.clear()
                waiting.clear()
                yield from self._failover(
                    remaining,
                    f"no worker progress for {self.liveness:.0f}s",
                )
                return

    def _dispatch(
        self,
        connection: _Connection,
        queue: deque[tuple[str, int]],
        encoded: dict[str, dict],
    ) -> None:
        if connection.executing is not None:
            return  # protocol misuse: one job per connection at a time
        if not queue:
            connection.send({"op": "empty"})
            return
        key, attempt = queue.popleft()
        connection.executing = (key, attempt)
        if not connection.send(
            {"op": "job", "key": key, "attempt": attempt, "job": encoded[key]}
        ):
            connection.executing = None
            queue.appendleft((key, attempt))

    def _requeue(
        self,
        connection: _Connection,
        queue: deque[tuple[str, int]],
        waiting: dict,
    ) -> None:
        if connection.executing is None:
            return
        key, attempt = connection.executing
        connection.executing = None
        if key not in waiting:
            return
        self._record_failure(
            key, "worker connection lost mid-job", queue, waiting, attempt
        )

    def _record_failure(
        self,
        key: str,
        error: str,
        queue: deque[tuple[str, int]],
        waiting: dict,
        attempt: int | None = None,
    ) -> None:
        if key not in waiting:
            return
        if attempt is None:
            attempt = 0
            for queued_key, queued_attempt in queue:  # pragma: no cover
                if queued_key == key:
                    attempt = queued_attempt
        next_attempt = attempt + 1
        if next_attempt >= self.max_attempts:
            self.stats.quarantined += 1
            raise BusError(
                f"job {key[:12]}… failed {next_attempt} time(s) over the "
                f"socket bus; last worker traceback:\n{error}"
            )
        self.stats.requeues += 1
        queue.append((key, next_attempt))

    def close(self) -> None:
        self._server.close()


def serve_spool(
    spool: "SpoolDir",
    address: str,
    store: "ArtifactStore",
    poll: float = DEFAULT_POLL,
    idle_timeout: float | None = None,
    max_jobs: int | None = None,
    retry: RetryPolicy | None = None,
    log=print,
) -> dict:
    """``repro serve-bus``: bridge a spool directory to TCP workers.

    Leases are taken from the spool on behalf of each connected worker
    and heartbeaten while the connection lives, so spool-side reapers
    see a socket-proxied job as alive exactly as long as its worker is.
    Returned artifacts land in *store*; a dropped connection releases
    the lease back to pending (bounded by the spool's attempt budget).
    Runs until *idle_timeout* seconds pass with nothing queued, nothing
    executing and no connections (``None`` = forever), or *max_jobs*
    results have been written.
    """
    retry = retry if retry is not None else RetryPolicy.from_env()
    server = _Server(address, read_timeout=retry.read_timeout)
    log(f"serve-bus: {server.address} over spool {spool.root}")
    stats = {"served": 0, "completed": 0, "failed": 0, "requeued": 0}
    last_activity = time.monotonic()
    try:
        while True:
            spool.reap_stale()
            events = server.poll(poll)
            executing = [
                c for c in server.connections.values() if c.executing
            ]
            for connection in executing:
                spool.heartbeat(connection.executing[0])
            if events:
                last_activity = time.monotonic()
            for connection, messages in events:
                if messages is None:
                    if connection.executing is not None:
                        key, _ = connection.executing
                        spool.release(key, "worker connection lost mid-job")
                        stats["requeued"] += 1
                    server.drop(connection)
                    continue
                for message in messages:
                    op = message.get("op")
                    if op == "lease":
                        leased = spool.lease()
                        if leased is None:
                            connection.send({"op": "empty"})
                            continue
                        key, payload = leased
                        connection.executing = (key, int(payload["attempt"]))
                        stats["served"] += 1
                        if not connection.send(
                            {
                                "op": "job",
                                "key": key,
                                "attempt": int(payload["attempt"]),
                                "job": payload["job"],
                            }
                        ):
                            connection.executing = None
                            spool.release(key, "worker connection lost")
                    elif op == "done":
                        key = str(message["key"])
                        store.put(
                            str(message.get("kind", "attacks")),
                            key,
                            message["result"],
                        )
                        spool.complete(key)
                        connection.executing = None
                        stats["completed"] += 1
                        log(f"serve-bus: completed {key[:12]}…")
                    elif op == "failed":
                        key = str(message["key"])
                        connection.executing = None
                        stats["failed"] += 1
                        if spool.fail(key, str(message.get("traceback", ""))):
                            log(f"serve-bus: quarantined {key[:12]}…")
            if max_jobs is not None and stats["completed"] >= max_jobs:
                break
            if (
                idle_timeout is not None
                and not server.connections
                and not spool.pending_keys()
                and time.monotonic() - last_activity > idle_timeout
            ):
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.close()
    return stats
