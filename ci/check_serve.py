"""Gate: the attack service must serve the smoke grid bit-identical to serial.

Boots a real ``repro serve`` process (server + worker fleet in one
command), submits the 8-cell smoke fig7 grid through
:class:`repro.client.ServeClient`, and compares every served artifact —
fetched back through :class:`repro.store.RemoteStore` — against an
in-process ``execute_job`` reference, wall-clock aside.  A second
submission pass must answer ``hit`` for every key without scheduling
anything (the warm path), and the throughput of both passes is printed
for the job summary.  Exits non-zero on any divergence.

Usage: ``check_serve.py [--workers N]``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import replace

_SRC_ROOT = str(pathlib.Path(__file__).resolve().parents[1] / "src")
sys.path.insert(0, _SRC_ROOT)

from repro.benchgen import load_benchmark  # noqa: E402
from repro.client import ServeClient  # noqa: E402
from repro.experiments import SMOKE_SCALE, fig7_cells  # noqa: E402
from repro.experiments.common import lock_with  # noqa: E402
from repro.experiments.runner import execute_job  # noqa: E402
from repro.store.remote import RemoteStore  # noqa: E402

_READY = re.compile(r"serve: listening on (\S+) ")


def _fingerprint(payload):
    import numpy as np

    def canon(value):
        if isinstance(value, dict):
            return tuple(sorted((k, canon(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(canon(v) for v in value)
        if isinstance(value, np.ndarray):
            return (str(value.dtype), value.shape, value.tobytes())
        return value

    return canon({k: v for k, v in payload.items() if k != "runtime_seconds"})


def _smoke_jobs():
    # Smoke sizing, widened to 2 benchmarks x 2 schemes x 2 key sizes so
    # the fleet actually shares a queue (the bare smoke grid is 2 cells).
    scale = replace(
        SMOKE_SCALE,
        name="serve-ci",
        iscas=("c1355", "c1908"),
        iscas_keys=(6, 8),
    )
    jobs = []
    for cell in fig7_cells(scale, seed=0):
        base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
        locked = lock_with(
            cell.scheme, base, key_size=cell.key_size, seed=cell.lock_seed
        )
        jobs.append(ServeClient.job_for(locked.circuit, cell.config))
    return jobs


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv[1:])

    jobs = _smoke_jobs()
    print(f"serve-ci: {len(jobs)} smoke jobs, {args.workers} workers")
    reference = {job.store_key: _fingerprint(execute_job(job)) for job in jobs}

    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--addr", "127.0.0.1:0",
                "--store", str(pathlib.Path(tmp) / "store"),
                "--workers", str(args.workers),
                "--poll", "0.1",
            ],
            env={
                **os.environ,
                "PYTHONPATH": _SRC_ROOT
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            ready = proc.stdout.readline()
            match = _READY.search(ready)
            if match is None:
                proc.terminate()
                tail = ready + (proc.stdout.read() or "")
                sys.stderr.write(f"server never came up:\n{tail}\n")
                return 1
            address = match.group(1)

            client = ServeClient(address)
            remote = RemoteStore(address)
            try:
                start = time.perf_counter()
                for job in jobs:
                    reply = client.submit_job(job, wait=False)
                    if reply.get("status") not in (
                        "queued", "coalesced", "hit"
                    ):
                        sys.stderr.write(f"bad accept frame: {reply}\n")
                        return 1
                for job in jobs:
                    client.result(job.store_key, timeout=600)
                cold_s = time.perf_counter() - start

                served = {
                    job.store_key: _fingerprint(
                        remote.get(job.artifact_kind, job.store_key)
                    )
                    for job in jobs
                }
                if served != reference:
                    bad = [
                        key for key in reference
                        if served.get(key) != reference[key]
                    ]
                    sys.stderr.write(
                        f"served artifacts diverged from serial for "
                        f"{len(bad)} of {len(jobs)} keys: "
                        f"{[key[:12] for key in bad]}\n"
                    )
                    return 1

                start = time.perf_counter()
                for job in jobs:
                    reply = client.submit_job(job, wait=False)
                    if reply.get("status") != "hit":
                        sys.stderr.write(
                            f"warm resubmit of {job.store_key[:12]}… was "
                            f"{reply.get('status')!r}, expected 'hit'\n"
                        )
                        return 1
                    client.result(job.store_key, timeout=60)
                warm_s = time.perf_counter() - start

                stats = client.stats()
                print(
                    f"serve-ci: cold {len(jobs)} jobs in {cold_s:.1f}s "
                    f"({len(jobs) / cold_s:.1f} jobs/s), warm refetch in "
                    f"{warm_s:.2f}s ({len(jobs) / warm_s:.0f} req/s)"
                )
                print(
                    f"serve-ci: scheduled={stats['scheduled']} "
                    f"completed={stats['completed']} failed={stats['failed']} "
                    f"requeues={stats['requeues']} "
                    f"memory_hits={stats['memory_hits']} "
                    f"store_hits={stats['store_hits']}"
                )
                if stats["failed"] or stats["scheduled"] != len(jobs):
                    sys.stderr.write(
                        "server scheduled/failed counters off: "
                        f"{stats}\n"
                    )
                    return 1
            finally:
                try:
                    client.shutdown()
                except OSError:
                    pass
                remote.close()
                client.close()
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.terminate()
                proc.wait(timeout=30)

    print(f"bit-parity OK ({len(jobs)} served artifacts)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
