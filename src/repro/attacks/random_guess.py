"""Random-guess reference attack (the 50 % KPA floor)."""

from __future__ import annotations

import numpy as np

from repro.errors import AttackError
from repro.locking.keys import key_input_index, key_inputs_of
from repro.netlist import Circuit

__all__ = ["random_guess_attack"]


def random_guess_attack(circuit: Circuit, seed: int = 0) -> str:
    """Guess every key bit uniformly at random.

    Any attack whose KPA is statistically indistinguishable from this
    baseline has been defeated by the locking scheme.
    """
    key_nets = key_inputs_of(circuit)
    if not key_nets:
        raise AttackError("no key inputs found; is this netlist locked?")
    n_bits = max(key_input_index(k) for k in key_nets) + 1
    rng = np.random.default_rng(seed)
    present = {key_input_index(k) for k in key_nets}
    return "".join(
        str(int(rng.integers(2))) if i in present else "x"
        for i in range(n_bits)
    )
