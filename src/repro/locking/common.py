"""Shared machinery for MUX-based locking: localities, safe insertion.

Terminology follows the D-MUX paper (Fig. 4): a *locality* is one obfuscated
neighbourhood — the pair of source nets ``{fi, fj}``, the locked load gates
``{gi, gj}`` and the key-controlled MUX(es) between them.  MuxLink's
post-processing consumes localities strategy-by-strategy, so every locking
pass records exactly what it inserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LockingError
from repro.netlist import Circuit, Gate, GateType
from repro.locking.keys import key_input_name

__all__ = ["Strategy", "MuxInstance", "Locality", "LockedCircuit", "insert_key_mux"]


class Strategy(str, enum.Enum):
    """Locking strategies (paper Fig. 4); S1–S4 are D-MUX, S5 is symmetric."""

    S1 = "S1"
    S2 = "S2"
    S3 = "S3"
    S4 = "S4"
    S5 = "S5"


@dataclass(frozen=True)
class MuxInstance:
    """One inserted key-controlled MUX.

    Attributes:
        mux_name: net name of the MUX gate.
        key_index: key bit driving the select input.
        load_gate: the locked gate ``g`` whose input pin was rewired.
        true_net: data input that must be passed for correct function.
        false_net: the decoy data input.
        select_for_true: key-bit value that selects ``true_net`` — i.e. the
            correct key bit (0 when the true net is wired to data pin d0).
    """

    mux_name: str
    key_index: int
    load_gate: str
    true_net: str
    false_net: str
    select_for_true: int

    @property
    def key_name(self) -> str:
        return key_input_name(self.key_index)

    def candidate_links(self) -> tuple[tuple[str, str], tuple[str, str]]:
        """The two candidate wires ``(driver, load)`` this MUX hides.

        First element is the d0 candidate (selected by key value 0), second
        is the d1 candidate.  Ordering is attacker-visible (it is just the
        MUX pin order), unlike which one is true.
        """
        if self.select_for_true == 0:
            return (self.true_net, self.load_gate), (self.false_net, self.load_gate)
        return (self.false_net, self.load_gate), (self.true_net, self.load_gate)


@dataclass(frozen=True)
class Locality:
    """One obfuscated locality: a strategy instance with its MUXes."""

    strategy: Strategy
    muxes: tuple[MuxInstance, ...]

    def key_indices(self) -> tuple[int, ...]:
        """Distinct key bits used, in insertion order."""
        seen: list[int] = []
        for mux in self.muxes:
            if mux.key_index not in seen:
                seen.append(mux.key_index)
        return tuple(seen)


@dataclass
class LockedCircuit:
    """Result of a locking pass.

    Attributes:
        circuit: the locked netlist (key inputs + MUX key-gates inserted).
        key: correct key string, index 0 first.
        localities: per-locality provenance for scoring attacks.
        scheme: human-readable scheme name (``"D-MUX"`` …).
        original_name: name of the unlocked source circuit.
    """

    circuit: Circuit
    key: str
    localities: list[Locality] = field(default_factory=list)
    scheme: str = ""
    original_name: str = ""

    @property
    def key_size(self) -> int:
        return len(self.key)

    def mux_instances(self) -> tuple[MuxInstance, ...]:
        return tuple(m for loc in self.localities for m in loc.muxes)


def insert_key_mux(
    circuit: Circuit,
    key_index: int,
    true_net: str,
    false_net: str,
    load_gate: str,
    rng: np.random.Generator,
    select_for_true: int | None = None,
) -> MuxInstance:
    """Insert one key-controlled MUX in front of *load_gate*.

    The pin where *load_gate* currently reads *true_net* is rewired to a new
    ``MUX(keyinput, d0, d1)``; the data-pin order (hence the correct key-bit
    value) is randomized unless *select_for_true* pins it.

    The caller is responsible for strategy-level viability; this helper
    enforces only the universal safety conditions:

    * the key input is created if it does not exist yet,
    * adding the decoy edge must not create a combinational loop,
    * *load_gate* must currently read *true_net*.

    Returns:
        The inserted :class:`MuxInstance`.
    """
    if true_net == false_net:
        raise LockingError("true and false nets must differ")
    load = circuit.gate(load_gate)
    if true_net not in load.inputs:
        raise LockingError(
            f"load gate {load_gate!r} does not read {true_net!r}"
        )
    # Decoy edge false_net -> MUX -> load_gate closes a cycle iff load_gate
    # reaches false_net (or is it).
    if false_net == load_gate or false_net in circuit.transitive_fanout(load_gate):
        raise LockingError(
            f"decoy {false_net!r} is in the fan-out cone of {load_gate!r}"
        )

    key_net = key_input_name(key_index)
    if not circuit.has_net(key_net):
        circuit.add_input(key_net)

    if select_for_true is None:
        select_for_true = int(rng.integers(2))
    if select_for_true == 0:
        d0, d1 = true_net, false_net
    else:
        d0, d1 = false_net, true_net

    mux_name = circuit.fresh_name(f"KGMUX{key_index}")
    circuit.add_gate(Gate(mux_name, GateType.MUX, (key_net, d0, d1)))
    circuit.rewire_input(load_gate, true_net, mux_name)
    return MuxInstance(
        mux_name=mux_name,
        key_index=key_index,
        load_gate=load_gate,
        true_net=true_net,
        false_net=false_net,
        select_for_true=select_for_true,
    )
