"""Domain payloads and content keys for the artifact store.

Three artifact families exist:

* **locks** — a :class:`~repro.locking.LockedCircuit`, keyed by the base
  netlist digest + scheme + key size + lock seed.  The circuit is
  serialized *gate order preserving*: attack-graph node indices follow
  ``Circuit.gates`` iteration order, so a BENCH round trip (which
  re-topologicalizes) would silently change every downstream RNG draw —
  the payload therefore records the exact insertion order and is rebuilt
  through :meth:`~repro.netlist.Circuit.from_parts`.
* **attacks** — a :class:`~repro.core.muxlink.MuxLinkResult`, keyed by
  the locked netlist digest + a *semantic* hash of the
  :class:`~repro.core.muxlink.MuxLinkConfig` (post-processing threshold
  and pure execution knobs normalized out, numeric runtime dtype folded
  in).  Per-MUX likelihoods, the loss history, runtimes and the trained
  DGCNN weights are stored as float64/float32 arrays, so a rematerialized
  record is bit-identical to the in-memory one.
* **baselines** — a :class:`~repro.attacks.baseline.BaselineReport`
  from the oracle-less attack zoo (SAAM / SCOPE / SWEEP / random),
  keyed by the locked netlist digest + a per-attack normalized config
  token + (for the supervised SWEEP) the ordered training corpus.
  Because the netlist digest is oracle-less, the training locks'
  *keys* are folded into the address explicitly — a corpus with
  different ground truth is a different trained attack.
* **checkpoints** — :class:`~repro.linkpred.trainer.Trainer` state; the
  trainer builds/consumes that payload itself, through the same codec.

An attack artifact payload is also the **job exchange format** of the
runner's scheduler boundary: a worker (local process today, remote host
tomorrow) receives a lock payload + config, and ships back exactly the
dict that :func:`encode_attack_artifact` produces — the parent decodes
it once and writes it through to the store unchanged.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.locking.common import Locality, LockedCircuit, MuxInstance, Strategy
from repro.netlist import Circuit, Gate, GateType
from repro.netlist.bench import write_bench

__all__ = [
    "attack_store_key",
    "baseline_config_token",
    "baseline_store_key",
    "circuit_digest",
    "config_token",
    "decode_attack_artifact",
    "decode_baseline_artifact",
    "decode_circuit",
    "decode_lock_artifact",
    "encode_attack_artifact",
    "encode_baseline_artifact",
    "encode_circuit",
    "encode_lock_artifact",
    "lock_store_key",
]

#: Bump when the payload layouts below change incompatibly.  Folded into
#: every content key, so a format change invalidates (rather than
#: misreads) existing entries.  Version 2: the config token grew the
#: optimizer choice (plus its K-FAC knobs) and the gradient shard count,
#: and attack histories carry the per-epoch validation AUC.
ARTIFACT_VERSION = 2


def _hexdigest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def circuit_digest(circuit: Circuit) -> str:
    """sha256 of the circuit's canonical BENCH text, comments stripped.

    Comment lines are cosmetic — the ``# <name>`` header would otherwise
    make the digest depend on what a BENCH file happened to be called,
    and a ``#key=`` line would leak the oracle into an oracle-less
    attack's address.  The digest covers exactly the design: inputs,
    outputs, and topologically-ordered gate definitions.
    """
    return _hexdigest(
        "\n".join(
            line
            for line in write_bench(circuit).splitlines()
            if not line.startswith("#")
        )
    )


def config_token(config) -> str:
    """Canonical JSON of every result-affecting attack knob.

    The post-processing ``threshold`` is normalized out (Fig. 9 rescales
    a cached result without retraining) and so are the pure execution
    knobs — ``n_workers``, ``score_prefetch``, ``n_train_workers``,
    checkpoint/log plumbing — which are guaranteed not to move a single
    bit of the result.  The numeric runtime dtype *is* folded in
    (float32 and float64 runs are different artifacts), and so are the
    optimizer choice and the gradient shard count: both change the
    training trajectory.  The K-FAC hyper-parameters appear only when
    the optimizer is ``"kfac"`` — under Adam they are inert, and keying
    on inert knobs would split identical results across addresses.
    """
    from repro.nn import default_dtype

    train = config.train
    train_token: dict[str, Any] = {
        "epochs": train.epochs,
        "learning_rate": train.learning_rate,
        "batch_size": train.batch_size,
        "sortpool_percentile": train.sortpool_percentile,
        "seed": train.seed,
        "patience": train.patience,
        "lr_decay": train.lr_decay,
        "lr_decay_every": train.lr_decay_every,
        "optimizer": train.optimizer,
        "grad_shards": train.grad_shards,
    }
    if train.optimizer == "kfac":
        train_token["kfac"] = {
            "damping": train.kfac_damping,
            "ema_decay": train.kfac_ema_decay,
            "inv_every": train.kfac_inv_every,
            "cov_every": train.kfac_cov_every,
            "max_dim": train.kfac_max_dim,
        }
    return json.dumps(
        {
            "v": ARTIFACT_VERSION,
            "h": config.h,
            "max_train_links": config.max_train_links,
            "val_fraction": config.val_fraction,
            "use_drnl": config.use_drnl,
            "use_gate_types": config.use_gate_types,
            "use_degree": config.use_degree,
            "seed": config.seed,
            "dtype": str(default_dtype()),
            "train": train_token,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def attack_store_key(digest: str, config) -> str:
    """Content address of one trained attack: netlist digest + config hash.

    *digest* is :func:`circuit_digest` of the locked netlist **without**
    the key comment — the attack is oracle-less, and the figure runner
    and ``repro attack --store`` must derive the same address for the
    same design.  Because the digest covers the *canonical* (topological)
    BENCH text, a hit may return an artifact trained on a
    gate-order-permuted copy of the netlist: a valid attack on the same
    design, though node-order-sensitive RNG draws mean it can differ at
    the bit level from what this process would have computed cold.
    """
    return _hexdigest(f"{digest}|{config_token(config)}")


def lock_store_key(
    base_digest: str, scheme: str, key_size: int, lock_seed: int
) -> str:
    """Content address of one locked netlist."""
    return _hexdigest(
        json.dumps(
            {
                "v": ARTIFACT_VERSION,
                "base": base_digest,
                "scheme": scheme,
                "key_size": int(key_size),
                "lock_seed": int(lock_seed),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    )


def baseline_config_token(config) -> str:
    """Canonical JSON of one baseline attack's result-affecting knobs.

    Normalization is per attack: SAAM is knob-free; the random floor is
    seeded only; SCOPE keys on its decision threshold; SWEEP on margin
    and ridge.  ``undecided`` changes the report for SCOPE/SWEEP, and
    the coin ``seed`` is folded in **only** when ``undecided="coin"`` —
    under ``"x"`` the seed is inert, and keying on inert knobs would
    split identical reports across addresses (same rule as the K-FAC
    sub-token in :func:`config_token`).
    """
    attack = config.attack
    knobs: dict[str, Any] = {}
    if attack == "random":
        knobs["seed"] = int(config.seed)
    elif attack == "scope":
        knobs["threshold"] = float(config.threshold)
        knobs["undecided"] = config.undecided
        if config.undecided == "coin":
            knobs["seed"] = int(config.seed)
    elif attack == "sweep":
        knobs["margin"] = float(config.margin)
        knobs["ridge"] = float(config.ridge)
        knobs["undecided"] = config.undecided
        if config.undecided == "coin":
            knobs["seed"] = int(config.seed)
    elif attack != "saam":
        raise ValueError(f"unknown baseline attack {attack!r}")
    return json.dumps(
        {"v": ARTIFACT_VERSION, "attack": attack, **knobs},
        sort_keys=True,
        separators=(",", ":"),
    )


def baseline_store_key(
    digest: str, config, train: tuple[tuple[str, str], ...] = ()
) -> str:
    """Content address of one baseline attack report.

    *digest* is :func:`circuit_digest` of the locked target; *train* is
    the **ordered** SWEEP corpus as ``(lock_digest, key)`` pairs.  Order
    is preserved (the normal-equation reduction is float-order
    sensitive) and the keys appear explicitly because the oracle-less
    circuit digest deliberately excludes them.
    """
    return _hexdigest(
        json.dumps(
            {
                "target": digest,
                "config": baseline_config_token(config),
                "train": [[d, k] for d, k in train],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    )


# ---------------------------------------------------------------------------
# Circuit — gate-order-preserving (see module docstring)
# ---------------------------------------------------------------------------
def encode_circuit(circuit: Circuit) -> dict:
    return {
        "name": circuit.name,
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "gates": [
            [gate.name, gate.gate_type.value, list(gate.inputs)]
            for gate in circuit.gates
        ],
    }


def decode_circuit(payload: dict) -> Circuit:
    return Circuit.from_parts(
        name=payload["name"],
        inputs=list(payload["inputs"]),
        outputs=list(payload["outputs"]),
        gates=[
            Gate(name, GateType(type_value), tuple(inputs))
            for name, type_value, inputs in payload["gates"]
        ],
    )


# ---------------------------------------------------------------------------
# LockedCircuit
# ---------------------------------------------------------------------------
def encode_lock_artifact(locked: LockedCircuit) -> dict:
    return {
        "version": ARTIFACT_VERSION,
        "circuit": encode_circuit(locked.circuit),
        "key": locked.key,
        "scheme": locked.scheme,
        "original_name": locked.original_name,
        "localities": [
            {
                "strategy": locality.strategy.value,
                "muxes": [
                    {
                        "mux_name": mux.mux_name,
                        "key_index": mux.key_index,
                        "load_gate": mux.load_gate,
                        "true_net": mux.true_net,
                        "false_net": mux.false_net,
                        "select_for_true": mux.select_for_true,
                    }
                    for mux in locality.muxes
                ],
            }
            for locality in locked.localities
        ],
    }


def decode_lock_artifact(payload: dict) -> LockedCircuit:
    return LockedCircuit(
        circuit=decode_circuit(payload["circuit"]),
        key=payload["key"],
        localities=[
            Locality(
                strategy=Strategy(loc["strategy"]),
                muxes=tuple(
                    MuxInstance(
                        mux_name=mux["mux_name"],
                        key_index=int(mux["key_index"]),
                        load_gate=mux["load_gate"],
                        true_net=mux["true_net"],
                        false_net=mux["false_net"],
                        select_for_true=int(mux["select_for_true"]),
                    )
                    for mux in loc["muxes"]
                ),
            )
            for loc in payload["localities"]
        ],
        scheme=payload["scheme"],
        original_name=payload["original_name"],
    )


# ---------------------------------------------------------------------------
# MuxLinkResult
# ---------------------------------------------------------------------------
def encode_attack_artifact(result) -> dict:
    """Serialize a :class:`~repro.core.muxlink.MuxLinkResult`.

    The attack graph is *not* persisted (it is cheap to re-derive from
    the locked netlist and nothing downstream of the runner reads it);
    the trained DGCNN weights are, so a rematerialized result can rescore
    and re-predict.  Likelihoods, losses and runtimes are stored as
    float64 npz entries — bit-exact round trips by construction.
    """
    import numpy as np

    scored = result.scored
    model = result.model
    payload: dict[str, Any] = {
        "version": ARTIFACT_VERSION,
        "predicted_key": result.predicted_key,
        "n_key_bits": int(result.n_key_bits),
        "scored": {
            "mux_name": [s.mux_name for s in scored],
            "key_index": np.array([s.key_index for s in scored], dtype=np.int64),
            "load": np.array([s.load for s in scored], dtype=np.int64),
            "d0": np.array([s.drivers[0] for s in scored], dtype=np.int64),
            "d1": np.array([s.drivers[1] for s in scored], dtype=np.int64),
            "l0": np.array([s.likelihoods[0] for s in scored], dtype=np.float64),
            "l1": np.array([s.likelihoods[1] for s in scored], dtype=np.float64),
        },
        "history": {
            "train_loss": np.array(result.history.train_loss, dtype=np.float64),
            "val_loss": np.array(result.history.val_loss, dtype=np.float64),
            "val_accuracy": np.array(
                result.history.val_accuracy, dtype=np.float64
            ),
            "val_auc": np.array(result.history.val_auc, dtype=np.float64),
            "learning_rates": np.array(
                result.history.learning_rates, dtype=np.float64
            ),
            "best_epoch": int(result.history.best_epoch),
            "best_val_accuracy": float(result.history.best_val_accuracy),
            "best_val_loss": float(result.history.best_val_loss),
            "stopped_early": bool(result.history.stopped_early),
        },
        "runtime_seconds": {
            stage: float(seconds)
            for stage, seconds in result.runtime_seconds.items()
        },
    }
    if model is not None:
        payload["model"] = {
            "in_features": int(model.gc_layers[0].weight.data.shape[0]),
            "k": int(model.k),
            "state": model.state_dict(),
        }
    return payload


def decode_attack_artifact(payload: dict):
    """Rebuild a :class:`~repro.core.muxlink.MuxLinkResult` from a payload.

    ``graph`` comes back as ``None`` (re-derive it from the locked
    netlist when needed); the model is reconstructed from its persisted
    weights in eval mode.
    """
    # Local imports: repro.core imports repro.store at module load, so
    # pulling core symbols in at *this* module's load would be a cycle.
    from repro.core.muxlink import MuxLinkResult
    from repro.core.postprocess import ScoredMux
    from repro.gnn import DGCNN
    from repro.linkpred import TrainHistory

    sc = payload["scored"]
    scored = [
        ScoredMux(
            mux_name=name,
            key_index=int(key_index),
            load=int(load),
            drivers=(int(d0), int(d1)),
            likelihoods=(float(l0), float(l1)),
        )
        for name, key_index, load, d0, d1, l0, l1 in zip(
            sc["mux_name"], sc["key_index"], sc["load"],
            sc["d0"], sc["d1"], sc["l0"], sc["l1"],
        )
    ]
    hist = payload["history"]
    history = TrainHistory(
        train_loss=[float(x) for x in hist["train_loss"]],
        val_loss=[float(x) for x in hist["val_loss"]],
        val_accuracy=[float(x) for x in hist["val_accuracy"]],
        # .get: version-1 artifacts predate per-epoch AUC tracking.
        val_auc=[float(x) for x in hist.get("val_auc", [])],
        learning_rates=[float(x) for x in hist["learning_rates"]],
        best_epoch=int(hist["best_epoch"]),
        best_val_accuracy=float(hist["best_val_accuracy"]),
        best_val_loss=float(hist["best_val_loss"]),
        stopped_early=bool(hist["stopped_early"]),
    )
    model = None
    if "model" in payload:
        spec = payload["model"]
        model = DGCNN(in_features=int(spec["in_features"]), k=int(spec["k"]))
        model.load_state_dict(list(spec["state"]))
        model.eval()
    return MuxLinkResult(
        predicted_key=payload["predicted_key"],
        scored=scored,
        n_key_bits=int(payload["n_key_bits"]),
        history=history,
        runtime_seconds={
            stage: float(seconds)
            for stage, seconds in payload["runtime_seconds"].items()
        },
        graph=None,
        model=model,
    )


# ---------------------------------------------------------------------------
# BaselineReport
# ---------------------------------------------------------------------------
def encode_baseline_artifact(report) -> dict:
    """Serialize a :class:`~repro.attacks.baseline.BaselineReport`.

    Per-bit scores travel as sorted parallel int64/float64 arrays —
    bit-exact round trips, same discipline as the attack artifact.
    """
    import numpy as np

    bits = sorted(report.scores)
    return {
        "version": ARTIFACT_VERSION,
        "attack": report.attack,
        "predicted_key": report.predicted_key,
        "score_bits": np.array(bits, dtype=np.int64),
        "score_values": np.array(
            [report.scores[bit] for bit in bits], dtype=np.float64
        ),
        "n_blind": int(report.n_blind),
        "runtime_seconds": float(report.runtime_seconds),
    }


def decode_baseline_artifact(payload: dict):
    """Rebuild a :class:`~repro.attacks.baseline.BaselineReport`."""
    from repro.attacks.baseline import BaselineReport

    return BaselineReport(
        attack=str(payload["attack"]),
        predicted_key=str(payload["predicted_key"]),
        scores={
            int(bit): float(value)
            for bit, value in zip(
                payload["score_bits"], payload["score_values"]
            )
        },
        n_blind=int(payload["n_blind"]),
        runtime_seconds=float(payload["runtime_seconds"]),
    )
