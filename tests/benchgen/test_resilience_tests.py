"""Tests for the ANT/RNT learning-resilience harness."""

from repro.benchgen.resilience_tests import (
    run_ant,
    run_resilience_suite,
    run_rnt,
)
from repro.locking import lock_dmux, lock_xor


def test_dmux_passes_both_tests():
    ant, rnt = run_resilience_suite(lock_dmux, key_size=8, seed=1)
    assert ant.test == "ANT" and rnt.test == "RNT"
    assert ant.passed, f"D-MUX failed ANT with KPA {ant.kpa:.3f}"
    assert rnt.passed, f"D-MUX failed RNT with KPA {rnt.kpa:.3f}"
    assert ant.n_bits > 0


def test_xor_fails_rnt():
    """Conventional XOR locking leaks the key-gate type; the supervised
    probe recovers far more than half the bits."""
    report = run_rnt(lock_xor, key_size=8, seed=2)
    assert not report.passed
    assert report.kpa > 0.8


def test_xor_fails_ant():
    report = run_ant(lock_xor, key_size=8, seed=3)
    assert not report.passed
    assert report.kpa > 0.8


def test_reports_are_deterministic():
    a = run_ant(lock_dmux, key_size=6, seed=5)
    b = run_ant(lock_dmux, key_size=6, seed=5)
    assert a == b
