"""``repro serve`` — the long-running attack-as-a-service front end.

One selector loop (reusing the :class:`repro.bus.socketbus._Server`
plumbing and the length-prefixed codec frames of the job bus) owns three
kinds of peers on a single listening port:

* **clients** (:class:`repro.client.ServeClient`) submit content-keyed
  requests: ``{op: submit, key, job, wait}`` where *key* is exactly the
  runner's :func:`~repro.store.artifacts.attack_store_key` address and
  *job* is the :func:`~repro.bus.protocol.encode_job` payload.  The
  server answers ``{op: accepted, status}`` immediately and a
  ``{op: result, ...}`` frame when the artifact exists (``wait=True``).
* **workers** (``repro worker --serve-addr``) announce themselves with
  ``{op: hello, role: worker, pipeline: N}`` and then receive **pushed**
  ``{op: job, ...}`` frames, up to *pipeline* in flight per connection —
  the worker executes serially, but the next job is already buffered in
  its socket when the current one finishes, so the lease round-trip of
  the per-job :class:`~repro.bus.socketbus.SocketBus` disappears.
* **remote stores** (:class:`repro.store.remote.RemoteStore`) read and
  write raw artifact blobs (``store-get`` / ``store-put`` /
  ``store-has``) against the server's on-disk
  :class:`~repro.store.ArtifactStore`, so workers and clients on other
  hosts need no shared filesystem.

The warm path is three tiers: an in-memory LRU of decoded result
payloads, then the on-disk store, then scheduling.  An identical request
already executing **coalesces** — K clients asking for one key train it
exactly once and all receive the result frame.  Failure semantics follow
the bus: a failed attempt requeues until ``max_attempts``, a dead worker
connection requeues its whole in-flight window, and a worker fleet
silent for longer than the liveness deadline fails queued jobs over to
in-process execution (one at a time, on a helper thread) instead of
hanging clients forever.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro import faults
from repro.bus.protocol import (
    DEFAULT_LIVENESS,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_PIPELINE,
    DEFAULT_POLL,
    RetryPolicy,
    decode_job,
    job_artifact_kind,
)
from repro.bus.socketbus import _Connection, _Server
from repro.errors import ReproError
from repro.store import ArtifactStore, resolve_store

__all__ = ["AttackServer", "ServeError", "ServeStats"]

#: In-memory result-cache size (decoded artifact payloads).
DEFAULT_CACHE_ENTRIES = 256


class ServeError(ReproError):
    """The serve endpoint refused or could not satisfy a request."""


@dataclass
class ServeStats:
    """Counters for one server lifetime (mirrored into CI summaries).

    ``scheduled`` counts *unique* jobs that went to the worker fleet —
    the coalescing tests assert ``scheduled == 1`` while ``requests``
    counts every client submit, and ``memory_hits + store_hits`` are the
    warm tiers that answered without touching the fleet.
    """

    requests: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    coalesced: int = 0
    scheduled: int = 0
    completed: int = 0
    failed: int = 0
    requeues: int = 0
    failed_over: int = 0
    store_gets: int = 0
    store_puts: int = 0

    def as_payload(self) -> dict:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "coalesced": self.coalesced,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "failed": self.failed,
            "requeues": self.requeues,
            "failed_over": self.failed_over,
            "store_gets": self.store_gets,
            "store_puts": self.store_puts,
        }

    def summary(self) -> str:
        text = (
            f"requests={self.requests} "
            f"hits={self.memory_hits}+{self.store_hits} "
            f"coalesced={self.coalesced} scheduled={self.scheduled} "
            f"completed={self.completed} failed={self.failed} "
            f"requeues={self.requeues}"
        )
        if self.failed_over:
            text += f" failed-over={self.failed_over}"
        return text


class _ServeListener(_Server):
    """The serve socket front end: accepts honor ``serve.accept_drop``."""

    def _accepted(self, sock) -> bool:
        return faults.fire("serve.accept_drop") is None


@dataclass
class _Request:
    """One unique in-flight key and everyone waiting on it."""

    key: str
    job: dict  # encoded job payload (the wire/spool shape)
    kind: str  # artifact store kind the result lands under
    attempt: int = 0
    failing_over: bool = False
    waiters: list[_Connection] = field(default_factory=list)


@dataclass
class _WorkerLink:
    """Server-side state of one persistent pipelined worker connection."""

    pipeline: int
    inflight: deque = field(default_factory=deque)  # keys, dispatch order


class AttackServer:
    """The ``repro serve`` loop: warm cache, store, coalescing, fleet."""

    def __init__(
        self,
        address: str,
        store: "ArtifactStore | str | os.PathLike",
        max_attempts: int | None = None,
        liveness: float | None = DEFAULT_LIVENESS,
        poll: float = DEFAULT_POLL,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        retry: RetryPolicy | None = None,
        log=print,
    ) -> None:
        resolved = resolve_store(store)
        if not isinstance(resolved, ArtifactStore):
            raise ServeError(
                "repro serve needs a local artifact store directory "
                "(it *is* the remote end of remote:// stores)"
            )
        self.store = resolved
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._server = _ServeListener(
            address, read_timeout=self.retry.read_timeout
        )
        self.address = self._server.address
        self.poll = float(poll)
        self.max_attempts = int(
            DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
        )
        self.liveness = float(liveness) if liveness else None
        self.log = log
        self.stats = ServeStats()
        self.requests: dict[str, _Request] = {}
        self.queue: deque[str] = deque()  # keys awaiting dispatch
        self.workers: dict[_Connection, _WorkerLink] = {}
        self._cache: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self._cache_entries = int(cache_entries)
        self._inbox: deque = deque()  # fail-over thread -> loop
        self._inbox_lock = threading.Lock()
        self._failover_busy = False
        self._stop = False

    # -- the loop ------------------------------------------------------------
    def serve_forever(
        self,
        idle_timeout: float | None = None,
        max_requests: int | None = None,
    ) -> ServeStats:
        """Run until shut down over the wire, idle, or *max_requests*.

        *idle_timeout* counts seconds with no frames and no outstanding
        requests (``None`` = forever); *max_requests* stops once that
        many submits have been taken **and** all of them settled — both
        are test/bench conveniences, the daemon deployment uses neither.
        """
        last_activity = time.monotonic()
        last_progress = last_activity
        try:
            while not self._stop:
                events = self._server.poll(self.poll)
                for connection, messages in events:
                    if messages is None:
                        self._disconnect(connection)
                        continue
                    for message in messages:
                        self._handle(connection, message)
                self._drain_inbox()
                self._pump()
                now = time.monotonic()
                busy = self._failover_busy or any(
                    link.inflight for link in self.workers.values()
                )
                if events or busy:
                    last_activity = last_progress = now
                elif self.queue:
                    if (
                        self.liveness is not None
                        and now - last_progress > self.liveness
                    ):
                        self._start_failover()
                else:
                    last_progress = now
                if (
                    max_requests is not None
                    and self.stats.requests >= max_requests
                    and not self.requests
                ):
                    break
                if (
                    idle_timeout is not None
                    and not self.requests
                    and now - last_activity > idle_timeout
                ):
                    break
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return self.stats

    def close(self) -> None:
        self._server.close()

    # -- message dispatch ----------------------------------------------------
    def _handle(self, connection: _Connection, message: dict) -> None:
        op = message.get("op")
        if op == "submit":
            self._handle_submit(connection, message)
        elif op == "wait":
            self._handle_wait(connection, message)
        elif op == "hello":
            pipeline = max(1, int(message.get("pipeline", DEFAULT_PIPELINE)))
            self.workers[connection] = _WorkerLink(pipeline=pipeline)
            self.log(
                f"serve: worker connected (pipeline {pipeline}, "
                f"{len(self.workers)} total)"
            )
        elif op == "done":
            self._handle_done(connection, message)
        elif op == "failed":
            key = str(message["key"])
            self._worker_settled(connection, key)
            self._fail_attempt(key, str(message.get("traceback", "")))
        elif op == "store-has":
            kind, key = str(message["kind"]), str(message["key"])
            connection.send(
                {"op": "store-has", "key": key, "has": self.store.has(kind, key)}
            )
        elif op == "store-get":
            self._handle_store_get(connection, message)
        elif op == "store-put":
            self._handle_store_put(connection, message)
        elif op == "stats":
            connection.send({"op": "stats", "stats": self.stats.as_payload()})
        elif op == "ping":
            connection.send({"op": "pong"})
        elif op == "shutdown":
            connection.send({"op": "bye"})
            self._stop = True
        # unknown ops are ignored: wire compatibility over strictness

    def _handle_submit(self, connection: _Connection, message: dict) -> None:
        key = str(message["key"])
        wait = bool(message.get("wait", False))
        job_payload = message["job"]
        kind = job_artifact_kind(
            str(job_payload.get("kind", "attack"))
            if isinstance(job_payload, dict)
            else "attack"
        )
        self.stats.requests += 1
        payload = self._lookup(kind, key)
        if payload is not None:
            connection.send({"op": "accepted", "key": key, "status": "hit"})
            if wait:
                self._send_result(connection, key, kind, payload)
            return
        request = self.requests.get(key)
        if request is not None:
            self.stats.coalesced += 1
            if wait:
                request.waiters.append(connection)
            connection.send(
                {"op": "accepted", "key": key, "status": "coalesced"}
            )
            return
        request = _Request(key=key, job=job_payload, kind=kind)
        if wait:
            request.waiters.append(connection)
        self.requests[key] = request
        self.queue.append(key)
        self.stats.scheduled += 1
        connection.send({"op": "accepted", "key": key, "status": "queued"})

    def _handle_wait(self, connection: _Connection, message: dict) -> None:
        key = str(message["key"])
        kind = str(message.get("kind", "attacks"))
        payload = self._lookup(kind, key, count_request=False)
        if payload is not None:
            self._send_result(connection, key, kind, payload)
            return
        request = self.requests.get(key)
        if request is not None:
            request.waiters.append(connection)
            return
        connection.send(
            {
                "op": "result",
                "key": key,
                "ok": False,
                "error": f"unknown request key {key[:12]}… (never submitted?)",
            }
        )

    def _handle_done(self, connection: _Connection, message: dict) -> None:
        key = str(message["key"])
        self._worker_settled(connection, key)
        request = self.requests.get(key)
        if request is None:
            return  # settled elsewhere (fail-over raced a live worker)
        self._complete(key, message["result"])

    def _handle_store_get(self, connection: _Connection, message: dict) -> None:
        import numpy as np

        kind, key = str(message["kind"]), str(message["key"])
        self.stats.store_gets += 1
        try:
            blob = self.store.path_for(kind, key).read_bytes()
        except (FileNotFoundError, OSError):
            connection.send(
                {"op": "store-blob", "key": key, "found": False, "blob": None}
            )
            return
        connection.send(
            {
                "op": "store-blob",
                "key": key,
                "found": True,
                # codec payloads carry no raw bytes: ship the file image
                # as a uint8 array, byte-for-byte what the store holds.
                "blob": np.frombuffer(blob, dtype=np.uint8),
            }
        )

    def _handle_store_put(self, connection: _Connection, message: dict) -> None:
        from repro.store import codec

        kind, key = str(message["kind"]), str(message["key"])
        self.stats.store_puts += 1
        blob = message["blob"]
        try:
            payload = codec.loads(blob.tobytes(), kind=kind)
            self.store.put(kind, key, payload)
        except Exception as exc:
            connection.send(
                {"op": "store-ok", "key": key, "ok": False, "error": str(exc)}
            )
            return
        connection.send({"op": "store-ok", "key": key, "ok": True})

    # -- warm tiers ----------------------------------------------------------
    def _lookup(
        self, kind: str, key: str, count_request: bool = True
    ) -> dict | None:
        """Memory tier, then store tier; ``None`` = genuinely cold."""
        cached = self._cache.get((kind, key))
        if cached is not None:
            self._cache.move_to_end((kind, key))
            if count_request:
                self.stats.memory_hits += 1
            return cached
        payload = self.store.get(kind, key) if self.store.has(kind, key) else None
        if payload is None:
            return None  # miss, or corrupt (store warned); recompute
        if count_request:
            self.stats.store_hits += 1
        self._cache_put(kind, key, payload)
        return payload

    def _cache_put(self, kind: str, key: str, payload: dict) -> None:
        self._cache[(kind, key)] = payload
        self._cache.move_to_end((kind, key))
        while len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)

    # -- fleet ---------------------------------------------------------------
    def _pump(self) -> None:
        """Push queued keys onto the least-loaded worker with free depth."""
        while self.queue:
            picked: tuple[_Connection, _WorkerLink] | None = None
            for connection, link in self.workers.items():
                if len(link.inflight) >= link.pipeline:
                    continue
                if picked is None or len(link.inflight) < len(
                    picked[1].inflight
                ):
                    picked = (connection, link)
            if picked is None:
                return  # fleet at capacity (or empty)
            if (
                len(self.workers) > 1
                and picked[1].inflight
                and len(self.queue) <= len(self.workers)
            ):
                # Tail-aware depth: buffering a second job behind a
                # busy worker hides the dispatch round-trip while the
                # queue can still keep every worker fed, but near the
                # end of the queue it locks jobs onto workers early and
                # forfeits the pull scheduler's natural load balance —
                # with millisecond dispatch and 100ms-plus jobs the
                # lock-in costs more than the round-trip it hides.
                return
            key = self.queue.popleft()
            request = self.requests.get(key)
            if request is None or request.failing_over:
                continue  # settled (or adopted by fail-over) while queued
            connection, link = picked
            if not connection.send(
                {
                    "op": "job",
                    "key": key,
                    "attempt": request.attempt,
                    "job": request.job,
                }
            ):
                self.queue.appendleft(key)
                self._disconnect(connection)
                continue
            link.inflight.append(key)

    def _worker_settled(self, connection: _Connection, key: str) -> None:
        link = self.workers.get(connection)
        if link is not None:
            try:
                link.inflight.remove(key)
            except ValueError:
                pass

    def _disconnect(self, connection: _Connection) -> None:
        link = self.workers.pop(connection, None)
        if link is not None and link.inflight:
            self.log(
                f"serve: worker connection lost with "
                f"{len(link.inflight)} job(s) in flight — requeueing"
            )
            for key in list(link.inflight):
                self._fail_attempt(key, "worker connection lost mid-job")
        for request in self.requests.values():
            request.waiters = [
                w for w in request.waiters if w is not connection
            ]
        self._server.drop(connection)

    # -- settle --------------------------------------------------------------
    def _complete(self, key: str, payload: dict) -> None:
        request = self.requests.pop(key, None)
        if request is None:
            return
        self.store.put(request.kind, key, payload)
        self._cache_put(request.kind, key, payload)
        self.stats.completed += 1
        for waiter in request.waiters:
            self._send_result(waiter, key, request.kind, payload)
        self.log(f"serve: completed {key[:12]}…")

    def _fail_attempt(self, key: str, error: str) -> None:
        request = self.requests.get(key)
        if request is None:
            return
        request.attempt += 1
        if request.attempt >= self.max_attempts:
            self.requests.pop(key)
            try:
                self.queue.remove(key)
            except ValueError:
                pass
            self.stats.failed += 1
            self.log(
                f"serve: {key[:12]}… failed terminally after "
                f"{request.attempt} attempt(s)"
            )
            for waiter in request.waiters:
                waiter.send(
                    {"op": "result", "key": key, "ok": False, "error": error}
                )
        else:
            self.stats.requeues += 1
            if key not in self.queue:
                self.queue.append(key)

    def _send_result(
        self, connection: _Connection, key: str, kind: str, payload: dict
    ) -> None:
        connection.send(
            {
                "op": "result",
                "key": key,
                "ok": True,
                "kind": kind,
                "result": payload,
            }
        )

    # -- graceful degradation ------------------------------------------------
    def _start_failover(self) -> None:
        """No live fleet and the liveness deadline passed: degrade.

        One queued key at a time executes on a helper thread (so the
        loop keeps answering pings, submits and store ops) and settles
        through the inbox.  A worker fleet coming back mid-fail-over
        simply picks up the rest of the queue.
        """
        if self._failover_busy or not self.queue:
            return
        key = self.queue.popleft()
        request = self.requests.get(key)
        if request is None:
            return
        request.failing_over = True
        self._failover_busy = True
        self.stats.failed_over += 1
        self.log(
            f"serve: no worker progress for {self.liveness:.0f}s — "
            f"executing {key[:12]}… in-process"
        )
        job_payload = request.job

        def _run() -> None:
            try:
                from repro.experiments.runner import execute_job

                payload = execute_job(decode_job(job_payload))
                outcome = (key, payload, None)
            except Exception:
                outcome = (key, None, traceback.format_exc())
            with self._inbox_lock:
                self._inbox.append(outcome)
            self._failover_busy = False

        threading.Thread(target=_run, daemon=True).start()

    def _drain_inbox(self) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                key, payload, error = self._inbox.popleft()
            request = self.requests.get(key)
            if request is not None:
                request.failing_over = False
            if payload is not None:
                self._complete(key, payload)
            else:
                # In-process execution is the last resort — a failure
                # here is terminal regardless of the attempt budget.
                if request is not None:
                    request.attempt = self.max_attempts - 1
                self._fail_attempt(key, error or "fail-over execution failed")
