"""Job-bus bench: spool / socket fan-out vs serial, with overhead per job.

Runs a >= 4-job smoke-derived fig7 grid (two benchmarks x two schemes x
two key sizes -> 8 unique attacks) through three execution paths:

* **serial**  — ``ExperimentRunner(jobs=0)``, the reproducible baseline;
* **spool**   — ``WORKERS`` real ``repro worker`` processes draining a
  spool directory, coordinator adopting results from the shared store;
* **socket**  — the same workers connected to the coordinator's
  embedded TCP queue (no shared filesystem in the job path).

All three paths must produce **bit-identical** record fingerprints
(asserted).  Wall-clock per path plus the coordinator's pure bus
overhead per job (submit + adopt seconds — never worker compute, from
:class:`repro.bus.BusStats`) is printed and recorded under the
``bench_bus`` section of ``BENCH_training.json``.

``REPRO_BENCH_BUS_MIN_SPEEDUP`` (default ``0`` = no gate; the multicore
ROADMAP run uses ``2``) arms a floor on the distributed speedup — the
job-level fan-out is where this host's cores pay off, per the measured
``auto`` worker policy in ``repro.experiments.common``.

Run standalone::

    REPRO_BENCH_BUS_MIN_SPEEDUP=2 python benchmarks/bench_bus.py

or under pytest::

    pytest benchmarks/bench_bus.py -s
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import tempfile
import time
from dataclasses import replace

from perf_record import update_record
from repro.bus import SocketBus, SpoolBus, SpoolDir
from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    fig7_cells,
    record_fingerprint,
)
from repro.store import ArtifactStore

WORKERS = int(os.environ.get("REPRO_BENCH_BUS_WORKERS", "4"))
#: Spool workers claim this many jobs per directory scan (PR 10): the
#: measured ~122ms/job spool overhead is mostly per-lease filesystem
#: round-trips, so batching amortizes it across the batch.
LEASE_BATCH = int(os.environ.get("REPRO_BENCH_BUS_LEASE_BATCH", "2"))
#: 0 disables the gate (CI containers are too small to win); the
#: multicore measurement run arms it at 2.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_BUS_MIN_SPEEDUP", "0"))

#: >= 4 unique jobs: 2 benchmarks x 2 schemes x 2 key sizes.  The hop
#: count, circuit scale, and epoch budget are raised well past smoke so
#: each job carries ~2s of real work — the fan-out bench measures job
#: distribution, and sub-second jobs would measure codec and poll
#: latency instead of what the bus buys on a multicore host.
GRID_SCALE = replace(
    SMOKE_SCALE,
    name="bench-bus",
    iscas=("c1355", "c1908"),
    iscas_keys=(6, 8),
    h=3,
    circuit_scale_iscas=float(os.environ.get("REPRO_BENCH_BUS_SCALE", "0.3")),
    epochs=int(os.environ.get("REPRO_BENCH_BUS_EPOCHS", "15")),
)

_SRC_ROOT = str(pathlib.Path(__file__).resolve().parents[1] / "src")
_ENV = {"PATH": "/usr/bin:/bin", "PYTHONPATH": _SRC_ROOT, "PYTHONHASHSEED": "0"}


def _start_workers(args: list[str]) -> list[subprocess.Popen]:
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-u",  # pipe stdout is block-buffered; the readiness
                "-m",  # handshake below needs the first log line now
                "repro.cli",
                "worker",
                "--poll",
                "0.05",
                "--idle-timeout",
                "600",
                *args,
            ],
            env=_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        for _ in range(WORKERS)
    ]
    # Each worker logs one line the moment its imports finish and the
    # loop starts; waiting for it keeps interpreter startup out of the
    # timed section — a deployed worker fleet is long-lived.
    for worker in workers:
        worker.stdout.readline()
    return workers


def _stop_workers(workers: list[subprocess.Popen]) -> None:
    for worker in workers:
        worker.terminate()
    for worker in workers:
        worker.wait(timeout=60)


def _timed_run(runner: ExperimentRunner, cells) -> tuple[list, float]:
    start = time.perf_counter()
    records = runner.run(cells)
    seconds = time.perf_counter() - start
    return [record_fingerprint(r) for r in records], seconds


def _overhead_ms(bus) -> float:
    if not bus.stats.completed:
        return 0.0
    return (
        (bus.stats.submit_seconds + bus.stats.adopt_seconds)
        / bus.stats.completed
        * 1000.0
    )


def test_bus_fanout_speedup_and_overhead():
    cells = fig7_cells(GRID_SCALE, seed=0)
    cores = os.cpu_count()

    serial = ExperimentRunner(jobs=0)
    reference, serial_s = _timed_run(serial, cells)
    jobs = serial.stats.attacks_computed
    assert jobs >= 4, f"grid too small for a fan-out bench ({jobs} jobs)"
    serial.close()
    print(
        f"\n[bench_bus] {jobs} jobs, {WORKERS} workers, {cores} cores: "
        f"serial {serial_s:.1f}s"
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)

        spool_store = ArtifactStore(tmp / "store-spool")
        spool = SpoolDir(tmp / "spool")
        workers = _start_workers(
            [
                "--bus-dir", str(spool.root),
                "--store", str(spool_store.root),
                "--lease-batch", str(LEASE_BATCH),
            ]
        )
        try:
            runner = ExperimentRunner(
                store=spool_store,
                bus=SpoolBus(spool, spool_store, poll=0.05, timeout=600),
            )
            spool_fp, spool_s = _timed_run(runner, cells)
            spool_overhead = _overhead_ms(runner.bus)
            spool_stats = runner.bus.stats
            runner.close()
        finally:
            _stop_workers(workers)
        assert spool_fp == reference, "spool results diverged from serial"
        assert spool_stats.requeues == 0 and spool_stats.quarantined == 0

        socket_store = ArtifactStore(tmp / "store-socket")
        bus = SocketBus(poll=0.05, timeout=600)
        workers = _start_workers(["--bus-addr", bus.address])
        try:
            runner = ExperimentRunner(store=socket_store, bus=bus)
            socket_fp, socket_s = _timed_run(runner, cells)
            socket_overhead = _overhead_ms(runner.bus)
            runner.close()
        finally:
            _stop_workers(workers)
        assert socket_fp == reference, "socket results diverged from serial"

    spool_speedup = serial_s / spool_s
    socket_speedup = serial_s / socket_s
    print(
        f"  spool : {spool_s:.1f}s ({spool_speedup:.2f}x), "
        f"bus overhead {spool_overhead:.1f}ms/job"
    )
    print(
        f"  socket: {socket_s:.1f}s ({socket_speedup:.2f}x), "
        f"bus overhead {socket_overhead:.1f}ms/job"
    )

    update_record(
        "bench_bus",
        {
            "jobs": jobs,
            "workers": WORKERS,
            "cores": cores,
            "serial_s": round(serial_s, 2),
            "serial_s_per_job": round(serial_s / jobs, 3),
            "spool": {
                "seconds": round(spool_s, 2),
                "speedup": round(spool_speedup, 2),
                "bus_overhead_ms_per_job": round(spool_overhead, 2),
                "lease_batch": LEASE_BATCH,
            },
            "socket": {
                "seconds": round(socket_s, 2),
                "speedup": round(socket_speedup, 2),
                "bus_overhead_ms_per_job": round(socket_overhead, 2),
            },
            "bit_identical": True,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    if MIN_SPEEDUP:
        assert spool_speedup >= MIN_SPEEDUP, (
            f"spool bus {spool_speedup:.2f}x over serial; "
            f"needs >= {MIN_SPEEDUP}x with {WORKERS} workers on "
            f"{cores} cores"
        )
        assert socket_speedup >= MIN_SPEEDUP, (
            f"socket bus {socket_speedup:.2f}x over serial; "
            f"needs >= {MIN_SPEEDUP}x with {WORKERS} workers on "
            f"{cores} cores"
        )


if __name__ == "__main__":
    test_bus_fanout_speedup_and_overhead()
    print("bench_bus: OK")
