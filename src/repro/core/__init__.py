"""MuxLink core: attack orchestration, post-processing, metrics, recovery."""

from repro.core.metrics import KeyMetrics, aggregate_metrics, score_key
from repro.core.muxlink import (
    MuxLinkConfig,
    MuxLinkResult,
    rescore_key,
    run_muxlink,
)
from repro.core.postprocess import (
    ScoredMux,
    decisions_to_key,
    ensemble_likelihoods,
    postprocess_likelihoods,
)
from repro.core.reconstruct import hamming_with_x, recover_design

__all__ = [
    "MuxLinkConfig",
    "MuxLinkResult",
    "run_muxlink",
    "rescore_key",
    "ScoredMux",
    "ensemble_likelihoods",
    "postprocess_likelihoods",
    "decisions_to_key",
    "KeyMetrics",
    "score_key",
    "aggregate_metrics",
    "recover_design",
    "hamming_with_x",
]
