"""Deceptive MUX-based locking — D-MUX (Sisejkovic et al., TCAD 2021).

Implements the four locking strategies of paper Fig. 4 and the cost-aware
**eD-MUX** policy (S1–S3 preferred at random, S4 only as a fallback since it
spends two MUXes per key bit).

Scheme guarantees enforced constructively:

* **no key leakage** — MUX data-pin order (hence the correct key-bit value)
  is uniformly random;
* **no circuit reduction** — every strategy keeps both source nets loaded
  for any single hard-coded key bit;
* **no combinational loops** — decoy edges are checked against the live
  netlist before insertion, with rollback when the second MUX of a pair
  turns out to be unsafe.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LockingError
from repro.locking.common import (
    Locality,
    LockedCircuit,
    MuxInstance,
    Strategy,
    insert_key_mux,
)
from repro.locking.keys import format_key, key_input_name
from repro.netlist import Circuit, GateType

__all__ = ["lock_dmux", "DMUX_SCHEME"]

DMUX_SCHEME = "D-MUX"

#: Sampling attempts per strategy before it is declared non-viable
#: for the current step.
_TRIES = 80


def _undo_mux(circuit: Circuit, mux: MuxInstance, key_was_new: bool) -> None:
    """Roll back one :func:`insert_key_mux`."""
    circuit.rewire_input(mux.load_gate, mux.mux_name, mux.true_net)
    circuit.remove_gate(mux.mux_name)
    if key_was_new and not circuit.fanout(mux.key_name):
        circuit.remove_input(mux.key_name)


def _source_nets(circuit: Circuit) -> list[str]:
    """Nets eligible as locking sources: gate-driven, not key MUXes."""
    return [
        name
        for name in circuit.gate_names
        if circuit.gate(name).gate_type is not GateType.MUX
    ]


def _gate_loads(circuit: Circuit, net: str) -> list[str]:
    """Loads of *net* that are lockable gates (non-MUX)."""
    return [
        load
        for load in circuit.fanout(net)
        if circuit.gate(load).gate_type is not GateType.MUX
    ]


def _pick(rng: np.random.Generator, items: list[str]) -> str:
    return items[int(rng.integers(len(items)))]


def _insert_pair(
    circuit: Circuit,
    ki: int,
    kj: int,
    fi: str,
    fj: str,
    gi: str,
    gj: str,
    rng: np.random.Generator,
    same_order: bool,
) -> tuple[MuxInstance, MuxInstance]:
    """Insert the two MUXes of a pair strategy atomically.

    *same_order* (S1/S5) wires both MUXes with identical data-pin order, so
    the two correct key bits are complementary; S4 reverses the order on the
    second MUX, making one key value pass both true wires.
    """
    select_i = int(rng.integers(2))
    select_j = (1 - select_i) if same_order else select_i
    key_i_new = not circuit.has_net(key_input_name(ki))
    mux_i = insert_key_mux(
        circuit, ki, true_net=fi, false_net=fj, load_gate=gi,
        rng=rng, select_for_true=select_i,
    )
    try:
        mux_j = insert_key_mux(
            circuit, kj, true_net=fj, false_net=fi, load_gate=gj,
            rng=rng, select_for_true=select_j,
        )
    except LockingError:
        _undo_mux(circuit, mux_i, key_i_new)
        raise
    return mux_i, mux_j


def _try_s1(
    circuit: Circuit, ki: int, kj: int, rng: np.random.Generator
) -> Locality | None:
    """S1: two multi-output sources, two key bits, two MUXes."""
    multi = [n for n in _source_nets(circuit) if circuit.fanout_size(n) > 1]
    for _ in range(_TRIES):
        if len(multi) < 2:
            return None
        fi, fj = _pick(rng, multi), _pick(rng, multi)
        if fi == fj:
            continue
        loads_i = [g for g in _gate_loads(circuit, fi) if g != fj]
        loads_j = [g for g in _gate_loads(circuit, fj) if g != fi]
        if not loads_i or not loads_j:
            continue
        gi, gj = _pick(rng, loads_i), _pick(rng, loads_j)
        if gi == gj:
            continue
        try:
            mux_i, mux_j = _insert_pair(
                circuit, ki, kj, fi, fj, gi, gj, rng, same_order=True
            )
        except LockingError:
            continue
        return Locality(Strategy.S1, (mux_i, mux_j))
    return None


def _try_single_mux(
    circuit: Circuit,
    ki: int,
    rng: np.random.Generator,
    strategy: Strategy,
) -> Locality | None:
    """S2 (both sources multi-output) and S3 (decoy single-output)."""
    sources = _source_nets(circuit)
    multi = [n for n in sources if circuit.fanout_size(n) > 1]
    single = [n for n in sources if circuit.fanout_size(n) == 1]
    for _ in range(_TRIES):
        if not multi:
            return None
        decoy_pool = multi if strategy is Strategy.S2 else single
        if not decoy_pool:
            return None
        fi = _pick(rng, multi)
        fj = _pick(rng, decoy_pool)
        if fi == fj:
            continue
        loads = [g for g in _gate_loads(circuit, fi) if g != fj]
        if not loads:
            continue
        gi = _pick(rng, loads)
        try:
            mux = insert_key_mux(
                circuit, ki, true_net=fi, false_net=fj, load_gate=gi, rng=rng
            )
        except LockingError:
            continue
        return Locality(strategy, (mux,))
    return None


def _try_s4(
    circuit: Circuit, ki: int, rng: np.random.Generator
) -> Locality | None:
    """S4: no source restrictions, one key bit drives two MUXes."""
    sources = _source_nets(circuit)
    for _ in range(_TRIES):
        if len(sources) < 2:
            return None
        fi, fj = _pick(rng, sources), _pick(rng, sources)
        if fi == fj:
            continue
        loads_i = [g for g in _gate_loads(circuit, fi) if g != fj]
        loads_j = [g for g in _gate_loads(circuit, fj) if g != fi]
        if not loads_i or not loads_j:
            continue
        gi, gj = _pick(rng, loads_i), _pick(rng, loads_j)
        if gi == gj:
            continue
        try:
            mux_i, mux_j = _insert_pair(
                circuit, ki, ki, fi, fj, gi, gj, rng, same_order=False
            )
        except LockingError:
            continue
        return Locality(Strategy.S4, (mux_i, mux_j))
    return None


def lock_dmux(
    circuit: Circuit,
    key_size: int,
    seed: int = 0,
    name: str | None = None,
) -> LockedCircuit:
    """Lock *circuit* with eD-MUX using *key_size* key bits.

    The strategy for each step is drawn uniformly from the viable subset of
    {S1, S2, S3}; S4 is used only when none of them applies (eD-MUX cost
    policy).  The key itself is a by-product of the random data-pin
    orderings, hence uniformly random.

    Raises:
        LockingError: when the circuit cannot absorb *key_size* bits.
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    rng = np.random.default_rng(seed)
    locked = circuit.copy(name or f"{circuit.name}_dmux_k{key_size}")
    localities: list[Locality] = []
    bit = 0
    while bit < key_size:
        remaining = key_size - bit
        locality: Locality | None = None
        # Permute indices, not the enum list: numpy would coerce the
        # members to numpy strings and break identity checks.
        cheap = (Strategy.S1, Strategy.S2, Strategy.S3)
        order = [cheap[i] for i in rng.permutation(len(cheap))]
        for strategy in order:
            if strategy is Strategy.S1:
                if remaining < 2:
                    continue
                locality = _try_s1(locked, bit, bit + 1, rng)
            else:
                locality = _try_single_mux(locked, bit, rng, strategy)
            if locality is not None:
                break
        if locality is None:
            locality = _try_s4(locked, bit, rng)
        if locality is None:
            raise LockingError(
                f"{circuit.name}: no viable locality for key bit {bit} "
                f"(circuit too small for key size {key_size})"
            )
        localities.append(locality)
        bit += len(locality.key_indices())

    key_bits = {
        m.key_index: m.select_for_true
        for loc in localities
        for m in loc.muxes
    }
    locked.validate()
    return LockedCircuit(
        circuit=locked,
        key=format_key(key_bits, key_size),
        localities=localities,
        scheme=DMUX_SCHEME,
        original_name=circuit.name,
    )
