"""Neural-net operations beyond basic tensor arithmetic.

These are the pieces the DGCNN needs: 1-D convolution, max-pooling,
dropout, the fused graph-convolution kernel, segment/gather primitives for
per-graph reductions over stacked node matrices, and the softmax
cross-entropy loss.  Each is an autograd node with an exact gradient.

All ops compute in the dtype of their inputs (see the dtype policy in
:mod:`repro.nn.tensor`); scratch buffers can be recycled across training
steps through a :class:`repro.nn.tensor.Workspace`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor, Workspace, is_grad_enabled

__all__ = [
    "conv1d",
    "max_pool1d",
    "dropout",
    "graph_conv",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "log_softmax",
    "softmax_cross_entropy",
    "softmax",
]


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    stride: int = 1,
    workspace: Workspace | None = None,
) -> Tensor:
    """1-D convolution.

    Args:
        x: input of shape ``(batch, c_in, length)``.
        weight: kernel of shape ``(c_out, c_in, k)``.
        bias: per-channel bias of shape ``(c_out,)``.
        stride: kernel stride.
        workspace: optional buffer pool for the im2col matrix — the
            largest allocation of the op.  The buffer is released back to
            the pool by the backward pass (or immediately when the tape is
            not recording), so one buffer serves every step of a training
            loop.

    Returns:
        Tensor of shape ``(batch, c_out, (length - k) // stride + 1)``.
    """
    batch, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    t_out = (length - k) // stride + 1
    if t_out < 1:
        raise ValueError(
            f"kernel {k} with stride {stride} does not fit length {length}"
        )

    # im2col: (batch, c_in * k, t_out)
    dtype = x.data.dtype
    if workspace is not None:
        cols = workspace.acquire((batch, c_in * k, t_out), dtype)
    else:
        cols = np.empty((batch, c_in * k, t_out), dtype=dtype)
    if stride == k:
        # Non-overlapping taps (the DGCNN's first conv, where k is the
        # whole node width): im2col is a single transpose instead of a
        # k-iteration strided-copy loop.
        windows = x.data[:, :, : t_out * k].reshape(batch, c_in, t_out, k)
        cols.reshape(batch, k, c_in, t_out)[...] = windows.transpose(0, 3, 1, 2)
    else:
        for tap in range(k):
            segment = x.data[:, :, tap : tap + stride * t_out : stride]
            cols[:, tap * c_in : (tap + 1) * c_in, :] = segment
    w2 = weight.data.transpose(0, 2, 1).reshape(c_out, k * c_in)
    # Batched GEMM (BLAS) rather than einsum: (c_out, F) @ (batch, F, t_out).
    out = np.matmul(w2, cols)
    out += bias.data[None, :, None]

    recording = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad or bias.requires_grad
    )
    if not recording:
        if workspace is not None:
            workspace.release(cols)

        def backward(grad: np.ndarray) -> None:  # pragma: no cover - no tape
            pass

        return Tensor._make(out, (x, weight, bias), backward)

    released = False

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, c_out, t_out)
        nonlocal released
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw2 = np.tensordot(grad, cols, axes=([0, 2], [0, 2]))
            weight._accumulate(
                gw2.reshape(c_out, k, c_in).transpose(0, 2, 1)
            )
        if x.requires_grad:
            gcols = np.matmul(w2.T, grad)
            gx = np.zeros_like(x.data)
            if stride == k:
                # Inverse of the transpose fast path above: one scatter.
                gx[:, :, : t_out * k] = (
                    gcols.reshape(batch, k, c_in, t_out)
                    .transpose(0, 2, 3, 1)
                    .reshape(batch, c_in, t_out * k)
                )
            else:
                for tap in range(k):
                    seg = gcols[:, tap * c_in : (tap + 1) * c_in, :]
                    gx[:, :, tap : tap + stride * t_out : stride] += seg
            x._accumulate_owned(gx)
        if workspace is not None and not released:
            released = True
            workspace.release(cols)

    return Tensor._make(out, (x, weight, bias), backward)


def max_pool1d(x: Tensor, size: int, stride: int | None = None) -> Tensor:
    """Max pooling over the last axis of a ``(batch, c, length)`` tensor."""
    stride = stride or size
    batch, channels, length = x.shape
    t_out = (length - size) // stride + 1
    if t_out < 1:
        raise ValueError(f"pool size {size} does not fit length {length}")

    windows = np.empty((batch, channels, t_out, size), dtype=x.data.dtype)
    for tap in range(size):
        windows[:, :, :, tap] = x.data[:, :, tap : tap + stride * t_out : stride]
    arg = windows.argmax(axis=3)
    out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]

    def backward(grad: np.ndarray) -> None:
        # Always C-ordered (zeros_like would inherit an F-ordered layout,
        # breaking the flat-index scatter below).
        gx = np.zeros(x.data.shape, dtype=x.data.dtype)
        if stride >= size:
            # Non-overlapping windows (the DGCNN case): every input
            # position feeds at most one window, so the scatter is a
            # direct flat-index assignment — no ufunc.at.
            offsets = (
                np.arange(batch)[:, None, None] * channels
                + np.arange(channels)[None, :, None]
            ) * length
            flat = offsets + np.arange(t_out)[None, None, :] * stride + arg
            gx.reshape(-1)[flat.reshape(-1)] = grad.reshape(-1)
        else:
            b_idx, c_idx, t_idx = np.meshgrid(
                np.arange(batch), np.arange(channels), np.arange(t_out),
                indexing="ij",
            )
            source = t_idx * stride + arg
            np.add.at(gx, (b_idx, c_idx, source), grad)
        x._accumulate_owned(gx)

    return Tensor._make(out, (x,), backward)


def dropout(
    x: Tensor, rate: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``.

    The mask is drawn in float64 (so a given RNG state yields the same
    draw sequence regardless of runtime dtype) and cast to the input's
    dtype before use.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    mask = ((rng.random(x.shape) >= rate) / (1.0 - rate)).astype(
        x.data.dtype, copy=False
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def graph_conv(norm_adj: sp.spmatrix, h: Tensor, weight: Tensor) -> Tensor:
    """Fused DGCNN graph convolution ``tanh( A (H W) )`` (paper Eq. 4).

    One autograd node instead of three (matmul → spmm → tanh): the tanh is
    applied in place on the sparse-product output, the ``H W`` intermediate
    is not retained, and the backward pass shares the ``A^T g`` product
    between both parents' gradients.  Bit-identical to the unfused
    composition — the same three numpy/scipy kernels run in the same order.
    """
    matrix = norm_adj.tocsr()
    out = matrix @ (h.data @ weight.data)
    np.tanh(out, out=out)

    def backward(grad: np.ndarray) -> None:
        # d tanh: g' = grad * (1 - out^2); then dH = (A^T g') W^T and
        # dW = H^T (A^T g').  One scratch array serves the whole chain.
        gt = np.multiply(out, out)
        np.subtract(1.0, gt, out=gt)
        np.multiply(grad, gt, out=gt)
        ga = matrix.T @ gt
        if weight.requires_grad:
            weight._accumulate(h.data.T @ ga)
        if h.requires_grad:
            h._accumulate_owned(ga @ weight.data.T)

    return Tensor._make(out, (h, weight), backward)


def gather_rows(x: Tensor, indices: np.ndarray, unique: bool = False) -> Tensor:
    """Row gather with ``-1`` → zero-row padding (see ``Tensor.gather_rows``)."""
    return x.gather_rows(indices, unique=unique)


def _check_segment_args(
    x: Tensor, segment_ids: np.ndarray, n_segments: int
) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape != (x.shape[0],):
        raise ValueError(
            f"segment_ids shape {segment_ids.shape} does not match "
            f"{x.shape[0]} rows"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= n_segments
    ):
        raise ValueError("segment id out of range")
    return segment_ids


def segment_sum(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Sum rows of *x* into ``n_segments`` buckets given per-row ids.

    Gradient: each input row receives its segment's gradient.
    """
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    data = np.zeros((n_segments,) + x.shape[1:], dtype=x.data.dtype)
    np.add.at(data, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[segment_ids])

    return Tensor._make(data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zero rows."""
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    counts = np.bincount(segment_ids, minlength=n_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    data = np.zeros((n_segments,) + x.shape[1:], dtype=x.data.dtype)
    np.add.at(data, segment_ids, x.data)
    data /= safe.reshape((-1,) + (1,) * (x.ndim - 1))

    def backward(grad: np.ndarray) -> None:
        scale = (1.0 / safe[segment_ids]).reshape((-1,) + (1,) * (x.ndim - 1))
        x._accumulate(grad[segment_ids] * scale)

    return Tensor._make(data, (x,), backward)


def segment_max(x: Tensor, segment_ids: np.ndarray, n_segments: int) -> Tensor:
    """Per-segment maximum of rows; empty segments yield zero rows.

    Gradient routes to every row attaining its segment's maximum (ties
    each receive the full gradient, matching the summed-subgradient
    convention of ``Tensor.relu``).
    """
    segment_ids = _check_segment_args(x, segment_ids, n_segments)
    data = np.full(
        (n_segments,) + x.shape[1:], -np.inf, dtype=x.data.dtype
    )
    np.maximum.at(data, segment_ids, x.data)
    empty = np.bincount(segment_ids, minlength=n_segments) == 0
    if empty.any():
        data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        mask = x.data == data[segment_ids]
        x._accumulate(grad[segment_ids] * mask)

    return Tensor._make(data, (x,), backward)


def _log_softmax_data(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Numerically stable log-softmax over the last axis."""
    data = _log_softmax_data(x.data)
    probs = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - probs * grad.sum(axis=-1, keepdims=True))

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Softmax over the last axis (via exp of log-softmax for stability)."""
    return log_softmax(x).exp()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(batch, classes)`` logits and int labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected (batch, classes) logits and (batch,) labels, got "
            f"{logits.shape} and {labels.shape}"
        )
    log_probs = _log_softmax_data(logits.data)
    batch = logits.shape[0]
    loss = -log_probs[np.arange(batch), labels].mean()
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(batch), labels] -= 1.0
        logits._accumulate(grad * g / batch)

    return Tensor._make(np.asarray(loss), (logits,), backward)
