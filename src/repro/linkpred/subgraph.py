"""Enclosing-subgraph extraction and DRNL labelling (paper Sec. III-A/B).

For a target pair ``(f, g)`` the h-hop enclosing subgraph is induced on
``{ j | d(j, f) <= h or d(j, g) <= h }``.  Each node then receives a double
radius node label (DRNL, Eq. 3) describing its position relative to the
target pair; following SEAL, the distance to one target is computed with
the *other* target removed so labels do not collapse through it, and any
direct ``f–g`` edge is removed first.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.linkpred.graph import AttackGraph

__all__ = ["EnclosingSubgraph", "extract_enclosing_subgraph", "drnl_label"]


def drnl_label(df: int | None, dg: int | None) -> int:
    """Double radius node label (paper Eq. 3).

    Args:
        df: distance to target ``f`` (``None`` when unreachable).
        dg: distance to target ``g``.

    Returns:
        ``1`` for the targets themselves, ``0`` for nodes that reach only
        one target, and ``1 + min + (d/2)[(d/2) + (d%2) - 1]`` otherwise.
    """
    if df == 0 and dg == 0:
        raise ValueError("a node cannot be both targets at once")
    if df == 0 or dg == 0:
        return 1
    if df is None or dg is None:
        return 0
    d = df + dg
    half, rem = divmod(d, 2)
    return 1 + min(df, dg) + half * (half + rem - 1)


@dataclass(frozen=True)
class EnclosingSubgraph:
    """An extracted h-hop enclosing subgraph.

    Attributes:
        nodes: original node indices (position 0 is ``f``, position 1 is
            ``g``).
        edges: local-index undirected edge array ``(E, 2)``.
        labels: DRNL label per local node.
        gate_type_ids: feature row (0–7) per local node.
        degrees: observed full-graph degree per local node (the locked load
            gate is missing one pin, which this feature exposes).
    """

    nodes: np.ndarray
    edges: np.ndarray
    labels: np.ndarray
    gate_type_ids: np.ndarray
    degrees: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


def _bounded_bfs(
    graph: AttackGraph,
    start: int,
    h: int,
    blocked: int | None = None,
    forbidden_edge: tuple[int, int] | None = None,
) -> dict[int, int]:
    """Distances from *start* up to *h* hops, avoiding *blocked* node and
    *forbidden_edge* (the target link itself)."""
    dist = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        d = dist[node]
        if d == h:
            continue
        for nbr in graph.neighbors[node]:
            if nbr == blocked or nbr in dist:
                continue
            if forbidden_edge and {node, nbr} == set(forbidden_edge):
                continue
            dist[nbr] = d + 1
            frontier.append(nbr)
    return dist


def extract_enclosing_subgraph(
    graph: AttackGraph, f: int, g: int, h: int
) -> EnclosingSubgraph:
    """Extract the h-hop enclosing subgraph around target pair ``(f, g)``.

    The (possibly observed) direct edge ``f–g`` is never part of the
    subgraph — the GNN must judge the link from the surroundings alone.
    """
    if f == g:
        raise ValueError("target nodes must differ")
    if h < 1:
        raise ValueError("h must be >= 1")
    edge = (f, g)
    dist_f = _bounded_bfs(graph, f, h, forbidden_edge=edge)
    dist_g = _bounded_bfs(graph, g, h, forbidden_edge=edge)

    members = [f, g] + sorted(
        (set(dist_f) | set(dist_g)) - {f, g}
    )
    local = {node: i for i, node in enumerate(members)}

    # SEAL labelling distances: to f with g removed, to g with f removed.
    label_dist_f = _bounded_bfs(graph, f, 2 * h, blocked=g, forbidden_edge=edge)
    label_dist_g = _bounded_bfs(graph, g, 2 * h, blocked=f, forbidden_edge=edge)

    labels = np.array(
        [
            drnl_label(label_dist_f.get(node), label_dist_g.get(node))
            for node in members
        ],
        dtype=np.int64,
    )

    member_set = set(members)
    edges: list[tuple[int, int]] = []
    for node in members:
        u = local[node]
        for nbr in graph.neighbors[node]:
            if nbr in member_set:
                v = local[nbr]
                if u < v and {node, nbr} != set(edge):
                    edges.append((u, v))
    edge_array = (
        np.array(edges, dtype=np.int64)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )

    from repro.netlist import gate_feature_index

    gate_type_ids = np.array(
        [gate_feature_index(graph.gate_types[node]) for node in members],
        dtype=np.int64,
    )
    degrees = np.array(
        [len(graph.neighbors[node]) for node in members], dtype=np.int64
    )
    return EnclosingSubgraph(
        nodes=np.array(members, dtype=np.int64),
        edges=edge_array,
        labels=labels,
        gate_type_ids=gate_type_ids,
        degrees=degrees,
    )
