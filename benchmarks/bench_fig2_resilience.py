"""Fig. 2 bench — SWEEP/SCOPE stuck at ≈50 % KPA on resilient MUX locking."""

from repro.experiments import active_scale, format_fig2, run_fig2


def test_fig2_constant_propagation_resilience(bench_once):
    scale = active_scale()
    rows = bench_once(run_fig2, scale=scale, n_copies=4)
    print()
    print(format_fig2(rows))

    # Shape assertions (paper: KPA ~= 0.5 across all cells).
    kpas = [r.metrics.kpa for r in rows]
    assert all(0.2 <= k <= 0.8 for k in kpas), kpas
    mean_kpa = sum(kpas) / len(kpas)
    assert 0.35 <= mean_kpa <= 0.65
