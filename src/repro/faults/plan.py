"""Seeded, deterministic fault injection for the bus/store/worker stack.

A :class:`FaultPlan` arms a set of named **sites** — fixed points in the
production code (``repro.store.codec``, the spool, the socket worker)
that consult :func:`fire` on every pass.  When no plan is active the
check is a dict lookup against an empty map: the production hot path
pays nothing.  When a plan *is* active, each armed site fires a bounded,
reproducible number of times; probabilistic sites draw from a
``numpy.random.SeedSequence`` keyed by ``(plan seed, site name)``, so
the same plan injects the same faults in the same order on every run —
which is what lets ``repro chaos`` assert that the recovered output is
bit-identical to a clean run.

Worker subprocesses activate a plan through the ``REPRO_FAULT_PLAN``
environment variable (the plan's JSON form, see :meth:`FaultPlan.dumps`)
— real multi-process drills SIGKILL real workers.  In-process tests use
:func:`activate` / :func:`deactivate` directly.

Every fire prints a ``fault[<site>]`` line to stderr, so a drill driver
can count injections from worker logs without any side channel.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "NAMED_PLANS",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "fired_counts",
    "named_fault_plan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every injectable site and what firing it does.  A plan naming an
#: unknown site is rejected at construction — a typo must not silently
#: disarm a drill.
FAULT_SITES = {
    "store.write_torn": (
        "codec dump truncates its tmp file mid-write and raises EIO"
    ),
    "store.write_enospc": "codec dump raises ENOSPC before writing a byte",
    "store.read_corrupt": "codec load reports an existing file as corrupt",
    "socket.connect_refused": "worker connect() to the bus is refused",
    "socket.read_timeout": "worker bus read raises a timeout",
    "socket.frame_eof": "worker drops its connection mid-protocol (EOF)",
    "spool.lease_race": "lease() loses the pending->leased rename race",
    "spool.heartbeat_stall": "the lease heartbeat thread stops beating",
    "worker.crash_after_n": "worker os._exit(137)s mid-job (SIGKILL-alike)",
    "worker.slow_factor": "worker stalls `param` seconds before executing",
    "serve.accept_drop": (
        "the serve front-end drops an accepted connection before reading"
    ),
    "remote_store.read_timeout": "a RemoteStore round-trip raises a timeout",
}

#: The named plans ``repro chaos --plan`` accepts (site specs only; the
#: process topology each drill needs lives in ``repro.faults.chaos``).
NAMED_PLANS = (
    "worker-crash",
    "socket-flaky",
    "torn-store",
    "enospc",
    "heartbeat-stall",
    "lease-race",
    "all-workers-die",
    "serve-flaky",
)


class FaultError(ReproError):
    """A fault plan is malformed (unknown site, bad JSON, bad spec)."""


@dataclass(frozen=True)
class FaultSite:
    """One armed site inside a plan.

    Attributes:
        site: a :data:`FAULT_SITES` name.
        times: fire budget (``-1`` = unlimited).  A site out of budget
            passes through — which is exactly how recovery paths get
            exercised *and then succeed*.
        after: skip the first *after* eligible passes (fire on pass
            ``after + 1``), e.g. "crash on the second job".
        p: probability of firing an eligible pass (drawn from the
            plan-seeded stream; 1.0 = always).
        param: site-specific magnitude (``worker.slow_factor`` sleeps
            this many seconds).
    """

    site: str
    times: int = 1
    after: int = 0
    p: float = 1.0
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultError(
                f"unknown fault site {self.site!r}; choose from "
                f"{sorted(FAULT_SITES)}"
            )
        if self.after < 0:
            raise FaultError(f"after must be >= 0, got {self.after}")
        if not 0.0 <= self.p <= 1.0:
            raise FaultError(f"p must be in [0, 1], got {self.p}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of armed sites (JSON-round-trippable)."""

    name: str
    sites: tuple[FaultSite, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        seen = set()
        for spec in self.sites:
            if spec.site in seen:
                raise FaultError(
                    f"plan {self.name!r} arms {spec.site!r} twice"
                )
            seen.add(spec.site)

    def dumps(self) -> str:
        """JSON form, for ``REPRO_FAULT_PLAN`` in worker environments."""
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "sites": [
                    {
                        "site": s.site,
                        "times": s.times,
                        "after": s.after,
                        "p": s.p,
                        "param": s.param,
                    }
                    for s in self.sites
                ],
            },
            separators=(",", ":"),
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
            return cls(
                name=str(raw["name"]),
                seed=int(raw.get("seed", 0)),
                sites=tuple(
                    FaultSite(**spec) for spec in raw.get("sites", ())
                ),
            )
        except FaultError:
            raise
        except Exception as exc:
            raise FaultError(f"malformed fault plan JSON: {exc}") from exc

    def site_seed_sequence(self, site: str) -> np.random.SeedSequence:
        """The site's dedicated stream, keyed by plan seed + site name."""
        digest = int.from_bytes(
            hashlib.sha256(site.encode()).digest()[:4], "big"
        )
        return np.random.SeedSequence(entropy=self.seed, spawn_key=(digest,))


class _ActivePlan:
    """Runtime state of one activated plan (check counters, fire budget).

    Thread-safe: the spool heartbeat daemon and the worker main loop may
    consult sites concurrently.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._sites = {spec.site: spec for spec in plan.sites}
        self._lock = threading.Lock()
        self._checks: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rng: dict[str, np.random.Generator] = {}

    def check(self, site: str) -> FaultSite | None:
        spec = self._sites.get(site)
        if spec is None:
            return None
        with self._lock:
            n = self._checks.get(site, 0) + 1
            self._checks[site] = n
            if n <= spec.after:
                return None
            if spec.times >= 0 and self._fired.get(site, 0) >= spec.times:
                return None
            if spec.p < 1.0:
                rng = self._rng.get(site)
                if rng is None:
                    rng = np.random.default_rng(
                        self.plan.site_seed_sequence(site)
                    )
                    self._rng[site] = rng
                if rng.random() >= spec.p:
                    return None
            self._fired[site] = self._fired.get(site, 0) + 1
            hit = self._fired[site]
        print(
            f"fault[{site}]: fired (hit {hit}, plan {self.plan.name}, "
            f"pid {os.getpid()})",
            file=sys.stderr,
            flush=True,
        )
        return spec

    def fired(self) -> dict[str, int]:
        with self._lock:
            return dict(self._fired)


_active: _ActivePlan | None = None
_env_checked = False


def activate(plan: FaultPlan) -> None:
    """Arm *plan* in this process (replacing any previous plan)."""
    global _active, _env_checked
    _env_checked = True
    _active = _ActivePlan(plan)


def deactivate() -> None:
    """Disarm fault injection in this process (idempotent)."""
    global _active, _env_checked
    _env_checked = True
    _active = None


def active_plan() -> FaultPlan | None:
    """The armed plan, if any (after a lazy ``REPRO_FAULT_PLAN`` parse)."""
    _ensure_env_plan()
    return _active.plan if _active is not None else None


def fired_counts() -> dict[str, int]:
    """``site -> times fired`` so far in this process."""
    return _active.fired() if _active is not None else {}


def _ensure_env_plan() -> None:
    global _env_checked
    if _env_checked:
        return
    _env_checked = True
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if raw:
        activate(FaultPlan.loads(raw))


def fire(site: str) -> FaultSite | None:
    """Consult *site*; returns its armed spec iff the fault fires now.

    The one call every instrumented code path makes.  With no plan
    active (the production case) this is a cached-global check and an
    immediate ``None``.
    """
    if _active is None:
        if _env_checked:
            return None
        _ensure_env_plan()
        if _active is None:
            return None
    return _active.check(site)


# ---------------------------------------------------------------------------
# Named plans
# ---------------------------------------------------------------------------
def named_fault_plan(name: str, seed: int = 0) -> FaultPlan:
    """The site specs behind each ``repro chaos --plan`` name."""
    if name == "worker-crash":
        # One worker dies mid-job (SIGKILL-alike); a peer must reap the
        # lease and finish the grid.
        sites = (FaultSite("worker.crash_after_n", times=1),)
    elif name == "all-workers-die":
        # EVERY worker dies on its first job: only the coordinator's
        # liveness fail-over can finish the grid.
        sites = (FaultSite("worker.crash_after_n", times=-1),)
    elif name == "socket-flaky":
        sites = (
            FaultSite("socket.connect_refused", times=2),
            FaultSite("socket.read_timeout", times=1),
            FaultSite("socket.frame_eof", times=1),
        )
    elif name == "torn-store":
        sites = (
            FaultSite("store.write_torn", times=1),
            FaultSite("store.read_corrupt", times=1),
        )
    elif name == "enospc":
        sites = (FaultSite("store.write_enospc", times=2),)
    elif name == "heartbeat-stall":
        # The heartbeat dies while the job keeps (slowly) running: the
        # lease goes stale and is reaped, a peer re-executes, and the
        # stalled worker's eventual finish is a harmless duplicate write
        # of the same content-addressed artifact.
        sites = (
            FaultSite("spool.heartbeat_stall", times=1),
            FaultSite("worker.slow_factor", times=1, param=4.0),
        )
    elif name == "lease-race":
        sites = (FaultSite("spool.lease_race", times=2),)
    elif name == "serve-flaky":
        # The serve front-end drops fresh connections (workers and
        # clients alike must reconnect on their retry schedule) and one
        # RemoteStore round-trip times out mid-read; the drill gates on
        # served predictions staying bit-identical to serial.
        sites = (
            FaultSite("serve.accept_drop", times=2),
            FaultSite("remote_store.read_timeout", times=1),
        )
    else:
        raise FaultError(
            f"unknown fault plan {name!r}; choose from {sorted(NAMED_PLANS)}"
        )
    return FaultPlan(name=name, sites=sites, seed=seed)
