"""Optimizers: Adam (the paper's choice) and plain SGD."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Adam", "SGD"]


class SGD:
    """Vanilla stochastic gradient descent."""

    def __init__(self, params: list[Tensor], lr: float = 0.01):
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for param in self.params:
            if param.grad is not None:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba, 2015).

    The paper trains DGCNN with "stochastic gradient descent with the Adam
    updating rule" at an initial learning rate of 1e-4.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / (1 - self.beta1**self.t)
            v_hat = self._v[i] / (1 - self.beta2**self.t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
