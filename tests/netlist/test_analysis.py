"""Tests for the structural analysis helpers."""

import pytest

from repro.benchgen import load_c17, random_netlist
from repro.netlist import (
    Circuit,
    Gate,
    GateType,
    area_estimate,
    fanout_profile,
    gate_level_map,
    lockable_nets,
    multi_output_nets,
    single_output_nets,
    switching_estimate,
)


def test_multi_and_single_output_partition():
    c = load_c17()
    multi = set(multi_output_nets(c))
    single = set(single_output_nets(c))
    assert multi | single == set(c.gate_names)
    assert not multi & single
    # G11 and G16 feed two gates each.
    assert "G11" in multi
    assert "G16" in multi
    # G22/G23 are POs only (one load each).
    assert "G22" in single and "G23" in single


def test_multi_output_counts_po_references():
    c = Circuit("t", inputs=["a"])
    c.add_gate(Gate("g", GateType.BUF, ("a",)))
    c.add_gate(Gate("h", GateType.NOT, ("g",)))
    c.add_output("g")
    c.add_output("h")
    assert "g" in multi_output_nets(c)  # one gate load + one PO


def test_lockable_nets_require_a_load():
    c = load_c17()
    assert set(lockable_nets(c)) == set(c.gate_names)


def test_gate_level_map():
    c = load_c17()
    levels = gate_level_map(c)
    assert levels["G1"] == 0
    assert levels["G10"] == 1
    assert levels["G16"] == 2
    assert levels["G22"] == 3
    assert max(levels.values()) == c.depth()


def test_area_and_switching_scale_with_size():
    small = random_netlist("s", 6, 3, 30, seed=1)
    large = random_netlist("l", 6, 3, 120, seed=1)
    assert area_estimate(large) > area_estimate(small)
    assert switching_estimate(large) > switching_estimate(small)
    assert switching_estimate(small) > area_estimate(small) * 0.5


def test_fanout_profile():
    c = load_c17()
    profile = fanout_profile(c)
    assert profile.maximum == 2
    assert 1.0 <= profile.mean <= 2.0
    assert 0.0 < profile.multi_output_fraction < 1.0


def test_fanout_profile_empty_circuit():
    c = Circuit("e", inputs=["a"])
    profile = fanout_profile(c)
    assert profile.mean == 0.0
    assert profile.maximum == 0


def test_rename_gate_updates_everything():
    c = load_c17().copy()
    c.rename_gate("G16", "G16_new")
    assert not c.has_gate("G16")
    assert "G16_new" in c.gate("G22").inputs
    assert "G16_new" in c.gate("G23").inputs
    c.validate()
    with pytest.raises(Exception):
        c.rename_gate("G10", "G16_new")  # name collision
