"""In-process / process-pool bus — the behavior-preserving default.

Exactly the execution policy :class:`~repro.experiments.runner`
shipped before the bus seam existed: ``jobs <= 1`` runs serially in the
coordinator process (the reproducible single-core default, zero pool
overhead), ``jobs > 1`` fans unique jobs over one shared
``ProcessPoolExecutor``.  Results are yielded as they complete so the
runner can persist each artifact before the next lands — a crash late in
a grid never discards finished training — and the first worker failure
is re-raised only after the surviving results have been drained.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Iterator

from repro.bus.protocol import DEFAULT_WORKER_BLAS_THREADS, JobBus
from repro.bus.threads import limit_blas_threads

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import AttackJob

__all__ = ["LocalBus"]


class LocalBus(JobBus):
    """Serial or pooled execution on this host."""

    name = "local"

    def __init__(self, jobs: int = 0) -> None:
        super().__init__()
        self.jobs = int(jobs)
        self._pool: ProcessPoolExecutor | None = None

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Pool children get the same BLAS cap as bus workers: the
            # jobs are single-core, and N children each waking a
            # cores-wide OpenBLAS spin pool slow one another down.
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=limit_blas_threads,
                initargs=(DEFAULT_WORKER_BLAS_THREADS,),
            )
        return self._pool

    def run(
        self, jobs: "list[AttackJob]"
    ) -> "Iterator[tuple[AttackJob, dict, bool]]":
        from repro.experiments.runner import execute_job

        self.stats.submitted += len(jobs)
        if self.jobs > 1 and len(jobs) > 1:
            futures = {
                self._executor().submit(execute_job, job): job
                for job in jobs
            }
            failure: BaseException | None = None
            for future in as_completed(futures):
                try:
                    payload = future.result()
                except BaseException as exc:
                    if failure is None:
                        failure = exc
                    continue
                self.stats.completed += 1
                yield futures[future], payload, False
            if failure is not None:
                raise failure
        else:
            for job in jobs:
                payload = execute_job(job)
                self.stats.completed += 1
                yield job, payload, False

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
