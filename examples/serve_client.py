"""Attack as a service: a persistent server, warm results, remote store.

Boots one real ``repro serve`` process — server, artifact store, and
two pre-warmed pipelined workers in a single command — then drives it
as a client:

1. :class:`~repro.client.ServeClient` submits a locked circuit by
   **content key**; the first request trains (``queued``), the repeat
   answers from the warm cache (``hit``) in milliseconds;
2. identical requests submitted while the first is still training
   **coalesce** onto the same computation — K clients, one training;
3. :class:`~repro.store.remote.RemoteStore` (the ``remote://host:port``
   store scheme) reads raw artifacts out of the server's store over the
   same framed protocol;
4. ``repro attack --serve ADDR`` gives any shell the warm path with
   output identical to a local run.

The server owns everything stateful; clients are stateless and
disposable.  ::

    python examples/serve_client.py
"""

import pathlib
import re
import subprocess
import sys
import tempfile
import time

from repro.benchgen import load_benchmark
from repro.client import ServeClient
from repro.core import MuxLinkConfig
from repro.experiments.common import lock_with
from repro.linkpred import TrainConfig
from repro.store import resolve_store

_READY = re.compile(r"serve: listening on (\S+) ")


def main() -> None:
    config = MuxLinkConfig(
        h=3,
        threshold=0.01,
        train=TrainConfig(epochs=2, learning_rate=1e-3, seed=0),
        seed=0,
    )
    base = load_benchmark("c1355", scale=0.1)
    locked = lock_with("D-MUX", base, key_size=6, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        print("=== 0. Boot: one command, server + store + 2 workers ===")
        server = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--addr", "127.0.0.1:0",
                "--store", str(pathlib.Path(tmp) / "store"),
                "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            ready = server.stdout.readline()
            address = _READY.search(ready).group(1)
            print(f"  {ready.strip()}")

            print("=== 1. First request trains, the repeat is warm ===")
            client = ServeClient(address)
            key, status = client.submit(locked.circuit, config)
            print(f"  submit -> {status} (content key {key[:12]}…)")
            start = time.perf_counter()
            result = client.result(key, timeout=600)
            print(
                f"  trained in {time.perf_counter() - start:.1f}s, "
                f"predicted key {result.predicted_key}"
            )
            start = time.perf_counter()
            _, status = client.submit(locked.circuit, config)
            client.result(key, timeout=60)
            print(
                f"  resubmit -> {status} in "
                f"{(time.perf_counter() - start) * 1000:.1f}ms"
            )

            print("=== 2. Identical in-flight requests coalesce ===")
            relocked = lock_with("D-MUX", base, key_size=6, seed=1)
            statuses = [
                client.submit(relocked.circuit, config)[1] for _ in range(3)
            ]
            print(f"  3 submits while training -> {statuses}")
            client.result(
                ServeClient.predict_store_key(relocked.circuit, config),
                timeout=600,
            )
            stats = client.stats()
            print(
                f"  server counters: scheduled={stats['scheduled']} "
                f"coalesced={stats['coalesced']} "
                f"memory_hits={stats['memory_hits']}"
            )

            print("=== 3. remote:// — the store over the wire ===")
            remote = resolve_store(f"remote://{address}")
            artifact = remote.get("attacks", key)
            print(
                f"  {remote.root} -> raw artifact with "
                f"{len(artifact)} payload keys"
            )
            remote.close()

            print("=== 4. Any shell gets the warm path ===")
            print(f"  repro attack locked.bench --serve {address}")
            print("  (same output as a local run — tested bit-identical)")

            client.shutdown()
            client.close()
        finally:
            try:
                server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                server.terminate()
                server.wait(timeout=30)


if __name__ == "__main__":
    main()
