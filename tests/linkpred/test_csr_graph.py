"""Tests for the CSR attack-graph backbone and the batched extraction API.

The CSR arrays (``indptr``/``indices``) are the ground truth for the hot
path; these tests pin them against an independently built legacy-style
``list[set[int]]`` adjacency and check that the batched extractor is
permutation-identical to the single-pair API.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import benchmark_names, load_benchmark, random_netlist
from repro.linkpred import (
    build_link_dataset,
    build_target_examples,
    extract_attack_graph,
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
    sample_links,
)
from repro.locking import lock_dmux


def locked_graph(seed=0, key_size=6, n_gates=120):
    base = random_netlist("base", 10, 5, n_gates, seed=seed)
    locked = lock_dmux(base, key_size=key_size, seed=seed)
    return extract_attack_graph(locked.circuit)


def reference_adjacency(graph):
    """Legacy-style ``list[set[int]]`` adjacency rebuilt from the edge list."""
    neighbors = [set() for _ in range(graph.n_nodes)]
    for u, v in graph.edges():
        neighbors[u].add(v)
        neighbors[v].add(u)
    return neighbors


# ------------------------------------------------------------------ CSR layer
def test_csr_structure_invariants():
    graph = locked_graph()
    assert graph.indptr[0] == 0
    assert graph.indptr[-1] == len(graph.indices)
    assert len(graph.indptr) == graph.n_nodes + 1
    assert (np.diff(graph.indptr) >= 0).all()
    for u in range(graph.n_nodes):
        row = graph.neighbor_array(u)
        assert (np.diff(row) > 0).all()  # sorted, no duplicates
        assert (row != u).all()  # no self loops


def test_csr_symmetry():
    graph = locked_graph(seed=2)
    for u in range(graph.n_nodes):
        for v in graph.neighbor_array(u):
            assert graph.has_edge(int(v), u)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 40), key_size=st.integers(2, 8))
def test_neighbor_view_matches_csr_property(seed, key_size):
    graph = locked_graph(seed=seed, key_size=key_size)
    view = graph.neighbors
    assert len(view) == graph.n_nodes
    for u in range(graph.n_nodes):
        assert view[u] == set(map(int, graph.neighbor_array(u)))
        assert len(view[u]) == graph.degrees[u]


@pytest.mark.parametrize("name", benchmark_names()[:4])
def test_csr_matches_legacy_adjacency_on_benchmarks(name):
    """CSR neighbors equal the set-based adjacency on generated benchmarks."""
    base = load_benchmark(name, scale=0.1)
    locked = lock_dmux(base, key_size=8, seed=0)
    graph = extract_attack_graph(locked.circuit)
    # Rebuild the adjacency the way the legacy extractor did: straight from
    # the circuit's gate fan-ins, restricted to graph nodes.
    neighbors = [set() for _ in range(graph.n_nodes)]
    for gate_name in graph.node_names:
        v = graph.index[gate_name]
        for net in locked.circuit.gate(gate_name).inputs:
            if net in graph.index:
                u = graph.index[net]
                if u != v:
                    neighbors[u].add(v)
                    neighbors[v].add(u)
    for u in range(graph.n_nodes):
        assert graph.neighbors[u] == neighbors[u]


def test_edges_array_matches_edges():
    graph = locked_graph(seed=3)
    arr = graph.edges_array()
    assert arr.shape[1] == 2
    assert (arr[:, 0] < arr[:, 1]).all()
    assert [tuple(r) for r in arr.tolist()] == graph.edges()
    assert graph.n_edges() == len(arr)


def test_degrees_property():
    graph = locked_graph(seed=4)
    ref = reference_adjacency(graph)
    assert graph.degrees.tolist() == [len(s) for s in ref]


# -------------------------------------------------------------- batched API
def test_batched_extraction_matches_single_pair():
    """`extract_enclosing_subgraphs` is permutation-identical per pair."""
    graph = locked_graph(seed=5, key_size=8)
    sample = sample_links(graph, max_links=60, seed=5)
    pairs = [(u, v) for u, v, _ in sample.train + sample.validation]
    pairs += [
        (driver, load)
        for target in graph.targets
        for driver, load, _ in target.candidates()
    ]
    batch = extract_enclosing_subgraphs(graph, pairs, h=2)
    assert len(batch) == len(pairs)
    for (u, v), sub in zip(pairs, batch):
        single = extract_enclosing_subgraph(graph, u, v, h=2)
        np.testing.assert_array_equal(sub.nodes, single.nodes)
        np.testing.assert_array_equal(sub.labels, single.labels)
        np.testing.assert_array_equal(sub.edges, single.edges)
        np.testing.assert_array_equal(sub.gate_type_ids, single.gate_type_ids)
        np.testing.assert_array_equal(sub.degrees, single.degrees)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 25), h=st.integers(1, 3))
def test_batched_extraction_property(seed, h):
    graph = locked_graph(seed=seed, key_size=4)
    pairs = [
        (driver, load)
        for target in graph.targets
        for driver, load, _ in target.candidates()
    ]
    batch = extract_enclosing_subgraphs(graph, pairs, h=h)
    for (u, v), sub in zip(pairs, batch):
        single = extract_enclosing_subgraph(graph, u, v, h=h)
        np.testing.assert_array_equal(sub.nodes, single.nodes)
        np.testing.assert_array_equal(sub.labels, single.labels)
        np.testing.assert_array_equal(sub.edges, single.edges)


def test_batched_extraction_validates_input():
    graph = locked_graph(seed=6)
    with pytest.raises(ValueError):
        extract_enclosing_subgraphs(graph, [(0, 0)], h=2)
    with pytest.raises(ValueError):
        extract_enclosing_subgraphs(graph, [(0, 1)], h=0)
    assert extract_enclosing_subgraphs(graph, [], h=2) == []


# ------------------------------------------------------------ worker pool
def test_dataset_identical_across_worker_counts():
    graph = locked_graph(seed=7, key_size=8, n_gates=160)
    sample = sample_links(graph, max_links=80, seed=7)
    serial = build_link_dataset(graph, sample, h=2, n_workers=0)
    pooled = build_link_dataset(graph, sample, h=2, n_workers=2)
    assert serial.max_label == pooled.max_label
    assert serial.feature_width == pooled.feature_width
    for a, b in zip(
        serial.train + serial.validation, pooled.train + pooled.validation
    ):
        assert a.n_nodes == b.n_nodes
        assert a.label == b.label
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_array_equal(a.features, b.features)
    targets_serial = build_target_examples(graph, serial)
    targets_pooled = build_target_examples(graph, serial, n_workers=2)
    for a, b in zip(targets_serial, targets_pooled):
        assert a.select_value == b.select_value
        np.testing.assert_array_equal(a.example.features, b.example.features)
