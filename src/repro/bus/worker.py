"""The ``repro worker`` loop: lease, execute, publish, repeat.

A worker is a plain process started with either a spool directory
(``repro worker --bus-dir SPOOL --store STORE``) or a coordinator
address (``repro worker --bus-addr HOST:PORT``).  It knows nothing
about figures or grids — it executes
:func:`~repro.experiments.runner.execute_job` on whatever the bus
hands it (MuxLink attack jobs and baseline-attack jobs alike), one job
at a time:

* **spool mode** — lease via atomic rename, heartbeat the lease file
  from a daemon thread while training runs, write the artifact to the
  shared store, drop the lease.  A job whose artifact *already* sits in
  the store is completed without recomputation (the warm-store path),
  and crash recovery is entirely passive: if this process is SIGKILLed
  mid-job the heartbeat stops and any peer reaps the lease.
* **socket mode** — hold one connection to the coordinator (or
  ``repro serve-bus`` broker), request jobs, ship results back over the
  wire.  The server treats a dropped connection as this worker's death.

Workers may start before or after the coordinator, and several may race
over one spool — the lease protocol makes the outcome identical either
way.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import faults
from repro.bus.protocol import (
    BLAS_THREADS_ENV,
    DEFAULT_POLL,
    DEFAULT_STALE_AFTER,
    DEFAULT_WORKER_BLAS_THREADS,
    BusError,
    RetryPolicy,
    decode_job,
)
from repro.bus.spool import SpoolDir
from repro.bus.threads import limit_blas_threads

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import ArtifactStore

__all__ = ["WorkerStats", "run_worker"]

#: Test hook: seconds to sleep between taking a lease and executing it.
#: Lets the worker-death tests SIGKILL a worker that *definitely* holds a
#: lease without racing a fast smoke-scale attack.  Unset in real use.
TEST_DELAY_ENV = "REPRO_BUS_TEST_DELAY"


@dataclass
class WorkerStats:
    """What one worker process did before exiting."""

    executed: int = 0
    skipped: int = 0  # artifact already in the store; no recompute
    failed: int = 0

    def summary(self) -> str:
        return (
            f"executed={self.executed} skipped={self.skipped} "
            f"failed={self.failed}"
        )


def _test_delay() -> None:
    raw = os.environ.get(TEST_DELAY_ENV, "").strip()
    if raw:
        time.sleep(float(raw))


def _mid_job_faults() -> None:
    """The worker-side fault sites, consulted once per accepted job.

    ``worker.slow_factor`` stalls before execution (long enough for a
    lease to outlive a short ``stale_after`` in a drill);
    ``worker.crash_after_n`` emulates SIGKILL — ``os._exit`` skips every
    ``finally`` and atexit handler, exactly like the real signal, so the
    lease/connection is left dangling for peers to recover.
    """
    stall = faults.fire("worker.slow_factor")
    if stall is not None:
        time.sleep(stall.param)
    if faults.fire("worker.crash_after_n"):
        os._exit(137)


class _Heartbeat:
    """Daemon thread refreshing one spool lease while a job executes."""

    def __init__(self, spool: SpoolDir, key: str, interval: float) -> None:
        self._spool = spool
        self._key = key
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            if faults.fire("spool.heartbeat_stall"):
                return  # injected: the heartbeat dies, the job lives on
            if not self._spool.heartbeat(self._key):
                return  # reaped out from under us; stop touching it


def run_worker(
    bus_dir: "str | os.PathLike | None" = None,
    bus_addr: str | None = None,
    store: "ArtifactStore | str | os.PathLike | None" = None,
    poll: float = DEFAULT_POLL,
    stale_after: float = DEFAULT_STALE_AFTER,
    max_attempts: int | None = None,
    idle_timeout: float | None = None,
    max_jobs: int | None = None,
    blas_threads: int | None = None,
    retry: RetryPolicy | None = None,
    log=print,
) -> WorkerStats:
    """Run the worker loop until idle for *idle_timeout* seconds.

    Exactly one of *bus_dir* (spool mode, requires *store*) or
    *bus_addr* (socket mode) must be given.  ``idle_timeout=None`` runs
    forever (the daemon deployment); *max_jobs* bounds how many jobs
    this process executes (useful in tests and crash drills).

    *blas_threads* caps the OpenBLAS pool for this process (default 1,
    ``REPRO_BLAS_THREADS`` to override, 0 to leave BLAS alone): the
    jobs are single-core, and a fleet of workers each waking a
    cores-wide BLAS spin pool oversubscribes the host and doubles
    per-job wall-clock.

    *retry* is the socket-mode connect/read policy (timeouts + the
    reconnect backoff schedule); default :meth:`RetryPolicy.from_env`.
    """
    if (bus_dir is None) == (bus_addr is None):
        raise BusError("worker needs exactly one of bus_dir or bus_addr")
    if blas_threads is None:
        raw = os.environ.get(BLAS_THREADS_ENV, "").strip()
        blas_threads = int(raw) if raw else DEFAULT_WORKER_BLAS_THREADS
    limit_blas_threads(blas_threads)
    if retry is None:
        retry = RetryPolicy.from_env()
    if bus_dir is not None:
        return _run_spool_worker(
            bus_dir,
            store,
            poll=poll,
            stale_after=stale_after,
            max_attempts=max_attempts,
            idle_timeout=idle_timeout,
            max_jobs=max_jobs,
            log=log,
        )
    return _run_socket_worker(
        bus_addr,
        poll=poll,
        idle_timeout=idle_timeout,
        max_jobs=max_jobs,
        retry=retry,
        log=log,
    )


# ---------------------------------------------------------------------------
# Spool mode
# ---------------------------------------------------------------------------
def _run_spool_worker(
    bus_dir,
    store,
    *,
    poll: float,
    stale_after: float,
    max_attempts: int | None,
    idle_timeout: float | None,
    max_jobs: int | None,
    log,
) -> WorkerStats:
    from repro.bus.protocol import DEFAULT_MAX_ATTEMPTS, job_artifact_kind
    from repro.experiments.runner import execute_job
    from repro.store import resolve_store

    resolved = resolve_store(store)
    if resolved is None:
        raise BusError(
            "spool worker needs the shared artifact store: pass --store "
            "or set REPRO_STORE"
        )
    spool = SpoolDir(
        bus_dir,
        stale_after=stale_after,
        max_attempts=(
            DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
        ),
    )
    log(f"worker[{os.getpid()}]: spool {spool.root} store {resolved.root}")
    stats = WorkerStats()
    heartbeat_every = max(stale_after / 4.0, 0.05)
    idle_since = time.monotonic()
    while True:
        spool.reap_stale()
        leased = spool.lease()
        if leased is None:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            time.sleep(poll)
            continue
        idle_since = time.monotonic()
        key, payload = leased
        job_payload = payload.get("job") or {}
        artifact_kind = job_artifact_kind(job_payload.get("kind", "attack"))
        if resolved.has(artifact_kind, key):
            # Warm store: a peer (or a previous run) already produced
            # this artifact — adopt it instead of recomputing.
            spool.complete(key)
            stats.skipped += 1
            log(f"worker[{os.getpid()}]: {key[:12]}… already in store")
        else:
            _execute_leased(
                spool, resolved, artifact_kind, key, payload,
                heartbeat_every, stats, log, execute_job,
            )
        if max_jobs is not None and stats.executed + stats.skipped >= max_jobs:
            break
    log(f"worker[{os.getpid()}]: done ({stats.summary()})")
    return stats


def _execute_leased(
    spool: SpoolDir,
    store: "ArtifactStore",
    artifact_kind: str,
    key: str,
    payload: dict,
    heartbeat_every: float,
    stats: WorkerStats,
    log,
    execute_job,
) -> None:
    try:
        job = decode_job(payload["job"])
        with _Heartbeat(spool, key, heartbeat_every):
            _test_delay()
            _mid_job_faults()
            artifact = execute_job(job)
        store.put(artifact_kind, key, artifact)
        spool.complete(key)
        stats.executed += 1
        log(f"worker[{os.getpid()}]: completed {key[:12]}…")
    except KeyboardInterrupt:
        spool.release(key, "worker interrupted")
        raise
    except Exception:
        stats.failed += 1
        quarantined = spool.fail(key, traceback.format_exc())
        verb = "quarantined" if quarantined else "requeued"
        log(f"worker[{os.getpid()}]: {verb} {key[:12]}… after failure")


# ---------------------------------------------------------------------------
# Socket mode
# ---------------------------------------------------------------------------
def _run_socket_worker(
    bus_addr: str,
    *,
    poll: float,
    idle_timeout: float | None,
    max_jobs: int | None,
    retry: RetryPolicy,
    log,
) -> WorkerStats:
    import errno

    from repro.bus.socketbus import parse_address, recv_message, send_message
    from repro.experiments.runner import execute_job

    host, port = parse_address(bus_addr)
    stats = WorkerStats()
    idle_since = time.monotonic()
    conn: socket.socket | None = None
    connect_attempt = 0
    log(f"worker[{os.getpid()}]: socket bus {host}:{port}")
    try:
        while True:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            if conn is None:
                try:
                    if faults.fire("socket.connect_refused"):
                        raise OSError(
                            errno.ECONNREFUSED,
                            "injected fault socket.connect_refused",
                        )
                    conn = socket.create_connection(
                        (host, port), timeout=retry.connect_timeout
                    )
                    conn.settimeout(retry.read_timeout)
                    connect_attempt = 0
                except OSError:
                    # Coordinator not up yet (workers may legally start
                    # first) — retry on the policy backoff schedule,
                    # floored at the poll interval so a zero-delay
                    # policy cannot busy-spin on a closed port.
                    connect_attempt += 1
                    time.sleep(max(retry.delay(connect_attempt), poll))
                    continue
            try:
                send_message(conn, {"op": "lease"})
                if faults.fire("socket.read_timeout"):
                    raise socket.timeout(
                        "injected fault socket.read_timeout"
                    )
                message = recv_message(conn)
            except OSError:
                message = None
            if message is None:  # server went away; reconnect
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None
                time.sleep(poll)
                continue
            if message.get("op") == "empty":
                time.sleep(poll)
                continue
            if message.get("op") != "job":  # pragma: no cover - bad server
                continue
            idle_since = time.monotonic()
            key = str(message["key"])
            if faults.fire("socket.frame_eof"):
                # Drop the connection mid-frame: the server sees EOF on
                # a connection with an executing job and requeues it.
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None
                continue
            try:
                job = decode_job(message["job"])
                _test_delay()
                _mid_job_faults()
                artifact = execute_job(job)
            except Exception:
                stats.failed += 1
                reply = {
                    "op": "failed",
                    "key": key,
                    "traceback": traceback.format_exc(),
                }
            else:
                stats.executed += 1
                reply = {
                    "op": "done",
                    "key": key,
                    # The broker persists the result under this store
                    # kind (a plain coordinator ignores it).
                    "kind": getattr(job, "artifact_kind", "attacks"),
                    "result": artifact,
                }
                log(f"worker[{os.getpid()}]: completed {key[:12]}…")
            try:
                send_message(conn, reply)
            except OSError:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None  # server will requeue; nothing else to do
            if (
                max_jobs is not None
                and stats.executed + stats.skipped >= max_jobs
            ):
                break
    finally:
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
    log(f"worker[{os.getpid()}]: done ({stats.summary()})")
    return stats
