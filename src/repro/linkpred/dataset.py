"""Assembling GNN-ready datasets from sampled links (paper Sec. III-B/C).

Each sampled link becomes an enclosing subgraph with a node-information
matrix ``X = [gate-type one-hot (8) | DRNL one-hot]``.  The DRNL one-hot
width is fixed by the largest label seen in the *training* material; larger
labels encountered at attack time clamp to the "far" bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.gnn import GraphExample
from repro.linkpred.graph import AttackGraph, MuxTarget
from repro.linkpred.sampling import LinkSample
from repro.linkpred.subgraph import EnclosingSubgraph, extract_enclosing_subgraph
from repro.netlist import NUM_GATE_FEATURES

__all__ = ["LinkDataset", "TargetExample", "build_link_dataset", "build_target_examples"]


_MAX_DEGREE_FEATURE = 8


def _features(
    subgraph: EnclosingSubgraph,
    max_label: int,
    use_drnl: bool = True,
    use_gate_types: bool = True,
    use_degree: bool = True,
) -> np.ndarray:
    n = subgraph.n_nodes
    blocks: list[np.ndarray] = []
    if use_gate_types:
        gate_block = np.zeros((n, NUM_GATE_FEATURES))
        gate_block[np.arange(n), subgraph.gate_type_ids] = 1.0
        blocks.append(gate_block)
    if use_drnl:
        label_block = np.zeros((n, max_label + 1))
        clamped = np.minimum(subgraph.labels, max_label)
        label_block[np.arange(n), clamped] = 1.0
        blocks.append(label_block)
    if use_degree:
        degree_block = np.zeros((n, _MAX_DEGREE_FEATURE))
        clamped = np.minimum(subgraph.degrees, _MAX_DEGREE_FEATURE - 1)
        degree_block[np.arange(n), clamped] = 1.0
        blocks.append(degree_block)
    if not blocks:
        blocks.append(np.ones((n, 1)))
    return np.hstack(blocks)


@dataclass
class LinkDataset:
    """Train/validation subgraph examples plus the feature configuration."""

    train: list[GraphExample]
    validation: list[GraphExample]
    max_label: int
    feature_width: int
    h: int
    use_drnl: bool = True
    use_gate_types: bool = True
    use_degree: bool = True
    subgraph_sizes: list[int] = field(default_factory=list)


def build_link_dataset(
    graph: AttackGraph,
    sample: LinkSample,
    h: int = 3,
    use_drnl: bool = True,
    use_gate_types: bool = True,
    use_degree: bool = True,
) -> LinkDataset:
    """Extract and featurize enclosing subgraphs for every sampled link."""
    raw: list[tuple[EnclosingSubgraph, int, bool]] = []
    max_label = 1
    for split_is_train, links in ((True, sample.train), (False, sample.validation)):
        for u, v, label in links:
            sub = extract_enclosing_subgraph(graph, u, v, h)
            raw.append((sub, label, split_is_train))
            max_label = max(max_label, int(sub.labels.max(initial=0)))
    if not raw:
        raise TrainingError("no links to build a dataset from")

    train: list[GraphExample] = []
    validation: list[GraphExample] = []
    sizes: list[int] = []
    for sub, label, is_train in raw:
        example = GraphExample(
            n_nodes=sub.n_nodes,
            edges=sub.edges,
            features=_features(sub, max_label, use_drnl, use_gate_types, use_degree),
            label=label,
        )
        (train if is_train else validation).append(example)
        if is_train:
            sizes.append(sub.n_nodes)
    width = train[0].features.shape[1] if train else validation[0].features.shape[1]
    return LinkDataset(
        train=train,
        validation=validation,
        max_label=max_label,
        feature_width=width,
        h=h,
        use_drnl=use_drnl,
        use_gate_types=use_gate_types,
        use_degree=use_degree,
        subgraph_sizes=sizes,
    )


@dataclass(frozen=True)
class TargetExample:
    """A candidate link of one key MUX, ready for scoring.

    Attributes:
        target: the owning MUX record.
        select_value: key value that would pass this candidate (0 for d0).
        example: the unlabeled subgraph.
    """

    target: MuxTarget
    select_value: int
    example: GraphExample


def build_target_examples(
    graph: AttackGraph, dataset: LinkDataset
) -> list[TargetExample]:
    """Featurize both candidate links of every key MUX.

    Must use the *training* feature configuration (same ``max_label`` and
    blocks) so the model sees consistent input widths.
    """
    out: list[TargetExample] = []
    for target in graph.targets:
        for driver, load, select_value in target.candidates():
            sub = extract_enclosing_subgraph(graph, driver, load, dataset.h)
            example = GraphExample(
                n_nodes=sub.n_nodes,
                edges=sub.edges,
                features=_features(
                    sub,
                    dataset.max_label,
                    dataset.use_drnl,
                    dataset.use_gate_types,
                    dataset.use_degree,
                ),
                label=-1,
            )
            out.append(
                TargetExample(target=target, select_value=select_value, example=example)
            )
    return out
