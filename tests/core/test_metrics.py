"""Tests for AC / PC / KPA metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import KeyMetrics, aggregate_metrics, score_key


def test_perfect_key():
    m = score_key("0110", "0110")
    assert m.accuracy == 1.0
    assert m.precision == 1.0
    assert m.kpa == 1.0
    assert m.decision_rate == 1.0


def test_all_wrong():
    m = score_key("1111", "0000")
    assert m.accuracy == 0.0
    assert m.precision == 0.0
    assert m.kpa == 0.0


def test_x_counts_toward_precision_not_accuracy():
    m = score_key("0xx1", "0001")
    assert m.n_correct == 2
    assert m.n_x == 2
    assert m.accuracy == 0.5
    assert m.precision == 1.0  # no wrong guesses
    assert m.kpa == 1.0  # decided bits all correct
    assert m.decision_rate == 0.5


def test_all_x_gives_nan_kpa():
    m = score_key("xxxx", "0101")
    assert math.isnan(m.kpa)
    assert m.precision == 1.0
    assert m.accuracy == 0.0


def test_paper_metric_definitions():
    # AC=(Kcorrect/Ktotal), PC=((Kcorrect+Kx)/Ktotal), KPA=Kcorrect/(Ktotal-Kx)
    m = score_key("01x10x", "001101")
    assert m.n_total == 6
    assert m.n_correct == 3
    assert m.n_wrong == 1
    assert m.n_x == 2
    assert m.accuracy == pytest.approx(3 / 6)
    assert m.precision == pytest.approx(5 / 6)
    assert m.kpa == pytest.approx(3 / 4)


def test_validation():
    with pytest.raises(ValueError):
        score_key("01", "011")
    with pytest.raises(ValueError):
        score_key("02", "01")
    with pytest.raises(ValueError):
        score_key("01", "0x")  # actual key may not contain x


def test_aggregate():
    a = score_key("01", "01")
    b = score_key("xx", "01")
    pooled = aggregate_metrics([a, b])
    assert pooled.n_total == 4
    assert pooled.accuracy == 0.5
    assert pooled.precision == 1.0
    with pytest.raises(ValueError):
        aggregate_metrics([])


@given(st.text(alphabet="01x", min_size=1, max_size=64), st.data())
def test_metric_bounds_property(predicted, data):
    actual = data.draw(
        st.text(alphabet="01", min_size=len(predicted), max_size=len(predicted))
    )
    m = score_key(predicted, actual)
    assert 0.0 <= m.accuracy <= 1.0
    assert m.accuracy <= m.precision <= 1.0
    if not math.isnan(m.kpa):
        assert 0.0 <= m.kpa <= 1.0
    assert m.n_correct + m.n_wrong + m.n_x == m.n_total


def test_kpa_equals_accuracy_when_no_x():
    m = score_key("0101", "0111")
    assert m.kpa == m.accuracy


def test_all_x_decision_rate_is_zero():
    m = score_key("xxxx", "0101")
    assert m.decision_rate == 0.0


def test_empty_key_every_rate_is_nan():
    """K=0 (no key inputs at all): every rate degenerates to NaN rather
    than raising ZeroDivisionError."""
    m = score_key("", "")
    assert m.n_total == 0
    assert math.isnan(m.accuracy)
    assert math.isnan(m.precision)
    assert math.isnan(m.kpa)
    assert math.isnan(m.decision_rate)


def test_empty_key_metrics_direct():
    m = KeyMetrics(n_total=0, n_correct=0, n_wrong=0, n_x=0)
    assert math.isnan(m.kpa)
    assert math.isnan(m.decision_rate)


def test_aggregate_single_run_is_identity():
    single = score_key("01x10x", "001101")
    pooled = aggregate_metrics([single])
    assert pooled == single
    assert pooled.kpa == single.kpa
    assert pooled.decision_rate == single.decision_rate
