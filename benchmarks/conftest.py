"""Benchmark-suite configuration.

Each bench regenerates one figure of the paper at CI scale (set
``REPRO_EXPERIMENT_SCALE=paper`` for the full-size protocol) and prints the
paper-style table to stdout; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.

All figure benches execute through one session-scoped
:class:`~repro.experiments.ExperimentRunner`, exactly like ``repro
figures``: ``REPRO_JOBS=N`` pools the attack cells over N worker
processes, and when several figure benches run in one pytest session the
later ones reuse the locked netlists and trained attacks of the earlier
ones (Fig. 8 / Fig. 9 re-train nothing after Fig. 7).
"""

import pytest

from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    """The shared pooled/cache-warm experiment runner (``REPRO_JOBS``)."""
    with ExperimentRunner() as shared:
        yield shared


@pytest.fixture
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure regeneration takes seconds to minutes; statistical repetition
    would multiply that for no insight, so every bench uses one round.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
