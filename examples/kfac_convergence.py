"""Adam vs K-FAC-preconditioned Adam on the c2670 attack dataset.

Runs in about a minute::

    python examples/kfac_convergence.py

Trains the link-prediction DGCNN twice on a D-MUX-locked c2670 — once
with the fused Adam and early stopping, once with the K-FAC
preconditioner layered on top of the same Adam — and reports how many
epochs each needs to reach the Adam run's best validation AUC.  The
K-FAC knobs mirror ``benchmarks/bench_kfac.py``: inverses refreshed once
per epoch, statistics collected twice per epoch, and the 641-wide first
dense layer left on the raw-gradient path (cheaper *and* better here).

Also demonstrates optimizer swap-and-resume: the Adam run's checkpoint
restarts under K-FAC (the preconditioner cold-starts; Adam's moments
carry over), which is how a half-trained figure grid can be upgraded.
"""

import os
import tempfile

from repro import TrainConfig, load_benchmark, lock_dmux
from repro.linkpred import (
    Trainer,
    build_link_dataset,
    extract_attack_graph,
    sample_links,
)

PATIENCE = 5
MAX_EPOCHS = 24
KFAC = dict(
    optimizer="kfac",
    kfac_damping=1e-3,
    kfac_inv_every=22,
    kfac_cov_every=11,
    kfac_max_dim=256,
)


def main() -> None:
    # 1. The bench workload: c2670, 32-key D-MUX lock, 1200 links. -------
    base = load_benchmark("c2670", scale=1.0)
    locked = lock_dmux(base, key_size=32, seed=0)
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=1200, seed=0)
    dataset = build_link_dataset(graph, sample, h=3)
    print(
        f"c2670 attack dataset: {len(dataset.train)} train / "
        f"{len(dataset.validation)} val subgraphs"
    )

    # 2. Adam with early stopping sets the bar. --------------------------
    adam = Trainer(
        dataset,
        TrainConfig(
            epochs=MAX_EPOCHS, learning_rate=1e-3, seed=0, patience=PATIENCE
        ),
    )
    _, h_adam = adam.fit()
    target = h_adam.val_auc[h_adam.best_epoch]
    print(
        f"adam:  best val AUC {target:.4f} at epoch {h_adam.best_epoch + 1}, "
        f"stopped after {h_adam.epochs_run} epochs (patience={PATIENCE})"
    )

    # 3. K-FAC chases the same AUC. --------------------------------------
    kfac = Trainer(
        dataset,
        TrainConfig(epochs=MAX_EPOCHS, learning_rate=1e-3, seed=0, **KFAC),
    )
    _, h_kfac = kfac.fit()
    reached = next(
        (i + 1 for i, auc in enumerate(h_kfac.val_auc) if auc >= target), None
    )
    if reached is None:
        print(f"kfac:  did not reach {target:.4f} in {MAX_EPOCHS} epochs")
    else:
        saved = 1 - reached / h_adam.epochs_run
        print(
            f"kfac:  reached {target:.4f} at epoch {reached} "
            f"({saved:.0%} fewer epochs than adam)"
        )

    # 4. Swap-and-resume: an Adam checkpoint restarts under K-FAC. -------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "adam.ckpt")
        half = Trainer(
            dataset, TrainConfig(epochs=4, learning_rate=1e-3, seed=0)
        )
        half.fit()
        half.save_checkpoint(path)
        resumed = Trainer(
            dataset,
            TrainConfig(epochs=8, learning_rate=1e-3, seed=0, **KFAC),
        )
        resumed.load_checkpoint(path)
        _, h_resumed = resumed.fit()
    print(
        f"swap-and-resume: 4 adam epochs -> 4 kfac epochs, "
        f"final val AUC {h_resumed.val_auc[-1]:.4f}"
    )


if __name__ == "__main__":
    main()
