"""Tests for enclosing-subgraph extraction and DRNL labelling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import random_netlist
from repro.linkpred import (
    drnl_label,
    extract_attack_graph,
    extract_enclosing_subgraph,
)
from repro.locking import lock_dmux


def graph_for(seed=0, key_size=6):
    base = random_netlist("base", 10, 5, 100, seed=seed)
    locked = lock_dmux(base, key_size=key_size, seed=seed)
    return extract_attack_graph(locked.circuit)


# ------------------------------------------------------------------ DRNL
def test_drnl_targets_get_one():
    assert drnl_label(0, 5) == 1
    assert drnl_label(3, 0) == 1


def test_drnl_unreachable_gets_zero():
    assert drnl_label(None, 4) == 0
    assert drnl_label(2, None) == 0
    assert drnl_label(None, None) == 0


def test_drnl_formula_values():
    # Eq. 3: fl = 1 + min(df, dg) + (d/2)[(d/2) + (d%2) - 1]
    assert drnl_label(1, 1) == 2  # 1 + 1 + 1*(1+0-1) = 2
    assert drnl_label(1, 2) == 3  # 1 + 1 + 1*(1+1-1) = 3
    assert drnl_label(2, 2) == 5  # 1 + 2 + 2*(2+0-1) = 5
    assert drnl_label(2, 3) == 7  # 1 + 2 + 2*(2+1-1) = 7


def test_drnl_rejects_double_zero():
    with pytest.raises(ValueError):
        drnl_label(0, 0)


@given(st.integers(1, 20), st.integers(1, 20))
def test_drnl_positive_and_symmetric(df, dg):
    assert drnl_label(df, dg) >= 2
    assert drnl_label(df, dg) == drnl_label(dg, df)


# ------------------------------------------------------- subgraph extraction
def test_targets_are_first_two_nodes():
    graph = graph_for()
    target = graph.targets[0]
    sub = extract_enclosing_subgraph(graph, target.cand_d0, target.load, h=2)
    assert sub.nodes[0] == target.cand_d0
    assert sub.nodes[1] == target.load
    assert sub.labels[0] == 1
    assert sub.labels[1] == 1


def test_h_controls_membership():
    graph = graph_for(seed=1)
    u, v = graph.edges()[0]
    small = extract_enclosing_subgraph(graph, u, v, h=1)
    large = extract_enclosing_subgraph(graph, u, v, h=3)
    assert small.n_nodes <= large.n_nodes
    assert set(small.nodes) <= set(large.nodes)


def test_h1_membership_is_exact():
    """h=1 subgraph = closed neighborhoods of both targets."""
    graph = graph_for(seed=2)
    u, v = graph.edges()[5]
    sub = extract_enclosing_subgraph(graph, u, v, h=1)
    expected = ({u, v} | graph.neighbors[u] | graph.neighbors[v]) - (
        {u} if u in graph.neighbors[v] else set()
    )
    expected |= {u, v}
    assert set(sub.nodes) == expected


def test_direct_edge_removed():
    """Even for an observed wire, the subgraph must not contain the link."""
    graph = graph_for(seed=3)
    u, v = graph.edges()[0]
    sub = extract_enclosing_subgraph(graph, u, v, h=2)
    local_u = list(sub.nodes).index(u)
    local_v = list(sub.nodes).index(v)
    for a, b in sub.edges:
        assert {a, b} != {local_u, local_v}


def test_edges_are_local_and_valid():
    graph = graph_for(seed=4)
    target = graph.targets[0]
    sub = extract_enclosing_subgraph(graph, target.cand_d1, target.load, h=2)
    if sub.edges.size:
        assert sub.edges.min() >= 0
        assert sub.edges.max() < sub.n_nodes
    # Every local edge corresponds to a real observed edge.
    for a, b in sub.edges:
        assert graph.has_edge(int(sub.nodes[a]), int(sub.nodes[b]))


def test_degrees_match_full_graph():
    graph = graph_for(seed=5)
    u, v = graph.edges()[2]
    sub = extract_enclosing_subgraph(graph, u, v, h=2)
    for local, node in enumerate(sub.nodes):
        assert sub.degrees[local] == len(graph.neighbors[int(node)])


def test_input_validation():
    graph = graph_for(seed=6)
    with pytest.raises(ValueError):
        extract_enclosing_subgraph(graph, 0, 0, h=2)
    with pytest.raises(ValueError):
        extract_enclosing_subgraph(graph, 0, 1, h=0)


def test_labels_nonnegative_and_targets_distinct():
    graph = graph_for(seed=7)
    for target in graph.targets[:3]:
        for driver, load, _ in target.candidates():
            sub = extract_enclosing_subgraph(graph, driver, load, h=3)
            assert (sub.labels >= 0).all()
            assert sub.labels[0] == 1 and sub.labels[1] == 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 30), h=st.integers(1, 3))
def test_subgraph_invariants_property(seed, h):
    graph = graph_for(seed=seed, key_size=4)
    target = graph.targets[seed % len(graph.targets)]
    sub = extract_enclosing_subgraph(graph, target.cand_d0, target.load, h=h)
    assert sub.n_nodes >= 2
    assert len(sub.labels) == sub.n_nodes
    assert len(sub.gate_type_ids) == sub.n_nodes
    assert len(np.unique(sub.nodes)) == sub.n_nodes
