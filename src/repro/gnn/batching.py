"""Variable-size graph batching for the DGCNN.

A minibatch of enclosing subgraphs is assembled into one block-diagonal
sparse operator ``D^-1 (A + I)`` plus a stacked node-feature matrix, so the
graph convolutions of the whole batch run as a single sparse-dense product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["GraphExample", "GraphBatch", "build_batch", "normalized_adjacency"]


@dataclass(frozen=True)
class GraphExample:
    """One subgraph ready for the GNN.

    Attributes:
        n_nodes: node count.
        edges: ``(E, 2)`` int array of undirected edges (one row per pair;
            both directions are added when building the operator).
        features: ``(n_nodes, d)`` node-information matrix.
        label: class label (1 = link, 0 = no link) or -1 when unknown.
    """

    n_nodes: int
    edges: np.ndarray
    features: np.ndarray
    label: int = -1

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.n_nodes:
            raise ValueError(
                f"{self.features.shape[0]} feature rows for {self.n_nodes} nodes"
            )
        if self.edges.size and (
            self.edges.min() < 0 or self.edges.max() >= self.n_nodes
        ):
            raise ValueError("edge endpoint out of range")


def normalized_adjacency(n_nodes: int, edges: np.ndarray) -> sp.csr_matrix:
    """Build ``D^-1 (A + I)`` for one undirected graph (paper Eq. 4)."""
    if edges.size:
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = np.ones(len(rows))
        adj = sp.coo_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes))
        adj = adj.tocsr()
        adj.data[:] = 1.0  # collapse duplicate edges
    else:
        adj = sp.csr_matrix((n_nodes, n_nodes))
    adj = adj + sp.identity(n_nodes, format="csr")
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_degree = 1.0 / degree
    return sp.diags(inv_degree).dot(adj).tocsr()


@dataclass(frozen=True)
class GraphBatch:
    """A batch of subgraphs fused into block-diagonal form."""

    norm_adj: sp.csr_matrix
    features: np.ndarray
    node_offsets: np.ndarray  # (B + 1,) prefix sums
    labels: np.ndarray  # (B,)

    @property
    def n_graphs(self) -> int:
        return len(self.node_offsets) - 1

    def graph_slice(self, index: int) -> slice:
        return slice(self.node_offsets[index], self.node_offsets[index + 1])


def build_batch(examples: list[GraphExample]) -> GraphBatch:
    """Fuse *examples* into one :class:`GraphBatch`.

    The block-diagonal ``D^-1 (A + I)`` operator is assembled directly from
    the concatenated (offset) edge arrays with a single ``sp.coo_matrix``
    call — no per-example sparse matrices, no ``sp.block_diag``.
    """
    if not examples:
        raise ValueError("cannot batch zero graphs")
    widths = {e.features.shape[1] for e in examples}
    if len(widths) != 1:
        raise ValueError(f"inconsistent feature widths {sorted(widths)}")
    features = np.vstack([e.features for e in examples])
    sizes = np.array([e.n_nodes for e in examples])
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    labels = np.array([e.label for e in examples], dtype=np.int64)

    total = int(offsets[-1])
    shifted = [
        e.edges + off for e, off in zip(examples, offsets) if e.edges.size
    ]
    if shifted:
        stacked = np.concatenate(shifted)
        rows = np.concatenate([stacked[:, 0], stacked[:, 1]])
        cols = np.concatenate([stacked[:, 1], stacked[:, 0]])
        adj = sp.coo_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(total, total)
        ).tocsr()
        adj.data[:] = 1.0  # collapse duplicate edges
    else:
        adj = sp.csr_matrix((total, total))
    adj = adj + sp.identity(total, format="csr")
    degree = np.asarray(adj.sum(axis=1)).ravel()
    adj.data /= np.repeat(degree, np.diff(adj.indptr))
    return GraphBatch(
        norm_adj=adj,
        features=features,
        node_offsets=offsets,
        labels=labels,
    )
