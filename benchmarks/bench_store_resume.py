"""Persistent-store resume bench: ``repro figures`` without recompute.

Drives the fig7-fig10 cell grids through two **independent**
store-backed :class:`~repro.experiments.ExperimentRunner` instances
(fresh in-memory caches each — exactly what two separate ``repro
figures --store`` invocations do):

1. the **first** pass locks/trains whatever the store does not hold yet
   — on a CI runner with a restored ``actions/cache`` store this is
   already (near-)zero work;
2. the **resume** pass must perform **zero lock and zero train jobs**
   (asserted on :class:`~repro.experiments.RunnerStats`) and return
   records bit-identical to the first pass.

Wall-clock for both passes, the artifact counts and the store hit/miss
counters land in the job summary (``GITHUB_STEP_SUMMARY``) and in the
``bench_store_resume`` section of ``BENCH_training.json``.

``REPRO_BENCH_STORE_DIR`` picks the store directory (default
``.repro-store`` — the path CI persists across workflow runs) and
``REPRO_BENCH_STORE_SCALE`` the grid (default ``smoke``; ``ci`` for the
full figure-bench grid).

Run standalone::

    python benchmarks/bench_store_resume.py
"""

from __future__ import annotations

import os
import time

from perf_record import update_record
from repro.experiments import (
    ExperimentRunner,
    fig7_cells,
    fig8_cells,
    fig9_cells,
    fig10_cells,
    record_fingerprint,
    scale_by_name,
)

STORE_DIR = os.environ.get("REPRO_BENCH_STORE_DIR", ".repro-store")
SCALE_NAME = os.environ.get("REPRO_BENCH_STORE_SCALE", "smoke")
SEED = 0


def _grid(scale):
    cells = list(fig7_cells(scale, seed=SEED))
    cells += fig8_cells(scale, seed=SEED)
    cells += fig9_cells(scale, seed=SEED)
    cells += fig10_cells(scale, hops=(1, 2, 3), seed=SEED)
    return cells


def _summarize(rows: list[tuple[str, float, str]]) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            f"### bench_store_resume ({SCALE_NAME} grid, store `{STORE_DIR}`)\n\n"
        )
        handle.write("| pass | wall-clock | runner stats |\n|---|---|---|\n")
        for name, seconds, stats in rows:
            handle.write(f"| {name} | {seconds:.2f}s | `{stats}` |\n")
        handle.write(
            "\nresume pass re-locked and re-trained **nothing** "
            "(asserted); a warm `actions/cache` store makes the first "
            "pass near-zero work too.\n"
        )


def test_store_resume_zero_recompute():
    scale = scale_by_name(SCALE_NAME)
    cells = _grid(scale)
    print(
        f"\n[bench_store_resume] scale={scale.name} cells={len(cells)} "
        f"store={STORE_DIR}"
    )

    first = ExperimentRunner(jobs=0, store=STORE_DIR)
    t0 = time.perf_counter()
    first_records = first.run(cells)
    t_first = time.perf_counter() - t0
    print(f"  first pass : {t_first:7.2f}s  {first.stats.summary()}")
    print(f"               store: {first.store.stats.summary()}")

    resume = ExperimentRunner(jobs=0, store=STORE_DIR)
    t0 = time.perf_counter()
    resume_records = resume.run(cells)
    t_resume = time.perf_counter() - t0
    print(f"  resume pass: {t_resume:7.2f}s  {resume.stats.summary()}")
    print(f"               store: {resume.store.stats.summary()}")

    assert resume.stats.locks_computed == 0, "resume pass re-locked"
    assert resume.stats.attacks_computed == 0, "resume pass re-trained"
    assert [record_fingerprint(r) for r in resume_records] == [
        record_fingerprint(r) for r in first_records
    ], "resumed records diverged from the first pass"

    _summarize(
        [
            ("first", t_first, first.stats.summary()),
            ("resume", t_resume, resume.stats.summary()),
        ]
    )
    update_record(
        "bench_store_resume",
        {
            "scale": scale.name,
            "cells": len(cells),
            "store": STORE_DIR,
            "first_seconds": round(t_first, 4),
            "first_locks_computed": first.stats.locks_computed,
            "first_attacks_computed": first.stats.attacks_computed,
            "first_locks_loaded": first.stats.locks_loaded,
            "first_attacks_loaded": first.stats.attacks_loaded,
            "resume_seconds": round(t_resume, 4),
            "resume_locks_computed": resume.stats.locks_computed,
            "resume_attacks_computed": resume.stats.attacks_computed,
            "resume_locks_loaded": resume.stats.locks_loaded,
            "resume_attacks_loaded": resume.stats.attacks_loaded,
            "store_bytes_written": first.store.stats.bytes_written,
            "store_bytes_read": (
                first.store.stats.bytes_read + resume.store.stats.bytes_read
            ),
        },
    )


if __name__ == "__main__":
    test_store_resume_zero_recompute()
    print("bench_store_resume: OK")
