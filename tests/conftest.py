"""Suite-wide fixtures.

``REPRO_STORE`` points every :class:`~repro.experiments.ExperimentRunner`
at a persistent artifact store.  The suite's cache-behaviour tests assert
exact cold-run counters (locks/attacks *computed*), so an ambient store
from the developer's shell must not leak in — tests that want one set it
explicitly (or pass ``store=``).
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_artifact_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
