"""Tests for the bit-parallel simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import load_c17, random_netlist
from repro.errors import SimulationError
from repro.netlist import Circuit, Gate, GateType
from repro.sim import pack_patterns, random_patterns, simulate, simulate_outputs


def exhaustive_words(n_inputs):
    """Packed stimulus covering all 2**n_inputs patterns (n_inputs <= 6)."""
    n = 1 << n_inputs
    patterns = np.array(
        [[(p >> i) & 1 for i in range(n_inputs)] for p in range(n)]
    )
    return pack_patterns(patterns), n


def bit(words, p):
    return (int(words[p // 64]) >> (p % 64)) & 1


def test_pack_patterns_layout():
    patterns = np.array([[1, 0], [0, 1], [1, 1]])
    packed = pack_patterns(patterns)
    assert packed.shape == (2, 1)
    assert bit(packed[0], 0) == 1 and bit(packed[1], 0) == 0
    assert bit(packed[0], 1) == 0 and bit(packed[1], 1) == 1
    assert bit(packed[0], 2) == 1 and bit(packed[1], 2) == 1


def test_pack_patterns_rejects_1d():
    with pytest.raises(SimulationError):
        pack_patterns(np.array([1, 0, 1]))


def test_c17_exhaustive_against_reference():
    """Validate against an independent python-int model of c17."""
    c17 = load_c17()
    words, n = exhaustive_words(5)
    outs = simulate_outputs(c17, words)
    for p in range(n):
        g1, g2, g3, g6, g7 = ((p >> i) & 1 for i in range(5))
        g10 = 1 - (g1 & g3)
        g11 = 1 - (g3 & g6)
        g16 = 1 - (g2 & g11)
        g19 = 1 - (g11 & g7)
        g22 = 1 - (g10 & g16)
        g23 = 1 - (g16 & g19)
        assert bit(outs[0], p) == g22, f"pattern {p}"
        assert bit(outs[1], p) == g23, f"pattern {p}"


def test_simulate_returns_all_nets():
    c17 = load_c17()
    words, _ = exhaustive_words(5)
    values = simulate(c17, words)
    assert set(values) == set(c17.nets)


def test_dict_stimulus_and_missing_input():
    c17 = load_c17()
    words, _ = exhaustive_words(5)
    stim = {pi: words[i] for i, pi in enumerate(c17.inputs)}
    out_a = simulate_outputs(c17, stim)
    out_b = simulate_outputs(c17, words)
    assert np.array_equal(out_a, out_b)
    del stim["G1"]
    with pytest.raises(SimulationError):
        simulate(c17, stim)


def test_wrong_row_count_rejected():
    c17 = load_c17()
    with pytest.raises(SimulationError):
        simulate(c17, np.zeros((3, 1), dtype=np.uint64))


def test_mux_gate_simulation():
    c = Circuit("m", inputs=["s", "a", "b"])
    c.add_gate(Gate("y", GateType.MUX, ("s", "a", "b")))
    c.add_output("y")
    words, n = exhaustive_words(3)
    outs = simulate_outputs(c, words)
    for p in range(n):
        s, a, b = p & 1, (p >> 1) & 1, (p >> 2) & 1
        assert bit(outs[0], p) == (b if s else a)


def test_random_patterns_shape_and_determinism():
    w1, n1 = random_patterns(7, 200, seed=3)
    w2, _ = random_patterns(7, 200, seed=3)
    assert w1.shape == (7, 4)
    assert n1 == 200
    assert np.array_equal(w1, w2)
    w3, _ = random_patterns(7, 200, seed=4)
    assert not np.array_equal(w1, w3)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_simulation_is_deterministic_on_random_circuits(seed):
    c = random_netlist("r", 6, 3, 40, seed=seed)
    words, _ = random_patterns(6, 128, seed=seed)
    a = simulate_outputs(c, words)
    b = simulate_outputs(c, words)
    assert np.array_equal(a, b)
