"""Distributed ``repro figures``: two worker processes, one spool + store.

Demonstrates the spool job bus end to end with **real processes** — the
deployment shape, minus the second machine:

* two ``repro worker`` processes attach to a spool directory and a
  shared artifact store (start them before or after the coordinator;
  the lease protocol makes the outcome identical);
* one ``repro figures --bus spool`` coordinator plans the smoke-scale
  grid, enqueues the unique attack jobs, and adopts the artifacts the
  workers write into the store;
* a second, **warm** coordinator run then completes with zero leases —
  the store dedupe runs before the bus ever sees a job.

Equivalent shell session::

    repro worker --bus-dir ./spool --store ./store &
    repro worker --bus-dir ./spool --store ./store &
    repro figures --figures 7 8 9 10 --scale smoke \
        --bus spool --bus-dir ./spool --store ./store

Every figure table is bit-identical to a serial ``--bus local`` run:
jobs travel as codec payloads (the store's own exchange format), so the
backend can never move a bit of the result.  If a worker dies mid-job —
SIGKILL included — its lease goes stale and a peer requeues it; see
``tests/bus/test_recovery.py`` for that drill.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import time

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src"
ENV = {"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"}


def start_worker(spool: pathlib.Path, store: pathlib.Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--bus-dir", str(spool),
            "--store", str(store),
            "--poll", "0.1",
            "--idle-timeout", "300",
        ],
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def run_figures(spool: pathlib.Path, store: pathlib.Path, label: str) -> str:
    print(f"=== {label} ===")
    start = time.perf_counter()
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "figures",
            "--figures", "7", "8", "9", "10",
            "--scale", "smoke",
            "--bus", "spool",
            "--bus-dir", str(spool),
            "--store", str(store),
        ],
        capture_output=True,
        text=True,
        env=ENV,
        check=True,
    )
    print(f"  {time.perf_counter() - start:.1f}s wall-clock")
    for line in result.stdout.splitlines():
        if line.startswith(("runner:", "bus[", "store:")):
            print(f"  {line}")
    return result.stdout


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        spool = pathlib.Path(tmp) / "spool"
        store = pathlib.Path(tmp) / "store"

        workers = [start_worker(spool, store) for _ in range(2)]
        print(f"started workers: pids {[w.pid for w in workers]}")
        try:
            cold = run_figures(spool, store, "cold coordinator (2 workers)")
            warm = run_figures(spool, store, "warm coordinator (no leases)")
        finally:
            for worker in workers:
                worker.terminate()
        for worker in workers:
            out, _ = worker.communicate(timeout=30)
            for line in out.splitlines()[-2:]:
                print(f"  [pid {worker.pid}] {line}")

        tables = lambda text: [  # noqa: E731 - tiny local filter
            line
            for line in text.splitlines()
            if line.strip()
            and not line.startswith(
                ("runner:", "bus[", "store:", "store=", "bus=", "scale=")
            )
        ]
        assert tables(cold) == tables(warm), "warm tables diverged"
        assert "jobs=0" in warm.split("bus[spool]: ")[1].splitlines()[0], (
            "warm run should enqueue nothing"
        )
        print("\ncold and warm figure tables identical; warm run leased 0 jobs")


if __name__ == "__main__":
    main()
