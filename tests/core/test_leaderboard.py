"""The resilience leaderboard and the cell-grid fig. 2 driver."""

import math

from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    fig2_cells,
    format_fig2,
    format_leaderboard,
    leaderboard_fingerprint,
    record_fingerprint,
    run_fig2,
    run_leaderboard,
)

N_SMOKE_GRID = 2  # schemes × (1 smoke benchmark) × (1 smoke key size)


# ------------------------------------------------------------ leaderboard
def test_leaderboard_smoke_structure():
    rows = run_leaderboard(scale=SMOKE_SCALE, seed=0)
    assert len(rows) == N_SMOKE_GRID * 5  # full default roster
    assert [r.attack for r in rows[:5]] == [
        "muxlink", "saam", "scope", "sweep", "random",
    ]
    assert {r.scheme for r in rows} == {"D-MUX", "Symmetric-MUX"}
    for row in rows:
        assert len(row.predicted_key) == row.key_size
        assert row.runtime_seconds >= 0.0
    table = format_leaderboard(rows)
    assert "Resilience leaderboard" in table
    assert "MuxLink" in table and "SWEEP" in table
    assert "Summary (pooled KPA per scheme × attack):" in table


def test_leaderboard_ensemble_rows():
    rows = run_leaderboard(
        scale=SMOKE_SCALE,
        seed=0,
        attacks=("muxlink", "scope", "muxlink+scope"),
    )
    assert len(rows) == N_SMOKE_GRID * 3
    combined = [r for r in rows if r.attack == "muxlink+scope"]
    assert len(combined) == N_SMOKE_GRID
    for row in combined:
        assert len(row.predicted_key) == row.key_size
        assert not math.isnan(row.metrics.accuracy)
    assert "MuxLink+SCOPE" in format_leaderboard(rows)


def test_leaderboard_warm_store_runs_nothing(tmp_path):
    """A second leaderboard over the same store, in a fresh runner,
    adopts every lock, MuxLink attack and baseline report."""
    store = tmp_path / "store"
    with ExperimentRunner(jobs=0, store=store) as cold_runner:
        cold = run_leaderboard(scale=SMOKE_SCALE, seed=0, runner=cold_runner)
        assert cold_runner.stats.baselines_computed > 0

    with ExperimentRunner(jobs=0, store=store) as warm_runner:
        warm = run_leaderboard(scale=SMOKE_SCALE, seed=0, runner=warm_runner)
        assert warm_runner.stats.locks_computed == 0
        assert warm_runner.stats.attacks_computed == 0
        assert warm_runner.stats.baselines_computed == 0
    assert leaderboard_fingerprint(warm) == leaderboard_fingerprint(cold)


def test_leaderboard_shares_fig7_locks():
    """MuxLink rows attack copy 0 — the exact lock instance fig. 7 uses —
    so the leaderboard's in-memory runner re-locks nothing per scheme
    beyond the baseline training copies."""
    from repro.experiments import fig7_cells

    with ExperimentRunner(jobs=0) as runner:
        runner.run(fig7_cells(SMOKE_SCALE, seed=0))
        locks_after_fig7 = runner.stats.locks_computed
        run_leaderboard(
            scale=SMOKE_SCALE, seed=0, runner=runner, attacks=("muxlink", "scope")
        )
        # scope rides entirely on fig7's locks: no new lock jobs at all.
        assert runner.stats.locks_computed == locks_after_fig7


# ------------------------------------------------------------------ fig. 2
def test_fig2_cells_grid_shape():
    cells = fig2_cells(SMOKE_SCALE, n_copies=3, key_size=6, seed=1)
    # 2 schemes × 1 benchmark × 2 attacks × 3 copies
    assert len(cells) == 12
    sweep = [c for c in cells if c.attack == "sweep"]
    scope = [c for c in cells if c.attack == "scope"]
    assert len(sweep) == len(scope) == 6
    for cell in sweep:  # leave-one-out corpus, in index order
        assert cell.copy not in cell.train_copies
        assert len(cell.train_copies) == 2
    for cell in scope:
        assert cell.train_copies == ()


def test_fig2_copies_use_independent_rng_streams():
    """The PR 8 bugfix: lock seeds and attack coin seeds never collide
    across copies, attacks, or neighbouring cells (the old flat
    ``seed + i`` scheme correlated all three)."""
    cells = fig2_cells(SMOKE_SCALE, n_copies=4, key_size=6, seed=0)
    lock_seeds = {(c.scheme, c.copy): c.lock_seed for c in cells}
    assert len(set(lock_seeds.values())) == len(lock_seeds)
    coin_seeds = [c.config.seed for c in cells]
    assert len(set(coin_seeds)) == len(coin_seeds)
    assert not set(coin_seeds) & set(lock_seeds.values())


def test_fig2_serial_reordered_bit_parity():
    """Serial and reversed-grid execution produce identical records —
    per-cell SeedSequence streams make order irrelevant."""
    cells = fig2_cells(SMOKE_SCALE, n_copies=2, key_size=6, seed=3)
    with ExperimentRunner(jobs=0) as runner:
        forward = runner.run(cells)
    with ExperimentRunner(jobs=0) as runner:
        backward = runner.run(list(reversed(cells)))
    assert [record_fingerprint(r) for r in forward] == [
        record_fingerprint(r) for r in reversed(backward)
    ]


def test_fig2_flat_kpa_on_resilient_schemes():
    """The paper's Fig. 2 claim: SCOPE and SWEEP hover at coin-flip KPA
    on both learning-resilient schemes."""
    rows = run_fig2(scale=SMOKE_SCALE, n_copies=6, key_size=6, seed=0)
    assert len(rows) == 4
    kpas = [r.metrics.kpa for r in rows]
    for kpa in kpas:
        assert 0.2 <= kpa <= 0.8
    mean = sum(kpas) / len(kpas)
    assert 0.35 <= mean <= 0.65
    assert "Fig. 2" in format_fig2(rows)
