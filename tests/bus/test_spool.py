"""SpoolDir lease protocol: enqueue / lease / heartbeat / reap / quarantine."""

import os
import time

import pytest

from repro.bus import (
    BusError,
    LocalBus,
    SpoolBus,
    SpoolDir,
    decode_job,
    encode_job,
    resolve_bus,
)
from repro.experiments import SMOKE_SCALE, make_cell
from repro.experiments.common import resolve_worker_count
from repro.experiments.runner import AttackJob


def _job(key: str = "a" * 16) -> dict:
    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, "D-MUX", 6, seed=0)
    return encode_job(
        AttackJob(store_key=key, circuit={"fake": 1}, config=cell.config)
    )


def test_enqueue_lease_complete_lifecycle(tmp_path):
    spool = SpoolDir(tmp_path)
    assert spool.lease() is None  # empty spool
    assert spool.enqueue("k1", _job("k1"))
    assert spool.pending_keys() == ["k1"]
    assert not spool.enqueue("k1", _job("k1"))  # already pending

    key, payload = spool.lease()
    assert key == "k1"
    assert payload["attempt"] == 0
    assert spool.pending_keys() == [] and spool.leased_keys() == ["k1"]
    assert not spool.enqueue("k1", _job("k1"))  # already leased
    assert spool.lease() is None  # nothing else to claim

    assert spool.heartbeat("k1")
    spool.complete("k1")
    assert spool.leased_keys() == []
    assert not spool.heartbeat("k1")  # lease gone


def test_job_payload_roundtrip(tmp_path):
    spool = SpoolDir(tmp_path)
    original = _job("k1")
    spool.enqueue("k1", original)
    _, payload = spool.lease()
    job = decode_job(payload["job"])
    assert job.store_key == "k1"
    assert job.circuit == {"fake": 1}
    assert job.config == decode_job(original).config


def test_reap_stale_requeues_with_bumped_attempt(tmp_path):
    spool = SpoolDir(tmp_path, stale_after=0.2, max_attempts=3)
    spool.enqueue("k1", _job("k1"))
    spool.lease()
    assert spool.reap_stale() == 0  # heartbeat still fresh
    time.sleep(0.3)
    assert spool.reap_stale() == 1
    assert spool.pending_keys() == ["k1"] and spool.leased_keys() == []
    _, payload = spool.lease()
    assert payload["attempt"] == 1
    assert "lease expired" in str(payload["last_error"])


def test_fail_requeues_then_quarantines_with_traceback(tmp_path):
    spool = SpoolDir(tmp_path, max_attempts=2)
    spool.enqueue("k1", _job("k1"))
    spool.lease()
    assert not spool.fail("k1", "boom one")  # attempt 1 of 2: requeued
    spool.lease()
    assert spool.fail("k1", "boom two")  # attempt 2 of 2: quarantined
    assert spool.pending_keys() == [] and spool.leased_keys() == []
    assert spool.quarantined_keys() == ["k1"]
    (poisoned,) = spool.quarantined()
    assert poisoned.key == "k1"
    assert poisoned.attempts == 2
    assert poisoned.traceback == "boom two"
    # A quarantined job refuses re-enqueue until an operator clears it.
    assert not spool.enqueue("k1", _job("k1"))


def test_lease_stamps_fresh_heartbeat_before_decoding(tmp_path, monkeypatch):
    """``os.rename`` preserves the pending-file mtime, so a job that sat
    queued longer than ``stale_after`` (the normal regime when jobs
    outnumber workers) must be re-stamped *before* decoding — otherwise a
    concurrent ``reap_stale`` can steal the fresh lease mid-decode."""
    from repro.bus.spool import codec

    spool = SpoolDir(tmp_path, stale_after=5.0)
    spool.enqueue("k1", _job("k1"))
    old = time.time() - 100.0
    os.utime(spool.pending_dir / "k1.npz", (old, old))

    ages = {}
    real_load = codec.load

    def spying_load(path, **kwargs):
        ages["at_load"] = time.time() - os.stat(path).st_mtime
        return real_load(path, **kwargs)

    monkeypatch.setattr("repro.bus.spool.codec.load", spying_load)
    leased = spool.lease()
    assert leased is not None and leased[0] == "k1"
    assert ages["at_load"] < spool.stale_after
    assert spool.reap_stale() == 0  # the held lease is not reapable


def test_lease_lost_to_reaper_mid_decode_is_not_quarantined(
    tmp_path, monkeypatch
):
    """A reaper claiming the file between our rename and our load is a
    lost race — the reaper owns the retry; quarantining a ``job=None``
    entry here would abort the whole grid over a healthy job."""
    spool = SpoolDir(tmp_path, stale_after=5.0)
    spool.enqueue("k1", _job("k1"))

    def reaped_load(path, **kwargs):
        raise FileNotFoundError(path)

    monkeypatch.setattr("repro.bus.spool.codec.load", reaped_load)
    assert spool.lease() is None
    assert spool.quarantined_keys() == []


def test_unreadable_job_file_is_quarantined_on_lease(tmp_path):
    spool = SpoolDir(tmp_path)
    spool.enqueue("good", _job("good"))
    spool.pending_dir.joinpath("bad.npz").write_bytes(b"not a job")
    leased = spool.lease()
    assert leased is not None and leased[0] == "good"
    assert spool.quarantined_keys() == ["bad"]


def test_referenced_keys_cover_pending_and_leased(tmp_path):
    spool = SpoolDir(tmp_path)
    spool.enqueue("k1", _job("k1"))
    spool.enqueue("k2", _job("k2"))
    spool.lease()
    assert spool.referenced_keys() == {"k1", "k2"}
    spool.complete("k1")
    assert spool.referenced_keys() == {"k2"}


def test_malformed_keys_rejected(tmp_path):
    spool = SpoolDir(tmp_path)
    for bad in ("", "../escape", "a.b", "a/b"):
        with pytest.raises(ValueError):
            spool.enqueue(bad, _job())


def test_resolve_bus_names_and_errors(tmp_path, monkeypatch):
    assert isinstance(resolve_bus(None, jobs=0), LocalBus)
    assert isinstance(resolve_bus("local", jobs=4), LocalBus)
    with pytest.raises(BusError, match="directory"):
        resolve_bus("spool")
    with pytest.raises(BusError, match="store"):
        resolve_bus("spool", bus_dir=tmp_path)
    with pytest.raises(BusError, match="unknown job bus"):
        resolve_bus("carrier-pigeon")
    monkeypatch.setenv("REPRO_BUS", "spool")
    monkeypatch.setenv("REPRO_BUS_DIR", str(tmp_path / "spool"))
    from repro.store import ArtifactStore

    bus = resolve_bus(None, store=ArtifactStore(tmp_path / "store"))
    assert isinstance(bus, SpoolBus)
    passthrough = LocalBus()
    assert resolve_bus(passthrough) is passthrough


def test_auto_worker_policy_resolves_in_process(monkeypatch):
    # Measured on this 24-core host: extraction pools and pooled gradient
    # shards never break even, so `auto` must pick the in-process path.
    assert resolve_worker_count("auto", "workers") == 0
    assert resolve_worker_count("auto", "train_workers") == 1
    assert resolve_worker_count("3", "workers") == 3
    assert resolve_worker_count(2, "train_workers") == 2
    with pytest.raises(KeyError):
        resolve_worker_count(1, "nope")

    monkeypatch.setenv("REPRO_WORKERS", "auto")
    monkeypatch.setenv("REPRO_TRAIN_WORKERS", "auto")
    config = SMOKE_SCALE.attack_config(seed=0)
    assert config.n_workers == 0
    assert config.train.n_train_workers == 1


# ---------------------------------------------------------------------------
# Reap races (PR 9): claim-then-recheck semantics and orphaned claims
# ---------------------------------------------------------------------------
def _age(path, seconds: float = 100.0) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


def test_concurrent_reapers_bump_the_attempt_exactly_once(tmp_path):
    """Two peers reaping one expired lease must not double-charge the
    job's attempt budget — the claim rename picks exactly one winner."""
    a = SpoolDir(tmp_path, stale_after=0.5, max_attempts=10)
    b = SpoolDir(tmp_path, stale_after=0.5, max_attempts=10)
    a.enqueue("k1", _job("k1"))
    a.lease()
    _age(a.leased_dir / "k1.npz")
    assert a.reap_stale() + b.reap_stale() == 1
    _, payload = a.lease()
    assert payload["attempt"] == 1


def test_reap_race_hands_a_fresh_lease_back_untouched(tmp_path, monkeypatch):
    """The double-bump race: reaper A stats a stale lease; before A's
    claim lands, peer B reaps it and a worker re-leases the requeued
    copy at the same path.  A's claim then *wins against the fresh
    lease* — winning the rename does not prove staleness, so A must
    re-check mtime on the claimed file and hand it straight back."""
    reaper = SpoolDir(tmp_path, stale_after=5.0, max_attempts=10)
    peer = SpoolDir(tmp_path, stale_after=5.0, max_attempts=10)
    reaper.enqueue("k1", _job("k1"))
    reaper.lease()
    _age(reaper.leased_dir / "k1.npz")

    real_claim = SpoolDir._claim
    raced = {}

    def racing_claim(self, path):
        if not raced:
            raced["done"] = True
            # The interleaving under test, injected between our
            # staleness check and our claim rename:
            assert peer.reap_stale() == 1
            released = peer.lease()
            assert released is not None and released[0] == "k1"
        return real_claim(self, path)

    monkeypatch.setattr(SpoolDir, "_claim", racing_claim)
    assert reaper.reap_stale() == 0  # fresh lease returned untouched
    monkeypatch.undo()

    assert reaper.leased_keys() == ["k1"]
    assert reaper.pending_keys() == []
    assert reaper.heartbeat("k1")  # the worker still owns it
    from repro.bus.spool import codec
    from repro.bus.protocol import BUS_JOB_KIND

    payload = codec.load(reaper.leased_dir / "k1.npz", kind=BUS_JOB_KIND)
    assert payload["attempt"] == 1  # bumped once (peer), not twice


def test_orphaned_claim_is_adopted_after_stale_after(tmp_path):
    """A reaper that crashes between claiming and requeueing must not
    strand the job: an idle ``.claim`` older than stale_after is
    requeued by any peer."""
    spool = SpoolDir(tmp_path, stale_after=0.5, max_attempts=10)
    spool.enqueue("k1", _job("k1"))
    spool.lease()
    claim = spool.leased_dir / "k1.deadbeef.claim"
    os.rename(spool.leased_dir / "k1.npz", claim)
    assert spool.reap_stale() == 0  # fresh claim: its reaper is alive
    assert claim.exists()
    _age(claim)
    assert spool.reap_stale() == 1
    assert spool.pending_keys() == ["k1"]
    _, payload = spool.lease()
    assert payload["attempt"] == 1
    assert "orphaned" in str(payload["last_error"])


def test_injected_lease_race_site_skips_but_never_loses_jobs(tmp_path):
    from repro import faults
    from repro.faults import FaultPlan, FaultSite

    spool = SpoolDir(tmp_path)
    spool.enqueue("k1", _job("k1"))
    faults.activate(
        FaultPlan("race", sites=(FaultSite("spool.lease_race", times=2),))
    )
    try:
        assert spool.lease() is None  # lost the injected race
        assert spool.lease() is None
        leased = spool.lease()  # budget spent: the job is still there
        assert leased is not None and leased[0] == "k1"
    finally:
        faults.deactivate()
