"""Tests for cleanup passes and design-feature extraction."""

import numpy as np

from repro.benchgen import load_c17, random_netlist
from repro.netlist import Circuit, Gate, GateType
from repro.opt import (
    FEATURE_NAMES,
    cleanup,
    collapse_buffers,
    design_features,
    feature_delta,
    remove_dead_logic,
)
from repro.sim import hamming_distance


def circuit_with_dead_logic():
    c = Circuit("d", inputs=["a", "b"])
    c.add_gate(Gate("live", GateType.AND, ("a", "b")))
    c.add_gate(Gate("dead1", GateType.OR, ("a", "b")))
    c.add_gate(Gate("dead2", GateType.NOT, ("dead1",)))
    c.add_output("live")
    return c


def test_remove_dead_logic_strips_chains():
    c = circuit_with_dead_logic()
    cleaned, removed = remove_dead_logic(c)
    assert removed == 2
    assert set(cleaned.gate_names) == {"live"}
    # Original untouched.
    assert len(c) == 3


def test_remove_dead_logic_noop_on_clean_circuit():
    c = load_c17()
    cleaned, removed = remove_dead_logic(c)
    assert removed == 0
    assert len(cleaned) == len(c)


def test_collapse_buffers_rewires_loads():
    c = Circuit("b", inputs=["a"])
    c.add_gate(Gate("buf1", GateType.BUF, ("a",)))
    c.add_gate(Gate("buf2", GateType.BUF, ("buf1",)))
    c.add_gate(Gate("y", GateType.NOT, ("buf2",)))
    c.add_output("y")
    cleaned, removed = collapse_buffers(c)
    assert removed == 2
    assert cleaned.gate("y").inputs == ("a",)


def test_collapse_buffers_keeps_po_buffer():
    c = Circuit("b", inputs=["a"])
    c.add_gate(Gate("buf", GateType.BUF, ("a",)))
    c.add_output("buf")
    cleaned, removed = collapse_buffers(c)
    assert removed == 0
    assert cleaned.has_gate("buf")


def test_cleanup_preserves_function():
    c = random_netlist("r", 8, 4, 80, seed=2)
    # Inject buffers and dead logic.
    mutated = c.copy()
    mutated.add_gate(Gate("extra_buf", GateType.BUF, (mutated.gate_names[0],)))
    mutated.add_gate(Gate("extra_dead", GateType.NOT, ("extra_buf",)))
    cleaned = cleanup(mutated)
    assert hamming_distance(c, cleaned, n_patterns=1024) == 0.0
    assert not cleaned.has_gate("extra_dead")


def test_design_features_shape_and_names():
    c = load_c17()
    vec = design_features(c)
    assert vec.shape == (len(FEATURE_NAMES),)
    by_name = dict(zip(FEATURE_NAMES, vec))
    assert by_name["num_gates"] == 6
    assert by_name["count_NAND"] == 6
    assert by_name["count_XOR"] == 0
    assert by_name["depth"] == 3
    assert by_name["area"] > 0


def test_feature_delta_zero_for_identical():
    c = load_c17()
    assert np.allclose(feature_delta(c, c.copy()), 0.0)


def test_feature_delta_sees_pruning():
    c = circuit_with_dead_logic()
    cleaned, _ = remove_dead_logic(c)
    delta = feature_delta(c, cleaned)
    by_name = dict(zip(FEATURE_NAMES, delta))
    assert by_name["num_gates"] == 2.0
    assert by_name["area"] > 0
