"""DGCNN behaviour: shapes, k selection, and learnability on a toy task."""

import numpy as np
import pytest

from repro.gnn import DGCNN, GraphExample, build_batch, choose_sortpool_k
from repro.nn import Adam


def make_example(rng, kind, width=4, n=12):
    """Dense graphs (label 1) vs sparse rings (label 0).

    Node features are degree one-hots — structural features, like the DRNL
    labels the real pipeline uses (constant features would wash out under
    the row-normalized operator)."""
    if kind == 1:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        keep = rng.random(len(pairs)) < 0.6
        edges = np.array([p for p, k in zip(pairs, keep) if k] or [(0, 1)])
    else:
        edges = np.array([(i, (i + 1) % n) for i in range(n)])
    degree = np.zeros(n, dtype=int)
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    features = np.zeros((n, width))
    features[np.arange(n), np.minimum(degree // 2, width - 1)] = 1.0
    return GraphExample(n, edges, features, label=kind)


def test_choose_sortpool_k():
    assert choose_sortpool_k([5, 6, 7, 100]) == 10  # clamped to minimum
    sizes = list(range(1, 101))
    assert choose_sortpool_k(sizes, percentile=0.6) == 60
    with pytest.raises(ValueError):
        choose_sortpool_k([])
    with pytest.raises(ValueError):
        choose_sortpool_k([5], percentile=0.0)


def test_k_minimum_enforced():
    with pytest.raises(ValueError):
        DGCNN(in_features=4, k=5)


def test_forward_shapes():
    rng = np.random.default_rng(0)
    examples = [make_example(rng, i % 2) for i in range(6)]
    batch = build_batch(examples)
    model = DGCNN(in_features=4, k=10, seed=1)
    logits = model(batch)
    assert logits.shape == (6, 2)
    probs = model.predict_proba(batch)
    assert probs.shape == (6,)
    assert ((probs >= 0) & (probs <= 1)).all()


def test_forward_handles_graphs_smaller_than_k():
    rng = np.random.default_rng(1)
    examples = [make_example(rng, 1, n=5), make_example(rng, 0, n=30)]
    batch = build_batch(examples)
    model = DGCNN(in_features=4, k=12, seed=2)
    assert model(batch).shape == (2, 2)


def test_loss_rejects_unlabeled():
    rng = np.random.default_rng(2)
    ex = make_example(rng, 1)
    unlabeled = GraphExample(ex.n_nodes, ex.edges, ex.features, label=-1)
    model = DGCNN(in_features=4, k=10)
    with pytest.raises(ValueError):
        model.loss(build_batch([unlabeled]))


def test_predict_proba_restores_training_mode():
    model = DGCNN(in_features=4, k=10)
    model.train()
    rng = np.random.default_rng(3)
    batch = build_batch([make_example(rng, 1)])
    model.predict_proba(batch)
    assert model.training
    assert model.dropout.training


def test_dgcnn_learns_toy_separation():
    """Dense vs ring graphs are separable from structure alone."""
    rng = np.random.default_rng(4)
    train = [make_example(rng, i % 2) for i in range(40)]
    model = DGCNN(in_features=4, k=10, seed=5)
    opt = Adam(model.parameters(), lr=3e-3)
    for _ in range(40):
        for start in range(0, len(train), 10):
            batch = build_batch(train[start : start + 10])
            opt.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            opt.step()
    test = [make_example(rng, i % 2) for i in range(20)]
    probs = model.predict_proba(build_batch(test))
    predicted = (probs > 0.5).astype(int)
    labels = np.array([e.label for e in test])
    accuracy = (predicted == labels).mean()
    assert accuracy >= 0.85


def test_deterministic_given_seed():
    rng = np.random.default_rng(6)
    batch = build_batch([make_example(rng, 1), make_example(rng, 0)])
    a = DGCNN(in_features=4, k=10, seed=7)
    b = DGCNN(in_features=4, k=10, seed=7)
    np.testing.assert_array_equal(a(batch).data, b(batch).data)
