"""Variable-size graph batching for the DGCNN.

A minibatch of enclosing subgraphs is assembled into one block-diagonal
sparse operator ``D^-1 (A + I)`` plus a stacked node-feature matrix, so the
graph convolutions of the whole batch run as a single sparse-dense product.

The expensive part of batching — normalizing adjacencies (scipy coo/csr
constructions) and one-hot feature stacking — is paid **once per split**:

* :class:`BatchCache` prebuilds a fixed partition of a split (used for
  validation and scoring, whose composition never changes), and
* :class:`BatchAssembler` precomputes every example's normalized operator
  and feature block once, then assembles *any* shuffled index order into
  block-diagonal :class:`GraphBatch` es by pure array stitching — the
  per-epoch cost of a shuffling training loop drops to ``concatenate``
  calls, bit-identical to rebuilding from scratch.

The per-batch SortPooling order bases (``graph_ids`` and
``segment_positions``) are cached lazily on the batch itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn import Workspace, default_dtype
from repro.nn.sparse import BlockEll, SparseOp, csr_from_parts, spmm_backend

__all__ = [
    "GraphExample",
    "GraphBatch",
    "BatchCache",
    "BatchAssembler",
    "build_batch",
    "normalized_adjacency",
]


@dataclass(frozen=True)
class GraphExample:
    """One subgraph ready for the GNN.

    Attributes:
        n_nodes: node count.
        edges: ``(E, 2)`` int array of undirected edges (one row per pair;
            both directions are added when building the operator).
        features: ``(n_nodes, d)`` node-information matrix.
        label: class label (1 = link, 0 = no link) or -1 when unknown.
    """

    n_nodes: int
    edges: np.ndarray
    features: np.ndarray
    label: int = -1

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.n_nodes:
            raise ValueError(
                f"{self.features.shape[0]} feature rows for {self.n_nodes} nodes"
            )
        if self.edges.size and (
            self.edges.min() < 0 or self.edges.max() >= self.n_nodes
        ):
            raise ValueError("edge endpoint out of range")


def normalized_adjacency(n_nodes: int, edges: np.ndarray) -> sp.csr_matrix:
    """Build ``D^-1 (A + I)`` for one undirected graph (paper Eq. 4).

    The operator is assembled in float64 (exact degree reciprocals match
    the seed implementation bit for bit in float64 mode) and cast to the
    runtime default dtype.
    """
    if edges.size:
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = np.ones(len(rows))
        adj = sp.coo_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes))
        adj = adj.tocsr()
        adj.data[:] = 1.0  # collapse duplicate edges
    else:
        adj = sp.csr_matrix((n_nodes, n_nodes))
    adj = adj + sp.identity(n_nodes, format="csr")
    degree = np.asarray(adj.sum(axis=1)).ravel()
    adj.data /= np.repeat(degree, np.diff(adj.indptr))
    return adj.astype(default_dtype(), copy=False)


@dataclass(frozen=True)
class GraphBatch:
    """A batch of subgraphs fused into block-diagonal form.

    ``graph_ids`` and ``segment_positions`` are the SortPooling order
    bases: they depend only on the batch layout, so they are computed
    lazily once and reused by every forward pass over this batch.
    """

    norm_adj: sp.csr_matrix
    features: np.ndarray
    node_offsets: np.ndarray  # (B + 1,) prefix sums
    labels: np.ndarray  # (B,)
    #: Optional ``(N, c)`` column indices when every feature row is a
    #: concatenation of one-hots (the paper's node-information matrix):
    #: ``features[i]`` is then exactly ``sum_j onehot(feature_onehot[i, j])``.
    #: Lets the first graph convolution replace its ``H @ W`` GEMM with c
    #: row gathers of ``W``.  ``None`` when the structure is unknown.
    feature_onehot: np.ndarray | None = None

    @property
    def n_graphs(self) -> int:
        return len(self.node_offsets) - 1

    @property
    def n_nodes(self) -> int:
        return int(self.node_offsets[-1])

    def graph_slice(self, index: int) -> slice:
        return slice(self.node_offsets[index], self.node_offsets[index + 1])

    @cached_property
    def graph_ids(self) -> np.ndarray:
        """Owning graph index of every stacked node row, ``(N,)``."""
        return np.repeat(
            np.arange(self.n_graphs), np.diff(self.node_offsets)
        )

    @cached_property
    def segment_positions(self) -> np.ndarray:
        """Rank of each row within its graph's contiguous block, ``(N,)``."""
        return np.arange(self.n_nodes) - self.node_offsets[self.graph_ids]

    @cached_property
    def operator(self) -> SparseOp:
        """The cached block-sparse engine view of ``norm_adj``.

        Built once per batch and shared by every forward/backward pass, so
        CSR/ELL format conversions never repeat per layer per step (see
        :mod:`repro.nn.sparse`).  :class:`BatchAssembler` pre-seeds this
        with stitched per-example layouts.
        """
        return SparseOp.from_csr(self.norm_adj)


def build_batch(examples: Sequence[GraphExample]) -> GraphBatch:
    """Fuse *examples* into one :class:`GraphBatch`.

    The block-diagonal ``D^-1 (A + I)`` operator is assembled directly from
    the concatenated (offset) edge arrays with a single ``sp.coo_matrix``
    call — no per-example sparse matrices, no ``sp.block_diag``.  Operator
    data and features are stored in the runtime default dtype so forward
    passes never re-cast.
    """
    if not examples:
        raise ValueError("cannot batch zero graphs")
    widths = {e.features.shape[1] for e in examples}
    if len(widths) != 1:
        raise ValueError(f"inconsistent feature widths {sorted(widths)}")
    dtype = default_dtype()
    features = np.vstack([e.features for e in examples]).astype(
        dtype, copy=False
    )
    sizes = np.array([e.n_nodes for e in examples])
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    labels = np.array([e.label for e in examples], dtype=np.int64)

    total = int(offsets[-1])
    shifted = [
        e.edges + off for e, off in zip(examples, offsets) if e.edges.size
    ]
    if shifted:
        stacked = np.concatenate(shifted)
        rows = np.concatenate([stacked[:, 0], stacked[:, 1]])
        cols = np.concatenate([stacked[:, 1], stacked[:, 0]])
        adj = sp.coo_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(total, total)
        ).tocsr()
        adj.data[:] = 1.0  # collapse duplicate edges
    else:
        adj = sp.csr_matrix((total, total))
    adj = adj + sp.identity(total, format="csr")
    degree = np.asarray(adj.sum(axis=1)).ravel()
    adj.data /= np.repeat(degree, np.diff(adj.indptr))
    return GraphBatch(
        norm_adj=adj.astype(dtype, copy=False),
        features=features,
        node_offsets=offsets,
        labels=labels,
    )


class BatchAssembler:
    """Per-example batch components built once; batches stitched on demand.

    For every example the normalized operator ``D^-1 (A + I)`` (CSR data /
    indices / indptr arrays) and the feature block are computed exactly
    once, at construction.  :meth:`assemble` then fuses any index order
    into a block-diagonal :class:`GraphBatch` with plain ``concatenate``
    calls — no coo/dedup/degree work ever runs again, and the result is
    bit-identical to :func:`build_batch` over the same examples (the
    block-diagonal operator decomposes exactly into per-example blocks).

    This is what lets the trainer keep the paper's example-level shuffle
    (fresh batch composition every epoch) while paying scipy costs only
    once per split.
    """

    __slots__ = (
        "dtype", "sizes", "labels",
        "_data", "_indices", "_indptr_tail", "_nnz", "_features",
        "_flat_features", "_node_starts", "_feature_cols",
        "_ell_blocks", "_ell_t_blocks", "_scratch",
    )

    def __init__(self, examples: Sequence[GraphExample]):
        widths = {e.features.shape[1] for e in examples}
        if len(widths) > 1:
            raise ValueError(f"inconsistent feature widths {sorted(widths)}")
        self.dtype = default_dtype()
        self.sizes = np.array([e.n_nodes for e in examples], dtype=np.int64)
        self.labels = np.array([e.label for e in examples], dtype=np.int64)
        self._data: list[np.ndarray] = []
        self._indices: list[np.ndarray] = []
        self._indptr_tail: list[np.ndarray] = []
        self._nnz = np.empty(len(examples), dtype=np.int64)
        feature_blocks: list[np.ndarray] = []
        # Per-example batched-ELL blocks, built on first use under the
        # ell/numba spmm backends (see _ensure_ell_blocks).
        self._ell_blocks: list[BlockEll] | None = None
        self._ell_t_blocks: list[BlockEll] | None = None
        self._scratch = Workspace()
        for i, example in enumerate(examples):
            operator = normalized_adjacency(example.n_nodes, example.edges)
            self._data.append(operator.data)
            self._indices.append(operator.indices.astype(np.int64, copy=False))
            self._indptr_tail.append(
                operator.indptr[1:].astype(np.int64, copy=False)
            )
            self._nnz[i] = operator.nnz
            feature_blocks.append(
                example.features.astype(self.dtype, copy=False)
            )
        # One flat feature arena; per-example entries are views into it, so
        # a shuffled batch's feature matrix is one range gather instead of
        # a 50-array concatenate, at no extra memory.
        self._node_starts = np.concatenate(
            [[0], np.cumsum(self.sizes)]
        ).astype(np.int64)
        if feature_blocks:
            self._flat_features = np.concatenate(feature_blocks)
        else:
            self._flat_features = np.empty((0, 0), dtype=self.dtype)
        self._features: list[np.ndarray] = [
            self._flat_features[self._node_starts[i] : self._node_starts[i + 1]]
            for i in range(len(examples))
        ]
        self._feature_cols = self._detect_onehot_columns()

    def _detect_onehot_columns(self) -> np.ndarray | None:
        """``(total_nodes, c)`` one-hot column indices, or ``None``.

        The paper's node-information matrix is a concatenation of one-hot
        blocks (gate type | DRNL | degree), so every row holds the same
        small number of ones.  When that structure holds for the whole
        split, the first graph convolution can replace its ``H @ W`` GEMM
        with ``c`` row gathers of ``W`` (see ``graph_conv``).
        """
        flat = self._flat_features
        if flat.size == 0:
            return None
        nonzero = flat != 0.0
        counts = nonzero.sum(axis=1)
        per_row = int(counts[0]) if counts.size else 0
        if per_row < 1 or per_row > 4 or not (counts == per_row).all():
            return None
        if not (flat[nonzero] == 1.0).all():
            return None
        return np.nonzero(nonzero)[1].reshape(-1, per_row).astype(np.int64)

    def __len__(self) -> int:
        return len(self._data)

    def _ensure_ell_blocks(self) -> None:
        """Build every example's ELL (and transposed-ELL) block once.

        Only the ell/numba backends need the layout; under the scipy
        backend the assembler never pays for it.  Once built, any shuffled
        batch's ELL operator is stitched from these blocks by pure array
        copies — the layout cost is once per split, like the CSR parts.
        """
        if self._ell_blocks is not None:
            return
        self._ell_blocks = []
        self._ell_t_blocks = []
        for i, size in enumerate(self.sizes):
            indptr = np.concatenate([[0], self._indptr_tail[i]])
            block = csr_from_parts(
                self._data[i], self._indices[i], indptr, (int(size), int(size))
            )
            self._ell_blocks.append(BlockEll.from_csr(block))
            self._ell_t_blocks.append(BlockEll.from_csr(block.T.tocsr()))

    def _stitch_ell(
        self,
        blocks: list[BlockEll],
        index_order: np.ndarray,
        offsets: np.ndarray,
        total: int,
    ) -> BlockEll:
        """Fuse per-example ELL blocks into one block-diagonal layout.

        Identical to ``BlockEll.from_csr`` over the assembled operator:
        both pack each row's entries in CSR order and zero-pad to the
        widest row of the batch.
        """
        width = max((blocks[i].width for i in index_order), default=0)
        indices = np.zeros((total, width), dtype=np.int64)
        values = np.zeros((total, width), dtype=self.dtype)
        row = 0
        for i, node_off in zip(index_order, offsets[:-1]):
            block = blocks[i]
            n_i, w_i = block.indices.shape
            if w_i:
                np.add(block.indices, node_off, out=indices[row : row + n_i, :w_i])
                values[row : row + n_i, :w_i] = block.values
            row += n_i
        return BlockEll(indices, values, (total, total))

    def assemble(
        self, index_order: Sequence[int], reuse_buffers: bool = False
    ) -> GraphBatch:
        """Fuse the examples selected by *index_order* into one batch.

        The CSR arrays are concatenated once and shifted in bulk (one
        ``np.repeat`` per array instead of a per-example add), the scipy
        matrix is built through the unchecked constructor, and the
        resulting :class:`GraphBatch` carries a pre-seeded
        :class:`~repro.nn.sparse.SparseOp` — stitched from the per-example
        ELL blocks when the active spmm backend wants that layout.

        With ``reuse_buffers=True`` the operator/feature arrays live in
        assembler-owned scratch slots recycled call to call: the returned
        batch **aliases** those buffers and is only valid until the next
        reusing ``assemble``.  This is the trainer's step loop contract
        (one batch in flight at a time); callers that retain batches must
        keep the default.
        """
        index_order = np.asarray(index_order, dtype=np.int64)
        if index_order.size == 0:
            raise ValueError("cannot batch zero graphs")
        sizes = self.sizes[index_order]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        nnz = self._nnz[index_order]
        nnz_offsets = np.concatenate([[0], np.cumsum(nnz)])
        total = int(offsets[-1])
        total_nnz = int(nnz_offsets[-1])
        if reuse_buffers:
            scratch = self._scratch
            data = np.concatenate(
                [self._data[i] for i in index_order],
                out=scratch.resident("assemble.data", (total_nnz,), self.dtype),
            )
            indices = np.concatenate(
                [self._indices[i] for i in index_order],
                out=scratch.resident("assemble.indices", (total_nnz,), np.int64),
            )
            indptr = scratch.resident("assemble.indptr", (total + 1,), np.int64)
        else:
            data = np.concatenate([self._data[i] for i in index_order])
            indices = np.concatenate([self._indices[i] for i in index_order])
            indptr = np.empty(total + 1, dtype=np.int64)
        indices += np.repeat(offsets[:-1], nnz)
        indptr[0] = 0
        np.concatenate(
            [self._indptr_tail[i] for i in index_order], out=indptr[1:]
        )
        indptr[1:] += np.repeat(nnz_offsets[:-1], sizes)
        norm_adj = csr_from_parts(data, indices, indptr, (total, total))
        operator = SparseOp(data, indices, indptr, (total, total), csr=norm_adj)
        if spmm_backend() in ("ell", "numba"):
            self._ensure_ell_blocks()
            operator._ell = self._stitch_ell(
                self._ell_blocks, index_order, offsets, total
            )
            operator._ell_t = self._stitch_ell(
                self._ell_t_blocks, index_order, offsets, total
            )
        # Stacked node rows of the selected examples, as flat-arena
        # positions: one range-gather replaces a per-example concatenate.
        row_positions = np.arange(total, dtype=np.int64) + np.repeat(
            self._node_starts[index_order] - offsets[:-1], sizes
        )
        if reuse_buffers:
            width = self._flat_features.shape[1]
            features = np.take(
                self._flat_features, row_positions, axis=0, mode="clip",
                out=self._scratch.resident(
                    "assemble.features", (total, width), self.dtype
                ),
            )
        else:
            features = self._flat_features[row_positions]
        feature_onehot = (
            self._feature_cols[row_positions]
            if self._feature_cols is not None
            else None
        )
        batch = GraphBatch(
            norm_adj=norm_adj,
            features=features,
            node_offsets=offsets,
            labels=self.labels[index_order],
            feature_onehot=feature_onehot,
        )
        batch.__dict__["operator"] = operator
        return batch


class BatchCache:
    """A split partitioned into fixed, prebuilt :class:`GraphBatch` chunks.

    Construction pays the scipy/stacking cost exactly once; afterwards the
    trainer iterates the cached batches directly, so validation and
    scoring epochs touch no constructors at all.
    """

    __slots__ = ("batch_size", "n_examples", "batches")

    def __init__(self, examples: Sequence[GraphExample], batch_size: int):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.n_examples = len(examples)
        self.batches: list[GraphBatch] = [
            build_batch(examples[start : start + batch_size])
            for start in range(0, len(examples), batch_size)
        ]
        # Prebuild whatever layout the active spmm backend wants (ELL under
        # ell/numba) so repeated evaluation/scoring epochs touch no
        # conversions at all — once per split, like the batches themselves.
        for batch in self.batches:
            batch.operator.prepare()

    def __len__(self) -> int:
        return len(self.batches)

    def __getitem__(self, index: int) -> GraphBatch:
        return self.batches[index]

    def __iter__(self) -> Iterator[GraphBatch]:
        return iter(self.batches)
