"""Tests for key-input conventions."""

import pytest

from repro.benchgen import load_c17
from repro.locking import (
    format_key,
    is_key_input,
    key_input_index,
    key_input_name,
    key_inputs_of,
    parse_key,
)


def test_name_index_roundtrip():
    for i in (0, 1, 17, 255):
        assert key_input_index(key_input_name(i)) == i


def test_is_key_input():
    assert is_key_input("keyinput0")
    assert is_key_input("keyinput42")
    assert not is_key_input("keyinput")
    assert not is_key_input("G22")
    assert not is_key_input("keyinput1x")


def test_bad_names_rejected():
    with pytest.raises(ValueError):
        key_input_index("G5")
    with pytest.raises(ValueError):
        key_input_name(-1)


def test_key_inputs_of_sorted_numerically():
    c = load_c17().copy()
    for i in (10, 2, 0):
        c.add_input(key_input_name(i))
    assert key_inputs_of(c) == ("keyinput0", "keyinput2", "keyinput10")


def test_format_and_parse_key():
    assert format_key({0: 1, 1: 0, 2: 1}, 3) == "101"
    assert parse_key("10x1") == {0: 1, 1: 0, 3: 1}
    with pytest.raises(ValueError):
        format_key({0: 1}, 2)
    with pytest.raises(ValueError):
        parse_key("012")
