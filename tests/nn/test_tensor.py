"""Numerical gradient checks for the autograd engine."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, concat, spmm


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check(build, *arrays):
    """Compare autograd and numerical gradients for scalar-valued build()."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for tensor, array in zip(tensors, arrays):
        num = numerical_grad(lambda: build(*[Tensor(a) for a in arrays]).item(), array)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, num, rtol=1e-5, atol=1e-7)


RNG = np.random.default_rng(42)


def test_add_mul_broadcast():
    a = RNG.normal(size=(3, 4))
    b = RNG.normal(size=(4,))
    check(lambda x, y: ((x + y) * (x * 2.0 + 1.0)).sum(), a, b)


def test_sub_div_pow():
    a = RNG.normal(size=(2, 3)) + 3.0
    b = RNG.normal(size=(2, 3)) + 3.0
    check(lambda x, y: ((x - y) / y + x**2).sum(), a, b)


def test_matmul():
    a = RNG.normal(size=(3, 5))
    b = RNG.normal(size=(5, 2))
    check(lambda x, y: (x @ y).sum(), a, b)


def test_activations():
    a = RNG.normal(size=(4, 3))
    check(lambda x: x.tanh().sum(), a)
    check(lambda x: x.sigmoid().sum(), a)
    check(lambda x: (x * x + 0.5).log().sum(), a)
    check(lambda x: x.exp().sum(), a)


def test_relu_gradient_masks():
    a = np.array([[-1.0, 2.0], [3.0, -4.0]])
    t = Tensor(a, requires_grad=True)
    t.relu().sum().backward()
    np.testing.assert_array_equal(t.grad, [[0.0, 1.0], [1.0, 0.0]])


def test_reshape_transpose():
    a = RNG.normal(size=(2, 6))
    check(lambda x: x.reshape(3, 4).transpose(1, 0).sum(), a)
    check(lambda x: (x.T @ x).sum(), a)


def test_sum_axis_and_mean():
    a = RNG.normal(size=(3, 4))
    check(lambda x: x.sum(axis=0).sum(), a)
    check(lambda x: x.mean(axis=1).sum(), a)
    check(lambda x: x.mean(), a)


def test_gather_rows_with_padding():
    a = RNG.normal(size=(5, 3))
    idx = np.array([2, 2, -1, 0])

    def build(x):
        return x.gather_rows(idx).sum()

    t = Tensor(a, requires_grad=True)
    out = t.gather_rows(idx)
    assert np.array_equal(out.data[2], np.zeros(3))  # -1 pads with zeros
    build(t).backward()
    expected = np.zeros_like(a)
    expected[2] = 2.0  # selected twice
    expected[0] = 1.0
    np.testing.assert_array_equal(t.grad, expected)


def test_spmm_gradient():
    adj = sp.random(6, 6, density=0.4, random_state=1, format="csr")
    h = RNG.normal(size=(6, 3))
    check(lambda x: spmm(adj, x).sum(), h)


def test_concat_gradient():
    a = RNG.normal(size=(2, 3))
    b = RNG.normal(size=(2, 2))
    check(lambda x, y: concat([x, y], axis=1).sum(), a, b)


def test_diamond_graph_accumulates():
    """y = x*x + x must give dy/dx = 2x + 1 (two paths)."""
    a = np.array([1.5, -2.0])
    t = Tensor(a, requires_grad=True)
    ((t * t) + t).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * a + 1)


def test_grad_accumulates_across_backwards():
    t = Tensor(np.array([1.0]), requires_grad=True)
    (t * 2.0).sum().backward()
    (t * 3.0).sum().backward()
    np.testing.assert_allclose(t.grad, [5.0])
    t.zero_grad()
    assert t.grad is None


def test_backward_requires_scalar():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (t * 2.0).backward()


def test_no_grad_tracking_when_not_required():
    t = Tensor(np.ones(3))
    out = (t * 2.0) + 1.0
    assert not out.requires_grad
    assert out._backward is None
