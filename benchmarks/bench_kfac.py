"""Microbenchmark: K-FAC-preconditioned Adam vs plain Adam.

Trains the link-prediction DGCNN on the same D-MUX-locked c2670 attack
dataset as ``bench_training.py`` and gates the second-order engine on two
axes:

1. **Convergence** — K-FAC must reach the validation AUC that an
   early-stopped Adam run (patience ``PATIENCE``) peaks at, in at most
   ``MIN_SAVINGS`` (default 75%) of Adam's epoch count.  Second-order
   curvature has to buy real epochs, not just different noise.
2. **Overhead** — the amortized K-FAC step (EMA statistics every
   ``cov_every`` steps, damped exact inverses every ``inv_every`` steps,
   blocks above ``max_dim`` left on the raw-gradient path) must cost at
   most ``MAX_OVERHEAD`` (default 1.15x) of Adam's per-epoch wall time.

A third check guards the data-parallel path: sharded K-FAC training
(``grad_shards=2`` over the worker pool) must produce **bit-identical**
float64 loss curves to the serial trainer — gradient and curvature
averaging over codec-shipped shards is exact, not approximate.

Shared CI runners are noisy; CI can relax the gates via
``REPRO_BENCH_KFAC_MIN_SAVINGS`` / ``REPRO_BENCH_KFAC_MAX_OVERHEAD``
while local/acceptance runs keep the full bar.

Run standalone::

    python benchmarks/bench_kfac.py

or under pytest::

    pytest benchmarks/bench_kfac.py -s

When ``GITHUB_STEP_SUMMARY`` is set (GitHub Actions), timings and epoch
counts are appended to the job summary as a markdown table.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.benchgen import load_benchmark
from repro.linkpred import (
    TrainConfig,
    Trainer,
    build_link_dataset,
    extract_attack_graph,
    make_trainer,
    sample_links,
)
from repro.locking import lock_dmux
from repro.nn import dtype_scope

BENCHMARK = "c2670"
SCALE = 1.0
KEY_SIZE = 32
MAX_LINKS = int(os.environ.get("REPRO_BENCH_TRAIN_LINKS", "1200"))
H = 3
SEED = 0
LEARNING_RATE = 1e-3

#: Epoch budget for both optimizers; Adam early-stops inside it.
MAX_EPOCHS = int(os.environ.get("REPRO_BENCH_KFAC_EPOCHS", "24"))
PATIENCE = 5

#: K-FAC must reach Adam's peak AUC in at most this fraction of Adam's
#: early-stopped epoch count (i.e. >= 25% fewer epochs by default).
MIN_SAVINGS = float(os.environ.get("REPRO_BENCH_KFAC_MIN_SAVINGS", "0.75"))
#: ... at no more than this much per-epoch wall-clock overhead.
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_KFAC_MAX_OVERHEAD", "1.15"))
#: Timing passes before declaring the overhead gate failed.  The loss
#: curves are deterministic — a retry redoes only the wall-clock
#: measurement, so background-load spikes have to hit every pass to
#: produce a false failure.
TIMING_PASSES = int(os.environ.get("REPRO_BENCH_KFAC_TIMING_PASSES", "3"))

#: The tuned K-FAC setting for this workload (22 steps/epoch): refresh
#: inverses once per epoch, collect statistics twice per epoch, and keep
#: the 641-wide fc1 block on the raw-gradient path — preconditioning it
#: costs the most and helps the least.
KFAC_KNOBS = dict(
    kfac_damping=1e-3,
    kfac_inv_every=22,
    kfac_cov_every=11,
    kfac_max_dim=256,
)


def build_dataset():
    base = load_benchmark(BENCHMARK, scale=SCALE)
    locked = lock_dmux(base, key_size=KEY_SIZE, seed=SEED)
    graph = extract_attack_graph(locked.circuit)
    sample = sample_links(graph, max_links=MAX_LINKS, seed=SEED)
    return build_link_dataset(graph, sample, h=H)


def config(**overrides) -> TrainConfig:
    return TrainConfig(
        epochs=MAX_EPOCHS, learning_rate=LEARNING_RATE, seed=SEED, **overrides
    )


#: Dataset + the Adam reference run are shared by every test in the file;
#: memoize so pytest collection order doesn't double the training cost.
_DATASET = None
_ADAM_REFERENCE: dict | None = None


def dataset():
    global _DATASET
    if _DATASET is None:
        _DATASET = build_dataset()
    return _DATASET


def timed_fit_interleaved(configs: list[TrainConfig]):
    """Train each config epoch-by-epoch, interleaved, timing every epoch.

    Returns ``[(history, best epoch seconds), ...]`` in input order.  The
    trainers advance in lockstep (``fit(until_epoch=...)``) so scheduler
    and turbo/thermal noise hit every optimizer equally, and the
    **minimum** per-epoch time is the cost estimate — each K-FAC epoch
    does identical work (``inv_every`` = steps/epoch, ``cov_every``
    divides it), so the min is the noise-free cost, robust against the
    multi-10% spikes whole-run timing suffers on shared runners.
    """
    trainers = [Trainer(dataset(), cfg) for cfg in configs]
    best = [float("inf")] * len(configs)
    epochs = max(cfg.epochs for cfg in configs)
    for epoch in range(1, epochs + 1):
        for i, trainer in enumerate(trainers):
            start = time.perf_counter()
            trainer.fit(until_epoch=epoch)
            best[i] = min(best[i], time.perf_counter() - start)
    return [(trainer.history, seconds) for trainer, seconds in zip(trainers, best)]


def adam_reference() -> dict:
    """Early-stopped Adam run: the epoch count + AUC target K-FAC must beat.

    Timing comes from separate fixed-epoch runs (no early stop, see
    :func:`timed_fit_interleaved`) so the per-epoch comparison against
    K-FAC covers identical work.
    """
    global _ADAM_REFERENCE
    if _ADAM_REFERENCE is None:
        stopped = Trainer(dataset(), config(patience=PATIENCE))
        _, h_stop = stopped.fit()
        _ADAM_REFERENCE = {
            "epochs": h_stop.epochs_run,
            "target_auc": h_stop.val_auc[h_stop.best_epoch],
            "stopped_early": h_stop.stopped_early,
        }
    return _ADAM_REFERENCE


def epochs_to_target(val_auc: list[float], target: float) -> int | None:
    """First epoch count (1-based) whose validation AUC reaches *target*."""
    for i, auc in enumerate(val_auc):
        if auc >= target:
            return i + 1
    return None


def _summarize(reference: dict, kfac: dict) -> None:
    from perf_record import update_record

    update_record(
        "bench_kfac",
        {
            "benchmark": BENCHMARK,
            "links": MAX_LINKS,
            "max_epochs": MAX_EPOCHS,
            "kfac_knobs": dict(KFAC_KNOBS),
            "adam": {
                "epochs_to_best": reference["epochs"],
                "target_auc": round(reference["target_auc"], 6),
                "epoch_ms": round(reference["epoch_ms"], 2),
            },
            "kfac": {
                "epochs_to_target": kfac["epochs"],
                "epoch_ms": round(kfac["epoch_ms"], 2),
            },
            "epoch_savings": round(1 - kfac["epochs"] / reference["epochs"], 3),
            "overhead": round(kfac["epoch_ms"] / reference["epoch_ms"], 3),
            "min_savings_gate": MIN_SAVINGS,
            "max_overhead_gate": MAX_OVERHEAD,
        },
    )
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("### bench_kfac (c2670 attack dataset)\n\n")
        handle.write("| optimizer | epochs to target | per epoch |\n|---|---|---|\n")
        handle.write(
            f"| adam (patience={PATIENCE}) | {reference['epochs']} "
            f"| {reference['epoch_ms']:.0f}ms |\n"
        )
        handle.write(
            f"| kfac | {kfac['epochs']} | {kfac['epoch_ms']:.0f}ms |\n"
        )
        handle.write(
            f"\ntarget val AUC **{reference['target_auc']:.4f}** — K-FAC "
            f"overhead **{kfac['epoch_ms'] / reference['epoch_ms']:.2f}x**\n"
        )


# --------------------------------------------------------------------------
# Benches
# --------------------------------------------------------------------------
def test_kfac_converges_faster_within_overhead_budget():
    """K-FAC reaches Adam's early-stop AUC in fewer epochs, near Adam cost."""
    reference = adam_reference()
    print(
        f"\n[bench_kfac] {BENCHMARK} scale={SCALE} links={MAX_LINKS} "
        f"max_epochs={MAX_EPOCHS} h={H}"
    )
    print(
        f"  adam: target auc {reference['target_auc']:.4f} at "
        f"{reference['epochs']} epochs (patience={PATIENCE}, "
        f"stopped_early={reference['stopped_early']})"
    )

    adam_epoch_s = kfac_epoch_s = float("inf")
    history = None
    for timing_pass in range(TIMING_PASSES):
        (_, adam_s), (h, kfac_s) = timed_fit_interleaved(
            [config(), config(optimizer="kfac", **KFAC_KNOBS)]
        )
        if history is not None:
            assert h.train_loss == history.train_loss  # deterministic
        history = h
        adam_epoch_s = min(adam_epoch_s, adam_s)
        kfac_epoch_s = min(kfac_epoch_s, kfac_s)
        if kfac_epoch_s / adam_epoch_s <= MAX_OVERHEAD:
            break  # timing passes only tighten a wall-clock measurement
    reference["epoch_ms"] = adam_epoch_s * 1000
    epoch_ms = kfac_epoch_s * 1000
    reached = epochs_to_target(history.val_auc, reference["target_auc"])
    overhead = epoch_ms / reference["epoch_ms"]
    print(f"  adam: {reference['epoch_ms']:.0f}ms/epoch")
    print(
        f"  kfac: target reached at epoch {reached}, "
        f"{epoch_ms:.0f}ms/epoch ({overhead:.2f}x adam)"
    )

    assert reached is not None, (
        f"K-FAC never reached Adam's target val AUC "
        f"{reference['target_auc']:.4f} within {MAX_EPOCHS} epochs "
        f"(best {max(history.val_auc):.4f})"
    )
    _summarize(reference, {"epochs": reached, "epoch_ms": epoch_ms})
    budget = MIN_SAVINGS * reference["epochs"]
    assert reached <= budget, (
        f"K-FAC took {reached} epochs to reach val AUC "
        f"{reference['target_auc']:.4f}; needs <= {budget:.1f} "
        f"({MIN_SAVINGS:.0%} of Adam's {reference['epochs']})"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"K-FAC costs {overhead:.2f}x Adam per epoch "
        f"(need <= {MAX_OVERHEAD}x)"
    )


def test_data_parallel_loss_curves_bit_identical():
    """Pool execution of sharded K-FAC matches serial execution exactly.

    Short float64 run at ``grad_shards=2``: the worker count is a pure
    execution knob, so running both shards in-process must produce the
    same loss curves, bitwise, as shipping them to a 2-process pool —
    gradients and curvature statistics travel through the codec and are
    combined by exact shard weights, so any drift means the parallel
    decomposition changed the math.
    """
    epochs = 3
    with dtype_scope(np.float64):
        data = build_dataset()
        base = dict(
            epochs=epochs,
            learning_rate=LEARNING_RATE,
            seed=SEED,
            optimizer="kfac",
            grad_shards=2,
            **KFAC_KNOBS,
        )
        serial = make_trainer(data, TrainConfig(**base, n_train_workers=1))
        start = time.perf_counter()
        _, h_serial = serial.fit()
        serial_s = time.perf_counter() - start
        pooled = make_trainer(data, TrainConfig(**base, n_train_workers=2))
        start = time.perf_counter()
        _, h_pooled = pooled.fit()
        pooled_s = time.perf_counter() - start
    assert h_pooled.train_loss == h_serial.train_loss, (
        "pool-executed train-loss curve diverged from serial execution"
    )
    assert h_pooled.val_loss == h_serial.val_loss
    assert h_pooled.val_auc == h_serial.val_auc
    serial_ms = serial_s / epochs * 1000
    pooled_ms = pooled_s / epochs * 1000
    from perf_record import update_record

    # The measured input behind the `auto` train-worker policy (see
    # repro.experiments.common.AUTO_WORKER_COUNTS): per-step weight and
    # curvature shipping dominates at this model size, so the pool is a
    # correctness harness, not a speedup — `auto` stays serial until a
    # trajectory entry here shows pooled < serial.
    update_record(
        "bench_train_workers",
        {
            "benchmark": BENCHMARK,
            "links": MAX_LINKS,
            "epochs": epochs,
            "grad_shards": 2,
            "cores": os.cpu_count(),
            "serial_epoch_ms": round(serial_ms, 2),
            "pooled2_epoch_ms": round(pooled_ms, 2),
            "pooled_speedup": round(serial_ms / pooled_ms, 3),
            "bit_identical": True,
        },
    )
    print(
        f"\n[bench_kfac] grad_shards=2, workers 1 vs 2: "
        f"loss curves bit-identical; {serial_ms:.0f}ms/epoch serial vs "
        f"{pooled_ms:.0f}ms/epoch pooled "
        f"({serial_ms / pooled_ms:.2f}x)"
    )


if __name__ == "__main__":
    test_kfac_converges_faster_within_overhead_budget()
    test_data_parallel_loss_curves_bit_identical()
    print("bench_kfac: OK")
