"""ArtifactStore under injected write/read faults (satellite of PR 9).

The contract: a transient failure is retried and invisible; an exhausted
budget raises cleanly with **no partial entry published** (tmp debris is
cleaned, the key reads as a plain miss); a corrupt read heals on the
rewrite and ``verify`` never flags the healed entry.
"""

import errno

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSite, RetryPolicy
from repro.store import ArtifactStore

KEY = "ab" * 32
FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0)


def _arm(*sites: FaultSite) -> None:
    faults.activate(FaultPlan("test", sites=sites))


def test_enospc_is_retried_and_invisible(tmp_path):
    store = ArtifactStore(tmp_path, retry=FAST)
    _arm(FaultSite("store.write_enospc", times=2))
    with pytest.warns(RuntimeWarning, match="retry"):
        store.put("locks", KEY, {"x": 1, "a": np.arange(4)})
    assert store.stats.write_retries == 2
    assert store.stats.writes == 1
    faults.deactivate()
    back = store.get("locks", KEY)
    assert back["x"] == 1
    assert store.verify() == []
    assert "2 write-retries" in store.stats.summary()


def test_enospc_exhaustion_raises_and_publishes_nothing(tmp_path):
    store = ArtifactStore(tmp_path, retry=FAST)
    _arm(FaultSite("store.write_enospc", times=-1))
    with pytest.warns(RuntimeWarning):
        with pytest.raises(OSError) as excinfo:
            store.put("locks", KEY, {"x": 1})
    assert excinfo.value.errno == errno.ENOSPC
    faults.deactivate()
    assert store.stats.writes == 0
    assert not store.has("locks", KEY)  # absent, never partial
    assert store.get("locks", KEY) is None
    assert list(tmp_path.rglob("*.tmp")) == []


def test_torn_write_is_retried_and_leaves_no_debris(tmp_path):
    store = ArtifactStore(tmp_path, retry=FAST)
    _arm(FaultSite("store.write_torn", times=1))
    with pytest.warns(RuntimeWarning, match="retry"):
        store.put("attacks", KEY, {"a": np.arange(1000)})
    faults.deactivate()
    assert store.stats.write_retries == 1
    np.testing.assert_array_equal(
        store.get("attacks", KEY)["a"], np.arange(1000)
    )
    assert list(tmp_path.rglob("*.tmp")) == []
    assert store.verify() == []


def test_torn_write_exhaustion_never_publishes_a_partial_entry(tmp_path):
    store = ArtifactStore(tmp_path, retry=FAST)
    _arm(FaultSite("store.write_torn", times=-1))
    with pytest.warns(RuntimeWarning):
        with pytest.raises(OSError) as excinfo:
            store.put("attacks", KEY, {"a": np.arange(1000)})
    assert excinfo.value.errno == errno.EIO
    faults.deactivate()
    assert not store.has("attacks", KEY)
    assert list(tmp_path.rglob("*.tmp")) == []  # torn tmp file cleaned up
    assert store.verify() == []


def test_read_corrupt_is_a_miss_and_the_rewrite_heals(tmp_path):
    store = ArtifactStore(tmp_path, retry=FAST)
    store.put("locks", KEY, {"x": 1})
    _arm(FaultSite("store.read_corrupt", times=1))
    with pytest.warns(RuntimeWarning, match="unreadable"):
        assert store.get("locks", KEY) is None  # injected corrupt read
    assert store.stats.errors == 1
    # The caller recomputes and rewrites — the budget is spent, so the
    # healed entry decodes cleanly and `cache verify` must not flag it.
    store.put("locks", KEY, {"x": 1})
    assert store.get("locks", KEY) == {"x": 1}
    assert store.verify() == []
    faults.deactivate()


def test_missing_file_is_a_plain_miss_even_when_read_corrupt_is_armed(
    tmp_path,
):
    store = ArtifactStore(tmp_path, retry=FAST)
    _arm(FaultSite("store.read_corrupt", times=-1))
    assert store.get("locks", KEY) is None
    assert store.stats.errors == 0  # a miss, not a corruption event
    assert faults.fired_counts() == {}  # the site never even fired
    faults.deactivate()


def test_clean_summary_has_no_recovery_tokens(tmp_path):
    # The transcript parity gates diff clean-vs-drilled output; a clean
    # run's store summary must not change shape.
    store = ArtifactStore(tmp_path, retry=FAST)
    store.put("locks", KEY, {"x": 1})
    store.get("locks", KEY)
    summary = store.stats.summary()
    assert "write-retries" not in summary
    assert "corrupt" not in summary
