"""`repro chaos` — run the smoke grid under a named fault plan.

A *drill* is one end-to-end proof of the robustness contract: arm a
:class:`~repro.faults.FaultPlan`, run the Fig. 7 smoke grid through the
real topology the plan targets (worker subprocesses over a spool, a TCP
worker against a :class:`~repro.bus.SocketBus`, or the in-process store
path), and assert that the resulting records and rendered table are
**bit-identical** to a clean serial run.  Faults that were injected but
recovered from must be invisible in the science; only the recovery
counters (requeues, fail-overs, write retries) may differ.

This module is imported lazily by the CLI — it drives
:mod:`repro.experiments`, which :mod:`repro.faults` itself must never
import at module scope (the store depends on the faults package).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FaultPlan,
    named_fault_plan,
)

__all__ = ["DRILL_TOPOLOGY", "DrillOutcome", "run_chaos"]

#: Which execution topology exercises each named plan.  ``spool`` and
#: ``socket`` drills run real worker subprocesses (the plan travels via
#: ``REPRO_FAULT_PLAN``); ``local`` drills arm the plan in-process and
#: exercise the store write/read path.
DRILL_TOPOLOGY: dict[str, str] = {
    "worker-crash": "spool",
    "heartbeat-stall": "spool",
    "lease-race": "spool",
    "all-workers-die": "spool",
    "socket-flaky": "socket",
    "torn-store": "local",
    "enospc": "local",
}

#: Lease heartbeat deadline for drill spools — short, so reaping a
#: killed worker does not dominate drill wall-clock.
_DRILL_STALE = 1.5
#: Fail-over deadline for the all-workers-die drill (must exceed
#: ``_DRILL_STALE`` so the corpse leases are reaped first).
_DRILL_LIVENESS = 4.0

_FIRED_LINE = re.compile(r"fault\[([a-z_.]+)\]: fired")


@dataclass
class DrillOutcome:
    """One drill's verdict: parity, injections, and recovery counters."""

    plan: str
    topology: str
    fingerprints_match: bool = False
    tables_match: bool = False
    injected: dict[str, int] = field(default_factory=dict)
    requeues: int = 0
    failed_over: int = 0
    write_retries: int = 0
    store_discards: int = 0
    seconds: float = 0.0
    failures: list[str] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        parts = [
            f"chaos[{self.plan}]: {verdict} ({self.topology}, "
            f"{self.total_injected} injected, {self.seconds:.1f}s)"
        ]
        recovered = []
        if self.requeues:
            recovered.append(f"requeues={self.requeues}")
        if self.failed_over:
            recovered.append(f"failed-over={self.failed_over}")
        if self.write_retries:
            recovered.append(f"write-retries={self.write_retries}")
        if self.store_discards:
            recovered.append(f"store-discards={self.store_discards}")
        if recovered:
            parts.append(" ".join(recovered))
        for failure in self.failures:
            parts.append(f"!! {failure}")
        return "\n".join(parts)


def _mask_runtime(table: str) -> str:
    """Blank the wall-clock column — the one legitimately varying field."""
    return "\n".join(
        re.sub(r"\d+\.\d$", "<sec>", line) for line in table.splitlines()
    )


def _src_root() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _worker_env(plan: FaultPlan | None) -> dict:
    env = {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": _src_root(),
        "PYTHONHASHSEED": "0",
    }
    if plan is not None:
        env[FAULT_PLAN_ENV] = plan.dumps()
    return env


def _spawn_spool_worker(
    spool_root, store_root, plan: FaultPlan | None
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--bus-dir", str(spool_root),
            "--store", str(store_root),
            "--poll", "0.1",
            "--stale-after", str(_DRILL_STALE),
            "--idle-timeout", "60",
        ],
        env=_worker_env(plan),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _spawn_socket_worker(address: str, plan: FaultPlan | None) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--bus-addr", address,
            "--poll", "0.1",
            "--idle-timeout", "60",
        ],
        env=_worker_env(plan),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _reap_worker(proc: subprocess.Popen) -> str:
    """Terminate a drill worker and return its captured output."""
    if proc.poll() is None:
        proc.terminate()
    try:
        output, _ = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - wedged worker
        proc.kill()
        output, _ = proc.communicate()
    return output or ""


def _count_fired(outputs: "list[str]", counts: dict) -> None:
    for output in outputs:
        for match in _FIRED_LINE.finditer(output):
            counts[match.group(1)] = counts.get(match.group(1), 0) + 1


class _Reference:
    """The clean serial run every drill is compared against."""

    def __init__(self, scale, seed: int) -> None:
        from repro.experiments import fig7_cells, format_fig7
        from repro.experiments.runner import ExperimentRunner, record_fingerprint

        self.cells = fig7_cells(scale, seed)
        with ExperimentRunner(jobs=0) as runner:
            records = runner.run(self.cells)
        self.fingerprints = [record_fingerprint(r) for r in records]
        self.table = _mask_runtime(format_fig7(records))


def _check_parity(outcome: DrillOutcome, reference: _Reference, records) -> None:
    from repro.experiments import format_fig7
    from repro.experiments.runner import record_fingerprint

    outcome.fingerprints_match = (
        [record_fingerprint(r) for r in records] == reference.fingerprints
    )
    outcome.tables_match = (
        _mask_runtime(format_fig7(records)) == reference.table
    )
    if not outcome.fingerprints_match:
        outcome.failures.append(
            "record fingerprints diverged from the clean serial run"
        )
    if not outcome.tables_match:
        outcome.failures.append("figure table diverged from the clean serial run")


def _require(outcome: DrillOutcome, condition: bool, what: str) -> None:
    if not condition:
        outcome.failures.append(what)


def _drill_spool(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro.bus import SpoolBus, SpoolDir
    from repro.experiments.runner import ExperimentRunner
    from repro.store import ArtifactStore

    all_die = plan.name == "all-workers-die"
    shared = plan.name == "lease-race"  # every worker runs under the plan
    store = ArtifactStore(workdir / "store")
    spool = SpoolDir(workdir / "spool", stale_after=_DRILL_STALE)
    bus = SpoolBus(
        spool,
        store,
        poll=0.1,
        timeout=240,
        liveness=_DRILL_LIVENESS if all_die else None,
    )
    victims = [_spawn_spool_worker(spool.root, store.root, plan)]
    if all_die:
        victims.append(_spawn_spool_worker(spool.root, store.root, plan))
    helpers: list[subprocess.Popen] = []
    stop = threading.Event()

    def _spawn_helper_on_first_lease() -> None:
        # The victim must win a lease before a healthy peer enters the
        # race, or a 2-job smoke grid can finish without ever touching
        # the armed worker.  A crashed victim leaves its lease behind,
        # so "leased/ is non-empty" covers both the stall and the crash.
        while not stop.is_set():
            if spool.leased_keys():
                helpers.append(
                    _spawn_spool_worker(spool.root, store.root, None)
                )
                return
            time.sleep(0.05)

    watcher = None
    if not all_die and not shared:
        watcher = threading.Thread(
            target=_spawn_helper_on_first_lease, daemon=True
        )
        watcher.start()
    elif shared:
        helpers.append(_spawn_spool_worker(spool.root, store.root, plan))

    runner = ExperimentRunner(jobs=0, store=store, bus=bus)
    try:
        records = runner.run(reference.cells)
    finally:
        stop.set()
        if watcher is not None:
            watcher.join(timeout=10)
        outputs = [_reap_worker(p) for p in victims + helpers]
        runner.close()
    _count_fired(outputs, outcome.injected)
    outcome.requeues = bus.stats.requeues
    outcome.failed_over = bus.stats.failed_over
    outcome.write_retries = store.stats.write_retries
    outcome.store_discards = store.stats.errors
    _check_parity(outcome, reference, records)
    if all_die:
        _require(
            outcome,
            outcome.failed_over >= 1,
            "coordinator never failed over despite a dead worker fleet",
        )
    elif plan.name in ("worker-crash", "heartbeat-stall"):
        _require(
            outcome,
            outcome.requeues >= 1,
            "no lease was ever reaped — the fault did not bite",
        )


def _drill_socket(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro.bus import SocketBus
    from repro.experiments.runner import ExperimentRunner

    bus = SocketBus(poll=0.1, timeout=240)
    worker = _spawn_socket_worker(bus.address, plan)
    runner = ExperimentRunner(jobs=0, store=workdir / "store", bus=bus)
    try:
        records = runner.run(reference.cells)
    finally:
        outputs = [_reap_worker(worker)]
        runner.close()
    _count_fired(outputs, outcome.injected)
    outcome.requeues = bus.stats.requeues
    outcome.failed_over = bus.stats.failed_over
    _check_parity(outcome, reference, records)
    _require(
        outcome,
        outcome.requeues >= 1,
        "no job was requeued — the dropped frame never happened",
    )


def _drill_local(
    plan: FaultPlan, reference: _Reference, outcome: DrillOutcome, workdir: Path
) -> None:
    from repro import faults
    from repro.experiments.runner import ExperimentRunner
    from repro.store import ArtifactStore

    store = ArtifactStore(workdir / "store")
    faults.activate(plan)
    try:
        # Cold pass: the armed writes (torn file / ENOSPC) hit here and
        # must be absorbed by the store's RetryPolicy.
        with ExperimentRunner(jobs=0, store=store) as runner:
            records = runner.run(reference.cells)
        _check_parity(outcome, reference, records)
        if any(site.site == "store.read_corrupt" for site in plan.sites):
            # Warm pass from a fresh runner: the armed read fires on the
            # first successful decode, is discarded as a miss, and the
            # recompute heals the entry in place.
            with ExperimentRunner(jobs=0, store=store) as warm_runner:
                warm = warm_runner.run(reference.cells)
            warm_outcome = DrillOutcome(plan=plan.name, topology="local")
            _check_parity(warm_outcome, reference, warm)
            outcome.failures.extend(
                f"warm pass: {f}" for f in warm_outcome.failures
            )
            outcome.store_discards += warm_runner.store.stats.errors
        for site, count in faults.fired_counts().items():
            outcome.injected[site] = outcome.injected.get(site, 0) + count
    finally:
        faults.deactivate()
    outcome.write_retries = store.stats.write_retries
    outcome.store_discards += store.stats.errors
    _require(
        outcome,
        outcome.write_retries >= 1,
        "no write was ever retried — the fault did not bite",
    )
    corrupt = store.verify()
    _require(
        outcome,
        not corrupt,
        f"cache verify flagged {len(corrupt)} entr(y/ies) after healing",
    )


_DRILL_RUNNERS = {
    "spool": _drill_spool,
    "socket": _drill_socket,
    "local": _drill_local,
}


def run_chaos(
    plans: "list[str]",
    scale=None,
    seed: int = 0,
    keep: bool = False,
    log=print,
) -> "list[DrillOutcome]":
    """Run one drill per named plan; return their outcomes.

    Every drill compares against one shared clean serial run of the
    Fig. 7 grid at *scale* (default: the active experiment scale, i.e.
    smoke unless ``REPRO_SCALE`` says otherwise).  Work directories are
    deleted unless *keep*.
    """
    from repro.experiments.common import active_scale

    scale = scale or active_scale()
    for name in plans:
        if name not in DRILL_TOPOLOGY:
            raise ValueError(
                f"unknown chaos plan {name!r}; known: "
                + ", ".join(sorted(DRILL_TOPOLOGY))
            )
    log(f"chaos: clean reference run (scale={scale.name}, seed={seed})")
    reference = _Reference(scale, seed)
    outcomes = []
    for name in plans:
        plan = named_fault_plan(name, seed=seed)
        topology = DRILL_TOPOLOGY[name]
        outcome = DrillOutcome(plan=name, topology=topology)
        workdir = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{name}-"))
        log(f"chaos: drilling {name} ({topology}) in {workdir}")
        started = time.monotonic()
        try:
            _DRILL_RUNNERS[topology](plan, reference, outcome, workdir)
        except Exception as exc:  # a drill must never kill its siblings
            outcome.failures.append(f"drill raised: {exc!r}")
        outcome.seconds = time.monotonic() - started
        _require(
            outcome,
            outcome.total_injected >= 1,
            "plan armed but no fault ever fired",
        )
        if not keep:
            shutil.rmtree(workdir, ignore_errors=True)
        log(outcome.summary())
        outcomes.append(outcome)
    return outcomes
