"""Graceful degradation: a dead/quiet distributed bus fails over.

The liveness deadline is the coordinator's last line of defence — when
no worker makes progress for that long, the pending jobs are executed
in-process and the figure run completes instead of hanging.  The
``timeout`` knob stays the hard-stop (it raises); liveness is the soft
one (it degrades).
"""

import pytest

from repro.benchgen import load_benchmark
from repro.bus import (
    BusError,
    BusStats,
    SocketBus,
    SpoolBus,
    SpoolDir,
)
from repro.experiments import SMOKE_SCALE, fig7_cells, record_fingerprint
from repro.experiments.common import lock_with
from repro.experiments.runner import AttackJob, ExperimentRunner
from repro.store import (
    ArtifactStore,
    attack_store_key,
    circuit_digest,
    encode_circuit,
)


def _one_job() -> AttackJob:
    cell = fig7_cells(SMOKE_SCALE, seed=0)[0]
    base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
    locked = lock_with(
        cell.scheme, base, key_size=cell.key_size, seed=cell.lock_seed
    )
    return AttackJob(
        store_key=attack_store_key(circuit_digest(locked.circuit), cell.config),
        circuit=encode_circuit(locked.circuit),
        config=cell.config,
    )


def test_spool_bus_fails_over_when_no_worker_ever_appears(tmp_path, capsys):
    job = _one_job()
    store = ArtifactStore(tmp_path / "store")
    spool = SpoolDir(tmp_path / "spool")
    bus = SpoolBus(spool, store, poll=0.05, timeout=60, liveness=0.4)
    results = list(bus.run([job]))
    assert len(results) == 1
    got_job, payload, persisted = results[0]
    assert got_job is job
    assert payload is not None
    assert persisted is False  # the coordinator computed it; not in store
    assert bus.stats.completed == 1
    assert bus.stats.failed_over == 1
    assert "failed-over=1" in bus.stats.summary()
    # The jobs were withdrawn from the spool — a late worker must not
    # recompute work the coordinator already owns.
    assert spool.pending_keys() == []
    assert "failing 1 job(s) over to in-process execution" in (
        capsys.readouterr().out
    )


def test_socket_bus_fails_over_when_no_worker_ever_connects(capsys):
    job = _one_job()
    bus = SocketBus(poll=0.05, timeout=60, liveness=0.4)
    try:
        results = list(bus.run([job]))
    finally:
        bus.close()
    assert len(results) == 1
    assert results[0][2] is False
    assert bus.stats.failed_over == 1
    assert bus.stats.completed == 1
    assert "failing 1 job(s) over" in capsys.readouterr().out


def test_timeout_still_raises_before_liveness_when_smaller(tmp_path):
    # An operator who sets a hard timeout below the liveness deadline
    # asked for an error, not a silent degradation.
    job = _one_job()
    store = ArtifactStore(tmp_path / "store")
    bus = SpoolBus(
        tmp_path / "spool", store, poll=0.05, timeout=0.3, liveness=5.0
    )
    with pytest.raises(BusError, match="no progress"):
        list(bus.run([job]))
    assert bus.stats.failed_over == 0


def test_failed_over_results_match_serial_execution(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    reference = [
        record_fingerprint(r) for r in ExperimentRunner(jobs=0).run(cells)
    ]
    store = ArtifactStore(tmp_path / "store")
    bus = SpoolBus(
        tmp_path / "spool", store, poll=0.05, timeout=60, liveness=0.4
    )
    runner = ExperimentRunner(jobs=0, store=store, bus=bus)
    try:
        records = runner.run(cells)
    finally:
        runner.close()
    assert [record_fingerprint(r) for r in records] == reference
    assert bus.stats.failed_over == bus.stats.submitted > 0


def test_clean_bus_summary_has_no_failover_token():
    stats = BusStats()
    stats.submitted = 3
    assert "failed-over" not in stats.summary()
    stats.failed_over = 2
    assert "failed-over=2" in stats.summary()


def test_liveness_zero_disables_failover(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    bus = SpoolBus(tmp_path / "spool", store, liveness=0)
    assert bus.liveness is None
    bus = SocketBus(liveness=0)
    try:
        assert bus.liveness is None
    finally:
        bus.close()


def test_runner_threads_liveness_to_the_bus(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BUS", "spool")
    monkeypatch.setenv("REPRO_BUS_DIR", str(tmp_path / "spool"))
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    runner = ExperimentRunner(liveness=7.5)
    try:
        assert runner.bus.liveness == 7.5
    finally:
        runner.close()


def test_resolve_bus_liveness_env_default(tmp_path, monkeypatch):
    from repro.bus import BUS_LIVENESS_ENV, DEFAULT_LIVENESS, resolve_bus

    store = ArtifactStore(tmp_path / "store")
    bus = resolve_bus("spool", store=store, bus_dir=tmp_path / "spool")
    assert bus.liveness == DEFAULT_LIVENESS
    monkeypatch.setenv(BUS_LIVENESS_ENV, "12.5")
    bus = resolve_bus("spool", store=store, bus_dir=tmp_path / "spool")
    assert bus.liveness == 12.5
    monkeypatch.setenv(BUS_LIVENESS_ENV, "0")
    bus = resolve_bus("spool", store=store, bus_dir=tmp_path / "spool")
    assert bus.liveness is None
