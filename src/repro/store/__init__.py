"""Content-addressed on-disk artifact store.

Layout::

    <root>/v<SCHEMA_VERSION>/<kind>/<key[:2]>/<key>.npz

where *key* is a sha256 content address (see
:mod:`repro.store.artifacts` for how lock and attack keys are derived)
and every file is a versioned npz archive written by
:mod:`repro.store.codec`.  The schema version is part of the path, so a
schema bump simply stops *seeing* old entries — they are never
misdecoded, and ``repro cache gc`` reclaims them by age.

Operational properties:

* **atomic writes** — same-directory tmp file + ``os.replace``; two
  runners sharing one store can race on the same key and a reader never
  observes a torn file;
* **corruption-tolerant reads** — a truncated / garbage / wrong-kind
  file produces a warning and a cache miss (the caller recomputes and
  rewrites), never an exception;
* **LRU-ish ages** — a successful read touches the file's mtime, so
  ``gc --keep-days`` keeps hot artifacts and drops stale ones;
* **instrumented** — :class:`StoreStats` counts hits / misses / bytes,
  surfaced by ``repro figures`` and ``repro cache stats``.

``REPRO_STORE=<dir>`` (or ``repro figures --store``) points every
runner, bench and CLI invocation at one shared pool; see
:func:`resolve_store`.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.faults import RetryPolicy
from repro.store import codec
from repro.store.artifacts import (
    attack_store_key,
    baseline_config_token,
    baseline_store_key,
    circuit_digest,
    config_token,
    decode_attack_artifact,
    decode_baseline_artifact,
    decode_circuit,
    decode_lock_artifact,
    encode_attack_artifact,
    encode_baseline_artifact,
    encode_circuit,
    encode_lock_artifact,
    lock_store_key,
)
from repro.store.codec import CodecError

__all__ = [
    "ArtifactStore",
    "REMOTE_SCHEME",
    "SCHEMA_VERSION",
    "StoreEntry",
    "StoreStats",
    "attack_store_key",
    "baseline_config_token",
    "baseline_store_key",
    "circuit_digest",
    "codec",
    "config_token",
    "decode_attack_artifact",
    "decode_baseline_artifact",
    "decode_circuit",
    "decode_lock_artifact",
    "encode_attack_artifact",
    "encode_baseline_artifact",
    "encode_circuit",
    "encode_lock_artifact",
    "lock_store_key",
    "resolve_store",
]

#: On-disk layout version.  Bumping it makes existing entries invisible
#: (they live under the old ``v<N>`` directory), not fatal.
SCHEMA_VERSION = 1

#: Environment variable pointing runners / benches / the CLI at a store.
STORE_ENV = "REPRO_STORE"

#: Store-path prefix selecting the network-backed store:
#: ``remote://host:port`` opens a :class:`repro.store.remote.RemoteStore`
#: speaking the serve wire protocol instead of a local directory.
REMOTE_SCHEME = "remote://"


@dataclass
class StoreStats:
    """Read/write counters for one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    write_retries: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def summary(self) -> str:
        # Recovery counters appear only when nonzero: the parity gates
        # diff clean-vs-drilled transcripts with bookkeeping masked, and
        # a clean run's summary must not change shape.
        return (
            f"{self.hits} hits {self.misses} misses {self.writes} writes "
            f"({_human_bytes(self.bytes_read)} in, "
            f"{_human_bytes(self.bytes_written)} out"
            + (f", {self.errors} corrupt" if self.errors else "")
            + (
                f", {self.write_retries} write-retries"
                if self.write_retries
                else ""
            )
            + ")"
        )


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk artifact (as listed by ``repro cache ls``)."""

    kind: str
    key: str
    path: Path
    size: int
    mtime: float
    schema: int


def _human_bytes(n: int | float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


class ArtifactStore:
    """Content-addressed npz artifact store rooted at *root*."""

    def __init__(
        self,
        root: str | os.PathLike,
        schema: int = SCHEMA_VERSION,
        retry: RetryPolicy | None = None,
    ):
        self.root = Path(root)
        self.schema = int(schema)
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.stats = StoreStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r}, schema={self.schema})"

    # -- paths --------------------------------------------------------------
    @property
    def schema_dir(self) -> Path:
        return self.root / f"v{self.schema}"

    def path_for(self, kind: str, key: str) -> Path:
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"malformed artifact key {key!r}")
        return self.schema_dir / kind / key[:2] / f"{key}.npz"

    # -- read/write ---------------------------------------------------------
    def get(self, kind: str, key: str, decoder=None) -> Any | None:
        """Decode the artifact at (*kind*, *key*), or ``None`` on a miss.

        Corrupt, truncated or wrong-kind files count as misses: the
        store warns, records the error, and the caller recomputes (the
        rewrite then replaces the bad file).  An optional *decoder* is
        applied to the payload under the same policy — a payload that
        does not decode into its domain object is a miss too — so every
        consumer (runner, ``run_muxlink``, a future remote scheduler)
        shares one corruption-tolerance path.
        """
        path = self.path_for(kind, key)
        try:
            payload = codec.load(path, kind=kind)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except CodecError as exc:
            return self._discard(kind, f"unreadable ({exc})")
        if decoder is not None:
            try:
                payload = decoder(payload)
            except Exception as exc:
                return self._discard(kind, f"undecodable payload ({exc})")
        self.stats.hits += 1
        try:
            self.stats.bytes_read += path.stat().st_size
            os.utime(path)  # LRU signal for ``gc --keep-days``
        except OSError:  # pragma: no cover - racing gc/delete
            pass
        return payload

    def _discard(self, kind: str, reason: str) -> None:
        warnings.warn(
            f"artifact store: discarding unreadable {kind} entry "
            f"— {reason}; recomputing",
            RuntimeWarning,
            stacklevel=3,
        )
        self.stats.misses += 1
        self.stats.errors += 1
        return None

    def put(self, kind: str, key: str, payload: Any) -> Path:
        """Atomically persist *payload* under (*kind*, *key*).

        Transient write failures (ENOSPC while gc frees room, a flaky
        network mount) are retried on the store's
        :class:`~repro.faults.RetryPolicy` backoff schedule; the tmp
        file + ``os.replace`` protocol in :func:`repro.store.codec.dump`
        guarantees a failed attempt publishes nothing, so a retry never
        races its own debris.  The final failure propagates — the entry
        is simply absent, never partial.
        """
        path = self.path_for(kind, key)

        def _on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self.stats.write_retries += 1
            warnings.warn(
                f"artifact store: write of {kind}/{key[:12]}… failed "
                f"({exc}); retry {attempt + 1}/{self.retry.max_attempts} "
                f"in {delay:.2f}s",
                RuntimeWarning,
                stacklevel=3,
            )

        self.retry.call(
            lambda: codec.dump(payload, path, kind=kind),
            retry_on=(OSError,),
            describe=f"store write {kind}/{key[:12]}",
            on_retry=_on_retry,
        )
        self.stats.writes += 1
        try:
            self.stats.bytes_written += path.stat().st_size
        except OSError:  # pragma: no cover - racing gc/delete
            pass
        return path

    def has(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).exists()

    # -- maintenance --------------------------------------------------------
    def entries(self, all_schemas: bool = False) -> Iterator[StoreEntry]:
        """Yield artifacts of this schema (or of every schema dir)."""
        if not self.root.is_dir():
            return
        for schema_dir in sorted(self.root.glob("v*")):
            if not schema_dir.is_dir():
                continue
            try:
                schema = int(schema_dir.name[1:])
            except ValueError:
                continue
            if not all_schemas and schema != self.schema:
                continue
            for path in sorted(schema_dir.glob("*/*/*.npz")):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - racing delete
                    continue
                yield StoreEntry(
                    kind=path.parent.parent.name,
                    key=path.stem,
                    path=path,
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                    schema=schema,
                )

    def gc(
        self, keep_days: float, protect: "set[str] | None" = None
    ) -> tuple[int, int]:
        """Drop artifacts not touched for *keep_days* days.

        Entries under *other* schema versions are subject to the same age
        rule (they are unreachable, but deleting a concurrent writer's
        fresh work would be hostile), and stray ``*.tmp`` files from
        crashed writers are removed once they are over an hour old — a
        live writer holds its tmp file for seconds, so gc never races an
        in-flight ``os.replace``.  Keys in *protect* are never collected
        regardless of age — ``repro cache gc`` passes the store keys of
        jobs still pending or leased on a spool bus, so gc cannot delete
        an artifact a coordinator is about to adopt.  Returns
        ``(files_removed, bytes_freed)``.
        """
        if keep_days < 0:
            raise ValueError(f"keep_days must be >= 0, got {keep_days}")
        protect = protect or set()
        cutoff = time.time() - keep_days * 86400.0
        removed = 0
        freed = 0
        for entry in list(self.entries(all_schemas=True)):
            if entry.key in protect:
                continue
            if entry.mtime < cutoff:
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - racing delete
                    continue
                removed += 1
                freed += entry.size
        if self.root.is_dir():
            tmp_cutoff = time.time() - 3600.0
            for tmp in self.root.rglob("*.tmp"):
                try:
                    stat = tmp.stat()
                    if stat.st_mtime >= tmp_cutoff:
                        continue  # possibly a live writer's in-flight file
                    tmp.unlink()
                except OSError:  # pragma: no cover - racing writer
                    continue
                removed += 1
                freed += stat.st_size
            # Prune directories emptied by the sweep (leaves first).
            for directory in sorted(
                (d for d in self.root.rglob("*") if d.is_dir()),
                key=lambda d: len(d.parts),
                reverse=True,
            ):
                try:
                    directory.rmdir()
                except OSError:
                    pass
        return removed, freed

    def verify(self, delete: bool = False) -> list[StoreEntry]:
        """Decode every entry; return (and optionally delete) corrupt ones."""
        corrupt: list[StoreEntry] = []
        for entry in self.entries():
            try:
                codec.load(entry.path, kind=entry.kind)
            except (CodecError, OSError):
                corrupt.append(entry)
                if delete:
                    try:
                        entry.path.unlink()
                    except OSError:  # pragma: no cover - racing delete
                        pass
        return corrupt


def resolve_store(
    store: "ArtifactStore | str | os.PathLike | None",
) -> ArtifactStore | None:
    """Resolve a store argument: instance, path, or the environment.

    ``None`` consults ``REPRO_STORE`` (empty/unset means *no store*), a
    string/path opens that directory, ``remote://host:port`` opens a
    :class:`~repro.store.remote.RemoteStore` against a ``repro serve``
    process, and an :class:`ArtifactStore` passes through — the scheme
    every entry point shares
    (:class:`~repro.experiments.runner.ExperimentRunner`,
    ``repro figures --store``, the bench suite).
    """
    if isinstance(store, ArtifactStore):
        return store
    if store is None:
        env = os.environ.get(STORE_ENV, "").strip()
        store = env if env else None
        if store is None:
            return None
    text = os.fspath(store).strip()
    if not text:
        return None
    if text.startswith(REMOTE_SCHEME):
        # Late import: repro.store.remote pulls in the bus wire helpers,
        # which import this module back.
        from repro.store.remote import RemoteStore

        return RemoteStore(text[len(REMOTE_SCHEME) :])
    return ArtifactStore(text)
