"""Unit tests for gate semantics and feature encoding."""

import numpy as np
import pytest

from repro.netlist.gates import (
    FEATURE_GATE_ORDER,
    NUM_GATE_FEATURES,
    GateType,
    evaluate_gate,
    gate_arity_ok,
    gate_feature_index,
)


def bits(*values):
    """Pack bit values into a single-word uint64 array (LSB first)."""
    word = 0
    for i, v in enumerate(values):
        word |= int(v) << i
    return np.array([word], dtype=np.uint64)


def unpack(word_array, n):
    word = int(word_array[0])
    return [(word >> i) & 1 for i in range(n)]


TRUTH_TABLES = {
    GateType.AND: [0, 0, 0, 1],
    GateType.NAND: [1, 1, 1, 0],
    GateType.OR: [0, 1, 1, 1],
    GateType.NOR: [1, 0, 0, 0],
    GateType.XOR: [0, 1, 1, 0],
    GateType.XNOR: [1, 0, 0, 1],
}


@pytest.mark.parametrize("gate_type,expected", sorted(TRUTH_TABLES.items()))
def test_two_input_truth_tables(gate_type, expected):
    a = bits(0, 0, 1, 1)
    b = bits(0, 1, 0, 1)
    out = evaluate_gate(gate_type, [a, b])
    assert unpack(out, 4) == expected


def test_not_and_buf():
    a = bits(0, 1)
    assert unpack(evaluate_gate(GateType.NOT, [a]), 2) == [1, 0]
    assert unpack(evaluate_gate(GateType.BUF, [a]), 2) == [0, 1]


def test_buf_returns_copy_not_alias():
    a = bits(0, 1)
    out = evaluate_gate(GateType.BUF, [a])
    out[0] = np.uint64(0)
    assert unpack(a, 2) == [0, 1]


def test_mux_select_semantics():
    # MUX(s, d0, d1): s=0 -> d0, s=1 -> d1
    sel = bits(0, 0, 1, 1)
    d0 = bits(0, 1, 0, 1)
    d1 = bits(1, 0, 1, 0)
    out = evaluate_gate(GateType.MUX, [sel, d0, d1])
    assert unpack(out, 4) == [0, 1, 1, 0]


def test_multi_input_and_or_xor():
    a, b, c = bits(0, 1, 1, 1), bits(1, 0, 1, 1), bits(1, 1, 0, 1)
    assert unpack(evaluate_gate(GateType.AND, [a, b, c]), 4) == [0, 0, 0, 1]
    assert unpack(evaluate_gate(GateType.OR, [a, b, c]), 4) == [1, 1, 1, 1]
    # XOR is parity over all inputs.
    assert unpack(evaluate_gate(GateType.XOR, [a, b, c]), 4) == [0, 0, 0, 1]


def test_arity_validation():
    assert gate_arity_ok(GateType.NOT, 1)
    assert not gate_arity_ok(GateType.NOT, 2)
    assert gate_arity_ok(GateType.MUX, 3)
    assert not gate_arity_ok(GateType.MUX, 2)
    assert not gate_arity_ok(GateType.AND, 1)
    with pytest.raises(ValueError):
        evaluate_gate(GateType.AND, [bits(1)])
    with pytest.raises(ValueError):
        evaluate_gate(GateType.MUX, [bits(1), bits(0)])


def test_feature_encoding_is_8_wide_and_excludes_mux():
    assert NUM_GATE_FEATURES == 8
    assert GateType.MUX not in FEATURE_GATE_ORDER
    seen = {gate_feature_index(g) for g in FEATURE_GATE_ORDER}
    assert seen == set(range(8))
    with pytest.raises(ValueError):
        gate_feature_index(GateType.MUX)
