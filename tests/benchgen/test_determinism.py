"""Cross-process determinism of the benchmark suite and locking.

Regression guard: the generator once iterated a plain ``set``, whose order
depends on the per-process hash seed — identical seeds then produced
different circuits in different interpreter runs.
"""

import pathlib
import subprocess
import sys

import repro

_SNIPPET = """
from repro import load_benchmark, lock_dmux
base = load_benchmark('c1908', scale=0.15)
locked = lock_dmux(base, key_size=8, seed=3)
print(hash_free := locked.key)
print(sum(1 for _ in base.gates))
print(base.gates[0].inputs)
"""

# The deliberately minimal env drops PYTHONPATH, so the fresh interpreter
# needs the package's own source root to import repro again.
_SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parents[1])


def _run_in_fresh_process(hash_seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": _SRC_ROOT,
        },
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_generation_and_locking_stable_across_hash_seeds():
    out_a = _run_in_fresh_process("0")
    out_b = _run_in_fresh_process("424242")
    assert out_a == out_b
    assert out_a.strip()
