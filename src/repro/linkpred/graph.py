"""Locked netlist → undirected attack graph (paper Sec. III-A, step 1–2).

MuxLink first identifies the key-controlled MUXes by tracing the key
inputs, removes them from the netlist, and converts the rest to an
undirected gate graph.  Primary inputs and outputs are *not* nodes — the
GNN learns the composition of gates, nothing else.  Every data input of a
removed MUX becomes a *target link* candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError
from repro.locking.keys import is_key_input, key_input_index
from repro.netlist import Circuit, GateType

__all__ = ["AttackGraph", "MuxTarget", "extract_attack_graph"]


@dataclass(frozen=True)
class MuxTarget:
    """One removed key MUX and its two candidate links.

    Attributes:
        mux_name: name of the removed MUX gate.
        key_index: key bit driving its select pin.
        load: node index of the locked gate.
        cand_d0: node index of the data-0 net (passed when the key bit is 0).
        cand_d1: node index of the data-1 net.
    """

    mux_name: str
    key_index: int
    load: int
    cand_d0: int
    cand_d1: int

    def candidates(self) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """``(driver, load, select_value)`` for both candidate links."""
        return (self.cand_d0, self.load, 0), (self.cand_d1, self.load, 1)


@dataclass
class AttackGraph:
    """Undirected gate graph with the key MUXes stripped out.

    Attributes:
        node_names: gate name per node index.
        index: inverse mapping.
        neighbors: adjacency sets over *observed* links only (target links
            and key logic excluded).
        gate_types: per-node Boolean function (never ``MUX``).
        targets: one record per removed key MUX.
    """

    node_names: list[str]
    index: dict[str, int]
    neighbors: list[set[int]]
    gate_types: list[GateType]
    targets: list[MuxTarget]

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    def n_edges(self) -> int:
        return sum(len(n) for n in self.neighbors) // 2

    def edges(self) -> list[tuple[int, int]]:
        """All observed undirected edges as ``(u, v)`` with ``u < v``."""
        out = []
        for u, nbrs in enumerate(self.neighbors):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.neighbors[u]


def _is_key_mux(circuit: Circuit, name: str) -> bool:
    gate = circuit.gate(name)
    return gate.gate_type is GateType.MUX and is_key_input(gate.inputs[0])


def extract_attack_graph(circuit: Circuit) -> AttackGraph:
    """Build the attack graph of a MUX-locked netlist.

    Raises:
        AttackError: if the netlist has no key MUXes, contains non-key
            MUX primitives (no feature encoding), or a MUX data input /
            load that is not a gate (cannot become a graph node).
    """
    key_muxes = [
        g.name for g in circuit.gates if _is_key_mux(circuit, g.name)
    ]
    if not key_muxes:
        raise AttackError("no key-controlled MUXes found in the netlist")
    key_mux_set = set(key_muxes)

    for gate in circuit.gates:
        if gate.gate_type is GateType.MUX and gate.name not in key_mux_set:
            raise AttackError(
                f"non-key MUX {gate.name!r}: MuxLink expects all MUX "
                "primitives to be key gates"
            )

    node_names = [g.name for g in circuit.gates if g.name not in key_mux_set]
    index = {name: i for i, name in enumerate(node_names)}
    neighbors: list[set[int]] = [set() for _ in node_names]
    gate_types = [circuit.gate(name).gate_type for name in node_names]

    for name in node_names:
        v = index[name]
        for net in circuit.gate(name).inputs:
            if net in index:
                u = index[net]
                if u != v:
                    neighbors[u].add(v)
                    neighbors[v].add(u)
            # Primary inputs and key MUX outputs are skipped: the former
            # are not nodes, the latter become target links below.

    targets: list[MuxTarget] = []
    for mux_name in key_muxes:
        gate = circuit.gate(mux_name)
        select, d0, d1 = gate.inputs
        loads = [
            load for load in circuit.fanout(mux_name) if load not in key_mux_set
        ]
        if not loads:
            raise AttackError(f"key MUX {mux_name!r} drives no gate")
        for net in (d0, d1):
            if net not in index:
                raise AttackError(
                    f"key MUX {mux_name!r} data input {net!r} is not a "
                    "gate net; cannot form a target link"
                )
        for load in loads:
            targets.append(
                MuxTarget(
                    mux_name=mux_name,
                    key_index=key_input_index(select),
                    load=index[load],
                    cand_d0=index[d0],
                    cand_d1=index[d1],
                )
            )
    return AttackGraph(
        node_names=node_names,
        index=index,
        neighbors=neighbors,
        gate_types=gate_types,
        targets=targets,
    )
