"""Fig. 10 — effect of the hop count ``h`` on scores and runtime.

Reproduced shape: scores jump from h = 1 to h = 2 and saturate by h ≈ 3,
while runtime grows with h (neighbourhoods grow exponentially).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import aggregate_metrics
from repro.experiments.common import ExperimentScale, active_scale
from repro.experiments.runner import Cell, ExperimentRunner, make_cell
from repro.locking import DMUX_SCHEME

__all__ = ["Fig10Row", "fig10_cells", "run_fig10", "format_fig10"]


@dataclass(frozen=True)
class Fig10Row:
    h: int
    accuracy: float
    precision: float
    kpa: float
    runtime_seconds: float


def fig10_cells(
    scale: ExperimentScale, hops: tuple[int, ...] = (1, 2, 3), seed: int = 0
) -> list[Cell]:
    """One D-MUX cell per (hop count, ISCAS-85 benchmark).

    The hop count only overrides the attack's ``h``; the cell seeds are
    keyed on the cell identity alone, so every hop attacks the *same*
    locked netlist and a shared runner locks each benchmark once.
    """
    return [
        make_cell(
            scale, name, circuit_scale, DMUX_SCHEME, max(key_sizes), seed, h=h
        )
        for h in hops
        for name, circuit_scale, key_sizes in scale.benchmarks()
        if name in scale.iscas
    ]


def run_fig10(
    scale: ExperimentScale | None = None,
    hops: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> list[Fig10Row]:
    """Re-run the attack for each h (paper: h in [1, 4], saturating at 3).

    All (hop, benchmark) cells go to the runner as one wave, so a pooled
    run parallelizes across hops as well as benchmarks.
    """
    scale = scale or active_scale()
    if runner is None:
        with ExperimentRunner(jobs=jobs) as owned:
            return run_fig10(scale, hops, seed, runner=owned)
    cells = fig10_cells(scale, hops, seed)
    all_records = list(zip(cells, runner.run(cells)))
    rows: list[Fig10Row] = []
    for h in hops:
        records = [r for cell, r in all_records if cell.config.h == h]
        metrics = aggregate_metrics([r.metrics for r in records])
        kpa = metrics.kpa if metrics.kpa == metrics.kpa else 0.0
        rows.append(
            Fig10Row(
                h=h,
                accuracy=metrics.accuracy,
                precision=metrics.precision,
                kpa=kpa,
                runtime_seconds=sum(r.runtime_seconds for r in records),
            )
        )
    return rows


def format_fig10(rows: list[Fig10Row]) -> str:
    lines = [
        "Fig. 10 — MuxLink scores and runtime vs h-hop size",
        f"{'h':>3}{'AC':>8}{'PC':>8}{'KPA':>8}{'runtime(s)':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r.h:>3}{r.accuracy:>8.3f}{r.precision:>8.3f}"
            f"{r.kpa:>8.3f}{r.runtime_seconds:>12.1f}"
        )
    return "\n".join(lines)
