"""Exception hierarchy for the MuxLink reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistError",
    "BenchFormatError",
    "LockingError",
    "AttackError",
    "SimulationError",
    "TrainingError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NetlistError(ReproError):
    """Structural netlist problem (bad arity, loop, unknown net, ...)."""


class BenchFormatError(ReproError):
    """Malformed BENCH text."""


class LockingError(ReproError):
    """A locking pass could not be applied (no viable locality, bad key)."""


class AttackError(ReproError):
    """An attack received inputs it cannot process."""


class SimulationError(ReproError):
    """Logic simulation failure."""


class TrainingError(ReproError):
    """GNN training / dataset construction failure."""
