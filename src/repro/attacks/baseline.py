"""Uniform job-shaped interface over the baseline attack zoo.

The individual attacks (:mod:`repro.attacks.saam`, ``scope``, ``sweep``,
``random_guess``) each expose their own report shape.  The experiment
runner and the job bus need one declarative, picklable unit instead:
:class:`BaselineConfig` names the attack plus every result-affecting
knob, and :class:`BaselineReport` is the common outcome — a predicted
key, per-bit scores (positive = the attack backs bit value ``"0"``,
mirroring SCOPE/SWEEP sign conventions) and the blind-bit count.

:func:`run_baseline_attack` is the single dispatch point used by the
serial path, the process pool and the spool/socket workers, exactly as
:func:`~repro.experiments.runner.execute_attack_job` is for MuxLink.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.random_guess import random_guess_attack
from repro.attacks.saam import saam_attack
from repro.attacks.scope import scope_attack
from repro.attacks.sweep import SweepAttack
from repro.errors import AttackError
from repro.locking.common import LockedCircuit
from repro.netlist import Circuit

__all__ = [
    "BASELINE_ATTACKS",
    "BaselineConfig",
    "BaselineReport",
    "run_baseline_attack",
]

#: Attack names :class:`BaselineConfig` accepts.
BASELINE_ATTACKS = ("saam", "scope", "sweep", "random")


@dataclass(frozen=True)
class BaselineConfig:
    """Declarative configuration of one baseline attack run.

    Only the knobs the named attack actually consumes are part of its
    artifact identity — see
    :func:`repro.store.artifacts.baseline_config_token`, which drops
    the inert ones (SAAM has no knobs at all; the coin ``seed`` matters
    only when ``undecided="coin"``).
    """

    attack: str
    undecided: str = "coin"
    seed: int = 0
    threshold: float = 1e-9  # SCOPE: minimum |score| for a decision
    margin: float = 1e-6  # SWEEP: |score| below this is undecided
    ridge: float = 1e-3  # SWEEP: L2 regularization of the fit

    def __post_init__(self) -> None:
        if self.attack not in BASELINE_ATTACKS:
            raise AttackError(
                f"unknown baseline attack {self.attack!r}; choose from "
                f"{BASELINE_ATTACKS}"
            )


@dataclass(frozen=True)
class BaselineReport:
    """Common outcome shape of every baseline attack.

    Attributes:
        attack: which attack produced this (``BASELINE_ATTACKS`` member).
        predicted_key: per-bit guesses, ``x`` for abstained/absent bits.
        scores: per-bit decision scores; positive backs bit value ``"0"``
            (SCOPE/SWEEP convention).  Empty for the random-guess floor.
        n_blind: bits decided without structural signal (coin or ``x``).
        runtime_seconds: wall-clock of the attack run (excluded from
            fingerprints — never part of the artifact identity).
    """

    attack: str
    predicted_key: str
    scores: dict[int, float] = field(default_factory=dict)
    n_blind: int = 0
    runtime_seconds: float = 0.0


def _saam_report(circuit: Circuit) -> tuple[str, dict[int, float], int]:
    report = saam_attack(circuit)
    # Reduction asymmetry as a signed score: hard-coding value 1 removing
    # logic is evidence *against* bit 1, i.e. for bit "0" — positive.
    scores: dict[int, float] = {}
    for (bit, value), removed in report.reductions.items():
        scores[bit] = scores.get(bit, 0.0) + (removed if value else -removed)
    present = {bit for bit, _ in report.reductions}
    n_blind = sum(
        1 for bit in present if report.predicted_key[bit] == "x"
    )
    return report.predicted_key, scores, n_blind


def run_baseline_attack(
    circuit: Circuit,
    config: BaselineConfig,
    train: Sequence[LockedCircuit] = (),
) -> BaselineReport:
    """Run the configured baseline attack on a locked netlist.

    *train* is consumed only by SWEEP (its supervised corpus of locked
    designs with known keys; order matters — the normal-equation
    reduction is order-sensitive at the float level, so the artifact key
    treats it as an ordered tuple).
    """
    started = time.perf_counter()
    if config.attack == "saam":
        predicted, scores, n_blind = _saam_report(circuit)
    elif config.attack == "scope":
        report = scope_attack(
            circuit,
            threshold=config.threshold,
            undecided=config.undecided,
            seed=config.seed,
        )
        predicted, scores, n_blind = (
            report.predicted_key, dict(report.scores), report.n_blind,
        )
    elif config.attack == "sweep":
        if not train:
            raise AttackError(
                "baseline attack 'sweep' needs a training corpus of "
                "locked designs with known keys"
            )
        attack = SweepAttack(
            margin=config.margin,
            undecided=config.undecided,
            ridge=config.ridge,
            seed=config.seed,
        ).fit(list(train))
        report = attack.attack(circuit)
        predicted, scores, n_blind = (
            report.predicted_key, dict(report.scores), report.n_blind,
        )
    else:  # "random" — BaselineConfig already validated the name
        predicted = random_guess_attack(circuit, seed=config.seed)
        scores = {}
        n_blind = sum(1 for bit in predicted if bit != "x")
    return BaselineReport(
        attack=config.attack,
        predicted_key=predicted,
        scores=scores,
        n_blind=n_blind,
        runtime_seconds=time.perf_counter() - started,
    )
