"""The nn test suite runs in float64: numerical gradient checks compare
against central differences with eps=1e-6, which float32 cannot resolve.
This is exactly the escape hatch the dtype policy exists for."""

import numpy as np
import pytest

from repro.nn import dtype_scope


@pytest.fixture(autouse=True)
def float64_runtime():
    with dtype_scope(np.float64):
        yield
