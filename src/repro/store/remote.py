"""Network-backed artifact store speaking the serve wire protocol.

``RemoteStore("host:port")`` duck-types the read/write subset of
:class:`repro.store.ArtifactStore` (``get`` / ``put`` / ``has`` +
``stats``) against a ``repro serve`` process, so workers and clients on
other hosts share one artifact pool with **no shared filesystem**.  The
wire format is the job bus framing (4-byte length + codec blob), and the
blobs themselves are byte-for-byte the npz images the server's on-disk
store holds — content addressing makes that exchange trivially cachable,
so the client keeps an LRU of raw blob bytes (capped by total size,
``REPRO_REMOTE_CACHE_BYTES``) and a warm ``get`` decodes locally without
touching the network.

Failure semantics mirror the local store: a corrupt blob warns and reads
as a miss (the caller recomputes and rewrites), transient socket errors
retry on the shared :class:`~repro.faults.RetryPolicy` backoff with a
fresh connection per attempt, and the ``remote_store.read_timeout``
fault site injects exactly the mid-read timeout the chaos drill needs.
"""

from __future__ import annotations

import socket
import threading
import os
import warnings
from collections import OrderedDict
from typing import Any

from repro import faults
from repro.errors import ReproError
from repro.faults.retry import RetryPolicy
from repro.store import StoreStats, codec
from repro.store.codec import CodecError

__all__ = ["RemoteStore", "RemoteStoreError"]

#: Client-side blob-cache budget (total raw bytes).
REMOTE_CACHE_ENV = "REPRO_REMOTE_CACHE_BYTES"
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class RemoteStoreError(ReproError):
    """The remote store endpoint misbehaved (bad reply, refused write)."""


class RemoteStore:
    """Read/write artifact access against a ``repro serve`` endpoint."""

    def __init__(
        self,
        address: str,
        retry: RetryPolicy | None = None,
        cache_bytes: int | None = None,
    ) -> None:
        from repro.bus.socketbus import parse_address

        self.host, self.port = parse_address(address)
        self.root = f"remote://{self.host}:{self.port}"
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.stats = StoreStats()
        if cache_bytes is None:
            raw = os.environ.get(REMOTE_CACHE_ENV, "").strip()
            cache_bytes = int(raw) if raw else DEFAULT_CACHE_BYTES
        self._cache_budget = int(cache_bytes)
        self._cache: OrderedDict[tuple[str, str], bytes] = OrderedDict()
        self._cache_bytes = 0
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteStore({self.root!r})"

    # -- wire ----------------------------------------------------------------
    def _ensure(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.retry.connect_timeout
            )
            sock.settimeout(self.retry.read_timeout)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _round_trip(self, payload: dict, expect: str) -> dict:
        """One request/reply exchange, reconnect-and-retried on OSError."""
        from repro.bus.socketbus import recv_message, send_message

        def _attempt() -> dict:
            with self._lock:
                try:
                    sock = self._ensure()
                    send_message(sock, payload)
                    if faults.fire("remote_store.read_timeout"):
                        raise socket.timeout(
                            "injected fault remote_store.read_timeout"
                        )
                    reply = recv_message(sock)
                except OSError:
                    self._drop()
                    raise
                if reply is None:
                    # EOF mid-request (server restarted, accept dropped):
                    # indistinguishable from a socket error — retry.
                    self._drop()
                    raise OSError("remote store connection closed")
            if reply.get("op") != expect:
                raise RemoteStoreError(
                    f"remote store sent {reply.get('op')!r}, "
                    f"expected {expect!r}"
                )
            return reply

        return self.retry.call(
            _attempt,
            retry_on=(OSError,),
            describe=f"remote store {payload.get('op')}",
        )

    # -- blob cache ----------------------------------------------------------
    def _cache_put(self, kind: str, key: str, blob: bytes) -> None:
        if len(blob) > self._cache_budget:
            return
        entry = (kind, key)
        old = self._cache.pop(entry, None)
        if old is not None:
            self._cache_bytes -= len(old)
        self._cache[entry] = blob
        self._cache_bytes += len(blob)
        while self._cache_bytes > self._cache_budget:
            _, evicted = self._cache.popitem(last=False)
            self._cache_bytes -= len(evicted)

    # -- store surface -------------------------------------------------------
    def get(self, kind: str, key: str, decoder=None) -> Any | None:
        """Fetch + decode, LRU-first; corrupt blobs read as misses."""
        with self._lock:
            blob = self._cache.get((kind, key))
            if blob is not None:
                self._cache.move_to_end((kind, key))
        if blob is None:
            reply = self._round_trip(
                {"op": "store-get", "kind": kind, "key": key}, "store-blob"
            )
            if not reply.get("found"):
                self.stats.misses += 1
                return None
            blob = reply["blob"].tobytes()
        try:
            payload = codec.loads(blob, kind=kind)
        except CodecError as exc:
            return self._discard(kind, key, f"unreadable ({exc})")
        if decoder is not None:
            try:
                payload = decoder(payload)
            except Exception as exc:
                return self._discard(kind, key, f"undecodable payload ({exc})")
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        with self._lock:
            self._cache_put(kind, key, blob)
        return payload

    def _discard(self, kind: str, key: str, reason: str) -> None:
        with self._lock:
            old = self._cache.pop((kind, key), None)
            if old is not None:
                self._cache_bytes -= len(old)
        warnings.warn(
            f"remote store: discarding unreadable {kind} entry — {reason}; "
            "recomputing",
            RuntimeWarning,
            stacklevel=3,
        )
        self.stats.misses += 1
        self.stats.errors += 1
        return None

    def put(self, kind: str, key: str, payload: Any) -> None:
        """Write-through: the server persists, the client caches bytes."""
        import numpy as np

        blob = codec.dumps(payload, kind=kind)
        reply = self._round_trip(
            {
                "op": "store-put",
                "kind": kind,
                "key": key,
                "blob": np.frombuffer(blob, dtype=np.uint8),
            },
            "store-ok",
        )
        if not reply.get("ok"):
            raise RemoteStoreError(
                f"remote store refused write {kind}/{key[:12]}…: "
                f"{reply.get('error')}"
            )
        self.stats.writes += 1
        self.stats.bytes_written += len(blob)
        with self._lock:
            self._cache_put(kind, key, blob)

    def has(self, kind: str, key: str) -> bool:
        with self._lock:
            if (kind, key) in self._cache:
                return True
        reply = self._round_trip(
            {"op": "store-has", "kind": kind, "key": key}, "store-has"
        )
        return bool(reply.get("has"))
