"""Attack a benchmark suite with MuxLink — a miniature of paper Fig. 7.

Locks two ISCAS-85 stand-ins with both learning-resilient schemes and
several key sizes, attacks each, and prints the AC/PC/KPA grid::

    python examples/attack_dmux_suite.py
"""

from repro import (
    MuxLinkConfig,
    TrainConfig,
    load_benchmark,
    lock_dmux,
    lock_symmetric,
    run_muxlink,
    score_key,
)
from repro.core.metrics import aggregate_metrics

BENCHMARKS = ("c1355", "c1908")
KEY_SIZES = (8, 16)
SCALE = 0.15


def main() -> None:
    config = MuxLinkConfig(
        h=3, train=TrainConfig(epochs=15, learning_rate=1e-3, seed=0)
    )
    print(f"{'benchmark':<10}{'scheme':<15}{'K':>4}{'AC':>8}{'PC':>8}{'KPA':>8}")
    all_metrics = []
    for scheme_name, locker in (
        ("D-MUX", lock_dmux),
        ("Symmetric-MUX", lock_symmetric),
    ):
        for name in BENCHMARKS:
            base = load_benchmark(name, scale=SCALE)
            for key_size in KEY_SIZES:
                locked = locker(base, key_size=key_size, seed=1)
                result = run_muxlink(locked.circuit, config)
                m = score_key(result.predicted_key, locked.key)
                all_metrics.append(m)
                print(
                    f"{name:<10}{scheme_name:<15}{key_size:>4}"
                    f"{m.accuracy:>8.3f}{m.precision:>8.3f}{m.kpa:>8.3f}"
                )
    pooled = aggregate_metrics(all_metrics)
    print(
        f"\npooled: AC={pooled.accuracy:.1%} PC={pooled.precision:.1%} "
        f"KPA={pooled.kpa:.1%} (random guessing would give ~50%)"
    )


if __name__ == "__main__":
    main()
