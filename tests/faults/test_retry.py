"""RetryPolicy: deterministic backoff, attempt caps, env knobs."""

import errno

import pytest

from repro.faults import RetryPolicy
from repro.faults.retry import (
    RETRY_ATTEMPTS_ENV,
    RETRY_BASE_DELAY_ENV,
    RETRY_READ_TIMEOUT_ENV,
)


def test_delay_schedule_is_exponential_and_capped():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(4) == pytest.approx(0.5)  # capped
    assert policy.delay(10) == pytest.approx(0.5)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.1, jitter=0.25)
    twin = RetryPolicy(base_delay=0.1, jitter=0.25)
    for attempt in range(1, 6):
        d = policy.delay(attempt)
        assert d == twin.delay(attempt)  # same seed, same schedule
        base = min(0.1 * 2.0 ** (attempt - 1), policy.max_delay)
        assert base <= d <= base * 1.25
    other = RetryPolicy(base_delay=0.1, jitter=0.25, seed=1)
    assert any(other.delay(a) != policy.delay(a) for a in range(1, 6))


def test_delay_rejects_nonpositive_attempt():
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)


def test_call_retries_then_succeeds():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0)
    attempts = []
    retried = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError(errno.ENOSPC, "full")
        return "ok"

    result = policy.call(
        flaky, on_retry=lambda a, exc, d: retried.append((a, d))
    )
    assert result == "ok"
    assert len(attempts) == 3
    assert [a for a, _ in retried] == [1, 2]


def test_call_reraises_after_budget():
    policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0)
    calls = []

    def always_fails():
        calls.append(1)
        raise OSError(errno.EIO, "still broken")

    with pytest.raises(OSError) as excinfo:
        policy.call(always_fails)
    assert excinfo.value.errno == errno.EIO
    assert len(calls) == 2


def test_call_does_not_retry_unlisted_exceptions():
    policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0)
    calls = []

    def typo():
        calls.append(1)
        raise KeyError("not an OSError")

    with pytest.raises(KeyError):
        policy.call(typo)
    assert len(calls) == 1


def test_from_env_and_overrides(monkeypatch):
    monkeypatch.setenv(RETRY_ATTEMPTS_ENV, "7")
    monkeypatch.setenv(RETRY_BASE_DELAY_ENV, "0.5")
    monkeypatch.setenv(RETRY_READ_TIMEOUT_ENV, "42")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 7
    assert policy.base_delay == 0.5
    assert policy.read_timeout == 42.0
    assert RetryPolicy.from_env(max_attempts=2).max_attempts == 2  # override


def test_with_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.with_attempts(None) is policy
    assert policy.with_attempts(3) is policy
    bumped = policy.with_attempts(5)
    assert bumped.max_attempts == 5
    assert bumped.base_delay == policy.base_delay
