"""Reverse-mode automatic differentiation over numpy arrays.

The offline environment has no PyTorch, so this module provides the tensor
runtime the DGCNN is built on: a :class:`Tensor` records the operations that
produced it and :meth:`Tensor.backward` walks the tape in reverse
topological order, accumulating gradients.

Only the operations the DGCNN needs are implemented, each with an exact
(non-approximated) gradient.  Everything is float64 for well-conditioned
gradient checks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["Tensor", "spmm", "concat", "relu", "tanh", "sigmoid"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autograd tape.

    Args:
        data: array-like payload (stored as float64).
        requires_grad: participate in gradient computation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------- plumbing
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self)=1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        # Reverse topological order over the tape.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen or not node.requires_grad:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))

        # Seed, then walk consumers-before-producers; every closure
        # accumulates into its parents' ``.grad`` via ``_accumulate``, so by
        # the time a node is visited its gradient is complete.
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def item(self) -> float:
        return float(self.data)

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make(data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------ reshaping
    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)
        old_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(old_shape))

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows; an index of ``-1`` yields a zero row (padding).

        Gradient scatters back additively into the selected rows.
        """
        indices = np.asarray(indices, dtype=np.int64)
        padded = np.zeros((indices.shape[0],) + self.shape[1:], dtype=np.float64)
        valid = indices >= 0
        padded[valid] = self.data[indices[valid]]

        def backward(grad: np.ndarray) -> None:
            out = np.zeros_like(self.data)
            np.add.at(out, indices[valid], grad[valid])
            self._accumulate(out)

        return self._make(padded, (self,), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ---------------------------------------------------------- activations
    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data**2))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)


def spmm(matrix: sp.spmatrix, tensor: Tensor) -> Tensor:
    """Sparse @ dense with gradient through the dense side.

    The sparse *matrix* is a constant (the normalized adjacency); only the
    node-feature tensor receives a gradient: ``d(A @ H)/dH = A.T @ grad``.
    """
    matrix = matrix.tocsr()
    data = matrix @ tensor.data

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(matrix.T @ grad)

    return Tensor._make(data, (tensor,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along *axis*; gradient splits back to the inputs."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def relu(t: Tensor) -> Tensor:
    return t.relu()


def tanh(t: Tensor) -> Tensor:
    return t.tanh()


def sigmoid(t: Tensor) -> Tensor:
    return t.sigmoid()
