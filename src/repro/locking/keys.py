"""Key-input conventions shared by every locking scheme.

Key inputs are primary inputs named ``keyinput0, keyinput1, …`` — the naming
convention of the logic-locking BENCH corpus, which is also how MuxLink's
first step *identifies* the key gates (tracing key inputs from the
tamper-proof memory, paper Sec. III-A).
"""

from __future__ import annotations

import re

from repro.netlist import Circuit

__all__ = [
    "KEY_INPUT_PREFIX",
    "key_input_name",
    "key_input_index",
    "is_key_input",
    "key_inputs_of",
    "format_key",
    "parse_key",
]

KEY_INPUT_PREFIX = "keyinput"

_KEY_RE = re.compile(rf"^{KEY_INPUT_PREFIX}(\d+)$")


def key_input_name(index: int) -> str:
    """Net name of key bit *index*."""
    if index < 0:
        raise ValueError("key index must be non-negative")
    return f"{KEY_INPUT_PREFIX}{index}"


def key_input_index(net: str) -> int:
    """Inverse of :func:`key_input_name`.

    Raises:
        ValueError: if *net* is not a key-input name.
    """
    match = _KEY_RE.match(net)
    if not match:
        raise ValueError(f"{net!r} is not a key input")
    return int(match.group(1))


def is_key_input(net: str) -> bool:
    return _KEY_RE.match(net) is not None


def key_inputs_of(circuit: Circuit) -> tuple[str, ...]:
    """Key-input nets of *circuit* ordered by index."""
    found = [pi for pi in circuit.inputs if is_key_input(pi)]
    return tuple(sorted(found, key=key_input_index))


def format_key(bits: dict[int, int], n_bits: int) -> str:
    """Render a ``{index: bit}`` mapping as a key string (index 0 first)."""
    chars = []
    for i in range(n_bits):
        if i not in bits:
            raise ValueError(f"missing key bit {i}")
        chars.append(str(bits[i]))
    return "".join(chars)


def parse_key(key: str) -> dict[int, int]:
    """Parse a key string into ``{index: bit}`` (``x`` bits are skipped)."""
    out: dict[int, int] = {}
    for i, ch in enumerate(key):
        if ch in "01":
            out[i] = int(ch)
        elif ch not in "xX":
            raise ValueError(f"invalid key character {ch!r} at position {i}")
    return out
