"""Unit tests for BENCH parsing and serialization."""

import pytest

from repro.errors import BenchFormatError
from repro.netlist import GateType, parse_bench, write_bench
from repro.netlist.bench import dump_bench, load_bench

C17 = """
# c17 (real ISCAS-85 netlist)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def test_parse_c17():
    circuit, key = parse_bench(C17, name="c17")
    assert key is None
    assert circuit.inputs == ("G1", "G2", "G3", "G6", "G7")
    assert circuit.outputs == ("G22", "G23")
    assert len(circuit) == 6
    assert circuit.gate("G22").inputs == ("G10", "G16")


def test_roundtrip():
    circuit, _ = parse_bench(C17, name="c17")
    text = write_bench(circuit)
    again, _ = parse_bench(text, name="c17")
    assert again.inputs == circuit.inputs
    assert again.outputs == circuit.outputs
    assert {g.name: g for g in again.gates} == {g.name: g for g in circuit.gates}


def test_key_comment_roundtrip():
    circuit, _ = parse_bench(C17)
    text = write_bench(circuit, key="0110")
    _, key = parse_bench(text)
    assert key == "0110"


def test_out_of_order_definitions():
    text = """
    INPUT(a)
    OUTPUT(y)
    y = NOT(m)
    m = AND(a, a)
    """
    circuit, _ = parse_bench(text)
    assert circuit.topological_order() == ("m", "y")


def test_synonyms_and_mux():
    text = """
    INPUT(a)
    INPUT(k)
    OUTPUT(y)
    n = INV(a)
    b = BUFF(a)
    y = MUX(k, n, b)
    """
    circuit, _ = parse_bench(text)
    assert circuit.gate("n").gate_type is GateType.NOT
    assert circuit.gate("b").gate_type is GateType.BUF
    assert circuit.gate("y").gate_type is GateType.MUX
    assert circuit.gate("y").inputs == ("k", "n", "b")


def test_whitespace_and_comments_tolerated():
    text = "INPUT( a )\n# a comment\n\nOUTPUT( y )\ny  =  AND( a ,a )\n"
    circuit, _ = parse_bench(text)
    assert circuit.gate("y").inputs == ("a", "a")


@pytest.mark.parametrize(
    "bad",
    [
        "INPUT(a)\nOUTPUT(y)\ny = FROB(a, a)",  # unknown gate
        "INPUT(a)\nOUTPUT(y)\ny = AND()",  # no inputs
        "INPUT(a)\nOUTPUT(y)\nthis is not bench",  # junk line
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)",  # undriven net
        "INPUT(a)\nOUTPUT(y)\ny = NOT(w)\nw = NOT(y)",  # cycle
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(BenchFormatError):
        parse_bench(bad)


def test_file_io(tmp_path):
    circuit, _ = parse_bench(C17, name="c17")
    path = tmp_path / "c17.bench"
    dump_bench(circuit, path, key="01")
    loaded, key = load_bench(path)
    assert loaded.name == "c17"
    assert key == "01"
    assert len(loaded) == 6
