"""Store-backed runner: resumable ``repro figures`` across processes.

The acceptance contract of the artifact store:

* a **cold** ``repro figures --figures 7 8 9 10 --scale smoke --store D``
  populates the store;
* a **warm** rerun *in a different process* performs **zero lock and
  zero train jobs** (asserted on :class:`RunnerStats`);
* every figure output is **bit-identical** to the serial in-memory path
  (no store at all) — fingerprints and formatted tables alike;
* failure modes degrade, never crash: corrupt entries recompute with a
  warning, a schema bump ignores old entries, config changes miss.
"""

import pathlib
import re
import subprocess
import sys

import pytest

import repro
from repro.core import MuxLinkConfig, run_muxlink
from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    attack_benchmark,
    fig7_cells,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    make_cell,
    record_fingerprint,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.linkpred import TrainConfig
from repro.locking import DMUX_SCHEME
from repro.store import ArtifactStore, SCHEMA_VERSION

_SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parents[1])
_FIGURES_ARGS = ["figures", "--figures", "7", "8", "9", "10", "--scale", "smoke"]


def _figures_cli_in_fresh_process(store_dir) -> str:
    """Run ``repro figures`` in a separate interpreter; return stdout."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *_FIGURES_ARGS, "--store", str(store_dir)],
        capture_output=True,
        text=True,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": _SRC_ROOT,
            "PYTHONHASHSEED": "0",
        },
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def _figure_blocks(stdout: str, mask_runtime: bool = False) -> str:
    """The figure tables only — bookkeeping lines and spacing stripped.

    ``mask_runtime`` blanks the wall-clock ``sec`` / ``runtime(s)``
    columns (fig7 / fig10): a warm store run reproduces the *stored*
    runtimes bit for bit, but a store-less reference run measures its
    own wall clock, which can never match exactly.
    """
    lines = [
        line
        for line in stdout.splitlines()
        if line.strip()
        and not line.startswith(("runner:", "store:", "store=", "scale="))
    ]
    if mask_runtime:
        lines = [re.sub(r"\d+\.\d$", "<sec>", line) for line in lines]
    return "\n".join(lines)


def _run_all_figures(runner, mask_runtime: bool = False) -> str:
    text = "\n".join(
        [
            format_fig7(run_fig7(scale=SMOKE_SCALE, seed=0, runner=runner)),
            format_fig8(run_fig8(scale=SMOKE_SCALE, seed=0, runner=runner)),
            format_fig9(run_fig9(scale=SMOKE_SCALE, seed=0, runner=runner)),
            format_fig10(run_fig10(scale=SMOKE_SCALE, seed=0, runner=runner)),
        ]
    )
    return _figure_blocks(text, mask_runtime=mask_runtime)


def test_cold_then_warm_figures_across_processes(tmp_path):
    store_dir = tmp_path / "store"

    # Serial in-memory reference: no store anywhere near it.  Wall-clock
    # columns are masked — everything computed is compared exactly.
    reference = _run_all_figures(ExperimentRunner(jobs=0), mask_runtime=True)

    # Cold run in a separate process populates the store.
    cold_out = _figures_cli_in_fresh_process(store_dir)
    assert ArtifactStore(store_dir).schema_dir.is_dir()
    assert _figure_blocks(cold_out, mask_runtime=True).strip() == reference.strip()

    # Warm run, this process: all artifacts come from the store.
    warm = ExperimentRunner(jobs=0, store=store_dir)
    warm_text = _run_all_figures(warm, mask_runtime=True)
    assert warm.stats.locks_computed == 0, "warm run re-locked"
    assert warm.stats.attacks_computed == 0, "warm run re-trained"
    assert warm.stats.locks_loaded > 0 and warm.stats.attacks_loaded > 0
    assert warm.store.stats.writes == 0
    assert warm_text.strip() == reference.strip()

    # A warm rerun through the CLI (third process) reproduces the cold
    # run's output *bit for bit* — runtimes included, because they are
    # part of the stored artifact, not re-measured.
    warm_out = _figures_cli_in_fresh_process(store_dir)
    assert _figure_blocks(warm_out) == _figure_blocks(cold_out)


def test_warm_runner_matches_fingerprints_without_store(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    reference = [record_fingerprint(r) for r in ExperimentRunner(jobs=0).run(cells)]

    cold = ExperimentRunner(jobs=0, store=tmp_path)
    assert [record_fingerprint(r) for r in cold.run(cells)] == reference
    assert cold.stats.attacks_computed == 2 and cold.store.stats.writes == 4

    warm = ExperimentRunner(jobs=0, store=tmp_path)
    assert [record_fingerprint(r) for r in warm.run(cells)] == reference
    assert warm.stats.locks_computed == 0
    assert warm.stats.attacks_computed == 0
    assert warm.stats.locks_loaded == 2 and warm.stats.attacks_loaded == 2


def test_corrupt_store_entry_recomputes_with_warning(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    cold = ExperimentRunner(jobs=0, store=tmp_path)
    reference = [record_fingerprint(r) for r in cold.run(cells)]

    # Mangle every artifact on disk; the warm runner must fall back to
    # recomputing everything — with warnings, without wrong results.
    store = ArtifactStore(tmp_path)
    for entry in store.entries():
        entry.path.write_bytes(b"bit rot")

    warm = ExperimentRunner(jobs=0, store=tmp_path)
    with pytest.warns(RuntimeWarning, match="unreadable"):
        records = warm.run(cells)
    assert [record_fingerprint(r) for r in records] == reference
    assert warm.stats.locks_computed == 2
    assert warm.stats.attacks_computed == 2
    # The recompute healed the entries: a third runner loads them clean.
    healed = ExperimentRunner(jobs=0, store=tmp_path)
    assert [record_fingerprint(r) for r in healed.run(cells)] == reference
    assert healed.stats.attacks_computed == 0


def test_schema_bump_ignores_but_does_not_crash(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    cold = ExperimentRunner(jobs=0, store=ArtifactStore(tmp_path))
    reference = [record_fingerprint(r) for r in cold.run(cells)]

    bumped = ExperimentRunner(
        jobs=0, store=ArtifactStore(tmp_path, schema=SCHEMA_VERSION + 1)
    )
    records = bumped.run(cells)
    assert [record_fingerprint(r) for r in records] == reference
    assert bumped.stats.attacks_computed == 2  # old entries invisible
    assert bumped.stats.locks_loaded == 0 and bumped.stats.attacks_loaded == 0


def test_config_change_misses_the_store(tmp_path):
    record = attack_benchmark(
        "c1355", DMUX_SCHEME, 6, SMOKE_SCALE, 0.1, seed=0, store=tmp_path
    )
    assert record.metrics.n_total == 6

    # Same identity, different training budget: a different artifact.
    import dataclasses

    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0)
    more_epochs = dataclasses.replace(
        cell,
        config=dataclasses.replace(
            cell.config,
            train=dataclasses.replace(cell.config.train, epochs=3),
        ),
    )
    runner = ExperimentRunner(jobs=0, store=tmp_path)
    runner.run([more_epochs])
    assert runner.stats.attacks_computed == 1
    assert runner.stats.locks_loaded == 1  # the lock is config-independent


def test_threshold_change_hits_the_store_and_rescored(tmp_path):
    """Fig. 9 semantics survive persistence: the threshold is normalized
    out of the attack key, and a rematerialized artifact is re-thresholded
    at the requesting cell's own ``th``."""
    base = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0)
    swept = make_cell(
        SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0, threshold=1.0
    )
    reference = ExperimentRunner(jobs=0).run([base, swept])

    ExperimentRunner(jobs=0, store=tmp_path).run([base])
    warm = ExperimentRunner(jobs=0, store=tmp_path)
    records = warm.run([base, swept])
    assert warm.stats.attacks_computed == 0
    assert warm.stats.attacks_loaded == 1
    assert [record_fingerprint(r) for r in records] == [
        record_fingerprint(r) for r in reference
    ]
    # th=1.0 leaves every bit undecided at SMOKE scale — proof the
    # rescoring actually ran against the cached likelihoods.
    assert records[1].predicted_key == "x" * 6


def test_run_muxlink_store_hit_skips_training(tmp_path):
    from repro.benchgen import load_benchmark
    from repro.locking import lock_dmux

    locked = lock_dmux(load_benchmark("c1355", scale=0.1), key_size=6, seed=1)
    config = MuxLinkConfig(h=1, train=TrainConfig(epochs=2, seed=0), seed=0)
    store = ArtifactStore(tmp_path)

    cold = run_muxlink(locked.circuit, config, store=store)
    assert store.stats.writes == 1
    warm_store = ArtifactStore(tmp_path)
    warm = run_muxlink(locked.circuit, config, store=warm_store)
    assert warm_store.stats.hits == 1 and warm_store.stats.writes == 0
    assert warm.predicted_key == cold.predicted_key
    assert warm.history.train_loss == cold.history.train_loss
    assert [s.likelihoods for s in warm.scored] == [
        s.likelihoods for s in cold.scored
    ]
    assert warm.graph is None  # rematerialized, not retrained

    # A different threshold still hits, with post-processing re-run.
    import dataclasses

    undecided = run_muxlink(
        locked.circuit,
        dataclasses.replace(config, threshold=1.0),
        store=ArtifactStore(tmp_path),
    )
    assert undecided.predicted_key == "x" * len(cold.predicted_key)


def test_pooled_store_backed_run_matches_serial(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    serial = ExperimentRunner(jobs=0).run(cells)
    with ExperimentRunner(jobs=2, store=tmp_path) as pooled:
        records = pooled.run(cells)
    assert [record_fingerprint(r) for r in records] == [
        record_fingerprint(r) for r in serial
    ]
    # The artifacts the workers shipped back landed in the store ...
    with ExperimentRunner(jobs=2, store=tmp_path) as warm:
        warm_records = warm.run(cells)
        assert warm.stats.attacks_computed == 0
    assert [record_fingerprint(r) for r in warm_records] == [
        record_fingerprint(r) for r in serial
    ]


def test_cli_attack_and_runner_share_one_pool(tmp_path):
    """`repro attack --store` and the figure runner derive the same
    content address for the same canonical netlist: the attack the
    runner trained is reused by a run_muxlink call on the round-tripped
    BENCH file (the CLI path), with zero retraining."""
    from repro.netlist import dump_bench, load_bench

    store_dir = tmp_path / "store"
    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, DMUX_SCHEME, 6, seed=0)
    runner = ExperimentRunner(jobs=0, store=store_dir)
    record = runner.run([cell])[0]
    assert runner.stats.attacks_computed == 1

    bench_path = tmp_path / "locked.bench"
    locked = record.extras["locked"]
    dump_bench(locked.circuit, bench_path, key=locked.key)
    reparsed, _ = load_bench(bench_path)

    store = ArtifactStore(store_dir)
    result = run_muxlink(reparsed, cell.config, store=store)
    assert store.stats.hits == 1 and store.stats.writes == 0
    assert result.graph is None  # rematerialized, not retrained
    assert result.predicted_key == record.predicted_key
