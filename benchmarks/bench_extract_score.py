"""Composed pipeline bench: multi-process extraction + streamed scoring.

The two throughput features of the attack pipeline were benchmarked
separately until now (``bench_subgraph_extraction`` for the worker-pool
dataset build, ``bench_spmm`` for the streamed scorer); this bench runs
them **composed through ``run_muxlink``** on an ITC-99 design, the way a
PAPER-scale attack would:

* **baseline** — ``n_workers=0, score_prefetch=0``: in-process
  extraction, serial extract-everything-then-score;
* **streamed** — ``n_workers=0, score_prefetch=2``: in-process
  extraction overlapped with GNN forwards (the production default);
* **workers** — ``n_workers=W, score_prefetch=2``: the training-split
  extraction fans out over a multiprocessing pool; candidate scoring
  takes the one-pool main-thread path (pools must not fork from the
  streaming producer thread — see :class:`repro.core.MuxLinkConfig`).

All three modes must produce **bit-identical** likelihoods and loss
curves (asserted); per-stage wall-clock (``sampling`` / ``training`` /
``testing``) is printed and recorded under the ``bench_extract_score``
section of ``BENCH_training.json`` (see ``perf_record.py``).

Sizing: ``REPRO_BENCH_XS_BENCHMARK`` (default ``b14``) and
``REPRO_BENCH_XS_SCALE`` (default ``0.05``) pick the design;
``REPRO_BENCH_XS_SCALE=1.0`` is the full-size ITC run the ROADMAP asks
for (minutes of wall-clock).  No speedup is gated by default — worker
pools cannot win on the 1-2 core containers CI runs on — but
``REPRO_BENCH_XS_MIN_SPEEDUP`` arms a floor on the composed mode for
benchmarking on real multicore hosts.

Run standalone::

    python benchmarks/bench_extract_score.py

or under pytest::

    pytest benchmarks/bench_extract_score.py -s
"""

from __future__ import annotations

import os

import numpy as np

from perf_record import update_record
from repro.benchgen import load_benchmark
from repro.core import MuxLinkConfig, run_muxlink
from repro.linkpred import TrainConfig
from repro.locking import lock_dmux

BENCHMARK = os.environ.get("REPRO_BENCH_XS_BENCHMARK", "b14")
SCALE = float(os.environ.get("REPRO_BENCH_XS_SCALE", "0.05"))
KEY_SIZE = int(os.environ.get("REPRO_BENCH_XS_KEY_SIZE", "32"))
WORKERS = int(os.environ.get("REPRO_BENCH_XS_WORKERS", "4"))
MAX_LINKS = int(os.environ.get("REPRO_BENCH_XS_LINKS", "1500"))
EPOCHS = int(os.environ.get("REPRO_BENCH_XS_EPOCHS", "2"))
H = 3
SEED = 0
#: 0 disables the gate (CI containers are too small for pools to win).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_XS_MIN_SPEEDUP", "0"))


def _config(n_workers: int, score_prefetch: int) -> MuxLinkConfig:
    return MuxLinkConfig(
        h=H,
        max_train_links=MAX_LINKS,
        train=TrainConfig(epochs=EPOCHS, learning_rate=1e-3, seed=SEED),
        seed=SEED,
        n_workers=n_workers,
        score_prefetch=score_prefetch,
    )


def _likelihood_table(result) -> list[tuple]:
    return sorted(
        (s.mux_name, s.key_index, s.load, s.likelihoods) for s in result.scored
    )


def test_composed_extraction_and_streaming_parity_and_timing():
    locked = lock_dmux(
        load_benchmark(BENCHMARK, scale=SCALE), key_size=KEY_SIZE, seed=SEED
    )
    n_candidates = 2 * sum(1 for _ in locked.mux_instances())
    print(
        f"\n[bench_extract_score] {BENCHMARK} scale={SCALE} "
        f"K={KEY_SIZE} ({len(locked.circuit)} gates, "
        f"~{n_candidates} candidate links) links={MAX_LINKS} "
        f"epochs={EPOCHS} workers={WORKERS} cores={os.cpu_count()}"
    )

    modes = {
        "baseline": _config(n_workers=0, score_prefetch=0),
        "streamed": _config(n_workers=0, score_prefetch=2),
        "workers": _config(n_workers=WORKERS, score_prefetch=2),
    }
    results = {}
    for name, config in modes.items():
        results[name] = run_muxlink(locked.circuit, config)
        stages = results[name].runtime_seconds
        print(
            f"  {name:<9} sampling {stages['sampling']:7.2f}s  "
            f"training {stages['training']:7.2f}s  "
            f"testing {stages['testing']:7.2f}s  "
            f"total {results[name].total_runtime:7.2f}s"
        )

    # Composition must not move a single bit.
    reference = results["baseline"]
    for name in ("streamed", "workers"):
        assert _likelihood_table(results[name]) == _likelihood_table(reference), (
            f"{name} mode diverged from the serial path"
        )
        assert results[name].predicted_key == reference.predicted_key
        assert (
            results[name].history.train_loss == reference.history.train_loss
        ), f"{name} mode changed the training trajectory"

    base_pipeline = (
        reference.runtime_seconds["sampling"]
        + reference.runtime_seconds["testing"]
    )
    composed = results["workers"]
    composed_pipeline = (
        composed.runtime_seconds["sampling"]
        + composed.runtime_seconds["testing"]
    )
    speedup = base_pipeline / max(composed_pipeline, 1e-9)
    stream_speedup = (
        reference.runtime_seconds["testing"]
        / max(results["streamed"].runtime_seconds["testing"], 1e-9)
    )
    print(
        f"  extract+score pipeline: {base_pipeline:.2f}s serial -> "
        f"{composed_pipeline:.2f}s with {WORKERS} workers "
        f"({speedup:.2f}x); streamed scoring alone {stream_speedup:.2f}x"
    )

    update_record(
        "bench_extract_score",
        {
            "benchmark": BENCHMARK,
            "circuit_scale": SCALE,
            "key_size": KEY_SIZE,
            "gates": len(locked.circuit),
            "candidates": n_candidates,
            "links": MAX_LINKS,
            "epochs": EPOCHS,
            "workers": WORKERS,
            "stages_seconds": {
                name: {
                    stage: round(seconds, 4)
                    for stage, seconds in result.runtime_seconds.items()
                }
                for name, result in results.items()
            },
            "pipeline_speedup_workers": round(speedup, 3),
            "stream_speedup": round(stream_speedup, 3),
            "parity_exact": True,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )

    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"composed pipeline is only {speedup:.2f}x the serial path "
            f"(need >= {MIN_SPEEDUP}x)"
        )


if __name__ == "__main__":
    test_composed_extraction_and_streaming_parity_and_timing()
    print("bench_extract_score: OK")
