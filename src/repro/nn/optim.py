"""Optimizers: Adam (the paper's choice) and plain SGD.

Both update parameters fully in place.  Adam additionally keeps its moment
estimates and two scratch buffers alive across steps, so a training step
allocates no new arrays — the update arithmetic is a fixed sequence of
``out=``-style numpy calls over preallocated storage, ordered to be
bit-identical to the textbook (allocate-per-step) formulation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Adam", "SGD"]


class SGD:
    """Vanilla stochastic gradient descent."""

    def __init__(self, params: list[Tensor], lr: float = 0.01):
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for param in self.params:
            if param.grad is not None:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba, 2015).

    The paper trains DGCNN with "stochastic gradient descent with the Adam
    updating rule" at an initial learning rate of 1e-4.  ``state_dict`` /
    ``load_state_dict`` round-trip the step counter and moment estimates,
    which the :class:`repro.linkpred.trainer.Trainer` persists in its
    checkpoints.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Scratch buffers reused every step (largest parameter shape wins
        # nothing here — one pair per parameter keeps shapes exact).
        self._buf_a = [np.empty_like(p.data) for p in self.params]
        self._buf_b = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        c1 = 1 - b1**self.t
        c2 = 1 - b2**self.t
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            m, v = self._m[i], self._v[i]
            a, b = self._buf_a[i], self._buf_b[i]
            # m = b1 * m + (1 - b1) * grad
            np.multiply(m, b1, out=m)
            np.multiply(grad, 1 - b1, out=a)
            m += a
            # v = b2 * v + (1 - b2) * grad**2
            np.multiply(v, b2, out=v)
            np.multiply(grad, grad, out=a)
            a *= 1 - b2
            v += a
            # param -= lr * (m / c1) / (sqrt(v / c2) + eps), evaluated in
            # the same operation order as the allocating formulation.
            np.divide(v, c2, out=a)
            np.sqrt(a, out=a)
            a += self.eps
            np.divide(m, c1, out=b)
            b *= self.lr
            b /= a
            param.data -= b

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def state_dict(self) -> dict:
        """Serializable optimizer state (step count + moment estimates)."""
        return {
            "t": self.t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.params):
            raise ValueError(
                f"state has {len(state['m'])} moment arrays, "
                f"optimizer has {len(self.params)} parameters"
            )
        self.t = int(state["t"])
        for i, param in enumerate(self.params):
            self._m[i] = np.asarray(state["m"][i], dtype=param.data.dtype).copy()
            self._v[i] = np.asarray(state["v"][i], dtype=param.data.dtype).copy()
