"""Trainer engine tests: determinism, checkpoint/resume equivalence, early
stopping, LR scheduling, and the shared evaluation/scoring batch iterator."""

import numpy as np
import pytest

from repro.gnn import BatchCache, GraphExample
from repro.linkpred import Trainer, TrainConfig, train_link_predictor
from repro.linkpred.dataset import LinkDataset
from repro.linkpred.trainer import _evaluate, score_examples, score_stream


def make_example(rng, kind, width=4, n=12, label=None):
    """Dense graphs (label 1) vs sparse rings (label 0) with degree one-hots."""
    if kind == 1:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        keep = rng.random(len(pairs)) < 0.6
        edges = np.array([p for p, k in zip(pairs, keep) if k] or [(0, 1)])
    else:
        edges = np.array([(i, (i + 1) % n) for i in range(n)])
    degree = np.zeros(n, dtype=int)
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    features = np.zeros((n, width))
    features[np.arange(n), np.minimum(degree // 2, width - 1)] = 1.0
    return GraphExample(n, edges, features, label=kind if label is None else label)


def toy_dataset(n_train=36, n_val=12, seed=0, flip_val_labels=False):
    rng = np.random.default_rng(seed)
    train = [make_example(rng, i % 2) for i in range(n_train)]
    validation = [
        make_example(rng, i % 2, label=(1 - i % 2) if flip_val_labels else None)
        for i in range(n_val)
    ]
    return LinkDataset(
        train=train,
        validation=validation,
        max_label=1,
        feature_width=4,
        h=1,
        subgraph_sizes=[e.n_nodes for e in train],
    )


CFG = TrainConfig(epochs=6, learning_rate=3e-3, batch_size=10, seed=3)


def test_trainer_rejects_empty_split():
    from repro.errors import TrainingError

    with pytest.raises(TrainingError):
        Trainer(toy_dataset(n_train=0, n_val=4), CFG)


def test_trainer_is_deterministic():
    """Same seed => bit-identical history and weights."""
    m1, h1 = Trainer(toy_dataset(), CFG).fit()
    m2, h2 = Trainer(toy_dataset(), CFG).fit()
    assert h1.train_loss == h2.train_loss
    assert h1.val_loss == h2.val_loss
    assert h1.val_accuracy == h2.val_accuracy
    assert h1.learning_rates == h2.learning_rates
    assert h1.best_epoch == h2.best_epoch
    for a, b in zip(m1.state_dict(), m2.state_dict()):
        np.testing.assert_array_equal(a, b)


def test_wrapper_matches_trainer():
    m1, h1 = train_link_predictor(toy_dataset(), CFG)
    m2, h2 = Trainer(toy_dataset(), CFG).fit()
    assert h1.train_loss == h2.train_loss
    for a, b in zip(m1.state_dict(), m2.state_dict()):
        np.testing.assert_array_equal(a, b)


def test_checkpoint_resume_is_bit_identical(tmp_path):
    """Straight run == run 3 epochs, checkpoint, reload, run the rest."""
    path = str(tmp_path / "ck.pkl")
    m_full, h_full = Trainer(toy_dataset(), CFG).fit()

    partial = Trainer(toy_dataset(), CFG)
    partial.fit(until_epoch=3)
    assert partial.epoch == 3
    partial.save_checkpoint(path)

    resumed = Trainer(toy_dataset(), CFG)
    resumed.load_checkpoint(path)
    assert resumed.epoch == 3
    m_res, h_res = resumed.fit()

    assert h_res.train_loss == h_full.train_loss
    assert h_res.val_loss == h_full.val_loss
    assert h_res.best_epoch == h_full.best_epoch
    for a, b in zip(m_res.state_dict(), m_full.state_dict()):
        np.testing.assert_array_equal(a, b)


def test_config_resume_flag(tmp_path):
    path = str(tmp_path / "auto.pkl")
    cfg = TrainConfig(
        epochs=6, learning_rate=3e-3, batch_size=10, seed=3,
        checkpoint_path=path, resume=True,
    )
    m_full, h_full = Trainer(toy_dataset(), CFG).fit()
    t = Trainer(toy_dataset(), cfg)
    t.fit(until_epoch=2)
    t.save_checkpoint(path)
    m_res, h_res = Trainer(toy_dataset(), cfg).fit()  # auto-resumes
    assert h_res.train_loss == h_full.train_loss
    for a, b in zip(m_res.state_dict(), m_full.state_dict()):
        np.testing.assert_array_equal(a, b)


def test_checkpoint_rejects_mismatched_config(tmp_path):
    from repro.errors import TrainingError

    path = str(tmp_path / "ck.pkl")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)
    other = Trainer(
        toy_dataset(),
        TrainConfig(epochs=6, batch_size=10, seed=99),
    )
    with pytest.raises(TrainingError):
        other.load_checkpoint(path)


def test_checkpoint_rejects_different_dataset(tmp_path):
    from repro.errors import TrainingError

    path = str(tmp_path / "ck.pkl")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)
    # Same feature width and k, different split sizes: shapes would line
    # up, but the identity check must still refuse.
    other = Trainer(toy_dataset(n_train=30, n_val=6), CFG)
    with pytest.raises(TrainingError, match="different dataset"):
        other.load_checkpoint(path)


def test_checkpoint_rejects_mismatched_dtype(tmp_path):
    from repro.errors import TrainingError
    from repro.nn import default_dtype, dtype_scope

    path = str(tmp_path / "ck.pkl")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)
    flipped = np.float64 if default_dtype() == np.float32 else np.float32
    with dtype_scope(flipped):
        other = Trainer(toy_dataset(), CFG)
        with pytest.raises(TrainingError, match="runtime"):
            other.load_checkpoint(path)


def test_score_examples_rejects_nonpositive_batch_size():
    dataset = toy_dataset()
    model, _ = Trainer(dataset, CFG).fit()
    with pytest.raises(ValueError):
        score_examples(model, dataset.validation, batch_size=0)


def test_early_stopping_triggers_on_worsening_validation():
    """Flipped validation labels: val loss rises as training improves."""
    cfg = TrainConfig(
        epochs=40, learning_rate=3e-3, batch_size=10, seed=3, patience=3
    )
    _, history = Trainer(toy_dataset(flip_val_labels=True), cfg).fit()
    assert history.stopped_early
    assert history.epochs_run < cfg.epochs
    assert history.epochs_run - 1 - history.best_epoch >= cfg.patience


def test_resume_past_early_stop_with_patience_disabled(tmp_path):
    """An early-stopped checkpoint resumes when patience is raised/disabled."""
    path = str(tmp_path / "ck.pkl")
    stopper_cfg = TrainConfig(
        epochs=40, learning_rate=3e-3, batch_size=10, seed=3, patience=3
    )
    t = Trainer(toy_dataset(flip_val_labels=True), stopper_cfg)
    _, stopped = t.fit()
    assert stopped.stopped_early
    t.save_checkpoint(path)

    relaxed_cfg = TrainConfig(
        epochs=stopped.epochs_run + 2, learning_rate=3e-3, batch_size=10,
        seed=3, patience=None,
    )
    resumed = Trainer(toy_dataset(flip_val_labels=True), relaxed_cfg)
    resumed.load_checkpoint(path)
    _, history = resumed.fit()
    assert not history.stopped_early
    assert history.epochs_run == stopped.epochs_run + 2


def test_no_early_stopping_without_validation():
    cfg = TrainConfig(epochs=4, batch_size=10, seed=3, patience=1)
    _, history = Trainer(toy_dataset(n_val=0), cfg).fit()
    assert not history.stopped_early
    assert history.epochs_run == 4


def test_lr_schedule_is_applied_and_recorded():
    cfg = TrainConfig(
        epochs=6, learning_rate=1e-2, batch_size=10, seed=3,
        lr_decay=0.5, lr_decay_every=2,
    )
    _, history = Trainer(toy_dataset(), cfg).fit()
    np.testing.assert_allclose(
        history.learning_rates,
        [1e-2, 1e-2, 5e-3, 5e-3, 2.5e-3, 2.5e-3],
    )


def test_evaluate_cache_matches_uncached():
    dataset = toy_dataset()
    model, _ = Trainer(dataset, CFG).fit()
    cache = BatchCache(dataset.validation, CFG.batch_size)
    cached = _evaluate(model, dataset.validation, CFG.batch_size, cache=cache)
    uncached = _evaluate(model, dataset.validation, CFG.batch_size)
    assert cached == uncached


def test_score_examples_batch_size_invariant():
    """Per-graph scores are independent of batch chunking.

    Mathematically exact; numerically BLAS picks different GEMM blockings
    for different batch shapes, so allow ulp-level slack.
    """
    dataset = toy_dataset()
    model, _ = Trainer(dataset, CFG).fit()
    a = score_examples(model, dataset.validation, batch_size=3)
    b = score_examples(model, dataset.validation, batch_size=50)
    default = score_examples(model, dataset.validation)
    np.testing.assert_allclose(a, b, rtol=0, atol=1e-6)
    np.testing.assert_array_equal(b, default)
    assert score_examples(model, []).size == 0


def test_score_examples_accepts_prebuilt_cache():
    """A BatchCache skips batch construction; scores are bit-identical."""
    dataset = toy_dataset()
    model, _ = Trainer(dataset, CFG).fit()
    cache = BatchCache(dataset.validation, CFG.batch_size)
    uncached = score_examples(model, dataset.validation, CFG.batch_size)
    cached = score_examples(model, dataset.validation, CFG.batch_size, cache=cache)
    np.testing.assert_array_equal(cached, uncached)
    # batch_size may be inferred from the cache
    np.testing.assert_array_equal(
        score_examples(model, dataset.validation, cache=cache), uncached
    )


def test_score_stream_matches_serial_scoring():
    """Streamed scoring partitions batches exactly like score_examples."""
    dataset = toy_dataset(n_train=30, n_val=23)
    model, _ = Trainer(dataset, CFG).fit()
    serial = score_examples(model, dataset.validation, batch_size=5)

    produced = []

    def chunks():
        # uneven chunk sizes cross batch boundaries on purpose
        examples = list(dataset.validation)
        for size in (3, 7, 1, 8, 4):
            chunk, examples = examples[:size], examples[size:]
            produced.append(len(chunk))
            yield chunk
        assert not examples

    streamed = score_stream(model, chunks(), batch_size=5, prefetch=2)
    np.testing.assert_array_equal(streamed, serial)
    assert sum(produced) == len(dataset.validation)
    # prefetch<=0 degrades to the serial call
    degraded = score_stream(
        model, [list(dataset.validation)], batch_size=5, prefetch=0
    )
    np.testing.assert_array_equal(degraded, serial)
    assert score_stream(model, [], batch_size=5).size == 0


def test_score_stream_propagates_producer_errors():
    dataset = toy_dataset()
    model, _ = Trainer(dataset, CFG).fit()

    def chunks():
        yield dataset.validation[:4]
        raise RuntimeError("extraction exploded")

    with pytest.raises(RuntimeError, match="extraction exploded"):
        score_stream(model, chunks(), batch_size=2, prefetch=1)


def test_checkpoint_is_a_codec_artifact_not_pickle(tmp_path):
    """Checkpoints ride the shared repro.store codec: numpy-loadable,
    never unpickled, and legacy pickle files are rejected cleanly."""
    import pickle

    import numpy as np

    from repro.errors import TrainingError
    from repro.store import codec

    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)
    # The file is a plain npz archive (no pickled objects inside) ...
    payload = codec.load(path, kind="trainer-checkpoint")
    assert payload["epoch"] == 1
    assert isinstance(payload["model_state"][0], np.ndarray)
    assert payload["shuffle_rng_state"]["bit_generator"] == "PCG64"

    # ... and a pickle-era checkpoint fails with a clear TrainingError.
    legacy = str(tmp_path / "legacy.pkl")
    with open(legacy, "wb") as handle:
        pickle.dump({"version": 1}, handle)
    fresh = Trainer(toy_dataset(), CFG)
    with pytest.raises(TrainingError, match="unreadable checkpoint"):
        fresh.load_checkpoint(legacy)


# ---------------------------------------------------------------------------
# optimizer swap / K-FAC checkpointing (checkpoint format v3)
# ---------------------------------------------------------------------------
KFAC_CFG = TrainConfig(
    epochs=6, learning_rate=3e-3, batch_size=10, seed=3,
    optimizer="kfac", kfac_inv_every=2,
)


def test_kfac_trainer_is_deterministic_and_diverges_from_adam():
    m1, h1 = Trainer(toy_dataset(), KFAC_CFG).fit()
    m2, h2 = Trainer(toy_dataset(), KFAC_CFG).fit()
    assert h1.train_loss == h2.train_loss
    for a, b in zip(m1.state_dict(), m2.state_dict()):
        np.testing.assert_array_equal(a, b)
    # The preconditioner changes the trajectory: it is a semantic knob.
    _, h_adam = Trainer(toy_dataset(), CFG).fit()
    assert h1.train_loss != h_adam.train_loss


def test_kfac_checkpoint_resume_is_bit_identical(tmp_path):
    """v3 checkpoints carry the preconditioner state: straight run ==
    run 3 epochs, checkpoint, reload, run the rest — under K-FAC."""
    path = str(tmp_path / "ck.npz")
    m_full, h_full = Trainer(toy_dataset(), KFAC_CFG).fit()

    partial = Trainer(toy_dataset(), KFAC_CFG)
    partial.fit(until_epoch=3)
    partial.save_checkpoint(path)

    resumed = Trainer(toy_dataset(), KFAC_CFG)
    resumed.load_checkpoint(path)
    assert resumed.preconditioner.t == partial.preconditioner.t
    m_res, h_res = resumed.fit()
    assert h_res.train_loss == h_full.train_loss
    assert h_res.val_auc == h_full.val_auc
    for a, b in zip(m_res.state_dict(), m_full.state_dict()):
        np.testing.assert_array_equal(a, b)


def test_adam_checkpoint_resumes_with_kfac_enabled(tmp_path):
    """Optimizer swap across the checkpoint boundary: an Adam checkpoint
    resumes under K-FAC (moments transfer, preconditioner cold-starts)."""
    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=3)
    t.save_checkpoint(path)

    resumed = Trainer(toy_dataset(), KFAC_CFG)
    resumed.load_checkpoint(path)
    assert resumed.epoch == 3
    assert resumed.preconditioner.t == 0  # cold start
    _, history = resumed.fit()
    assert history.epochs_run == KFAC_CFG.epochs


def test_kfac_checkpoint_resumes_under_adam(tmp_path):
    """The reverse swap: preconditioner state in the checkpoint is
    ignored by an Adam resume instead of raising."""
    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), KFAC_CFG)
    t.fit(until_epoch=3)
    t.save_checkpoint(path)

    resumed = Trainer(toy_dataset(), CFG)
    resumed.load_checkpoint(path)
    assert resumed.preconditioner is None
    _, history = resumed.fit()
    assert history.epochs_run == CFG.epochs


def test_legacy_v2_checkpoint_still_loads(tmp_path):
    """A version-2 payload (no optimizer name, no preconditioner state,
    no val_auc) loads: the AUC history backfills empty."""
    from repro.store import codec

    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=2)
    t.save_checkpoint(path)

    payload = codec.load(path, kind="trainer-checkpoint")
    payload["version"] = 2
    del payload["optimizer_name"]
    del payload["preconditioner_state"]
    del payload["history"]["val_auc"]
    legacy = str(tmp_path / "legacy.npz")
    codec.dump(payload, legacy, kind="trainer-checkpoint")

    resumed = Trainer(toy_dataset(), CFG)
    resumed.load_checkpoint(legacy)
    assert resumed.epoch == 2
    assert resumed.history.val_auc == []
    _, history = resumed.fit()
    assert history.epochs_run == CFG.epochs


def test_checkpoint_with_mismatched_shapes_raises_cleanly(tmp_path):
    """Architecture drift fails as TrainingError before any state is
    assigned — not as a broadcast error half-way through."""
    from repro.errors import TrainingError
    from repro.store import codec

    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)

    payload = codec.load(path, kind="trainer-checkpoint")
    payload["optimizer_state"]["m"][0] = np.zeros((2, 2))
    broken = str(tmp_path / "broken.npz")
    codec.dump(payload, broken, kind="trainer-checkpoint")

    fresh = Trainer(toy_dataset(), CFG)
    untouched = [a.copy() for a in fresh.model.state_dict()]
    with pytest.raises(TrainingError, match="does not fit this model"):
        fresh.load_checkpoint(broken)
    assert fresh.epoch == 0
    for a, b in zip(fresh.model.state_dict(), untouched):
        np.testing.assert_array_equal(a, b)


def test_checkpoint_with_mismatched_kfac_state_raises_cleanly(tmp_path):
    from repro.errors import TrainingError
    from repro.store import codec

    path = str(tmp_path / "ck.npz")
    t = Trainer(toy_dataset(), KFAC_CFG)
    t.fit(until_epoch=1)
    t.save_checkpoint(path)

    payload = codec.load(path, kind="trainer-checkpoint")
    payload["preconditioner_state"]["blocks"][0]["A"] = np.eye(2)
    broken = str(tmp_path / "broken.npz")
    codec.dump(payload, broken, kind="trainer-checkpoint")

    fresh = Trainer(toy_dataset(), KFAC_CFG)
    with pytest.raises(TrainingError, match="does not fit this model"):
        fresh.load_checkpoint(broken)
    assert fresh.epoch == 0
