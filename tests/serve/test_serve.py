"""Attack-as-a-service: coalescing, pipelining, remote store, parity.

The cheap tests drive a real :class:`AttackServer` loop with a
*hand-rolled* worker socket (the test speaks the worker wire protocol
itself), so scheduling semantics — coalescing, pipeline depth, requeue
and terminal failure, disconnect recovery — are asserted without
training anything.  One expensive test runs the full stack (server +
pipelined ``run_worker`` thread + :class:`ServeClient`) on a real smoke
job and asserts the served artifact is bit-identical to a serial
:func:`execute_job` run.
"""

import socket as socketlib
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.bus.socketbus import parse_address, recv_message, send_message
from repro.client import ServeClient
from repro.experiments import SMOKE_SCALE, make_cell
from repro.experiments.runner import AttackJob, execute_job
from repro.faults import FaultPlan, FaultSite, RetryPolicy
from repro.serve import AttackServer, ServeError
from repro.store import resolve_store
from repro.store.remote import RemoteStore

_FAST = RetryPolicy(base_delay=0.01, max_delay=0.05, connect_timeout=5.0,
                    read_timeout=20.0)


@pytest.fixture
def server(tmp_path):
    """A live server loop on an ephemeral port, joined at teardown."""
    srv = AttackServer(
        "127.0.0.1:0", tmp_path / "store", poll=0.02, log=lambda *a: None
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    client = ServeClient(srv.address, retry=_FAST)
    try:
        client.shutdown()
    except ServeError:  # pragma: no cover - already stopped
        pass
    thread.join(timeout=10)
    srv.close()


def _job(key: str = "a" * 16) -> AttackJob:
    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, "D-MUX", 6, seed=0)
    return AttackJob(store_key=key, circuit={"fake": 1}, config=cell.config)


class _Peer:
    """A raw protocol speaker: client or hand-rolled worker."""

    def __init__(self, address: str):
        host, port = parse_address(address)
        self.sock = socketlib.create_connection((host, port), timeout=10)
        self.sock.settimeout(10)

    def send(self, payload: dict) -> None:
        send_message(self.sock, payload)

    def recv(self) -> dict | None:
        return recv_message(self.sock)

    def close(self) -> None:
        self.sock.close()

    # -- as a worker ---------------------------------------------------------
    def hello(self, pipeline: int) -> "_Peer":
        self.send({"op": "hello", "role": "worker", "pipeline": pipeline})
        return self

    # -- as a client ---------------------------------------------------------
    def submit(self, job: AttackJob, wait: bool = True) -> str:
        from repro.bus.protocol import encode_job

        self.send(
            {
                "op": "submit",
                "key": job.store_key,
                "job": encode_job(job),
                "wait": wait,
            }
        )
        reply = self.recv()
        assert reply is not None and reply["op"] == "accepted"
        return str(reply["status"])


def test_coalescing_trains_exactly_once(server):
    """K identical concurrent submits schedule ONE job; everyone gets
    the result frame; the store is written once."""
    job = _job()
    clients = [_Peer(server.address) for _ in range(3)]
    statuses = [c.submit(job, wait=True) for c in clients]
    assert statuses == ["queued", "coalesced", "coalesced"]

    worker = _Peer(server.address).hello(pipeline=2)
    pushed = worker.recv()
    assert pushed is not None and pushed["op"] == "job"
    assert pushed["key"] == job.store_key and pushed["attempt"] == 0
    result = {"answer": np.arange(4, dtype=np.float64)}
    worker.send(
        {"op": "done", "key": job.store_key, "kind": "attacks",
         "result": result}
    )

    for client in clients:
        frame = client.recv()
        assert frame is not None and frame["op"] == "result" and frame["ok"]
        np.testing.assert_array_equal(frame["result"]["answer"],
                                      result["answer"])
        client.close()
    assert server.store.stats.writes == 1
    assert server.stats.scheduled == 1
    assert server.stats.coalesced == 2
    assert server.stats.completed == 1

    # Warm resubmit: answered from the memory tier, fleet untouched.
    warm = _Peer(server.address)
    assert warm.submit(job, wait=False) == "hit"
    assert server.stats.memory_hits == 1
    assert server.stats.scheduled == 1
    warm.close()
    worker.close()


def test_pipeline_keeps_multiple_jobs_in_flight(server):
    """One worker connection buffers up to `pipeline` jobs — the next
    job is already in its socket before the current one is acked."""
    worker = _Peer(server.address).hello(pipeline=2)
    client = _Peer(server.address)
    keys = ["a" * 16, "b" * 16, "c" * 16]
    for key in keys:
        client.submit(_job(key), wait=False)

    first, second = worker.recv(), worker.recv()
    assert {first["key"], second["key"]} == set(keys[:2])
    # Depth 2 reached without any ack; the third waits for a free slot.
    (link,) = server.workers.values()
    assert sorted(link.inflight) == sorted(keys[:2])
    worker.send({"op": "done", "key": first["key"], "kind": "attacks",
                 "result": {"x": 1}})
    third = worker.recv()
    assert third is not None and third["key"] == keys[2]
    worker.close()
    client.close()


def test_failed_attempts_requeue_then_turn_terminal(tmp_path):
    srv = AttackServer(
        "127.0.0.1:0", tmp_path / "store", max_attempts=2, poll=0.02,
        log=lambda *a: None,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        job = _job()
        client = _Peer(srv.address)
        assert client.submit(job, wait=True) == "queued"
        worker = _Peer(srv.address).hello(pipeline=1)

        pushed = worker.recv()
        assert pushed["attempt"] == 0
        worker.send({"op": "failed", "key": job.store_key,
                     "traceback": "boom one"})
        retried = worker.recv()  # requeued: the attempt budget has room
        assert retried["key"] == job.store_key and retried["attempt"] == 1
        worker.send({"op": "failed", "key": job.store_key,
                     "traceback": "boom two"})

        frame = client.recv()  # terminal: the waiter hears the failure
        assert frame["op"] == "result" and not frame["ok"]
        assert "boom two" in frame["error"]
        assert srv.stats.requeues == 1 and srv.stats.failed == 1
        worker.close()
        client.close()
    finally:
        ServeClient(srv.address, retry=_FAST).shutdown()
        thread.join(timeout=10)
        srv.close()


def test_dead_worker_connection_requeues_its_window(server):
    client = _Peer(server.address)
    job = _job()
    client.submit(job, wait=True)
    victim = _Peer(server.address).hello(pipeline=1)
    assert victim.recv()["key"] == job.store_key
    victim.close()  # dies mid-job: the in-flight window must requeue

    relief = _Peer(server.address).hello(pipeline=1)
    pushed = relief.recv()
    assert pushed["key"] == job.store_key and pushed["attempt"] == 1
    relief.send({"op": "done", "key": job.store_key, "kind": "attacks",
                 "result": {"x": 1}})
    frame = client.recv()
    assert frame["op"] == "result" and frame["ok"]
    assert server.stats.requeues == 1
    relief.close()
    client.close()


def test_wait_for_unknown_key_fails_fast(server):
    client = ServeClient(server.address, retry=_FAST)
    with pytest.raises(ServeError, match="never submitted"):
        client.result("f" * 16)
    client.close()


def test_accept_drop_is_absorbed_by_client_retry(server):
    faults.activate(
        FaultPlan(
            "drop", sites=(FaultSite("serve.accept_drop", times=1),)
        )
    )
    try:
        client = ServeClient(server.address, retry=_FAST)
        assert client.ping()  # first accept dropped; reconnect wins
        client.close()
        assert faults.fired_counts() == {"serve.accept_drop": 1}
    finally:
        faults.deactivate()


# ---------------------------------------------------------------------------
# The expensive end of the contract: real training, bit-identical.
# ---------------------------------------------------------------------------
def _fingerprint(payload: dict):
    def canon(value):
        if isinstance(value, dict):
            return tuple(sorted((k, canon(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(canon(v) for v in value)
        if isinstance(value, np.ndarray):
            return (str(value.dtype), value.shape, value.tobytes())
        return value

    return canon({k: v for k, v in payload.items()
                  if k != "runtime_seconds"})


def test_served_attack_bit_identical_to_serial(tmp_path):
    from repro.benchgen import load_benchmark
    from repro.bus.worker import run_worker
    from repro.experiments.common import lock_with

    cell = make_cell(SMOKE_SCALE, "c1355", 0.1, "D-MUX", 6, seed=0)
    base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
    locked = lock_with(cell.scheme, base, key_size=cell.key_size,
                       seed=cell.lock_seed)
    job = ServeClient.job_for(locked.circuit, cell.config)
    reference = _fingerprint(execute_job(job))

    srv = AttackServer("127.0.0.1:0", tmp_path / "store", poll=0.02,
                       log=lambda *a: None)
    loop = threading.Thread(target=srv.serve_forever, daemon=True)
    loop.start()
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(serve_addr=srv.address, poll=0.02, max_jobs=1,
                    pipeline=2, log=lambda *a: None),
        daemon=True,
    )
    worker.start()
    try:
        client = ServeClient(srv.address, retry=_FAST)
        key, status = client.submit(locked.circuit, cell.config)
        assert status == "queued" and key == job.store_key
        client.result(key, timeout=240)  # blocks until trained
        served = _fingerprint(srv.store.get("attacks", key))
        assert served == reference  # bit-identical, timing aside
        assert srv.stats.requeues == 0 and srv.stats.failed == 0

        # Warm: the same request never reaches the fleet again.
        _, warm_status = client.submit(locked.circuit, cell.config)
        assert warm_status == "hit"
        client.shutdown()
    finally:
        loop.join(timeout=30)
        worker.join(timeout=30)
        srv.close()


# ---------------------------------------------------------------------------
# RemoteStore: the network half of the store seam.
# ---------------------------------------------------------------------------
def test_remote_store_roundtrip_and_byte_cache(server):
    remote = RemoteStore(server.address, retry=_FAST)
    payload = {"bits": np.arange(8, dtype=np.float64), "n": 3}
    assert not remote.has("attacks", "k" * 16)
    remote.put("attacks", "k" * 16, payload)
    assert remote.has("attacks", "k" * 16)
    assert server.store.has("attacks", "k" * 16)  # persisted server-side

    first = remote.get("attacks", "k" * 16)
    np.testing.assert_array_equal(first["bits"], payload["bits"])
    gets_after_first = server.stats.store_gets
    # Second read decodes from the client byte cache: no network round
    # trip, so the server-side counter must not move.
    again = remote.get("attacks", "k" * 16)
    assert again["n"] == 3
    assert server.stats.store_gets == gets_after_first
    assert remote.stats.hits == 2 and remote.stats.writes == 1
    remote.close()


def test_remote_store_cache_evicts_by_total_bytes(server):
    big = {"x": np.zeros(4096, dtype=np.float64)}
    remote = RemoteStore(server.address, retry=_FAST, cache_bytes=40_000)
    remote.put("attacks", "a" * 16, big)
    remote.put("attacks", "b" * 16, big)  # evicts a's blob
    assert len(remote._cache) == 1
    before = server.stats.store_gets
    remote.get("attacks", "a" * 16)  # must go back to the network
    assert server.stats.store_gets == before + 1
    remote.close()


def test_remote_store_corrupt_blob_reads_as_miss(server):
    path = server.store.path_for("attacks", "bad0" * 4)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not an artifact")
    remote = RemoteStore(server.address, retry=_FAST)
    with pytest.warns(RuntimeWarning, match="discarding unreadable"):
        assert remote.get("attacks", "bad0" * 4) is None
    assert remote.stats.errors == 1 and remote.stats.misses == 1
    remote.close()


def test_resolve_store_understands_remote_scheme(server):
    store = resolve_store(f"remote://{server.address}")
    assert isinstance(store, RemoteStore)
    assert store.root == f"remote://{server.address}"
    store.close()


def test_injected_read_timeout_is_retried(server):
    remote = RemoteStore(server.address, retry=_FAST)
    remote.put("attacks", "c" * 16, {"n": 1})
    remote._cache.clear()
    remote._cache_bytes = 0
    faults.activate(
        FaultPlan(
            "timeout",
            sites=(FaultSite("remote_store.read_timeout", times=1),),
        )
    )
    try:
        assert remote.get("attacks", "c" * 16)["n"] == 1  # retried through
        assert faults.fired_counts() == {"remote_store.read_timeout": 1}
    finally:
        faults.deactivate()
    remote.close()


# ---------------------------------------------------------------------------
# Batched spool leasing (satellite): one scan, N leases.
# ---------------------------------------------------------------------------
def test_lease_batch_claims_up_to_limit(tmp_path):
    from repro.bus import SpoolDir, encode_job

    spool = SpoolDir(tmp_path)
    for key in ("k1", "k2", "k3"):
        spool.enqueue(key, encode_job(_job("a" * 16)))
    batch = spool.lease_batch(2)
    assert [key for key, _ in batch] == ["k1", "k2"]
    assert spool.pending_keys() == ["k3"]
    assert sorted(spool.leased_keys()) == ["k1", "k2"]
    rest = spool.lease_batch(10)  # fewer pending than the limit is fine
    assert [key for key, _ in rest] == ["k3"]
    assert spool.lease_batch(2) == []  # drained

    with pytest.raises(ValueError):
        spool.lease_batch(0)


def test_lease_batch_quarantines_poison_without_losing_the_batch(tmp_path):
    from repro.bus import SpoolDir, encode_job

    spool = SpoolDir(tmp_path)
    spool.enqueue("good", encode_job(_job("a" * 16)))
    spool.pending_dir.joinpath("bad.npz").write_bytes(b"not a job")
    batch = spool.lease_batch(5)
    assert [key for key, _ in batch] == ["good"]
    assert spool.quarantined_keys() == ["bad"]
